//! Node-level fault-tolerance policies and failure-mode classification.
//!
//! The heart of the paper's proposal, as types: a node is configured with a
//! *policy* deciding what happens when an error is detected —
//!
//! * **fail-silent (FS)**: every detected error silences the node; the
//!   distributed system handles all recovery;
//! * **light-weight NLFT**: transient errors in critical tasks are masked
//!   by TEM when possible, degrade to *omission* when the deadline forbids
//!   recovery, and only kernel errors silence the node.
//!
//! The observable result of a fault at the node boundary is a
//! [`NodeFailureMode`] — the event the system-level reliability models
//! (Markov chains in `nlft-bbw`) consume.

use std::fmt;

use nlft_machine::edm::Edm;

use crate::campaign::Verdict;

/// The node's fault-handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodePolicy {
    /// Classic fail-silent node: detect and shut down.
    FailSilent,
    /// Light-weight node-level fault tolerance: mask transients with TEM.
    LightweightNlft,
}

impl fmt::Display for NodePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodePolicy::FailSilent => write!(f, "fail-silent"),
            NodePolicy::LightweightNlft => write!(f, "light-weight NLFT"),
        }
    }
}

/// Replication degree of a node's station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Redundancy {
    /// Single node (the paper's wheel-node stations).
    Simplex,
    /// Two actively replicated nodes (the paper's central unit).
    Duplex,
}

impl fmt::Display for Redundancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Redundancy::Simplex => write!(f, "simplex"),
            Redundancy::Duplex => write!(f, "duplex"),
        }
    }
}

/// Full configuration of one station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// Error-handling policy.
    pub policy: NodePolicy,
    /// Replication degree.
    pub redundancy: Redundancy,
}

/// The externally observable effect of one fault at the node boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeFailureMode {
    /// No observable effect (fault overwritten / latent / masked by TEM).
    /// For NLFT nodes this includes actively masked errors.
    Masked,
    /// The node delivered nothing this period but stays up (NLFT only).
    Omission,
    /// The node silenced itself (detected error, FS shutdown).
    FailSilent,
    /// The error escaped every mechanism: wrong output delivered.
    Undetected,
}

impl fmt::Display for NodeFailureMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeFailureMode::Masked => write!(f, "masked"),
            NodeFailureMode::Omission => write!(f, "omission"),
            NodeFailureMode::FailSilent => write!(f, "fail-silent"),
            NodeFailureMode::Undetected => write!(f, "undetected"),
        }
    }
}

impl NodeFailureMode {
    /// Maps a campaign verdict to the node-boundary failure mode under a
    /// policy. This encodes the paper's §3.2.1 node descriptions:
    ///
    /// * FS nodes turn every *detected* error into a fail-silent failure;
    /// * NLFT nodes mask what TEM masked, emit omissions where recovery ran
    ///   out of time, and fail silent for kernel errors;
    /// * undetected wrong outputs stay undetected under either policy.
    pub fn classify(policy: NodePolicy, verdict: Verdict) -> NodeFailureMode {
        match (policy, verdict) {
            (_, Verdict::Benign) => NodeFailureMode::Masked,
            (_, Verdict::UndetectedWrongOutput) => NodeFailureMode::Undetected,
            (_, Verdict::KernelError) => NodeFailureMode::FailSilent,
            (NodePolicy::FailSilent, Verdict::Masked { .. })
            | (NodePolicy::FailSilent, Verdict::Omission { .. })
            | (NodePolicy::FailSilent, Verdict::Detected { .. }) => NodeFailureMode::FailSilent,
            (NodePolicy::LightweightNlft, Verdict::Masked { .. }) => NodeFailureMode::Masked,
            (NodePolicy::LightweightNlft, Verdict::Omission { .. }) => NodeFailureMode::Omission,
            (NodePolicy::LightweightNlft, Verdict::Detected { .. }) => NodeFailureMode::FailSilent,
        }
    }
}

/// Convenience: does this EDM belong to the kernel (software) or hardware?
/// Used when attributing detections in reports.
pub fn detection_layer(edm: Edm) -> &'static str {
    if edm.is_hardware() {
        "hardware"
    } else {
        "kernel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_nodes_never_omit() {
        for v in [
            Verdict::Masked {
                detected_by: Edm::TemComparison,
            },
            Verdict::Omission {
                detected_by: Edm::TemVote,
            },
            Verdict::Detected {
                detected_by: Edm::BusError,
            },
        ] {
            let mode = NodeFailureMode::classify(NodePolicy::FailSilent, v);
            assert_eq!(mode, NodeFailureMode::FailSilent);
        }
    }

    #[test]
    fn nlft_masks_and_omits() {
        assert_eq!(
            NodeFailureMode::classify(
                NodePolicy::LightweightNlft,
                Verdict::Masked {
                    detected_by: Edm::TemComparison
                }
            ),
            NodeFailureMode::Masked
        );
        assert_eq!(
            NodeFailureMode::classify(
                NodePolicy::LightweightNlft,
                Verdict::Omission {
                    detected_by: Edm::ExecutionTimeMonitor
                }
            ),
            NodeFailureMode::Omission
        );
    }

    #[test]
    fn kernel_errors_silence_both_policies() {
        for p in [NodePolicy::FailSilent, NodePolicy::LightweightNlft] {
            assert_eq!(
                NodeFailureMode::classify(p, Verdict::KernelError),
                NodeFailureMode::FailSilent
            );
        }
    }

    #[test]
    fn undetected_stays_undetected() {
        for p in [NodePolicy::FailSilent, NodePolicy::LightweightNlft] {
            assert_eq!(
                NodeFailureMode::classify(p, Verdict::UndetectedWrongOutput),
                NodeFailureMode::Undetected
            );
        }
    }

    #[test]
    fn benign_is_masked_everywhere() {
        for p in [NodePolicy::FailSilent, NodePolicy::LightweightNlft] {
            assert_eq!(
                NodeFailureMode::classify(p, Verdict::Benign),
                NodeFailureMode::Masked
            );
        }
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(NodePolicy::LightweightNlft.to_string(), "light-weight NLFT");
        assert_eq!(Redundancy::Duplex.to_string(), "duplex");
        assert_eq!(NodeFailureMode::Omission.to_string(), "omission");
        assert_eq!(detection_layer(Edm::Mmu), "hardware");
        assert_eq!(detection_layer(Edm::TemComparison), "kernel");
    }
}
