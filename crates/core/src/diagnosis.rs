//! Fault diagnosis: distinguishing bad luck from a bad node.
//!
//! The kernel's error-detection mechanisms say *an* error happened; they
//! cannot say whether it was a one-off particle strike, a loose solder
//! joint that will keep re-striking, or a dead transistor. This module
//! adds that judgement with an α-count — Bondavalli's heuristic error
//! counter: add a fixed increment on every errored job, decay
//! geometrically on every clean one, and read the accumulated score
//! against two thresholds:
//!
//! ```text
//!   α  <  intermittent_threshold            → Transient   (do nothing)
//!   α  >= intermittent_threshold            → Intermittent (go Suspect)
//!   α  >= permanent_threshold               → Permanent   (retire)
//! ```
//!
//! [`NodeSupervisor`] couples the counter to the kernel's
//! [`EscalationMachine`]: an `Intermittent` verdict forces the ladder to
//! `Suspect` (TEM always triples), a `Permanent` verdict retires the node
//! outright, and everything in between is handled by the ladder's own
//! streak thresholds. [`escalation_chain`] unfolds the ladder into an
//! exact discrete-time Markov chain so the reliability layer can check the
//! simulated recovery rates analytically.

use nlft_kernel::escalation::{EscalationEvent, EscalationMachine, EscalationPolicy, NodeHealth};
use std::collections::HashMap;

/// Upper bound on the false-retirement probability of the default
/// [`AlphaCountConfig`] for pure-transient error streams at rate at most
/// [`AlphaCountConfig::TRANSIENT_RATE_BOUND`]. Backed by the 10 000-case
/// seeded property test in `crates/core/tests/properties.rs`
/// (`alpha_count_never_calls_transient_streams_permanent`): no such stream
/// ever reaches the permanent threshold, and the recovery campaign's
/// measured false-retirement Wilson interval must sit below this bound.
pub const FALSE_RETIREMENT_BOUND: f64 = 0.05;

/// Tuning of the α-count error counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaCountConfig {
    /// Added to α on every errored job.
    pub increment: f64,
    /// α is multiplied by this on every clean job (geometric forgetting).
    pub decay: f64,
    /// Score at which the error stream stops looking like isolated
    /// transients and the node should be treated as suspect.
    pub intermittent_threshold: f64,
    /// Score at which the fault is declared permanent and the node
    /// retired. Tuned so a transient stream below
    /// [`AlphaCountConfig::TRANSIENT_RATE_BOUND`] essentially never gets
    /// here (see [`FALSE_RETIREMENT_BOUND`]).
    pub permanent_threshold: f64,
}

impl AlphaCountConfig {
    /// The per-job transient error rate the default tuning is calibrated
    /// against: streams at or below this rate are classified `Transient`
    /// or at worst `Intermittent`, never `Permanent` (property-tested).
    pub const TRANSIENT_RATE_BOUND: f64 = 0.05;
}

impl Default for AlphaCountConfig {
    fn default() -> Self {
        AlphaCountConfig {
            increment: 1.0,
            decay: 0.9,
            intermittent_threshold: 2.5,
            permanent_threshold: 10.0,
        }
    }
}

/// The verdict an α-count renders over a node's error stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Diagnosis {
    /// Isolated one-shot errors: mask locally, no action needed.
    Transient,
    /// A recurring fault: worth triplicating and, if it persists,
    /// restarting the node.
    Intermittent,
    /// The fault is not going away: retire the node.
    Permanent,
}

impl Diagnosis {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Diagnosis::Transient => "transient",
            Diagnosis::Intermittent => "intermittent",
            Diagnosis::Permanent => "permanent",
        }
    }
}

/// The α-count itself: a scalar score over the job-outcome stream.
#[derive(Debug, Clone)]
pub struct AlphaCount {
    config: AlphaCountConfig,
    alpha: f64,
}

impl AlphaCount {
    /// A zeroed counter.
    pub fn new(config: AlphaCountConfig) -> Self {
        assert!(config.increment > 0.0, "increment must be positive");
        assert!(
            (0.0..1.0).contains(&config.decay),
            "decay must be in [0, 1)"
        );
        assert!(
            config.intermittent_threshold <= config.permanent_threshold,
            "thresholds must be ordered"
        );
        AlphaCount { config, alpha: 0.0 }
    }

    /// Feeds one job outcome and returns the updated score.
    pub fn observe(&mut self, errored: bool) -> f64 {
        if errored {
            self.alpha += self.config.increment;
        } else {
            self.alpha *= self.config.decay;
        }
        self.alpha
    }

    /// Current score.
    pub fn value(&self) -> f64 {
        self.alpha
    }

    /// Current verdict.
    pub fn classify(&self) -> Diagnosis {
        if self.alpha >= self.config.permanent_threshold {
            Diagnosis::Permanent
        } else if self.alpha >= self.config.intermittent_threshold {
            Diagnosis::Intermittent
        } else {
            Diagnosis::Transient
        }
    }
}

/// Per-node supervisor: the α-count diagnosing, the escalation ladder
/// acting. Drive it once per job slot — [`NodeSupervisor::observe_job`]
/// when the node executed, [`NodeSupervisor::tick_silent`] when it was
/// silent — and react to the returned [`EscalationEvent`]s.
///
/// The α-count deliberately survives restarts: a reboot wipes the node's
/// state, not the physics of its fault, so a recurring error stream keeps
/// ratcheting the score across restart cycles until the permanent
/// threshold (or the restart budget) retires the node.
#[derive(Debug, Clone)]
pub struct NodeSupervisor {
    alpha: AlphaCount,
    escalation: EscalationMachine,
}

impl NodeSupervisor {
    /// A supervisor for a fresh healthy node.
    pub fn new(alpha: AlphaCountConfig, policy: EscalationPolicy) -> Self {
        NodeSupervisor {
            alpha: AlphaCount::new(alpha),
            escalation: EscalationMachine::new(policy),
        }
    }

    /// The node's ladder position.
    pub fn health(&self) -> NodeHealth {
        self.escalation.state()
    }

    /// Current α score.
    pub fn alpha(&self) -> f64 {
        self.alpha.value()
    }

    /// Current α-count verdict.
    pub fn diagnosis(&self) -> Diagnosis {
        self.alpha.classify()
    }

    /// Restarts consumed from the budget.
    pub fn restarts_used(&self) -> u32 {
        self.escalation.restarts_used()
    }

    /// Whether the node runs jobs this slot.
    pub fn jobs_active(&self) -> bool {
        self.escalation.jobs_active()
    }

    /// Whether the node is silent this slot.
    pub fn is_silent(&self) -> bool {
        self.escalation.is_silent()
    }

    /// Whether TEM should triplicate every job on this node.
    pub fn tem_triples(&self) -> bool {
        self.escalation.tem_triples()
    }

    /// Feeds the outcome of one executed job (`errored` = any EDM fired,
    /// whether or not the result was masked). Returns the ladder
    /// transitions this caused.
    pub fn observe_job(&mut self, errored: bool) -> Vec<EscalationEvent> {
        if !self.jobs_active() {
            return self.tick_silent();
        }
        self.alpha.observe(errored);
        let mut events = Vec::new();
        // The score can only cross a threshold upwards on an errored job,
        // so clean jobs never force ladder action — a recovered node with
        // a still-decaying score stays recovered.
        if errored {
            match self.alpha.classify() {
                Diagnosis::Permanent => {
                    // The diagnosis layer overrules the ladder: no point
                    // spending restarts on a fault that will not go away.
                    events.extend(self.escalation.retire());
                    return events;
                }
                Diagnosis::Intermittent => {
                    events.extend(self.escalation.suspect());
                }
                Diagnosis::Transient => {}
            }
        }
        events.extend(self.escalation.observe(errored));
        events
    }

    /// Advances one silent job slot (restart scheduling / countdown).
    pub fn tick_silent(&mut self) -> Vec<EscalationEvent> {
        self.escalation.tick()
    }

    /// Whether the ladder finished its restart window and is parked
    /// waiting for the network startup protocol to readmit the node
    /// (only with `gate_reintegration` set in the policy).
    pub fn awaiting_integration(&self) -> bool {
        self.escalation.awaiting_integration()
    }

    /// Completes a gated reintegration: the startup protocol reports the
    /// node synchronized and active again.
    pub fn integration_complete(&mut self) -> Vec<EscalationEvent> {
        self.escalation.integration_complete()
    }
}

/// The escalation ladder unfolded into an exact discrete-time Markov
/// chain, one step per job slot. Produced by [`escalation_chain`].
///
/// The matrix is plain row-stochastic `Vec<Vec<f64>>` so the reliability
/// crate (which `nlft-core` must not depend on) can consume it directly.
#[derive(Debug, Clone)]
pub struct EscalationChain {
    /// Row-stochastic transition matrix, one row per reachable ladder
    /// state, indexed in BFS discovery order.
    pub matrix: Vec<Vec<f64>>,
    /// Index of the initial (fresh healthy) state.
    pub start: usize,
    /// Indices of the absorbing `Retired` states.
    pub retired: Vec<usize>,
    /// Human-readable label per state (`health/errors/cleans/restarts/wait`).
    pub labels: Vec<String>,
}

/// Unfolds [`EscalationMachine`] under a constant per-active-job error
/// probability `p_err` into an exact Markov chain: active states branch
/// (error with `p_err`, clean with `1 - p_err`), silent states tick
/// deterministically, `Retired` self-loops. The α-count is *not* part of
/// the model — for the fault classes this chain is compared against
/// (permanent streams, which exhaust the restart budget before the
/// α-count crosses its permanent threshold), the ladder alone determines
/// the timing.
///
/// # Panics
///
/// Panics if `p_err` is not a probability.
pub fn escalation_chain(policy: EscalationPolicy, p_err: f64) -> EscalationChain {
    assert!((0.0..=1.0).contains(&p_err), "p_err must be a probability");
    // A gated ladder parks in Restarting until an *external* startup
    // protocol readmits the node — a closed-system unfolding would
    // contain a non-retired absorbing state and diverge.
    assert!(
        !policy.gate_reintegration,
        "escalation_chain models the ungated ladder; clear gate_reintegration"
    );
    let root = EscalationMachine::new(policy);
    let mut index: HashMap<EscalationMachine, usize> = HashMap::new();
    let mut states: Vec<EscalationMachine> = Vec::new();
    let mut queue: Vec<usize> = Vec::new();
    index.insert(root.clone(), 0);
    states.push(root);
    queue.push(0);
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();

    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        let state = states[i].clone();
        let mut intern =
            |m: EscalationMachine, states: &mut Vec<EscalationMachine>, queue: &mut Vec<usize>| {
                *index.entry(m.clone()).or_insert_with(|| {
                    states.push(m);
                    queue.push(states.len() - 1);
                    states.len() - 1
                })
            };
        let mut edges: Vec<(usize, f64)> = Vec::new();
        if state.state() == NodeHealth::Retired {
            edges.push((i, 1.0));
        } else if state.is_silent() {
            let mut next = state.clone();
            next.tick();
            let j = intern(next, &mut states, &mut queue);
            edges.push((j, 1.0));
        } else {
            let mut on_error = state.clone();
            on_error.observe(true);
            let mut on_clean = state.clone();
            on_clean.observe(false);
            let je = intern(on_error, &mut states, &mut queue);
            let jc = intern(on_clean, &mut states, &mut queue);
            if je == jc {
                edges.push((je, 1.0));
            } else {
                if p_err > 0.0 {
                    edges.push((je, p_err));
                }
                if p_err < 1.0 {
                    edges.push((jc, 1.0 - p_err));
                }
            }
        }
        rows.push(edges);
        debug_assert_eq!(rows.len(), head);
    }

    let n = states.len();
    let mut matrix = vec![vec![0.0; n]; n];
    for (i, edges) in rows.iter().enumerate() {
        for &(j, p) in edges {
            matrix[i][j] += p;
        }
    }
    let retired: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, m)| m.state() == NodeHealth::Retired)
        .map(|(i, _)| i)
        .collect();
    let labels = states.iter().map(label).collect();
    EscalationChain {
        matrix,
        start: 0,
        retired,
        labels,
    }
}

fn label(m: &EscalationMachine) -> String {
    format!("{}/r{}", m.state().name(), m.restarts_used())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_count_classifies_the_three_regimes() {
        let mut a = AlphaCount::new(AlphaCountConfig::default());
        // A single error: transient.
        a.observe(true);
        assert_eq!(a.classify(), Diagnosis::Transient);
        // Calm restores the score towards zero.
        for _ in 0..30 {
            a.observe(false);
        }
        assert!(a.value() < 0.1);
        // A burst: intermittent.
        for _ in 0..3 {
            a.observe(true);
        }
        assert_eq!(a.classify(), Diagnosis::Intermittent);
        // A relentless stream: permanent.
        for _ in 0..10 {
            a.observe(true);
        }
        assert_eq!(a.classify(), Diagnosis::Permanent);
    }

    #[test]
    fn alpha_decays_geometrically() {
        let mut a = AlphaCount::new(AlphaCountConfig::default());
        a.observe(true);
        let v1 = a.observe(false);
        assert!((v1 - 0.9).abs() < 1e-12);
        let v2 = a.observe(false);
        assert!((v2 - 0.81).abs() < 1e-12);
    }

    #[test]
    fn supervisor_retires_on_permanent_verdict() {
        let mut s = NodeSupervisor::new(AlphaCountConfig::default(), EscalationPolicy::default());
        let mut retired_at = None;
        for job in 0..64 {
            let events = s.observe_job(true);
            if events.contains(&EscalationEvent::Retired) {
                retired_at = Some(job);
                break;
            }
        }
        let at = retired_at.expect("a solid error stream must retire the node");
        // The ladder's restart budget (3 restarts, backoff 2/4/8) or the
        // α-count permanent threshold — whichever fires first — bounds the
        // time to retirement.
        assert!(at <= 30, "retirement latency {at} exceeds the ladder bound");
        assert_eq!(s.health(), NodeHealth::Retired);
    }

    #[test]
    fn supervisor_masks_sparse_transients_without_restarts() {
        let mut s = NodeSupervisor::new(AlphaCountConfig::default(), EscalationPolicy::default());
        for round in 0..20 {
            let events = s.observe_job(round % 10 == 0);
            assert!(events.is_empty(), "sparse errors must not escalate");
        }
        assert_eq!(s.health(), NodeHealth::Healthy);
        assert_eq!(s.restarts_used(), 0);
        assert_eq!(s.diagnosis(), Diagnosis::Transient);
    }

    #[test]
    fn supervisor_alpha_forces_suspicion_before_streaks_do() {
        // Errors on alternate jobs never build a 2-streak, but the α-count
        // ratchets (1, 0.9, 1.9, 1.71, 2.71 ≥ 2.5) and forces Suspect.
        let mut s = NodeSupervisor::new(AlphaCountConfig::default(), EscalationPolicy::default());
        let mut suspected = false;
        for job in 0..10 {
            let events = s.observe_job(job % 2 == 0);
            if events.contains(&EscalationEvent::Suspected) {
                suspected = true;
                break;
            }
        }
        assert!(suspected, "alternating errors must trip the α-count");
        assert!(s.tem_triples());
    }

    #[test]
    fn chain_is_row_stochastic_and_reaches_retirement() {
        let chain = escalation_chain(EscalationPolicy::default(), 0.3);
        assert!(!chain.retired.is_empty());
        for (i, row) in chain.matrix.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-12,
                "row {i} ({}) sums to {sum}",
                chain.labels[i]
            );
        }
        assert_eq!(chain.labels[chain.start], "healthy/r0");
    }

    #[test]
    fn deterministic_error_chain_retires_on_ladder_schedule() {
        // With p_err = 1 the chain is a straight line: 4 errored jobs to
        // silence, then restart windows 2/4/8 with a relapse job after
        // each, then the budget-exhausted tick retires. 25 slots total.
        let chain = escalation_chain(EscalationPolicy::default(), 1.0);
        let mut state = chain.start;
        let mut steps = 0;
        while !chain.retired.contains(&state) {
            let row = &chain.matrix[state];
            let (next, p) = row
                .iter()
                .enumerate()
                .find(|(_, &p)| p > 0.0)
                .map(|(j, &p)| (j, p))
                .expect("row has a successor");
            assert!((p - 1.0).abs() < 1e-12, "p=1 chain must be deterministic");
            state = next;
            steps += 1;
            assert!(steps < 100, "must reach retirement");
        }
        assert_eq!(steps, 25);
    }

    #[test]
    fn zero_error_chain_never_leaves_healthy() {
        let chain = escalation_chain(EscalationPolicy::default(), 0.0);
        assert!((chain.matrix[chain.start][chain.start] - 1.0).abs() < 1e-12);
    }
}
