//! # nlft-core — the node-level fault tolerance framework
//!
//! The primary contribution of the reproduced paper, as a library: node
//! configurations (fail-silent vs light-weight NLFT, simplex vs duplex),
//! the classification of fault effects into node-boundary failure modes
//! (masked / omission / fail-silent / undetected), and the fault-injection
//! campaign machinery that estimates the dependability parameters
//! (`C_D`, `P_T`, `P_OM`, `P_FS`) the system-level reliability models
//! consume.
//!
//! * [`policy`] — node policies and failure-mode classification (§2.2,
//!   §3.2.1 of the paper);
//! * [`campaign`] — deterministic, parallelisable fault-injection
//!   campaigns over the simulated machine + kernel stack;
//! * [`diagnosis`] — α-count fault discrimination (transient /
//!   intermittent / permanent) and the per-node supervisor that drives
//!   the kernel's recovery-escalation ladder.
//! * [`multicore_campaign`] — the core-death campaign: lock-based vs
//!   LEFT-RS resource sharing on a multicore node under adversarial
//!   in-critical-section core-death placement.
//!
//! # Examples
//!
//! Estimate the paper's parameters for an NLFT node:
//!
//! ```
//! use nlft_core::campaign::{run_campaign, CampaignConfig};
//! use nlft_core::policy::NodePolicy;
//!
//! let config = CampaignConfig::new(200, 42, NodePolicy::LightweightNlft);
//! let result = run_campaign(&config);
//! assert_eq!(result.trials, 200);
//! let p_t = result.counts.p_t().estimate();
//! assert!(p_t > 0.5, "TEM masks the majority of detected transients");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod diagnosis;
pub mod multicore_campaign;
pub mod policy;

pub use campaign::{
    run_campaign, run_recovery_campaign, CampaignConfig, CampaignResult, RecoveryCampaignConfig,
    RecoveryCampaignResult, RecoveryVerdict, Verdict,
};
pub use multicore_campaign::{
    run_multicore_campaign, MulticoreCampaignConfig, MulticoreCampaignResult,
};

pub use diagnosis::{
    escalation_chain, AlphaCount, AlphaCountConfig, Diagnosis, EscalationChain, NodeSupervisor,
    FALSE_RETIREMENT_BOUND,
};
pub use policy::{NodeConfig, NodeFailureMode, NodePolicy, Redundancy};
