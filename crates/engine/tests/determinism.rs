//! Schedule-independence of the executor: bitwise-identical
//! accumulators at any worker count, tier ordering, checkpoint/resume,
//! and the streaming-memory bound.

mod common;

use std::sync::Mutex;

use common::ToyCampaign;
use nlft_engine::{
    auto_block_size, run_campaign, run_campaign_with, run_sequential, run_sequential_with,
    CampaignOptions, EngineConfig, ResumePoint, Tier, TrialCampaign, TrialCtx,
};

#[test]
fn executor_matches_sequential_reference_bitwise_at_any_worker_count() {
    let campaign = ToyCampaign::new(0x0E06_1E5C, 997);
    let reference = run_sequential(&campaign, &EngineConfig::default());
    assert_eq!(reference.report.completed, 997);
    for workers in [1usize, 2, 3, 5, 8] {
        let run = run_campaign(campaign.clone(), &EngineConfig::with_workers(workers));
        // PartialEq on the accumulator compares every float bit.
        assert_eq!(
            run.acc, reference.acc,
            "accumulator drifted at {workers} workers"
        );
        assert_eq!(run.report.completed, 997);
        assert!(run.report.panicked.is_empty() && run.report.timed_out.is_empty());
    }
}

#[test]
fn block_size_choice_is_a_function_of_trials_not_workers() {
    // Different explicit block sizes are allowed to change float
    // association, but a fixed block size must give the same bits
    // regardless of workers — and the integer parts must not move at
    // all, whatever the block size.
    let campaign = ToyCampaign::new(77, 500);
    let bs17: Vec<_> = [1usize, 4]
        .iter()
        .map(|&w| {
            let cfg = EngineConfig {
                workers: w,
                block_size: Some(17),
                ..EngineConfig::default()
            };
            run_campaign(campaign.clone(), &cfg).acc
        })
        .collect();
    assert_eq!(bs17[0], bs17[1]);
    let auto = run_sequential(&campaign, &EngineConfig::default()).acc;
    assert_eq!(auto.checksum, bs17[0].checksum);
    assert_eq!(auto.hits, bs17[0].hits);
    assert_eq!(auto.latencies, bs17[0].latencies);
    assert_eq!(auto.survival, bs17[0].survival);
}

#[test]
fn smoke_tier_runs_before_standard_on_one_worker() {
    // An order-logging campaign: the last quarter of trials are smoke
    // tier (see ToyCampaign::tier) and must all execute first.
    #[derive(Clone)]
    struct Logger {
        trials: u64,
        smoke_cut: u64,
        order: std::sync::Arc<Mutex<Vec<u64>>>,
    }
    impl TrialCampaign for Logger {
        type Acc = ();
        fn trials(&self) -> u64 {
            self.trials
        }
        fn label(&self) -> String {
            "tier-logger".to_string()
        }
        fn rng_label(&self) -> String {
            "tier-trial".to_string()
        }
        fn tier(&self, trial: u64) -> Tier {
            if trial >= self.smoke_cut {
                Tier::Smoke
            } else {
                Tier::Standard
            }
        }
        fn empty(&self) {}
        fn run_trial(&self, trial: u64, _ctx: &TrialCtx<'_>, _acc: &mut ()) {
            self.order.lock().unwrap().push(trial);
        }
        fn merge(&self, _into: &mut (), _from: ()) {}
    }
    let logger = Logger {
        trials: 120,
        smoke_cut: 90,
        order: std::sync::Arc::new(Mutex::new(Vec::new())),
    };
    let cfg = EngineConfig {
        workers: 1,
        block_size: Some(10),
        ..EngineConfig::default()
    };
    run_campaign(logger.clone(), &cfg);
    let order = logger.order.lock().unwrap();
    assert_eq!(order.len(), 120);
    let first_standard = order.iter().position(|&t| t < 90).unwrap();
    assert!(
        order[..first_standard].iter().all(|&t| t >= 90),
        "smoke trials must all run before the first standard trial on one worker"
    );
}

#[test]
fn checkpoint_resume_reproduces_the_uninterrupted_run_bitwise() {
    let campaign = ToyCampaign::new(0xC0FFEE, 640);
    let cfg = EngineConfig {
        workers: 3,
        block_size: Some(32),
        checkpoint_every: 100,
        ..EngineConfig::default()
    };
    let checkpoints: Mutex<Vec<ResumePoint<common::ToyAcc>>> = Mutex::new(Vec::new());
    let full = run_campaign_with(
        campaign.clone(),
        &cfg,
        CampaignOptions {
            resume: None,
            on_checkpoint: Some(&|done, acc: &common::ToyAcc| {
                checkpoints.lock().unwrap().push(ResumePoint {
                    trials_done: done,
                    acc: acc.clone(),
                });
            }),
        },
    );
    let checkpoints = checkpoints.into_inner().unwrap();
    assert!(
        checkpoints.len() >= 5,
        "expected several checkpoints, got {}",
        checkpoints.len()
    );
    // Checkpoints land on block boundaries and carry the exact prefix.
    for cp in &checkpoints {
        assert_eq!(cp.trials_done % 32, 0);
        assert_eq!(cp.acc.hits.trials(), cp.trials_done);
    }
    // Resume from a mid-run checkpoint on a *different* worker count:
    // the finished accumulator must be bit-identical to the
    // uninterrupted run (same block partition: resume lands on a block
    // boundary and uses the same block size).
    let mid = checkpoints[2].clone();
    for (resumer, label) in [(5usize, "executor"), (0, "sequential")] {
        let cfg_resume = EngineConfig {
            workers: resumer.max(1),
            block_size: Some(32),
            ..EngineConfig::default()
        };
        let opts = CampaignOptions {
            resume: Some(mid.clone()),
            on_checkpoint: None,
        };
        let resumed = if resumer == 0 {
            run_sequential_with(&campaign, &cfg_resume, opts)
        } else {
            run_campaign_with(campaign.clone(), &cfg_resume, opts)
        };
        assert_eq!(resumed.acc, full.acc, "resume drifted on {label} path");
        assert_eq!(
            resumed.report.completed,
            640 - mid.trials_done,
            "resume re-ran the folded prefix on {label} path"
        );
    }
}

#[test]
fn streaming_fold_buffer_stays_bounded_by_workers() {
    let campaign = ToyCampaign::new(9, 4000);
    let cfg = EngineConfig {
        workers: 4,
        block_size: Some(4),
        ..EngineConfig::default()
    };
    let run = run_campaign(campaign, &cfg);
    assert_eq!(run.report.blocks, 1000);
    let cap = 4 * 4 + 4 + 4; // pending cap + one in flight per worker
    assert!(
        run.report.max_pending_blocks <= cap,
        "fold buffer grew to {} blocks (cap {cap}) — memory is no longer O(workers)",
        run.report.max_pending_blocks
    );
}

#[test]
fn auto_block_size_is_clamped_and_trials_only() {
    assert_eq!(auto_block_size(0), 1);
    assert_eq!(auto_block_size(100), 1);
    assert_eq!(auto_block_size(2_560), 10);
    assert_eq!(auto_block_size(10_000_000), 4096);
}

#[test]
fn empty_campaign_completes() {
    let campaign = ToyCampaign::new(3, 0);
    let run = run_campaign(campaign.clone(), &EngineConfig::with_workers(3));
    assert_eq!(run.report.completed, 0);
    assert_eq!(run.acc, campaign.empty());
}
