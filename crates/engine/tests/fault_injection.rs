//! Fault-injecting the campaign engine itself: panicking trials,
//! deadline-blown trials, and workers killed mid-campaign. In every
//! case the campaign must complete, label the outcome with a
//! reproducer triple, and leave the surviving-trial accumulator
//! bit-identical to a clean run over the surviving trials.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::{Fault, ToyCampaign};
use nlft_engine::{run_campaign, run_sequential, ChaosKill, EngineConfig};

const TRIALS: u64 = 300;
const SEED: u64 = 0xFA_17;

/// The bitwise expectation for "every trial except `fault` survived":
/// the same campaign with the faulty trial as a no-op, run on the
/// sequential reference (merging an empty trial accumulator is an
/// exact identity for every `sim::stats` type).
fn surviving_acc(campaign: &ToyCampaign) -> common::ToyAcc {
    run_sequential(
        &campaign.clone().excluding_fault(),
        &EngineConfig::default(),
    )
    .acc
}

/// Runs `f` with panic output silenced (the injected trial panic would
/// otherwise spew a backtrace into the test log), restoring the
/// previous hook afterwards.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn panicking_trial_is_recorded_not_fatal() {
    let faulty = 137u64;
    let campaign = ToyCampaign::new(SEED, TRIALS).with_fault(Fault::Panic(faulty));
    let expected = surviving_acc(&campaign);
    for workers in [1usize, 3] {
        let run = with_quiet_panics(|| {
            run_campaign(campaign.clone(), &EngineConfig::with_workers(workers))
        });
        assert_eq!(run.report.completed, TRIALS - 1);
        assert_eq!(run.report.panicked.len(), 1);
        let rep = &run.report.panicked[0];
        assert_eq!(rep.trial, faulty);
        assert_eq!(rep.campaign, "toy-campaign");
        assert_eq!(rep.rng_label, "toy-trial");
        assert!(
            rep.detail.contains("injected trial panic"),
            "{}",
            rep.detail
        );
        assert_eq!(
            run.acc, expected,
            "surviving-trial accumulator drifted at {workers} workers"
        );
    }
}

#[test]
fn panicking_trial_is_isolated_on_the_sequential_path_too() {
    let campaign = ToyCampaign::new(SEED, TRIALS).with_fault(Fault::Panic(7));
    let expected = surviving_acc(&campaign);
    let run = with_quiet_panics(|| run_sequential(&campaign, &EngineConfig::default()));
    assert_eq!(run.report.panicked.len(), 1);
    assert_eq!(run.report.panicked[0].trial, 7);
    assert_eq!(run.acc, expected);
}

#[test]
fn deadline_blown_trial_is_cancelled_and_quarantined() {
    let faulty = 42u64;
    let campaign = ToyCampaign::new(SEED, TRIALS).with_fault(Fault::SpinUntilCancelled(faulty));
    let expected = surviving_acc(&campaign);
    let cfg = EngineConfig {
        workers: 2,
        trial_budget: Some(Duration::from_millis(40)),
        ..EngineConfig::default()
    };
    let run = run_campaign(campaign, &cfg);
    assert_eq!(run.report.completed, TRIALS - 1);
    assert_eq!(run.report.timed_out.len(), 1);
    let rep = &run.report.timed_out[0];
    assert_eq!(rep.trial, faulty);
    assert_eq!(
        (rep.campaign.as_str(), rep.rng_label.as_str()),
        ("toy-campaign", "toy-trial")
    );
    assert!(rep.detail.contains("budget"), "{}", rep.detail);
    assert_eq!(
        run.report.lost_workers, 0,
        "cooperative cancel must not cost a worker"
    );
    assert_eq!(run.acc, expected);
}

#[test]
fn stuck_trial_costs_its_worker_but_not_the_campaign() {
    let faulty = 99u64;
    let latch = Arc::new(AtomicBool::new(false));
    let campaign =
        ToyCampaign::new(SEED, TRIALS).with_fault(Fault::StickOnLatch(faulty, Arc::clone(&latch)));
    let expected = surviving_acc(&campaign);
    let cfg = EngineConfig {
        workers: 2,
        trial_budget: Some(Duration::from_millis(20)),
        lost_worker_grace: Duration::from_millis(40),
        ..EngineConfig::default()
    };
    let run = run_campaign(campaign, &cfg);
    // Let the abandoned worker thread exit before the test ends.
    latch.store(true, Ordering::Relaxed);
    assert_eq!(
        run.report.lost_workers, 1,
        "stuck worker must be declared lost"
    );
    assert_eq!(run.report.completed, TRIALS - 1);
    assert_eq!(run.report.timed_out.len(), 1);
    let rep = &run.report.timed_out[0];
    assert_eq!(rep.trial, faulty);
    assert!(rep.detail.contains("lost"), "{}", rep.detail);
    assert!(
        run.report.skipped >= 1,
        "quarantined trial must be skipped on re-execution"
    );
    assert_eq!(
        run.acc, expected,
        "survivors must re-execute the rescued block bit-identically"
    );
}

#[test]
fn chaos_killed_worker_degrades_gracefully() {
    let campaign = ToyCampaign::new(SEED, TRIALS);
    let clean = run_sequential(&campaign, &EngineConfig::default());
    let cfg = EngineConfig {
        workers: 3,
        chaos_kill: Some(ChaosKill {
            worker: 1,
            after_trials: 25,
        }),
        ..EngineConfig::default()
    };
    let run = run_campaign(campaign, &cfg);
    assert_eq!(run.report.lost_workers, 1);
    assert_eq!(
        run.acc, clean.acc,
        "worker death must be invisible in the campaign result"
    );
}

#[test]
fn last_worker_death_respawns_a_replacement() {
    let campaign = ToyCampaign::new(SEED, TRIALS);
    let clean = run_sequential(&campaign, &EngineConfig::default());
    let cfg = EngineConfig {
        workers: 1,
        chaos_kill: Some(ChaosKill {
            worker: 0,
            after_trials: 10,
        }),
        ..EngineConfig::default()
    };
    let run = run_campaign(campaign, &cfg);
    assert_eq!(run.report.lost_workers, 1);
    assert!(
        run.report.respawned_workers >= 1,
        "with every worker dead the watchdog must spawn a replacement"
    );
    assert_eq!(run.acc, clean.acc);
}
