//! A miniature campaign exercising all four `sim::stats` accumulators,
//! shared by the engine integration tests.

// Each integration-test binary compiles this module independently and
// uses a different subset of it.
#![allow(dead_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nlft_engine::{Tier, TrialCampaign, TrialCtx};
use nlft_sim::rng::RngStream;
use nlft_sim::stats::{Histogram, OnlineStats, Proportion, SurvivalCurve};

/// Composite accumulator: one of each `sim::stats` type plus an exact
/// integer checksum.
#[derive(Debug, Clone, PartialEq)]
pub struct ToyAcc {
    pub moments: OnlineStats,
    pub hits: Proportion,
    pub latencies: Histogram,
    pub survival: SurvivalCurve,
    pub checksum: u64,
}

/// What a designated trial does wrong.
#[derive(Clone, Default)]
pub enum Fault {
    /// All trials behave.
    #[default]
    None,
    /// The trial panics halfway through.
    Panic(u64),
    /// The trial spins until the watchdog asks it to cancel.
    SpinUntilCancelled(u64),
    /// The trial ignores cancellation and blocks on the latch — only a
    /// lost-worker declaration gets past it. Release the latch when the
    /// test ends so the abandoned thread exits.
    StickOnLatch(u64, Arc<AtomicBool>),
}

/// A deterministic labelled-RNG campaign with an optional faulty trial.
#[derive(Clone)]
pub struct ToyCampaign {
    pub seed: u64,
    pub trials: u64,
    pub fault: Fault,
    /// When true, the faulty trial contributes nothing but does not
    /// misbehave — the bitwise reference for "clean run minus the
    /// quarantined trial".
    pub fault_as_noop: bool,
}

impl ToyCampaign {
    pub fn new(seed: u64, trials: u64) -> Self {
        ToyCampaign {
            seed,
            trials,
            fault: Fault::None,
            fault_as_noop: false,
        }
    }

    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.fault = fault;
        self
    }

    /// The same campaign with the faulty trial replaced by a no-op —
    /// merging an empty accumulator is a bitwise identity for every
    /// `sim::stats` type, so this is the exact expected survivor fold.
    pub fn excluding_fault(mut self) -> Self {
        self.fault_as_noop = true;
        self
    }

    fn faulty_trial(&self) -> Option<u64> {
        match &self.fault {
            Fault::None => None,
            Fault::Panic(t) | Fault::SpinUntilCancelled(t) => Some(*t),
            Fault::StickOnLatch(t, _) => Some(*t),
        }
    }
}

impl TrialCampaign for ToyCampaign {
    type Acc = ToyAcc;

    fn trials(&self) -> u64 {
        self.trials
    }

    fn label(&self) -> String {
        "toy-campaign".to_string()
    }

    fn rng_label(&self) -> String {
        "toy-trial".to_string()
    }

    fn tier(&self, trial: u64) -> Tier {
        // A mixed-tier campaign: the last quarter are smoke trials.
        if trial * 4 >= self.trials * 3 {
            Tier::Smoke
        } else {
            Tier::Standard
        }
    }

    fn empty(&self) -> ToyAcc {
        ToyAcc {
            moments: OnlineStats::new(),
            hits: Proportion::new(),
            latencies: Histogram::new(0.0, 100.0, 20),
            survival: SurvivalCurve::new(vec![2.0, 5.0, 9.0]),
            checksum: 0,
        }
    }

    fn run_trial(&self, trial: u64, ctx: &TrialCtx<'_>, acc: &mut ToyAcc) {
        if self.faulty_trial() == Some(trial) {
            if self.fault_as_noop {
                return;
            }
            match &self.fault {
                Fault::Panic(_) => panic!("injected trial panic"),
                Fault::SpinUntilCancelled(_) => {
                    while !ctx.cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    return;
                }
                Fault::StickOnLatch(_, latch) => {
                    while !latch.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    return;
                }
                Fault::None => unreachable!(),
            }
        }
        let mut rng = RngStream::new(self.seed).fork_indexed("toy-trial", trial);
        let x = rng.uniform_f64() * 100.0;
        acc.moments.record(x);
        acc.hits.record(x < 40.0);
        acc.latencies.record(x);
        if x < 90.0 {
            acc.survival.record_failure(x / 10.0);
        } else {
            acc.survival.record_survivor();
        }
        acc.checksum = acc.checksum.wrapping_add(rng.next_u64() | 1);
    }

    fn merge(&self, into: &mut ToyAcc, from: ToyAcc) {
        into.moments.merge(&from.moments);
        into.hits.merge(&from.hits);
        into.latencies.merge(&from.latencies);
        into.survival.merge(&from.survival);
        into.checksum = into.checksum.wrapping_add(from.checksum);
    }
}
