//! Closure-based [`TrialCampaign`] adapter.
//!
//! Every campaign family in this workspace follows the same shape: a
//! config struct, a per-trial function forking a labelled RNG stream
//! from `(seed, label, trial)`, and an associative result merge. The
//! [`indexed_campaign`] constructor lifts that shape onto the engine
//! without a bespoke adapter type per family.

use std::marker::PhantomData;

use crate::campaign::{TrialCampaign, TrialCtx};

/// A [`TrialCampaign`] assembled from closures; build one with
/// [`indexed_campaign`].
pub struct ClosureCampaign<A, E, R, M> {
    label: String,
    rng_label: String,
    trials: u64,
    empty: E,
    run: R,
    merge: M,
    _acc: PhantomData<fn() -> A>,
}

/// Builds a campaign over `trials` indexed trials from an empty-result
/// constructor, a per-trial body and a merge function.
///
/// `rng_label` must name the label the trial body actually forks its
/// stream with — it is quoted in quarantine reproducer triples, and a
/// wrong label would make them irreproducible.
pub fn indexed_campaign<A, E, R, M>(
    label: &str,
    rng_label: &str,
    trials: u64,
    empty: E,
    run: R,
    merge: M,
) -> ClosureCampaign<A, E, R, M>
where
    A: Send + 'static,
    E: Fn() -> A,
    R: Fn(u64, &TrialCtx<'_>, &mut A),
    M: Fn(&mut A, A),
{
    ClosureCampaign {
        label: label.to_string(),
        rng_label: rng_label.to_string(),
        trials,
        empty,
        run,
        merge,
        _acc: PhantomData,
    }
}

impl<A, E, R, M> TrialCampaign for ClosureCampaign<A, E, R, M>
where
    A: Send + 'static,
    E: Fn() -> A,
    R: Fn(u64, &TrialCtx<'_>, &mut A),
    M: Fn(&mut A, A),
{
    type Acc = A;

    fn trials(&self) -> u64 {
        self.trials
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn rng_label(&self) -> String {
        self.rng_label.clone()
    }

    fn empty(&self) -> A {
        (self.empty)()
    }

    fn run_trial(&self, trial: u64, ctx: &TrialCtx<'_>, acc: &mut A) {
        (self.run)(trial, ctx, acc);
    }

    fn merge(&self, into: &mut A, from: A) {
        (self.merge)(into, from);
    }
}
