//! The work-stealing executor and its sequential reference twin.
//!
//! # Scheduling
//!
//! Trials are partitioned into fixed-size *blocks*; the partition is a
//! pure function of the trial count (never of the worker count).
//! Blocks are dealt round-robin across per-worker deques, one deque
//! per [`Tier`]. A worker claims from the front of its own deque
//! (locality: it keeps walking its dealt arithmetic progression of
//! block indices), falls back to the rescue queue left behind by lost
//! workers, and finally steals from the *back* of the most-loaded
//! victim's deque — the block its owner would reach last. Tiers drain
//! strictly in order so smoke trials are never starved by long-horizon
//! work.
//!
//! # Determinism
//!
//! Each trial runs into a fresh accumulator; successful trial
//! accumulators fold into the block partial in trial order; block
//! partials fold into the campaign accumulator strictly in block-index
//! order on the coordinating thread. The fold tree is therefore fixed
//! by `(trials, block_size)` alone and every accumulator bit — floats
//! included — is identical at any worker count, under any steal
//! schedule, and across worker loss and re-execution.
//!
//! # Robustness
//!
//! Every trial runs under `catch_unwind`; a panic becomes a
//! [`Reproducer`] record, not a dead campaign. A watchdog asks
//! over-budget trials to cancel cooperatively, and past a grace period
//! declares the stuck worker lost: its deques are tipped into the
//! rescue queue, the stuck trial is quarantined (it would stick
//! again), and its in-flight block is re-executed by the survivors —
//! trials are pure functions of their index, so re-execution is safe.
//! If every worker dies the watchdog spawns a replacement, so the
//! campaign always drains.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::campaign::{
    CampaignOptions, CampaignRun, EngineConfig, EngineReport, Reproducer, ResumePoint, Tier,
    TrialCampaign, TrialCtx,
};

/// Default block size for a campaign of `trials` trials: aim for ~256
/// blocks (enough slack for stealing), clamped to `[1, 4096]` so huge
/// campaigns stream through bounded blocks. A pure function of the
/// trial count — never of the worker count — so the fold tree, and
/// with it every accumulator bit, is fixed before scheduling starts.
pub fn auto_block_size(trials: u64) -> u64 {
    trials.div_ceil(256).clamp(1, 4096)
}

/// One contiguous run of trial indices, the unit of scheduling.
#[derive(Debug, Clone, Copy)]
struct Block {
    index: u64,
    start: u64,
    end: u64,
    tier: usize,
}

/// Everything the scheduler mutates, under one mutex.
struct SchedState<A> {
    /// Per-worker, per-tier deques of unclaimed blocks.
    queues: Vec<[VecDeque<Block>; Tier::COUNT]>,
    /// Blocks reclaimed from lost workers, claimable by anyone.
    rescue: [VecDeque<Block>; Tier::COUNT],
    /// Blocks not yet delivered to `pending` (queued or in flight).
    outstanding: u64,
    /// Blocks sitting in `queues` + `rescue`.
    queued: u64,
    /// Completed block partials awaiting the in-order fold.
    pending: BTreeMap<u64, A>,
    /// Next block index the folder will consume.
    cursor: u64,
    /// Per-worker lost flags (a lost worker's reports are discarded).
    lost: Vec<bool>,
    /// Workers not lost and not exited.
    live: usize,
    /// Trial indices to skip on (re-)execution.
    quarantined: BTreeSet<u64>,
    panicked: Vec<Reproducer>,
    timed_out: Vec<Reproducer>,
    completed: u64,
    skipped: u64,
    steals: u64,
    lost_workers: usize,
    respawned: usize,
    max_pending: usize,
}

/// Watchdog-visible execution state of one worker thread.
struct WorkerSlot {
    /// Cancellation request for the trial in flight.
    cancel: AtomicBool,
    /// Trial index in flight (valid while `busy_since != 0`).
    trial: AtomicU64,
    /// Nanoseconds since the engine epoch at which the in-flight trial
    /// started; 0 while idle.
    busy_since: AtomicU64,
    /// Trials executed by this worker (drives chaos injection).
    trials_run: AtomicU64,
    /// Block currently being executed, for rescue on loss.
    current: Mutex<Option<Block>>,
}

impl WorkerSlot {
    fn new() -> Self {
        WorkerSlot {
            cancel: AtomicBool::new(false),
            trial: AtomicU64::new(0),
            busy_since: AtomicU64::new(0),
            trials_run: AtomicU64::new(0),
            current: Mutex::new(None),
        }
    }
}

struct Shared<C: TrialCampaign> {
    campaign: C,
    cfg: EngineConfig,
    state: Mutex<SchedState<C::Acc>>,
    /// Wakes workers (new rescue work, or pending drained below cap).
    work_cv: Condvar,
    /// Wakes the folder (a new partial landed in `pending`).
    fold_cv: Condvar,
    /// Worker slots; grows if replacements are spawned.
    slots: Mutex<Vec<Arc<WorkerSlot>>>,
    epoch: Instant,
    done: AtomicBool,
    /// Completed-but-unfolded block cap: claiming stalls above it so
    /// buffering stays O(workers) regardless of trial count.
    pending_cap: usize,
}

impl<C: TrialCampaign> Shared<C> {
    fn nanos(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() as u64).max(1)
    }
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: <non-string payload>".to_string()
    }
}

/// Partitions `[base, total)` into blocks of `block_size` trials.
fn partition<C: TrialCampaign>(campaign: &C, base: u64, total: u64, block_size: u64) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut start = base;
    let mut index = 0;
    while start < total {
        let end = (start + block_size).min(total);
        blocks.push(Block {
            index,
            start,
            end,
            tier: campaign.tier(start).index(),
        });
        index += 1;
        start = end;
    }
    blocks
}

/// Runs one trial in a fresh accumulator under `catch_unwind`.
enum TrialExec<A> {
    Done(A),
    Panicked(String),
    TimedOut(String),
}

fn exec_trial<C: TrialCampaign>(
    campaign: &C,
    trial: u64,
    cancel: &AtomicBool,
    budget: Option<Duration>,
) -> TrialExec<C::Acc> {
    let ctx = TrialCtx::new(cancel, budget, trial);
    let mut acc = campaign.empty();
    let started = ctx.started();
    let result = catch_unwind(AssertUnwindSafe(|| {
        campaign.run_trial(trial, &ctx, &mut acc)
    }));
    let elapsed = started.elapsed();
    match result {
        Err(payload) => TrialExec::Panicked(panic_detail(payload)),
        Ok(()) if cancel.load(Ordering::Relaxed) || budget.is_some_and(|b| elapsed > b) => {
            TrialExec::TimedOut(format!(
                "exceeded trial budget: ran {}ms against {}ms",
                elapsed.as_millis(),
                budget.map_or(0, |b| b.as_millis())
            ))
        }
        Ok(()) => TrialExec::Done(acc),
    }
}

/// Claims the next block for worker `me`, or `None` if none is
/// runnable right now. Tiers drain strictly in order; within a tier:
/// own deque front, then rescue, then steal from the back of the
/// most-loaded victim.
fn claim<A>(st: &mut SchedState<A>, me: usize) -> Option<Block> {
    for tier in 0..Tier::COUNT {
        if let Some(b) = st.queues[me][tier].pop_front() {
            st.queued -= 1;
            return Some(b);
        }
        if let Some(b) = st.rescue[tier].pop_front() {
            st.queued -= 1;
            return Some(b);
        }
        let victim = (0..st.queues.len())
            .filter(|&v| v != me && !st.queues[v][tier].is_empty())
            .max_by_key(|&v| st.queues[v][tier].len());
        if let Some(v) = victim {
            let b = st.queues[v][tier]
                .pop_back()
                .expect("victim deque non-empty");
            st.queued -= 1;
            st.steals += 1;
            return Some(b);
        }
    }
    None
}

/// Claims the specific block `index` if it is still queued anywhere
/// (used under fold-buffer backpressure, where only the folder's next
/// block may enter execution).
fn claim_index<A>(st: &mut SchedState<A>, index: u64) -> Option<Block> {
    for w in 0..st.queues.len() {
        for tier in 0..Tier::COUNT {
            if let Some(pos) = st.queues[w][tier].iter().position(|b| b.index == index) {
                let b = st.queues[w][tier].remove(pos).expect("position valid");
                st.queued -= 1;
                return Some(b);
            }
        }
    }
    for tier in 0..Tier::COUNT {
        if let Some(pos) = st.rescue[tier].iter().position(|b| b.index == index) {
            let b = st.rescue[tier].remove(pos).expect("position valid");
            st.queued -= 1;
            return Some(b);
        }
    }
    None
}

/// Marks worker `w` lost: tips its deques (and, if given, its in-flight
/// block) into the rescue queue and wakes everyone.
fn mark_lost<A>(st: &mut SchedState<A>, w: usize, in_flight: Option<Block>) {
    st.lost[w] = true;
    st.live -= 1;
    st.lost_workers += 1;
    let tiers = std::mem::take(&mut st.queues[w]);
    for (tier, q) in tiers.into_iter().enumerate() {
        for b in q {
            st.rescue[tier].push_back(b);
        }
    }
    if let Some(b) = in_flight {
        // Front of the rescue queue: the folder is likely waiting on it.
        st.rescue[b.tier].push_front(b);
        st.queued += 1;
    }
}

fn worker_loop<C: TrialCampaign + Send + Sync + 'static>(
    shared: Arc<Shared<C>>,
    me: usize,
    slot: Arc<WorkerSlot>,
) {
    loop {
        // Claim the next block (or exit when the campaign has drained).
        let block = {
            let mut st = shared.state.lock().expect("engine state poisoned");
            loop {
                if st.lost[me] {
                    return;
                }
                if st.outstanding == 0 {
                    st.live -= 1;
                    return;
                }
                // Backpressure: once the fold buffer is at cap, the only
                // claimable block is the one the folder is waiting on —
                // anything else would grow the buffer past O(workers).
                if st.pending.len() < shared.pending_cap {
                    if let Some(b) = claim(&mut st, me) {
                        break b;
                    }
                } else {
                    let cursor = st.cursor;
                    if let Some(b) = claim_index(&mut st, cursor) {
                        break b;
                    }
                }
                st = shared.work_cv.wait(st).expect("engine state poisoned");
            }
        };
        *slot.current.lock().expect("slot poisoned") = Some(block);

        // Snapshot the quarantine list for this range.
        let quarantined: Vec<u64> = {
            let st = shared.state.lock().expect("engine state poisoned");
            st.quarantined
                .range(block.start..block.end)
                .copied()
                .collect()
        };

        let mut acc = shared.campaign.empty();
        let mut panicked = Vec::new();
        let mut timed_out = Vec::new();
        let mut completed = 0u64;
        let mut skipped = 0u64;
        let mut died_mid_block = false;
        for trial in block.start..block.end {
            if quarantined.binary_search(&trial).is_ok() {
                skipped += 1;
                continue;
            }
            slot.trial.store(trial, Ordering::Relaxed);
            slot.cancel.store(false, Ordering::Relaxed);
            slot.busy_since.store(shared.nanos(), Ordering::Relaxed);
            let exec = exec_trial(
                &shared.campaign,
                trial,
                &slot.cancel,
                shared.cfg.trial_budget,
            );
            slot.busy_since.store(0, Ordering::Relaxed);
            match exec {
                TrialExec::Done(tacc) => {
                    shared.campaign.merge(&mut acc, tacc);
                    completed += 1;
                }
                TrialExec::Panicked(detail) => panicked.push(Reproducer {
                    campaign: shared.campaign.label(),
                    rng_label: shared.campaign.rng_label(),
                    trial,
                    detail,
                }),
                TrialExec::TimedOut(detail) => timed_out.push(Reproducer {
                    campaign: shared.campaign.label(),
                    rng_label: shared.campaign.rng_label(),
                    trial,
                    detail,
                }),
            }
            slot.trials_run.fetch_add(1, Ordering::Relaxed);
            if let Some(kill) = shared.cfg.chaos_kill {
                if kill.worker == me && slot.trials_run.load(Ordering::Relaxed) >= kill.after_trials
                {
                    died_mid_block = true;
                    break;
                }
            }
        }

        let mut current = slot.current.lock().expect("slot poisoned");
        let mut st = shared.state.lock().expect("engine state poisoned");
        if st.lost[me] {
            // The watchdog already rescued our block; our partial (and
            // its outcome records) must be discarded — the re-execution
            // will regenerate them.
            return;
        }
        let rescued = current.take();
        if died_mid_block {
            // Chaos injection: abandon the partial block and die. The
            // full block is re-executed elsewhere; trials are pure
            // functions of their index, so the result is unchanged.
            mark_lost(&mut st, me, rescued);
            shared.work_cv.notify_all();
            shared.fold_cv.notify_all();
            return;
        }
        st.pending.insert(block.index, acc);
        st.max_pending = st.max_pending.max(st.pending.len());
        st.outstanding -= 1;
        st.completed += completed;
        st.skipped += skipped;
        st.panicked.append(&mut panicked);
        st.timed_out.append(&mut timed_out);
        shared.fold_cv.notify_all();
        if st.outstanding == 0 {
            shared.work_cv.notify_all();
        }
    }
}

/// Watchdog: cancels over-budget trials, declares non-cooperating
/// workers lost past the grace period, and respawns a worker if every
/// worker has died with work still queued.
fn watchdog_loop<C: TrialCampaign + Send + Sync + 'static>(shared: Arc<Shared<C>>) {
    let poll = shared
        .cfg
        .trial_budget
        .map(|b| (b / 4).clamp(Duration::from_millis(1), Duration::from_millis(50)))
        .unwrap_or(Duration::from_millis(2));
    while !shared.done.load(Ordering::Relaxed) {
        std::thread::sleep(poll);
        let slots: Vec<Arc<WorkerSlot>> = shared.slots.lock().expect("slots poisoned").clone();
        if let Some(budget) = shared.cfg.trial_budget {
            let grace = budget + shared.cfg.lost_worker_grace;
            for (w, slot) in slots.iter().enumerate() {
                let busy = slot.busy_since.load(Ordering::Relaxed);
                if busy == 0 {
                    continue;
                }
                let elapsed = Duration::from_nanos(shared.nanos().saturating_sub(busy));
                if elapsed > budget {
                    slot.cancel.store(true, Ordering::Relaxed);
                }
                if elapsed > grace {
                    // The trial ignored cancellation: declare the worker
                    // lost, quarantine the stuck trial and rescue the
                    // rest of its block.
                    let mut current = slot.current.lock().expect("slot poisoned");
                    let mut st = shared.state.lock().expect("engine state poisoned");
                    let still_same = slot.busy_since.load(Ordering::Relaxed) == busy;
                    if st.lost[w] || !still_same {
                        continue;
                    }
                    let trial = slot.trial.load(Ordering::Relaxed);
                    st.quarantined.insert(trial);
                    st.timed_out.push(Reproducer {
                        campaign: shared.campaign.label(),
                        rng_label: shared.campaign.rng_label(),
                        trial,
                        detail: format!(
                            "stuck past budget + grace ({}ms); worker {w} declared lost",
                            grace.as_millis()
                        ),
                    });
                    st.skipped += 1;
                    mark_lost(&mut st, w, current.take());
                    shared.work_cv.notify_all();
                    shared.fold_cv.notify_all();
                }
            }
        }
        // Graceful degradation floor: if everyone died with work left,
        // spawn a replacement so the campaign still drains.
        let respawn = {
            let mut st = shared.state.lock().expect("engine state poisoned");
            if st.live == 0 && st.outstanding > 0 {
                let idx = st.queues.len();
                st.queues.push(Default::default());
                st.lost.push(false);
                st.live += 1;
                st.respawned += 1;
                Some(idx)
            } else {
                None
            }
        };
        if let Some(idx) = respawn {
            let slot = Arc::new(WorkerSlot::new());
            shared
                .slots
                .lock()
                .expect("slots poisoned")
                .push(Arc::clone(&slot));
            let shared2 = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(shared2, idx, slot));
        }
    }
}

/// Runs a campaign on the work-stealing executor. See
/// [`run_campaign_with`] for resume and checkpoint hooks.
pub fn run_campaign<C>(campaign: C, cfg: &EngineConfig) -> CampaignRun<C::Acc>
where
    C: TrialCampaign + Send + Sync + 'static,
{
    run_campaign_with(campaign, cfg, CampaignOptions::default())
}

/// Runs a campaign on the path its worker count selects: the in-thread
/// sequential reference below two workers (the legacy path), the
/// work-stealing executor otherwise. The two produce bit-identical
/// accumulators, so the choice is purely about threads spawned.
pub fn run_trials<C>(campaign: C, cfg: &EngineConfig) -> CampaignRun<C::Acc>
where
    C: TrialCampaign + Send + Sync + 'static,
{
    run_trials_with(campaign, cfg, CampaignOptions::default())
}

/// [`run_trials`] with resume / checkpoint options.
pub fn run_trials_with<C>(
    campaign: C,
    cfg: &EngineConfig,
    opts: CampaignOptions<'_, C::Acc>,
) -> CampaignRun<C::Acc>
where
    C: TrialCampaign + Send + Sync + 'static,
{
    if cfg.workers <= 1 {
        run_sequential_with(&campaign, cfg, opts)
    } else {
        run_campaign_with(campaign, cfg, opts)
    }
}

/// Runs a campaign on the work-stealing executor with resume /
/// checkpoint options.
///
/// Workers are real (unscoped) threads: a worker declared lost may
/// still be stuck inside a trial and is simply abandoned — it discards
/// its own results when it eventually returns. All surviving workers
/// are joined before this function returns.
pub fn run_campaign_with<C>(
    campaign: C,
    cfg: &EngineConfig,
    opts: CampaignOptions<'_, C::Acc>,
) -> CampaignRun<C::Acc>
where
    C: TrialCampaign + Send + Sync + 'static,
{
    let total = campaign.trials();
    let base = opts.resume.as_ref().map_or(0, |r| r.trials_done.min(total));
    let mut acc = match opts.resume {
        Some(r) => r.acc,
        None => campaign.empty(),
    };
    let workers = cfg.workers.max(1);
    let block_size = cfg
        .block_size
        .unwrap_or_else(|| auto_block_size(total - base))
        .max(1);
    let blocks = partition(&campaign, base, total, block_size);
    let n_blocks = blocks.len() as u64;

    let mut queues: Vec<[VecDeque<Block>; Tier::COUNT]> =
        (0..workers).map(|_| Default::default()).collect();
    for b in &blocks {
        queues[(b.index % workers as u64) as usize][b.tier].push_back(*b);
    }
    let shared = Arc::new(Shared {
        campaign,
        cfg: cfg.clone(),
        state: Mutex::new(SchedState {
            queues,
            rescue: Default::default(),
            outstanding: n_blocks,
            queued: n_blocks,
            pending: BTreeMap::new(),
            cursor: 0,
            lost: vec![false; workers],
            live: workers,
            quarantined: BTreeSet::new(),
            panicked: Vec::new(),
            timed_out: Vec::new(),
            completed: 0,
            skipped: 0,
            steals: 0,
            lost_workers: 0,
            respawned: 0,
            max_pending: 0,
        }),
        work_cv: Condvar::new(),
        fold_cv: Condvar::new(),
        slots: Mutex::new((0..workers).map(|_| Arc::new(WorkerSlot::new())).collect()),
        epoch: Instant::now(),
        done: AtomicBool::new(false),
        pending_cap: workers * 4 + 4,
    });

    let handles: Vec<_> = {
        let slots = shared.slots.lock().expect("slots poisoned").clone();
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared, i, slot))
            })
            .collect()
    };
    let watchdog = (cfg.trial_budget.is_some() || cfg.chaos_kill.is_some()).then(|| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || watchdog_loop(shared))
    });

    // In-order fold on this thread: blocks leave `pending` strictly by
    // index, so the fold tree never depends on the schedule.
    let mut folded_blocks = 0u64;
    let mut next_checkpoint = if cfg.checkpoint_every > 0 {
        base + cfg.checkpoint_every
    } else {
        u64::MAX
    };
    while folded_blocks < n_blocks {
        let batch: Vec<(u64, C::Acc)> = {
            let mut st = shared.state.lock().expect("engine state poisoned");
            loop {
                let mut batch = Vec::new();
                loop {
                    let idx = st.cursor;
                    let Some(partial) = st.pending.remove(&idx) else {
                        break;
                    };
                    st.cursor += 1;
                    batch.push((idx, partial));
                }
                if !batch.is_empty() {
                    // Draining may unblock claim backpressure.
                    shared.work_cv.notify_all();
                    break batch;
                }
                st = shared.fold_cv.wait(st).expect("engine state poisoned");
            }
        };
        for (idx, partial) in batch {
            shared.campaign.merge(&mut acc, partial);
            folded_blocks += 1;
            let prefix = blocks[idx as usize].end;
            if prefix >= next_checkpoint {
                if let Some(cb) = opts.on_checkpoint {
                    cb(prefix, &acc);
                }
                next_checkpoint = prefix + cfg.checkpoint_every;
            }
        }
    }
    shared.done.store(true, Ordering::Relaxed);
    {
        // Wake anything still waiting so it can observe outstanding == 0.
        let _st = shared.state.lock().expect("engine state poisoned");
        shared.work_cv.notify_all();
    }
    if let Some(w) = watchdog {
        let _ = w.join();
    }
    let lost = {
        let st = shared.state.lock().expect("engine state poisoned");
        st.lost.clone()
    };
    for (i, h) in handles.into_iter().enumerate() {
        // A lost worker may be stuck inside a trial forever; abandon it.
        if !lost.get(i).copied().unwrap_or(true) {
            let _ = h.join();
        }
    }

    let mut st = shared.state.lock().expect("engine state poisoned");
    let mut panicked = std::mem::take(&mut st.panicked);
    let mut timed_out = std::mem::take(&mut st.timed_out);
    panicked.sort_by_key(|r| r.trial);
    timed_out.sort_by_key(|r| r.trial);
    CampaignRun {
        acc,
        report: EngineReport {
            trials: total,
            completed: st.completed,
            skipped: st.skipped,
            panicked,
            timed_out,
            blocks: n_blocks,
            steals: st.steals,
            workers,
            lost_workers: st.lost_workers,
            respawned_workers: st.respawned,
            max_pending_blocks: st.max_pending,
        },
    }
}

/// Sequential reference executor: identical block partition and fold
/// order to [`run_campaign`] — and therefore a bit-identical
/// accumulator — but zero threads, no stealing and no watchdog
/// (budgets are still enforced cooperatively and post hoc). This is
/// the "legacy path" campaigns use below two threads, and the
/// differential twin `verify.sh` pits the executor against.
pub fn run_sequential<C>(campaign: &C, cfg: &EngineConfig) -> CampaignRun<C::Acc>
where
    C: TrialCampaign,
{
    run_sequential_with(campaign, cfg, CampaignOptions::default())
}

/// [`run_sequential`] with resume / checkpoint options.
pub fn run_sequential_with<C>(
    campaign: &C,
    cfg: &EngineConfig,
    opts: CampaignOptions<'_, C::Acc>,
) -> CampaignRun<C::Acc>
where
    C: TrialCampaign,
{
    let total = campaign.trials();
    let base = opts.resume.as_ref().map_or(0, |r| r.trials_done.min(total));
    let mut acc = match opts.resume {
        Some(r) => r.acc,
        None => campaign.empty(),
    };
    let block_size = cfg
        .block_size
        .unwrap_or_else(|| auto_block_size(total - base))
        .max(1);
    let blocks = partition(campaign, base, total, block_size);
    let cancel = AtomicBool::new(false);
    let mut report = EngineReport {
        trials: total,
        blocks: blocks.len() as u64,
        workers: 0,
        ..EngineReport::default()
    };
    let mut next_checkpoint = if cfg.checkpoint_every > 0 {
        base + cfg.checkpoint_every
    } else {
        u64::MAX
    };
    for b in &blocks {
        let mut partial = campaign.empty();
        for trial in b.start..b.end {
            cancel.store(false, Ordering::Relaxed);
            match exec_trial(campaign, trial, &cancel, cfg.trial_budget) {
                TrialExec::Done(tacc) => {
                    campaign.merge(&mut partial, tacc);
                    report.completed += 1;
                }
                TrialExec::Panicked(detail) => report.panicked.push(Reproducer {
                    campaign: campaign.label(),
                    rng_label: campaign.rng_label(),
                    trial,
                    detail,
                }),
                TrialExec::TimedOut(detail) => report.timed_out.push(Reproducer {
                    campaign: campaign.label(),
                    rng_label: campaign.rng_label(),
                    trial,
                    detail,
                }),
            }
        }
        campaign.merge(&mut acc, partial);
        if b.end >= next_checkpoint {
            if let Some(cb) = opts.on_checkpoint {
                cb(b.end, &acc);
            }
            next_checkpoint = b.end + cfg.checkpoint_every;
        }
    }
    CampaignRun { acc, report }
}

/// Returns a [`ResumePoint`] that [`run_campaign_with`] /
/// [`run_sequential_with`] will accept to continue `campaign` after
/// `trials_done` folded trials. Provided for symmetry; the struct can
/// also be built directly.
pub fn resume_point<A>(trials_done: u64, acc: A) -> ResumePoint<A> {
    ResumePoint { trials_done, acc }
}
