//! Fault-tolerant fleet-scale campaign engine.
//!
//! Every fault-injection campaign in this workspace is, at heart, "run
//! `N` independent trials and fold their outcomes". This crate owns
//! that loop and applies the paper's own node-level fault-tolerance
//! discipline — detect, isolate, degrade gracefully, keep going — to
//! the harness itself:
//!
//! * **Work stealing.** Trials are grouped into fixed-size blocks dealt
//!   across per-worker deques with three priority tiers; idle workers
//!   steal from the back of the most-loaded victim, so skewed trial
//!   costs cannot leave cores idle and long-horizon trials cannot
//!   starve smoke trials.
//! * **Panic isolation.** Each trial runs under
//!   `std::panic::catch_unwind`; a panicking trial becomes a
//!   [`Reproducer`] record in the [`EngineReport`], not a dead
//!   campaign.
//! * **Trial watchdog.** Over-budget trials are asked to cancel
//!   cooperatively ([`TrialCtx::cancelled`]); trials that ignore the
//!   request get their worker declared lost after a grace period — the
//!   worker's queue is redistributed, the stuck trial is quarantined
//!   with its `(campaign, trial, rng-label)` reproducer triple, and
//!   the interrupted block is re-executed by the survivors.
//! * **Streaming statistics.** Workers fold trial outcomes into
//!   `sim::stats` accumulators per block; completed blocks merge into
//!   the campaign accumulator strictly in block-index order, so memory
//!   stays O(workers) and — because the block partition is a pure
//!   function of the trial count — every accumulator bit is identical
//!   at any worker count. Periodic [`Checkpoint`] snapshots let a
//!   10M-trial run resume after interruption.
//!
//! The determinism argument in one line: trial randomness is addressed
//! by `(seed, label, trial-index)` and the fold tree is fixed by
//! `(trials, block_size)`, so the schedule — stealing, tier order,
//! worker loss, re-execution — has no channel through which to reach
//! the result.

#![warn(missing_docs)]

mod adapter;
mod campaign;
pub mod checkpoint;
mod executor;

pub use adapter::{indexed_campaign, ClosureCampaign};
pub use campaign::{
    CampaignOptions, CampaignRun, ChaosKill, EngineConfig, EngineReport, Reproducer, ResumePoint,
    Tier, TrialCampaign, TrialCtx,
};
pub use checkpoint::Checkpoint;
pub use executor::{
    auto_block_size, resume_point, run_campaign, run_campaign_with, run_sequential,
    run_sequential_with, run_trials, run_trials_with,
};
