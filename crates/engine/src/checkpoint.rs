//! Text checkpoint codec for resumable campaigns.
//!
//! A checkpoint is a whitespace-separated token stream: a tag, then
//! the fields. Floats are serialised as their IEEE-754 bit pattern in
//! hex so a resumed accumulator is *bit-identical* to the uninterrupted
//! one — the engine's determinism guarantee survives a restart.
//!
//! Implementations are provided for the four `sim::stats` accumulators
//! and for [`ResumePoint`]; campaign crates compose them for their own
//! result structs.

use nlft_sim::stats::{Histogram, OnlineStats, Proportion, SurvivalCurve};

use crate::campaign::ResumePoint;

/// A type that can round-trip through the text checkpoint format.
pub trait Checkpoint: Sized {
    /// Serialises into checkpoint tokens.
    fn encode(&self) -> String;
    /// Parses tokens previously produced by [`Checkpoint::encode`].
    fn decode(reader: &mut TokenReader<'_>) -> Result<Self, String>;
}

/// Serialises a checkpointable value to a standalone string.
pub fn encode<T: Checkpoint>(value: &T) -> String {
    value.encode()
}

/// Parses a standalone string produced by [`encode`], rejecting
/// trailing garbage.
pub fn decode<T: Checkpoint>(text: &str) -> Result<T, String> {
    let mut reader = TokenReader::new(text);
    let value = T::decode(&mut reader)?;
    reader.finish()?;
    Ok(value)
}

/// Whitespace-token cursor over checkpoint text.
pub struct TokenReader<'a> {
    tokens: std::str::SplitWhitespace<'a>,
}

impl<'a> TokenReader<'a> {
    /// Starts reading `text` from its first token.
    pub fn new(text: &'a str) -> Self {
        TokenReader {
            tokens: text.split_whitespace(),
        }
    }

    fn next(&mut self) -> Result<&'a str, String> {
        self.tokens
            .next()
            .ok_or_else(|| "checkpoint truncated".to_string())
    }

    /// Consumes one token and requires it to equal `tag`.
    pub fn expect_tag(&mut self, tag: &str) -> Result<(), String> {
        let t = self.next()?;
        if t == tag {
            Ok(())
        } else {
            Err(format!("expected checkpoint tag `{tag}`, found `{t}`"))
        }
    }

    /// Consumes one decimal `u64` token.
    pub fn next_u64(&mut self) -> Result<u64, String> {
        let t = self.next()?;
        t.parse().map_err(|_| format!("bad u64 token `{t}`"))
    }

    /// Consumes one `usize` token.
    pub fn next_usize(&mut self) -> Result<usize, String> {
        let t = self.next()?;
        t.parse().map_err(|_| format!("bad usize token `{t}`"))
    }

    /// Consumes one `f64` token serialised as hex bits (`0x…`).
    pub fn next_f64(&mut self) -> Result<f64, String> {
        let t = self.next()?;
        let hex = t
            .strip_prefix("0x")
            .ok_or_else(|| format!("bad f64-bits token `{t}`"))?;
        u64::from_str_radix(hex, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("bad f64-bits token `{t}`"))
    }

    /// Requires the stream to be exhausted.
    pub fn finish(mut self) -> Result<(), String> {
        match self.tokens.next() {
            None => Ok(()),
            Some(t) => Err(format!("trailing checkpoint token `{t}`")),
        }
    }
}

/// Appends an `f64` as its hex bit pattern.
pub fn push_f64(out: &mut String, x: f64) {
    out.push_str(&format!(" 0x{:016x}", x.to_bits()));
}

/// Appends a `u64` in decimal.
pub fn push_u64(out: &mut String, x: u64) {
    out.push_str(&format!(" {x}"));
}

impl Checkpoint for OnlineStats {
    fn encode(&self) -> String {
        let (count, mean, m2, min, max) = self.to_raw();
        let mut out = String::from("online");
        push_u64(&mut out, count);
        for x in [mean, m2, min, max] {
            push_f64(&mut out, x);
        }
        out
    }

    fn decode(reader: &mut TokenReader<'_>) -> Result<Self, String> {
        reader.expect_tag("online")?;
        let count = reader.next_u64()?;
        let mean = reader.next_f64()?;
        let m2 = reader.next_f64()?;
        let min = reader.next_f64()?;
        let max = reader.next_f64()?;
        Ok(OnlineStats::from_raw((count, mean, m2, min, max)))
    }
}

impl Checkpoint for Proportion {
    fn encode(&self) -> String {
        let mut out = String::from("prop");
        push_u64(&mut out, self.successes());
        push_u64(&mut out, self.trials());
        out
    }

    fn decode(reader: &mut TokenReader<'_>) -> Result<Self, String> {
        reader.expect_tag("prop")?;
        let successes = reader.next_u64()?;
        let trials = reader.next_u64()?;
        if successes > trials {
            return Err("proportion successes exceed trials".to_string());
        }
        Ok(Proportion::from_counts(successes, trials))
    }
}

impl Checkpoint for Histogram {
    fn encode(&self) -> String {
        let mut out = String::from("hist");
        push_f64(&mut out, self.low());
        push_f64(&mut out, self.high());
        push_u64(&mut out, self.bins().len() as u64);
        for &b in self.bins() {
            push_u64(&mut out, b);
        }
        push_u64(&mut out, self.underflow());
        push_u64(&mut out, self.overflow());
        push_u64(&mut out, self.count());
        out
    }

    fn decode(reader: &mut TokenReader<'_>) -> Result<Self, String> {
        reader.expect_tag("hist")?;
        let low = reader.next_f64()?;
        let high = reader.next_f64()?;
        let n = reader.next_usize()?;
        if !(low.is_finite() && high.is_finite() && low < high) || n == 0 {
            return Err("bad histogram grid".to_string());
        }
        let mut bins = Vec::with_capacity(n);
        for _ in 0..n {
            bins.push(reader.next_u64()?);
        }
        let underflow = reader.next_u64()?;
        let overflow = reader.next_u64()?;
        let count = reader.next_u64()?;
        let total = bins
            .iter()
            .fold(underflow.saturating_add(overflow), |t, &b| {
                t.saturating_add(b)
            });
        if total != count {
            return Err("histogram count inconsistent with bins".to_string());
        }
        Ok(Histogram::from_raw(
            low, high, bins, underflow, overflow, count,
        ))
    }
}

impl Checkpoint for SurvivalCurve {
    fn encode(&self) -> String {
        let mut out = String::from("survival");
        push_u64(&mut out, self.grid().len() as u64);
        for &g in self.grid() {
            push_f64(&mut out, g);
        }
        for &s in self.survivors() {
            push_u64(&mut out, s);
        }
        push_u64(&mut out, self.replications());
        out
    }

    fn decode(reader: &mut TokenReader<'_>) -> Result<Self, String> {
        reader.expect_tag("survival")?;
        let n = reader.next_usize()?;
        let mut grid = Vec::with_capacity(n);
        for _ in 0..n {
            grid.push(reader.next_f64()?);
        }
        // A NaN grid value must be rejected here, not panic later
        // inside SurvivalCurve::new.
        if grid.iter().any(|g| g.is_nan())
            || grid.is_empty()
            || grid.windows(2).any(|w| w[0] >= w[1])
        {
            return Err("bad survival grid".to_string());
        }
        let mut survivors = Vec::with_capacity(n);
        for _ in 0..n {
            survivors.push(reader.next_u64()?);
        }
        let replications = reader.next_u64()?;
        if survivors.iter().any(|&s| s > replications) {
            return Err("survivors exceed replications".to_string());
        }
        Ok(SurvivalCurve::from_raw(grid, survivors, replications))
    }
}

impl<A: Checkpoint> Checkpoint for ResumePoint<A> {
    fn encode(&self) -> String {
        let mut out = String::from("resume");
        push_u64(&mut out, self.trials_done);
        out.push(' ');
        out.push_str(&self.acc.encode());
        out
    }

    fn decode(reader: &mut TokenReader<'_>) -> Result<Self, String> {
        reader.expect_tag("resume")?;
        let trials_done = reader.next_u64()?;
        let acc = A::decode(reader)?;
        Ok(ResumePoint { trials_done, acc })
    }
}
