//! The campaign-facing API: the [`TrialCampaign`] trait, engine
//! configuration, and the run report types.
//!
//! A campaign is a pure function from a trial index to an accumulator
//! delta: `run_trial(trial)` must depend only on the campaign
//! configuration and the trial index (the labelled-RngStream rule —
//! every trial forks its randomness as `root.fork_indexed(label,
//! trial)`), never on which worker runs it or when. Under that
//! contract the executor is free to steal, reorder and even re-execute
//! trials after a worker is lost without changing the campaign result.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Scheduling priority of a trial.
///
/// The executor drains tiers strictly in order — all runnable
/// [`Tier::Smoke`] work is claimed before any [`Tier::Standard`] work,
/// which is claimed before any [`Tier::LongHorizon`] work — so a batch
/// of long-horizon reliability trials queued behind a smoke sweep can
/// never starve it. Tier assignment has no effect on the campaign
/// result, only on completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Tier {
    /// Short sanity trials that should finish first.
    Smoke,
    /// The default tier for ordinary campaign trials.
    #[default]
    Standard,
    /// Long-horizon trials (e.g. year-long reliability replications)
    /// that must not starve the other tiers.
    LongHorizon,
}

impl Tier {
    /// Number of scheduling tiers.
    pub const COUNT: usize = 3;

    /// Queue index of this tier (0 drains first).
    pub fn index(self) -> usize {
        match self {
            Tier::Smoke => 0,
            Tier::Standard => 1,
            Tier::LongHorizon => 2,
        }
    }
}

/// Per-trial execution context handed to [`TrialCampaign::run_trial`].
///
/// Long-running trials should poll [`TrialCtx::cancelled`] at natural
/// checkpoints (e.g. once per simulated cycle batch) and return early
/// when it fires: the trial watchdog can only *request* cancellation
/// cooperatively. A trial that never polls and never returns is
/// eventually handled by declaring its worker lost (see
/// [`EngineConfig::lost_worker_grace`]).
#[derive(Debug)]
pub struct TrialCtx<'a> {
    cancel: &'a AtomicBool,
    started: Instant,
    budget: Option<Duration>,
    trial: u64,
}

impl<'a> TrialCtx<'a> {
    pub(crate) fn new(cancel: &'a AtomicBool, budget: Option<Duration>, trial: u64) -> Self {
        TrialCtx {
            cancel,
            started: Instant::now(),
            budget,
            trial,
        }
    }

    /// The trial index being executed.
    pub fn trial(&self) -> u64 {
        self.trial
    }

    /// Wall-clock time this trial has been running.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// True once the watchdog has requested cancellation or the trial
    /// has exceeded its own budget; the trial should return as soon as
    /// practical. Whatever it accumulated is discarded either way.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
            || self.budget.is_some_and(|b| self.started.elapsed() > b)
    }

    pub(crate) fn started(&self) -> Instant {
        self.started
    }
}

/// A fault-injection campaign the engine can execute: a trial count, a
/// per-trial body, and a mergeable accumulator.
///
/// # Contract
///
/// * `run_trial(trial, …)` is a pure function of the campaign value and
///   `trial` — all randomness must come from a labelled fork such as
///   `root.fork_indexed(rng_label, trial)`.
/// * `merge` must be exact for the integer parts of the accumulator
///   (counter merges commute and associate); floating-point moments may
///   differ from a sequential fold only by association order. The
///   engine folds trial accumulators into fixed-size blocks and merges
///   the blocks strictly in index order, so for a given trial count the
///   full fold tree — and therefore every accumulator bit — is
///   identical at any worker count.
pub trait TrialCampaign {
    /// Streaming accumulator the campaign folds trial outcomes into.
    type Acc: Send + 'static;

    /// Total number of trials in the campaign.
    fn trials(&self) -> u64;

    /// Human-readable campaign label used in reproducer records.
    fn label(&self) -> String;

    /// The RNG fork label used per trial (`root.fork_indexed(label,
    /// trial)`), recorded in reproducers so a quarantined trial can be
    /// re-run in isolation.
    fn rng_label(&self) -> String;

    /// Scheduling tier of one trial. Defaults to [`Tier::Standard`].
    fn tier(&self, trial: u64) -> Tier {
        let _ = trial;
        Tier::Standard
    }

    /// A fresh, empty accumulator.
    fn empty(&self) -> Self::Acc;

    /// Executes one trial, folding its outcome into `acc` (a fresh
    /// accumulator owned by the engine; it is merged into the campaign
    /// result only if the trial returns normally within budget).
    fn run_trial(&self, trial: u64, ctx: &TrialCtx<'_>, acc: &mut Self::Acc);

    /// Merges a later accumulator into an earlier one.
    fn merge(&self, into: &mut Self::Acc, from: Self::Acc);
}

/// Deterministic mid-campaign worker-death injection, for testing the
/// engine's own fault tolerance: worker `worker` abandons its queue and
/// exits after it has executed `after_trials` trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosKill {
    /// Index of the worker to kill (0-based).
    pub worker: usize,
    /// Number of trials the worker executes before dying.
    pub after_trials: u64,
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Trials per scheduling block; `None` picks
    /// [`auto_block_size`](crate::auto_block_size). The block partition
    /// is a function of the trial count alone — never of `workers` — so
    /// the merged result is bit-identical at any worker count.
    pub block_size: Option<u64>,
    /// Per-trial wall-clock budget. A trial still running past it is
    /// asked to cancel; when it finishes (or is abandoned with its
    /// worker) it is recorded as timed out and excluded from the
    /// accumulator stream. `None` disables the watchdog.
    pub trial_budget: Option<Duration>,
    /// Extra grace past the budget before a non-cooperating trial's
    /// worker is declared lost and its queue redistributed.
    pub lost_worker_grace: Duration,
    /// Fire the checkpoint callback every this many folded trials
    /// (0 disables checkpointing).
    pub checkpoint_every: u64,
    /// Optional deterministic worker-death injection.
    pub chaos_kill: Option<ChaosKill>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            block_size: None,
            trial_budget: None,
            lost_worker_grace: Duration::from_millis(200),
            checkpoint_every: 0,
            chaos_kill: None,
        }
    }
}

impl EngineConfig {
    /// A default configuration with the given worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }
}

/// The reproducer triple for a quarantined trial: enough to re-run the
/// offending trial in isolation (`root.fork_indexed(rng_label, trial)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproducer {
    /// Campaign label ([`TrialCampaign::label`]).
    pub campaign: String,
    /// RNG fork label ([`TrialCampaign::rng_label`]).
    pub rng_label: String,
    /// Trial index.
    pub trial: u64,
    /// What happened (panic payload or budget overrun).
    pub detail: String,
}

impl std::fmt::Display for Reproducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "campaign={} rng-label={} trial={}: {}",
            self.campaign, self.rng_label, self.trial, self.detail
        )
    }
}

/// What the executor observed while running a campaign.
///
/// The accumulator in [`CampaignRun`] is deterministic; the scheduling
/// counters here (steals, pending high-water) are not, and must never
/// be golden-pinned.
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Total trials in the campaign (including any resumed prefix).
    pub trials: u64,
    /// Trials whose outcome was merged into the accumulator this run.
    pub completed: u64,
    /// Trials skipped because they were quarantined after a worker
    /// loss (their block was re-executed without them).
    pub skipped: u64,
    /// Trials that panicked, in trial order.
    pub panicked: Vec<Reproducer>,
    /// Trials that blew their budget (cooperatively cancelled, caught
    /// over budget on return, or abandoned with a lost worker), in
    /// trial order.
    pub timed_out: Vec<Reproducer>,
    /// Scheduling blocks the campaign was partitioned into.
    pub blocks: u64,
    /// Blocks claimed from another worker's deque.
    pub steals: u64,
    /// Worker threads the run started with.
    pub workers: usize,
    /// Workers declared lost (watchdog or chaos injection).
    pub lost_workers: usize,
    /// Replacement workers spawned after every original worker died.
    pub respawned_workers: usize,
    /// High-water mark of completed-but-not-yet-folded blocks — the
    /// engine's only trial-count-independent buffering, bounded by
    /// O(workers).
    pub max_pending_blocks: usize,
}

/// A finished campaign: the merged accumulator plus the engine report.
#[derive(Debug, Clone)]
pub struct CampaignRun<A> {
    /// The streaming accumulator, folded in block order.
    pub acc: A,
    /// Scheduling and robustness telemetry.
    pub report: EngineReport,
}

/// A resumable prefix of a campaign: the first `trials_done` trials
/// have been folded into `acc`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumePoint<A> {
    /// Number of leading trials already folded.
    pub trials_done: u64,
    /// Accumulator state over that prefix.
    pub acc: A,
}

/// Optional run inputs: resume state and a checkpoint callback.
///
/// The callback is invoked on the coordinating thread every
/// [`EngineConfig::checkpoint_every`] folded trials with the absolute
/// folded-prefix length and the accumulator over exactly that prefix.
pub struct CampaignOptions<'cb, A> {
    /// Resume from a previously checkpointed prefix.
    pub resume: Option<ResumePoint<A>>,
    /// Checkpoint callback `(trials_done, accumulator_prefix)`.
    #[allow(clippy::type_complexity)]
    pub on_checkpoint: Option<&'cb dyn Fn(u64, &A)>,
}

impl<A> Default for CampaignOptions<'_, A> {
    fn default() -> Self {
        CampaignOptions {
            resume: None,
            on_checkpoint: None,
        }
    }
}

impl<A> std::fmt::Debug for CampaignOptions<'_, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignOptions")
            .field("resume", &self.resume.is_some())
            .field("on_checkpoint", &self.on_checkpoint.is_some())
            .finish()
    }
}
