//! Property-based tests for the kernel: the scheduler simulation never
//! contradicts the response-time analysis, and TEM is deterministic.

use nlft_kernel::analysis::{analyse, response_time};
use nlft_kernel::integrity::{crc32, SealedMessage};
use nlft_kernel::sched::FpSimulator;
use nlft_kernel::task::{Criticality, Priority, TaskId, TaskSet, TaskSpecBuilder};
use nlft_kernel::tem::{InjectionPlan, TemConfig, TemExecutor};
use nlft_machine::fault::FaultSpace;
use nlft_machine::workloads;
use nlft_sim::rng::RngStream;
use nlft_sim::time::SimDuration;
use proptest::prelude::*;

/// Builds a random task set with bounded utilisation; returns `None` when a
/// drawn task would violate its own deadline.
fn build_set(specs: &[(u64, u64)]) -> Option<TaskSet> {
    let mut set = TaskSet::new();
    for (i, &(period_us, wcet_us)) in specs.iter().enumerate() {
        let spec = TaskSpecBuilder::new(TaskId(i as u32), format!("t{i}"))
            .period(SimDuration::from_micros(period_us))
            .wcet(SimDuration::from_micros(wcet_us))
            .priority(Priority(i as u32))
            .criticality(Criticality::Critical)
            .build()
            .ok()?;
        set.add(spec).ok()?;
    }
    Some(set)
}

fn arb_task() -> impl Strategy<Value = (u64, u64)> {
    // Periods 100µs–10ms, WCET 1–20% of the period.
    (100u64..10_000).prop_flat_map(|p| ((p / 100).max(1)..=(p / 5).max(2)).prop_map(move |c| (p, c)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: the simulated worst response at the critical instant
    /// never exceeds the RTA bound, for any random task set.
    #[test]
    fn simulation_never_beats_rta_bound(specs in prop::collection::vec(arb_task(), 1..5)) {
        let Some(set) = build_set(&specs) else { return Ok(()); };
        let horizon = SimDuration::from_millis(200);
        let report = FpSimulator::new(set.clone()).run(horizon);
        for t in set.iter() {
            if let Some(bound) = response_time(&set, t) {
                let observed = report.tasks[&t.id].max_response;
                prop_assert!(
                    observed <= bound,
                    "{}: observed {observed} > bound {bound}",
                    t.name
                );
            }
        }
    }

    /// Completeness direction: when RTA says schedulable, the simulation
    /// at the critical instant misses no deadline.
    #[test]
    fn rta_schedulable_implies_no_misses(specs in prop::collection::vec(arb_task(), 1..5)) {
        let Some(set) = build_set(&specs) else { return Ok(()); };
        if analyse(&set).is_schedulable() {
            let report = FpSimulator::new(set).run(SimDuration::from_millis(200));
            prop_assert!(report.no_misses());
        }
    }

    /// Gross overload is always caught by the analysis.
    #[test]
    fn overload_is_unschedulable(period in 100u64..1000) {
        // Two tasks, each needing 60% of the CPU.
        let wcet = period * 6 / 10;
        let Some(set) = build_set(&[(period, wcet), (period, wcet)]) else { return Ok(()); };
        prop_assert!(!analyse(&set).is_schedulable());
    }

    /// TEM job outcomes are a pure function of (workload, inputs, fault).
    #[test]
    fn tem_reports_are_deterministic(seed in any::<u64>(), at_cycle in 1u64..200) {
        let w = workloads::pid_controller();
        let mut rng = RngStream::new(seed);
        let fault = FaultSpace::cpu_only().sample(&mut rng);
        let run = || {
            let (_, wcet) = w.golden_run(&[900, 700]);
            let tem = TemExecutor::new(TemConfig::with_budget(wcet * 2));
            let mut m = w.instantiate();
            tem.run_job(&mut m, &w, &[900, 700], Some(InjectionPlan {
                copy: 0,
                at_cycle,
                fault,
            }))
        };
        prop_assert_eq!(run(), run());
    }

    /// A delivered TEM result always equals the golden output, no matter
    /// where a single CPU transient strikes — the core masking guarantee.
    #[test]
    fn delivered_results_are_always_golden(seed in any::<u64>(), at_cycle in 1u64..150, copy in 0u32..2) {
        let w = workloads::checksum_block();
        let (golden, wcet) = w.golden_run(&[]);
        let mut rng = RngStream::new(seed);
        let fault = FaultSpace::cpu_only().sample(&mut rng);
        let tem = TemExecutor::new(TemConfig::with_budget(wcet * 2));
        let mut m = w.instantiate();
        let report = tem.run_job(&mut m, &w, &[], Some(InjectionPlan { copy, at_cycle, fault }));
        if let Some(outputs) = report.outputs {
            prop_assert_eq!(outputs[0], golden[0], "delivered wrong value: {:?}", report);
        }
    }

    /// CRC32 is sensitive to any single word change.
    #[test]
    fn crc_distinguishes_any_single_change(
        data in prop::collection::vec(any::<u32>(), 1..32),
        idx in any::<prop::sample::Index>(),
        delta in 1u32..,
    ) {
        let mut mutated = data.clone();
        let i = idx.index(data.len());
        mutated[i] = mutated[i].wrapping_add(delta);
        if mutated != data {
            prop_assert_ne!(crc32(&data), crc32(&mutated));
        }
    }

    /// Sealed messages round-trip any payload and reject any 1–2 bit
    /// payload corruption.
    #[test]
    fn sealed_message_integrity(
        payload in prop::collection::vec(any::<u32>(), 0..64),
        word in any::<prop::sample::Index>(),
        bit in 0u32..32,
    ) {
        let msg = SealedMessage::seal(payload.clone());
        prop_assert_eq!(msg.clone().open().unwrap(), payload.clone());
        if !payload.is_empty() {
            let mut corrupt = msg;
            corrupt.corrupt_payload(word.index(payload.len()), 1 << bit);
            prop_assert!(corrupt.open().is_err());
        }
    }
}
