//! Property-based tests for the kernel: the scheduler simulation never
//! contradicts the response-time analysis, and TEM is deterministic.

use nlft_kernel::analysis::{analyse, response_time};
use nlft_kernel::integrity::{crc32, SealedMessage};
use nlft_kernel::sched::FpSimulator;
use nlft_kernel::task::{Criticality, Priority, TaskId, TaskSet, TaskSpecBuilder};
use nlft_kernel::tem::{InjectionPlan, TemConfig, TemExecutor};
use nlft_machine::fault::FaultSpace;
use nlft_machine::workloads;
use nlft_sim::rng::RngStream;
use nlft_sim::time::SimDuration;
use nlft_testkit::prop::{gens, Suite};
use nlft_testkit::rng::TkRng;
use nlft_testkit::{prop_assert, prop_assert_eq, prop_assert_ne};

const SUITE: Suite = Suite::new(0x5EED_00E1).cases(64);

/// Builds a random task set with bounded utilisation; returns `None` when a
/// drawn task would violate its own deadline.
fn build_set(specs: &[(u64, u64)]) -> Option<TaskSet> {
    let mut set = TaskSet::new();
    for (i, &(period_us, wcet_us)) in specs.iter().enumerate() {
        let spec = TaskSpecBuilder::new(TaskId(i as u32), format!("t{i}"))
            .period(SimDuration::from_micros(period_us))
            .wcet(SimDuration::from_micros(wcet_us))
            .priority(Priority(i as u32))
            .criticality(Criticality::Critical)
            .build()
            .ok()?;
        set.add(spec).ok()?;
    }
    Some(set)
}

/// Periods 100µs–10ms, WCET 1–20% of the period.
fn arb_task(r: &mut TkRng) -> (u64, u64) {
    let p = r.range(100, 10_000);
    let lo = (p / 100).max(1);
    let hi = (p / 5).max(2);
    let c = r.range(lo, hi + 1);
    (p, c)
}

/// Soundness: the simulated worst response at the critical instant
/// never exceeds the RTA bound, for any random task set.
#[test]
fn simulation_never_beats_rta_bound() {
    SUITE.check(
        "simulation_never_beats_rta_bound",
        gens::vec(arb_task, 1..5),
        |specs| {
            let Some(set) = build_set(specs) else {
                return Ok(());
            };
            let horizon = SimDuration::from_millis(200);
            let report = FpSimulator::new(set.clone()).run(horizon);
            for t in set.iter() {
                if let Some(bound) = response_time(&set, t) {
                    let observed = report.tasks[&t.id].max_response;
                    prop_assert!(
                        observed <= bound,
                        "{}: observed {observed} > bound {bound}",
                        t.name
                    );
                }
            }
            Ok(())
        },
    );
}

/// Completeness direction: when RTA says schedulable, the simulation
/// at the critical instant misses no deadline.
#[test]
fn rta_schedulable_implies_no_misses() {
    SUITE.check(
        "rta_schedulable_implies_no_misses",
        gens::vec(arb_task, 1..5),
        |specs| {
            let Some(set) = build_set(specs) else {
                return Ok(());
            };
            if analyse(&set).is_schedulable() {
                let report = FpSimulator::new(set).run(SimDuration::from_millis(200));
                prop_assert!(report.no_misses());
            }
            Ok(())
        },
    );
}

/// Gross overload is always caught by the analysis.
#[test]
fn overload_is_unschedulable() {
    SUITE.check(
        "overload_is_unschedulable",
        |r: &mut TkRng| r.range(100, 1000),
        |&period| {
            // Two tasks, each needing 60% of the CPU.
            let wcet = period * 6 / 10;
            let Some(set) = build_set(&[(period, wcet), (period, wcet)]) else {
                return Ok(());
            };
            prop_assert!(!analyse(&set).is_schedulable());
            Ok(())
        },
    );
}

/// TEM job outcomes are a pure function of (workload, inputs, fault).
#[test]
fn tem_reports_are_deterministic() {
    SUITE.check(
        "tem_reports_are_deterministic",
        |r: &mut TkRng| (r.next_u64(), r.range(1, 200)),
        |&(seed, at_cycle)| {
            let w = workloads::pid_controller();
            let mut rng = RngStream::new(seed);
            let fault = FaultSpace::cpu_only().sample(&mut rng);
            let run = || {
                let (_, wcet) = w.golden_run(&[900, 700]);
                let tem = TemExecutor::new(TemConfig::with_budget(wcet * 2));
                let mut m = w.instantiate();
                tem.run_job(
                    &mut m,
                    &w,
                    &[900, 700],
                    Some(InjectionPlan {
                        copy: 0,
                        at_cycle,
                        fault,
                    }),
                )
            };
            prop_assert_eq!(run(), run());
            Ok(())
        },
    );
}

/// A delivered TEM result always equals the golden output, no matter
/// where a single CPU transient strikes — the core masking guarantee.
#[test]
fn delivered_results_are_always_golden() {
    SUITE.check(
        "delivered_results_are_always_golden",
        |r: &mut TkRng| (r.next_u64(), r.range(1, 150), r.range(0, 2) as u32),
        |&(seed, at_cycle, copy)| {
            let w = workloads::checksum_block();
            let (golden, wcet) = w.golden_run(&[]);
            let mut rng = RngStream::new(seed);
            let fault = FaultSpace::cpu_only().sample(&mut rng);
            let tem = TemExecutor::new(TemConfig::with_budget(wcet * 2));
            let mut m = w.instantiate();
            let report = tem.run_job(
                &mut m,
                &w,
                &[],
                Some(InjectionPlan {
                    copy,
                    at_cycle,
                    fault,
                }),
            );
            if let Some(outputs) = report.outputs {
                prop_assert_eq!(outputs[0], golden[0], "delivered wrong value: {:?}", report);
            }
            Ok(())
        },
    );
}

/// CRC32 is sensitive to any single word change.
#[test]
fn crc_distinguishes_any_single_change() {
    SUITE.check(
        "crc_distinguishes_any_single_change",
        {
            let mut data = gens::vec(|r| r.next_u32(), 1..32);
            let mut idx = gens::index();
            move |r: &mut TkRng| (data(r), idx(r), r.range(1, 1u64 << 32) as u32)
        },
        |(data, idx, delta)| {
            let mut mutated = data.clone();
            let i = idx.index(data.len());
            mutated[i] = mutated[i].wrapping_add(*delta);
            if &mutated != data {
                prop_assert_ne!(crc32(data), crc32(&mutated));
            }
            Ok(())
        },
    );
}

/// Sealed messages round-trip any payload and reject any 1–2 bit
/// payload corruption.
#[test]
fn sealed_message_integrity() {
    SUITE.check(
        "sealed_message_integrity",
        {
            let mut payload = gens::vec(|r| r.next_u32(), 0..64);
            let mut word = gens::index();
            move |r: &mut TkRng| (payload(r), word(r), r.range(0, 32) as u32)
        },
        |(payload, word, bit)| {
            let msg = SealedMessage::seal(payload.clone());
            prop_assert_eq!(msg.clone().open().unwrap(), payload.clone());
            if !payload.is_empty() {
                let mut corrupt = msg;
                corrupt.corrupt_payload(word.index(payload.len()), 1 << bit);
                prop_assert!(corrupt.open().is_err());
            }
            Ok(())
        },
    );
}
