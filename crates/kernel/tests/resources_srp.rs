//! Property and exhaustive validation of the SRP ceiling analysis.
//!
//! * a 10 000-case suite asserting the computed ceilings equal a
//!   brute-force max-over-accessors on random task/resource sets, and
//!   that the SRP blocking bound matches an independent brute force;
//! * an exhaustive small-N check that feeding the blocking bound into
//!   `kernel::analysis` (`response_time_with_blocking`) agrees with an
//!   independently-written fixpoint for every configuration in the grid.

use nlft_kernel::analysis::{response_time, response_time_with_blocking};
use nlft_kernel::resources::{ResourceId, ResourceMap};
use nlft_kernel::task::{Criticality, Priority, TaskId, TaskSet, TaskSpecBuilder};
use nlft_sim::time::SimDuration;
use nlft_testkit::prop::Suite;
use nlft_testkit::rng::TkRng;
use nlft_testkit::{prop_assert, prop_assert_eq};

const SUITE: Suite = Suite::new(0x5EED_C3A1).cases(10_000);

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

/// One random configuration: tasks as `(period, wcet, priority)` and
/// access declarations as `(task index, resource, section µs)`.
#[derive(Debug, Clone)]
struct Case {
    tasks: Vec<(u64, u64, u32)>,
    accesses: Vec<(usize, u32, u64)>,
}

fn arb_case(r: &mut TkRng) -> Case {
    let n = r.usize_range(1, 6);
    let tasks = (0..n)
        .map(|_| {
            let period = r.range(50, 2_000);
            let wcet = r.range(1, (period / 4).max(2));
            // Priorities may tie: ties are broken by TaskId everywhere.
            let prio = r.range(0, n as u64) as u32;
            (period, wcet, prio)
        })
        .collect();
    let resources = r.usize_range(1, 4);
    let mut accesses = Vec::new();
    for task in 0..n {
        for resource in 0..resources {
            if r.bool() {
                accesses.push((task, resource as u32, r.range(1, 15)));
            }
        }
    }
    Case { tasks, accesses }
}

fn build(case: &Case) -> (TaskSet, ResourceMap) {
    let set: TaskSet = case
        .tasks
        .iter()
        .enumerate()
        .map(|(i, &(period, wcet, prio))| {
            TaskSpecBuilder::new(TaskId(i as u32), format!("t{i}"))
                .period(us(period))
                .wcet(us(wcet))
                .priority(Priority(prio))
                .criticality(Criticality::NonCritical)
                .build()
                .unwrap()
        })
        .collect();
    let mut map = ResourceMap::new();
    for &(task, resource, section) in &case.accesses {
        map.declare(TaskId(task as u32), ResourceId(resource), us(section));
    }
    (set, map)
}

/// Ceilings: the highest (numerically smallest) accessor priority,
/// recomputed here the obvious way — walk every task, keep the best.
#[test]
fn ceilings_match_brute_force_over_10k_sets() {
    SUITE.check("ceilings_match_brute_force", arb_case, |case| {
        let (set, map) = build(case);
        for resource in 0..4u32 {
            let mut brute: Option<Priority> = None;
            for (i, &(_, _, prio)) in case.tasks.iter().enumerate() {
                let declares = case
                    .accesses
                    .iter()
                    .any(|&(t, r, _)| t == i && r == resource);
                if declares && brute.is_none_or(|b| Priority(prio) < b) {
                    brute = Some(Priority(prio));
                }
            }
            prop_assert_eq!(map.ceiling(&set, ResourceId(resource)), brute);
        }
        Ok(())
    });
}

/// Blocking bound: brute force over every (victim, section) pair using
/// the ceilings already cross-checked above.
#[test]
fn blocking_bound_matches_brute_force_over_10k_sets() {
    SUITE.check("blocking_bound_matches_brute_force", arb_case, |case| {
        let (set, map) = build(case);
        for victim in set.iter() {
            let mut brute = SimDuration::ZERO;
            for &(task, resource, section) in &case.accesses {
                let holder = set.get(TaskId(task as u32)).unwrap();
                let lower = (holder.priority, holder.id) > (victim.priority, victim.id);
                let ceiling = map.ceiling(&set, ResourceId(resource)).unwrap();
                if lower && ceiling <= victim.priority {
                    brute = brute.max(us(section));
                }
            }
            prop_assert_eq!(map.blocking_bound(&set, victim), brute);
            // Sanity: the bound is one critical section, never a sum —
            // it cannot exceed the longest declared section anywhere.
            let longest = case
                .accesses
                .iter()
                .map(|&(_, _, s)| us(s))
                .max()
                .unwrap_or(SimDuration::ZERO);
            prop_assert!(brute <= longest);
        }
        Ok(())
    });
}

/// The lowest-priority task is never blocked (nothing runs below it),
/// and a task sharing nothing on a ceiling-free map is never blocked.
#[test]
fn lowest_task_and_empty_map_are_block_free() {
    SUITE.check("lowest_task_is_block_free", arb_case, |case| {
        let (set, map) = build(case);
        let lowest = set.iter().max_by_key(|t| (t.priority, t.id)).unwrap();
        prop_assert_eq!(map.blocking_bound(&set, lowest), SimDuration::ZERO);
        let empty = ResourceMap::new();
        for t in set.iter() {
            prop_assert_eq!(empty.blocking_bound(&set, t), SimDuration::ZERO);
        }
        Ok(())
    });
}

/// An independent RTA fixpoint with a one-shot blocking term, written
/// directly from the textbook recurrence for the exhaustive cross-check.
fn textbook_rta(set: &TaskSet, task_id: TaskId, blocking: SimDuration) -> Option<SimDuration> {
    let task = set.get(task_id).unwrap();
    let mut r = task.wcet + blocking;
    for _ in 0..10_000 {
        let interference: SimDuration = set
            .higher_priority_than(task)
            .map(|hp| hp.wcet * r.div_ceil(hp.period))
            .sum();
        let next = task.wcet + blocking + interference;
        if next > task.deadline {
            return None;
        }
        if next == r {
            return Some(r);
        }
        r = next;
    }
    unreachable!("fixpoint must converge within the deadline cap");
}

/// Exhaustive small-N grid: two fixed tasks plus one low-priority
/// blocker; every section length in 1..=12 µs on every accessor subset.
/// The SRP bound fed into `response_time_with_blocking` must agree with
/// the independent textbook fixpoint, and reduce to plain RTA at zero.
#[test]
fn exhaustive_small_n_blocking_against_analysis() {
    let mk = |id: u32, prio: u32, period: u64, wcet: u64| {
        TaskSpecBuilder::new(TaskId(id), format!("t{id}"))
            .period(us(period))
            .wcet(us(wcet))
            .priority(Priority(prio))
            .criticality(Criticality::NonCritical)
            .build()
            .unwrap()
    };
    let set: TaskSet = [mk(0, 0, 100, 10), mk(1, 1, 200, 30), mk(2, 2, 400, 50)]
        .into_iter()
        .collect();
    let mut checked = 0u32;
    // Accessor subsets: which of t0/t1 share the blocker's resource.
    for accessors in [&[0u32][..], &[1], &[0, 1]] {
        for section in 1..=12u64 {
            let mut map = ResourceMap::new();
            map.declare(TaskId(2), ResourceId(1), us(section));
            for &a in accessors {
                map.declare(TaskId(a), ResourceId(1), us(1));
            }
            for t in set.iter() {
                let bound = map.blocking_bound(&set, t);
                let via_analysis =
                    response_time_with_blocking(&set, t, bound, 0, |_| SimDuration::ZERO);
                assert_eq!(via_analysis, textbook_rta(&set, t.id, bound), "{}", t.name);
                // Zero blocking reduces to the PR 7 plain RTA.
                assert_eq!(
                    response_time_with_blocking(&set, t, SimDuration::ZERO, 0, |_| {
                        SimDuration::ZERO
                    }),
                    response_time(&set, t)
                );
                // The ceiling rule decides who the blocker reaches: t0 is
                // blocked iff it (or a higher-or-equal task) accesses R1.
                let ceiling = map.ceiling(&set, ResourceId(1)).unwrap();
                if t.id == TaskId(0) {
                    let expected = if ceiling <= Priority(0) {
                        us(section)
                    } else {
                        us(0)
                    };
                    assert_eq!(bound, expected);
                }
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 3 * 12 * 3, "the grid must be fully enumerated");
}
