//! Exhaustive cross-check of the weakly-hard bound.
//!
//! `analysis::worst_pattern` uses a greedy earliest-finish adversary to
//! bound the worst miss pattern any admissible fault placement can
//! produce. This test removes all trust in the greedy argument for a
//! small configuration by *enumerating every fault placement* on a 1µs
//! grid over a 5-job horizon and asserting the bound is **exact**:
//!
//! * sound — no enumerated placement produces more misses than the
//!   analyzer's worst pattern, in the full horizon or any k-window, so
//!   a certified (m,k) contract is never violated;
//! * tight — the reported worst pattern is itself reachable by an
//!   enumerated placement (the bound is not conservative slack).

use nlft_kernel::analysis::{analyse_weakly_hard, faults_tolerated, MissModel, TemCosts};
use nlft_kernel::contract::MkContract;
use nlft_kernel::task::{Criticality, Priority, TaskId, TaskSet, TaskSpecBuilder};
use nlft_sim::time::SimDuration;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

/// All fault placements on a 1µs grid in `[0, horizon)` whose
/// consecutive faults are at least `sep` apart (the empty placement
/// included).
fn all_placements(horizon: u64, sep: u64) -> Vec<Vec<u64>> {
    fn rec(next: u64, horizon: u64, sep: u64, cur: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
        for t in next..horizon {
            cur.push(t);
            out.push(cur.clone());
            rec(t + sep, horizon, sep, cur, out);
            cur.pop();
        }
    }
    let mut out = vec![Vec::new()];
    let mut cur = Vec::new();
    rec(0, horizon, sep, &mut cur, &mut out);
    out
}

/// The task under test: one critical task, T = 5µs, D = 4µs, C = 2µs.
/// With zero TEM overheads R(f) = 2 + 2·f ≤ 4 ⇒ exactly one fault per
/// job is tolerated.
fn task_set() -> TaskSet {
    [TaskSpecBuilder::new(TaskId(1), "probe")
        .period(us(5))
        .deadline(us(4))
        .wcet(us(2))
        .priority(Priority(0))
        .criticality(Criticality::Critical)
        .build()
        .unwrap()]
    .into_iter()
    .collect()
}

const ZERO_COSTS: TemCosts = TemCosts {
    compare: SimDuration::ZERO,
    vote: SimDuration::ZERO,
    context_restore: SimDuration::ZERO,
};

const HORIZON_JOBS: u32 = 5;
const FAULT_SEP_US: u64 = 3;

fn model() -> MissModel {
    let set = task_set();
    let task = set.get(TaskId(1)).unwrap();
    let tolerated = faults_tolerated(&set, task, |k| k.wcet).expect("schedulable");
    assert_eq!(tolerated, 1, "2 + 2·f ≤ 4 tolerates exactly one fault");
    MissModel {
        period: task.period,
        deadline: task.deadline,
        fault_interval: us(FAULT_SEP_US),
        tolerated,
    }
}

#[test]
fn greedy_bound_is_exact_under_exhaustive_enumeration() {
    let m = model();
    let (worst_pattern, worst_faults) = m.worst_pattern(HORIZON_JOBS);
    // T_F = 3: a killing pair spans 3 < 4, but its tail blocks the next
    // window — the adversary can only kill alternating jobs.
    assert_eq!(worst_pattern, vec![true, false, true, false, true]);
    let bound = worst_pattern.iter().filter(|&&miss| miss).count();

    // The placement the analyzer reports must reproduce its pattern.
    assert_eq!(m.misses(&worst_faults, HORIZON_JOBS), worst_pattern);
    for w in worst_faults.windows(2) {
        assert!(
            w[1] - w[0] >= us(FAULT_SEP_US),
            "reported placement illegal"
        );
    }

    // Enumerate every admissible placement over the horizon.
    let horizon_us = u64::from(HORIZON_JOBS) * 5;
    let placements = all_placements(horizon_us, FAULT_SEP_US);
    assert!(placements.len() > 1_000, "enumeration must be non-trivial");

    let mut exhaustive_worst = 0usize;
    let mut worst_reached = false;
    for p in &placements {
        let times: Vec<SimDuration> = p.iter().map(|&t| us(t)).collect();
        let pattern = m.misses(&times, HORIZON_JOBS);
        let count = pattern.iter().filter(|&&miss| miss).count();
        assert!(
            count <= bound,
            "placement {p:?} beats the analyzer bound: {count} > {bound}"
        );
        exhaustive_worst = exhaustive_worst.max(count);
        worst_reached |= pattern == worst_pattern;
    }
    assert_eq!(
        exhaustive_worst, bound,
        "bound must be tight, not conservative"
    );
    assert!(
        worst_reached,
        "the reported worst pattern must be reachable"
    );
}

#[test]
fn certified_contracts_survive_every_placement() {
    let set = task_set();
    let bounds = analyse_weakly_hard(
        &set,
        &[
            (TaskId(1), MkContract::new(2, 3)),
            (TaskId(1), MkContract::new(1, 3)),
        ],
        us(FAULT_SEP_US),
        &ZERO_COSTS,
    );
    assert_eq!(bounds[0].tolerated_faults, Some(1));
    assert_eq!(bounds[0].worst_misses, 2, "worst 3-window: miss, hit, miss");
    assert!(bounds[0].satisfied, "(2,3) is certified");
    assert!(!bounds[1].satisfied, "(1,3) is refused");

    let m = model();
    let horizon_us = u64::from(HORIZON_JOBS) * 5;
    let certified = MkContract::new(2, 3);
    let refused = MkContract::new(1, 3);
    let mut refused_violated = false;
    for p in all_placements(horizon_us, FAULT_SEP_US) {
        let times: Vec<SimDuration> = p.iter().map(|&t| us(t)).collect();
        let pattern = m.misses(&times, HORIZON_JOBS);
        // Soundness: the certified contract holds in every window of
        // every admissible placement.
        assert!(
            certified.satisfied_by(&pattern),
            "certified contract violated by placement {p:?}"
        );
        refused_violated |= !refused.satisfied_by(&pattern);
    }
    // Tightness: the refusal was justified — some placement actually
    // breaks the weaker contract.
    assert!(
        refused_violated,
        "(1,3) must be violated by a real placement"
    );
}
