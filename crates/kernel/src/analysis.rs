//! Fixed-priority schedulability analysis, with and without faults.
//!
//! TEM's recovery executions are event-triggered: a third copy only runs
//! when an error was detected. For critical tasks to still meet deadlines
//! *in the presence of errors*, slack must be reserved a priori and proven
//! sufficient by a schedulability test (§2.8). This module implements:
//!
//! * classic response-time analysis (RTA) for fixed-priority preemptive
//!   scheduling — `R_i = C_i + Σ_{j∈hp(i)} ⌈R_i/T_j⌉·C_j`;
//! * the fault-tolerant extension of Burns, Davis and Punnekkat, adding a
//!   recovery term `⌈R_i/T_F⌉ · max_{k∈hep(i)} F_k` for a minimum
//!   inter-fault arrival time `T_F`;
//! * the TEM task transformation (one logical task becomes two executions
//!   plus a comparison, with a third execution plus vote as recovery);
//! * slack computation and a search for the shortest tolerable `T_F` —
//!   "how fast may faults arrive before deadlines break";
//! * a **weakly-hard** extension: given per-task (m,k) contracts
//!   ([`crate::contract::MkContract`]), bound the worst miss *pattern*
//!   any admissible fault placement can produce in a k-job window
//!   ([`analyse_weakly_hard`]) — the offline certificate the
//!   miss-pattern storm campaigns cross-check against.

use nlft_sim::time::SimDuration;

use crate::contract::MkContract;
use crate::task::{Criticality, TaskId, TaskSet, TaskSpec};

/// Kernel overhead constants for the TEM transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemCosts {
    /// Cost of comparing the two result vectors.
    pub compare: SimDuration,
    /// Cost of the three-way majority vote.
    pub vote: SimDuration,
    /// Cost of restoring a clean CPU context before a recovery copy.
    pub context_restore: SimDuration,
}

impl TemCosts {
    /// Costs scaled to a given single-copy WCET: comparison and voting are
    /// small constant-time operations on the result vector.
    pub fn nominal() -> Self {
        TemCosts {
            compare: SimDuration::from_micros(5),
            vote: SimDuration::from_micros(8),
            context_restore: SimDuration::from_micros(3),
        }
    }
}

impl Default for TemCosts {
    fn default() -> Self {
        TemCosts::nominal()
    }
}

/// Transforms a logical task set into its TEM execution form:
///
/// * critical tasks: WCET becomes `2·C + compare` (both copies always run);
/// * non-critical tasks: unchanged (single execution).
///
/// The returned set is what the *fault-free* schedule must accommodate;
/// recovery demand is added separately by [`ft_response_time`].
///
/// # Panics
///
/// Panics if a transformed WCET exceeds the task's deadline — such a task
/// can never be run under TEM and the set must be redesigned.
pub fn tem_transform(set: &TaskSet, costs: &TemCosts) -> TaskSet {
    set.iter()
        .map(|t| {
            let mut t = t.clone();
            if t.criticality == Criticality::Critical {
                let doubled = t.wcet * 2 + costs.compare;
                assert!(
                    doubled <= t.deadline,
                    "task {} cannot fit two copies + compare within its deadline",
                    t.name
                );
                t.wcet = doubled;
            }
            t
        })
        .collect()
}

/// Worst-case cost of recovering task `t` under TEM: one more execution,
/// a context restore, and the majority vote.
pub fn tem_recovery_cost(t: &TaskSpec, costs: &TemCosts) -> SimDuration {
    match t.criticality {
        Criticality::Critical => t.wcet + costs.context_restore + costs.vote,
        // Non-critical tasks are not recovered: they are shut down.
        Criticality::NonCritical => SimDuration::ZERO,
    }
}

/// Classic RTA for one task in a fixed-priority preemptive set.
///
/// Returns the worst-case response time, or `None` when the iteration
/// exceeds the deadline (unschedulable).
pub fn response_time(set: &TaskSet, task: &TaskSpec) -> Option<SimDuration> {
    response_time_with_recovery(set, task, None)
}

/// Fault-tolerant RTA: worst-case response time of `task` when faults
/// arrive at most once per `fault_interval`, each requiring the re-execution
/// of the most expensive affected job (`max_{k∈hep(i)} F_k`, with `F_k` from
/// `recovery_cost`).
///
/// Returns `None` when unschedulable under that fault arrival assumption.
pub fn ft_response_time(
    set: &TaskSet,
    task: &TaskSpec,
    fault_interval: SimDuration,
    recovery_cost: impl Fn(&TaskSpec) -> SimDuration,
) -> Option<SimDuration> {
    let max_recovery = set
        .higher_or_equal_priority(task)
        .map(&recovery_cost)
        .max()
        .unwrap_or(SimDuration::ZERO);
    response_time_with_recovery(set, task, Some((fault_interval, max_recovery)))
}

fn response_time_with_recovery(
    set: &TaskSet,
    task: &TaskSpec,
    fault: Option<(SimDuration, SimDuration)>,
) -> Option<SimDuration> {
    let mut r = task.wcet;
    // Fixpoint iteration; bounded by the strictly increasing response time,
    // each step at least one nanosecond, capped by the deadline.
    loop {
        let mut next = task.wcet;
        for hp in set.higher_priority_than(task) {
            let releases = r.div_ceil(hp.period);
            next += hp.wcet.checked_mul(releases)?;
        }
        if let Some((t_f, f_max)) = fault {
            if !f_max.is_zero() {
                let hits = if t_f.is_zero() {
                    return None; // infinitely frequent faults
                } else {
                    r.div_ceil(t_f).max(1)
                };
                next += f_max.checked_mul(hits)?;
            }
        }
        if next > task.deadline {
            return None;
        }
        if next == r {
            return Some(r);
        }
        r = next;
    }
}

/// Full-set schedulability report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedulability {
    /// Per-task `(id-ordered by priority)` response times; `None` = missed.
    pub response_times: Vec<(String, Option<SimDuration>)>,
}

impl Schedulability {
    /// `true` when every task meets its deadline.
    pub fn is_schedulable(&self) -> bool {
        self.response_times.iter().all(|(_, r)| r.is_some())
    }
}

/// Runs (fault-free) RTA on every task in the set.
pub fn analyse(set: &TaskSet) -> Schedulability {
    Schedulability {
        response_times: set
            .iter()
            .map(|t| (t.name.clone(), response_time(set, t)))
            .collect(),
    }
}

/// Runs fault-tolerant RTA on every task.
pub fn analyse_with_faults(
    set: &TaskSet,
    fault_interval: SimDuration,
    costs: &TemCosts,
) -> Schedulability {
    Schedulability {
        response_times: set
            .iter()
            .map(|t| {
                (
                    t.name.clone(),
                    ft_response_time(set, t, fault_interval, |k| tem_recovery_cost(k, costs)),
                )
            })
            .collect(),
    }
}

/// Per-task slack (deadline − response time) under fault-free RTA.
///
/// Returns `None` for unschedulable tasks.
pub fn slack(set: &TaskSet, task: &TaskSpec) -> Option<SimDuration> {
    response_time(set, task).map(|r| task.deadline - r)
}

/// Finds the smallest fault inter-arrival time `T_F` (to `resolution`
/// granularity) for which the whole set remains schedulable under
/// fault-tolerant RTA. Returns `None` if even arbitrarily rare faults break
/// the set (i.e. it is unschedulable with a single recovery).
///
/// This is the paper's implicit design question: how much slack buys how
/// much fault resilience.
pub fn min_tolerable_fault_interval(
    set: &TaskSet,
    costs: &TemCosts,
    resolution: SimDuration,
) -> Option<SimDuration> {
    assert!(!resolution.is_zero(), "resolution must be positive");
    // Upper bound: the longest deadline ⇒ at most one fault per busy period.
    let longest = set.iter().map(|t| t.deadline).max()?;
    if !analyse_with_faults(set, longest, costs).is_schedulable() {
        return None;
    }
    let (mut lo, mut hi) = (SimDuration::ZERO, longest);
    // Invariant: hi is schedulable, lo is not (treat 0 as unschedulable).
    while hi.saturating_sub(lo) > resolution {
        let mid = lo + (hi - lo) / 2;
        if !mid.is_zero() && analyse_with_faults(set, mid, costs).is_schedulable() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Fault counts at or above this are treated as "immune": killing one
/// job would need more simultaneous recoveries than any modelled fault
/// density can deliver (and non-critical tasks with zero recovery cost
/// are unaffected by faults entirely).
pub const MAX_TOLERATED_FAULTS: u32 = 64;

/// FT-RTA with an explicit per-job fault *count* instead of an arrival
/// rate: worst-case response time of `task` when exactly `faults`
/// errors each trigger the most expensive affected recovery.
///
/// This is the per-job view the weakly-hard analysis needs — the
/// interval-based [`ft_response_time`] asks "how often may faults
/// arrive", this asks "how many faults does one job survive".
///
/// Returns `None` when the response exceeds the deadline.
pub fn response_time_with_fault_count(
    set: &TaskSet,
    task: &TaskSpec,
    faults: u32,
    recovery_cost: impl Fn(&TaskSpec) -> SimDuration,
) -> Option<SimDuration> {
    response_time_with_blocking(set, task, SimDuration::ZERO, faults, recovery_cost)
}

/// [`response_time_with_fault_count`] with an additional one-shot
/// `blocking` term — the SRP bound from
/// [`crate::resources::ResourceMap::blocking_bound`], charged once before
/// the task starts (SRP blocks a task at most once). With
/// `blocking == 0` this is exactly `response_time_with_fault_count`; with
/// the LEFT-RS retry term as `recovery_cost` it is the multicore
/// certification: `R(f) = C + B + f·max_recovery + interference`.
///
/// Returns `None` when the response exceeds the deadline.
pub fn response_time_with_blocking(
    set: &TaskSet,
    task: &TaskSpec,
    blocking: SimDuration,
    faults: u32,
    recovery_cost: impl Fn(&TaskSpec) -> SimDuration,
) -> Option<SimDuration> {
    let max_recovery = set
        .higher_or_equal_priority(task)
        .map(&recovery_cost)
        .max()
        .unwrap_or(SimDuration::ZERO);
    let recovery_total = max_recovery.checked_mul(u64::from(faults))?;
    let base = task.wcet + blocking + recovery_total;
    let mut r = base;
    loop {
        let mut next = base;
        for hp in set.higher_priority_than(task) {
            let releases = r.div_ceil(hp.period);
            next += hp.wcet.checked_mul(releases)?;
        }
        if next > task.deadline {
            return None;
        }
        if next == r {
            return Some(r);
        }
        r = next;
    }
}

/// The largest fault count a single job of `task` absorbs while still
/// meeting its deadline, capped at [`MAX_TOLERATED_FAULTS`].
///
/// Returns `None` when the task is unschedulable even fault-free.
pub fn faults_tolerated(
    set: &TaskSet,
    task: &TaskSpec,
    recovery_cost: impl Fn(&TaskSpec) -> SimDuration,
) -> Option<u32> {
    response_time_with_fault_count(set, task, 0, &recovery_cost)?;
    let mut t = 0;
    while t < MAX_TOLERATED_FAULTS
        && response_time_with_fault_count(set, task, t + 1, &recovery_cost).is_some()
    {
        t += 1;
    }
    Some(t)
}

/// Job-level miss model underlying the weakly-hard bound.
///
/// A task releases job `j` at `j·period` with absolute deadline
/// `j·period + deadline` (deadline ≤ period, so job windows never
/// overlap). Faults arrive at least `fault_interval` apart; a job
/// misses exactly when **more than** `tolerated` faults land inside its
/// window — [`faults_tolerated`] says the job's reserved slack absorbs
/// up to that many recoveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissModel {
    /// Release period.
    pub period: SimDuration,
    /// Relative deadline (≤ period).
    pub deadline: SimDuration,
    /// Minimum fault inter-arrival time (positive).
    pub fault_interval: SimDuration,
    /// Faults one job absorbs without missing.
    pub tolerated: u32,
}

impl MissModel {
    /// Span of a killing cluster: `tolerated + 1` faults at minimum
    /// separation stretch over `tolerated · fault_interval`.
    fn kill_span(&self) -> SimDuration {
        self.fault_interval * u64::from(self.tolerated)
    }

    /// The worst miss pattern over `k` consecutive jobs (true = miss)
    /// and a fault placement achieving it.
    ///
    /// Greedy earliest-finish adversary: walk the jobs in order and
    /// kill each one whose killing cluster — started as early as the
    /// separation constraint allows — still fits inside the job's
    /// window. Finishing each cluster as early as possible leaves the
    /// most room for later clusters, so no placement kills a job this
    /// one spares without sparing an earlier kill (the exchange
    /// argument the exhaustive cross-check test verifies).
    pub fn worst_pattern(&self, k: u32) -> (Vec<bool>, Vec<SimDuration>) {
        assert!(
            !self.fault_interval.is_zero(),
            "fault interval must be positive"
        );
        assert!(
            self.deadline <= self.period,
            "deadline must be within the period"
        );
        let mut pattern = Vec::with_capacity(k as usize);
        let mut faults = Vec::new();
        // Earliest instant the next fault may legally occur.
        let mut next_fault = SimDuration::ZERO;
        for j in 0..u64::from(k) {
            let release = self.period * j;
            let first = next_fault.max(release);
            let last = first + self.kill_span();
            if last < release + self.deadline {
                pattern.push(true);
                for i in 0..=u64::from(self.tolerated) {
                    faults.push(first + self.fault_interval * i);
                }
                next_fault = last + self.fault_interval;
            } else {
                pattern.push(false);
            }
        }
        (pattern, faults)
    }

    /// Which of the first `k` jobs miss under an explicit fault
    /// placement (`fault_times` as offsets from the first release).
    pub fn misses(&self, fault_times: &[SimDuration], k: u32) -> Vec<bool> {
        (0..u64::from(k))
            .map(|j| {
                let release = self.period * j;
                let deadline = release + self.deadline;
                let hits = fault_times
                    .iter()
                    .filter(|&&f| f >= release && f < deadline)
                    .count();
                hits as u32 > self.tolerated
            })
            .collect()
    }
}

/// The weakly-hard verdict for one task's contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeaklyHardBound {
    /// Task the contract applies to.
    pub id: TaskId,
    /// Task name for reports.
    pub name: String,
    /// The contract analysed.
    pub contract: MkContract,
    /// Faults one job absorbs (`None` = unschedulable fault-free).
    pub tolerated_faults: Option<u32>,
    /// Misses in the worst window of `contract.window` jobs.
    pub worst_misses: u32,
    /// The worst tolerated miss pattern itself (true = miss).
    pub worst_pattern: Vec<bool>,
    /// `true` when even the worst pattern stays within the contract.
    pub satisfied: bool,
}

/// Weakly-hard schedulability under fault-recovery RTA: for each
/// `(task, contract)` pair, bound the worst miss pattern any fault
/// placement at `fault_interval` minimum separation can produce in a
/// window of `contract.window` jobs, and check it against the contract.
///
/// A certified contract (`satisfied == true`) is a guarantee: no
/// admissible fault placement produces a window with more than
/// `worst_misses` misses (the cross-check campaign asserts simulation
/// never exceeds it).
///
/// # Panics
///
/// Panics when `fault_interval` is zero or a contract names an unknown
/// task.
pub fn analyse_weakly_hard(
    set: &TaskSet,
    contracts: &[(TaskId, MkContract)],
    fault_interval: SimDuration,
    costs: &TemCosts,
) -> Vec<WeaklyHardBound> {
    assert!(!fault_interval.is_zero(), "fault interval must be positive");
    contracts
        .iter()
        .map(|&(id, contract)| {
            let task = set.get(id).expect("contract for unknown task");
            match faults_tolerated(set, task, |k| tem_recovery_cost(k, costs)) {
                None => WeaklyHardBound {
                    id,
                    name: task.name.clone(),
                    contract,
                    tolerated_faults: None,
                    worst_misses: contract.window,
                    worst_pattern: vec![true; contract.window as usize],
                    satisfied: false,
                },
                Some(t) if t >= MAX_TOLERATED_FAULTS => WeaklyHardBound {
                    id,
                    name: task.name.clone(),
                    contract,
                    tolerated_faults: Some(t),
                    worst_misses: 0,
                    worst_pattern: vec![false; contract.window as usize],
                    satisfied: true,
                },
                Some(t) => {
                    let model = MissModel {
                        period: task.period,
                        deadline: task.deadline,
                        fault_interval,
                        tolerated: t,
                    };
                    let (worst_pattern, _) = model.worst_pattern(contract.window);
                    let worst_misses = worst_pattern.iter().filter(|&&m| m).count() as u32;
                    WeaklyHardBound {
                        id,
                        name: task.name.clone(),
                        contract,
                        tolerated_faults: Some(t),
                        worst_misses,
                        satisfied: worst_misses <= contract.max_misses,
                        worst_pattern,
                    }
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Priority, TaskId, TaskSpecBuilder};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn task(id: u32, prio: u32, period_us: u64, wcet_us: u64, crit: Criticality) -> TaskSpec {
        TaskSpecBuilder::new(TaskId(id), format!("t{id}"))
            .period(us(period_us))
            .wcet(us(wcet_us))
            .priority(Priority(prio))
            .criticality(crit)
            .build()
            .unwrap()
    }

    /// The classic Liu & Layland style example with hand-computed response
    /// times: T1(T=50,C=10), T2(T=100,C=20), T3(T=200,C=40).
    fn classic_set() -> TaskSet {
        [
            task(1, 0, 50, 10, Criticality::NonCritical),
            task(2, 1, 100, 20, Criticality::NonCritical),
            task(3, 2, 200, 40, Criticality::NonCritical),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn rta_matches_hand_computation() {
        let set = classic_set();
        // R1 = 10. R2 = 20 + ceil(R2/50)*10 → 30. R3 = 40 + ceil(R/50)*10 + ceil(R/100)*20
        // R3: start 40 → 40+10+20=70 → 40+20+20=80 → 40+20+20=80 ✓
        assert_eq!(
            response_time(&set, set.get(TaskId(1)).unwrap()),
            Some(us(10))
        );
        assert_eq!(
            response_time(&set, set.get(TaskId(2)).unwrap()),
            Some(us(30))
        );
        assert_eq!(
            response_time(&set, set.get(TaskId(3)).unwrap()),
            Some(us(80))
        );
        assert!(analyse(&set).is_schedulable());
    }

    #[test]
    fn overloaded_set_is_unschedulable() {
        let set: TaskSet = [
            task(1, 0, 10, 6, Criticality::NonCritical),
            task(2, 1, 20, 10, Criticality::NonCritical),
        ]
        .into_iter()
        .collect();
        // U = 0.6 + 0.5 > 1.
        assert!(response_time(&set, set.get(TaskId(2)).unwrap()).is_none());
        assert!(!analyse(&set).is_schedulable());
    }

    #[test]
    fn tem_transform_doubles_critical_only() {
        let costs = TemCosts {
            compare: us(2),
            vote: us(3),
            context_restore: us(1),
        };
        let set: TaskSet = [
            task(1, 0, 1000, 100, Criticality::Critical),
            task(2, 1, 1000, 100, Criticality::NonCritical),
        ]
        .into_iter()
        .collect();
        let tem = tem_transform(&set, &costs);
        assert_eq!(tem.get(TaskId(1)).unwrap().wcet, us(202));
        assert_eq!(tem.get(TaskId(2)).unwrap().wcet, us(100));
    }

    #[test]
    #[should_panic(expected = "cannot fit two copies")]
    fn tem_transform_rejects_oversized_tasks() {
        let set: TaskSet = [task(1, 0, 1000, 600, Criticality::Critical)]
            .into_iter()
            .collect();
        tem_transform(&set, &TemCosts::nominal());
    }

    #[test]
    fn recovery_cost_zero_for_non_critical() {
        let costs = TemCosts::nominal();
        let t = task(1, 0, 100, 10, Criticality::NonCritical);
        assert_eq!(tem_recovery_cost(&t, &costs), SimDuration::ZERO);
        let c = task(2, 0, 100, 10, Criticality::Critical);
        assert!(tem_recovery_cost(&c, &costs) > t.wcet);
    }

    #[test]
    fn ft_rta_adds_recovery_term() {
        let set = classic_set();
        let t3 = set.get(TaskId(3)).unwrap();
        let plain = response_time(&set, t3).unwrap();
        // One fault per 200us, recovery = re-run the largest hep task (40us).
        let ft = ft_response_time(&set, t3, us(200), |k| k.wcet).unwrap();
        assert!(ft > plain, "faults must increase the response time");
        // R3_ft = 40 + interference + ceil(R/200)*40; hand-iterate:
        // start 40 → 40+10+20+40=110 → 40+30+40+40=150 → 40+30+40+40=150 ✓
        assert_eq!(ft, us(150));
    }

    #[test]
    fn ft_rta_fails_when_faults_too_frequent() {
        let set = classic_set();
        let t3 = set.get(TaskId(3)).unwrap();
        assert!(ft_response_time(&set, t3, us(10), |k| k.wcet).is_none());
        assert!(ft_response_time(&set, t3, SimDuration::ZERO, |k| k.wcet).is_none());
    }

    #[test]
    fn slack_is_deadline_minus_response() {
        let set = classic_set();
        let t2 = set.get(TaskId(2)).unwrap();
        assert_eq!(slack(&set, t2), Some(us(70)));
    }

    #[test]
    fn min_fault_interval_is_tight() {
        let set = classic_set();
        let costs = TemCosts {
            compare: SimDuration::ZERO,
            vote: SimDuration::ZERO,
            context_restore: SimDuration::ZERO,
        };
        // Use plain wcet as recovery for easy reasoning.
        let tf = min_tolerable_fault_interval(&set, &costs, us(1)).unwrap();
        // Schedulable at the returned interval…
        assert!(analyse_with_faults(&set, tf, &costs).is_schedulable());
        // …and not at something noticeably smaller.
        let smaller = tf.saturating_sub(us(2));
        if !smaller.is_zero() {
            assert!(!analyse_with_faults(&set, smaller, &costs).is_schedulable());
        }
    }

    #[test]
    fn min_fault_interval_none_for_tight_sets() {
        // 90% utilisation by one task: recovery of itself never fits.
        let set: TaskSet = [task(1, 0, 100, 90, Criticality::Critical)]
            .into_iter()
            .collect();
        let costs = TemCosts::nominal();
        assert_eq!(min_tolerable_fault_interval(&set, &costs, us(1)), None);
    }

    #[test]
    fn analyse_with_faults_reports_per_task() {
        let set = classic_set();
        let rep = analyse_with_faults(&set, us(500), &TemCosts::nominal());
        assert_eq!(rep.response_times.len(), 3);
        // Non-critical recovery is zero-cost, so this equals plain RTA.
        assert!(rep.is_schedulable());
    }

    #[test]
    fn fault_count_rta_matches_hand_iteration() {
        let set = classic_set();
        let t3 = set.get(TaskId(3)).unwrap();
        // R(0) is plain RTA; each extra fault re-runs the largest hep
        // task (40us) once.
        assert_eq!(
            response_time_with_fault_count(&set, t3, 0, |k| k.wcet),
            Some(us(80))
        );
        // R(1): 80 → 120 → 150 → 150 ✓ (same fixpoint as the
        // interval-based test with one recovery hit).
        assert_eq!(
            response_time_with_fault_count(&set, t3, 1, |k| k.wcet),
            Some(us(150))
        );
        assert_eq!(
            response_time_with_fault_count(&set, t3, 2, |k| k.wcet),
            Some(us(200))
        );
        assert_eq!(
            response_time_with_fault_count(&set, t3, 3, |k| k.wcet),
            None
        );
        assert_eq!(faults_tolerated(&set, t3, |k| k.wcet), Some(2));
    }

    #[test]
    fn blocking_rta_reduces_to_fault_count_rta_at_zero() {
        let set = classic_set();
        let t3 = set.get(TaskId(3)).unwrap();
        for faults in 0..3 {
            assert_eq!(
                response_time_with_blocking(&set, t3, SimDuration::ZERO, faults, |k| k.wcet),
                response_time_with_fault_count(&set, t3, faults, |k| k.wcet)
            );
        }
    }

    #[test]
    fn blocking_rta_charges_the_term_once() {
        let set = classic_set();
        let t2 = set.get(TaskId(2)).unwrap();
        // R2 = 30 plain; +15us blocking → 20+15=35 → 35+10=45 → 45 ✓
        assert_eq!(
            response_time_with_blocking(&set, t2, us(15), 0, |_| SimDuration::ZERO),
            Some(us(45))
        );
        // Blocking past the deadline is unschedulable.
        assert_eq!(
            response_time_with_blocking(&set, t2, us(200), 0, |_| SimDuration::ZERO),
            None
        );
    }

    #[test]
    fn zero_recovery_means_immune() {
        let set = classic_set();
        let t1 = set.get(TaskId(1)).unwrap();
        assert_eq!(
            faults_tolerated(&set, t1, |_| SimDuration::ZERO),
            Some(MAX_TOLERATED_FAULTS)
        );
    }

    #[test]
    fn unschedulable_task_tolerates_nothing() {
        let set: TaskSet = [
            task(1, 0, 10, 6, Criticality::NonCritical),
            task(2, 1, 20, 10, Criticality::NonCritical),
        ]
        .into_iter()
        .collect();
        let t2 = set.get(TaskId(2)).unwrap();
        assert_eq!(faults_tolerated(&set, t2, |k| k.wcet), None);
    }

    #[test]
    fn greedy_adversary_reuses_late_cluster_tails() {
        // T = D = 10, T_F = 6, one tolerated fault: a cluster killing
        // job j can start late enough that its tail constrains — but
        // does not prevent — killing job j+1. The naive "stride" bound
        // ceil(2·T_F/T) = 2 would predict every other job safe; the
        // greedy adversary kills 3 of 4.
        let m = MissModel {
            period: us(10),
            deadline: us(10),
            fault_interval: us(6),
            tolerated: 1,
        };
        let (pattern, faults) = m.worst_pattern(4);
        assert_eq!(pattern, vec![true, true, false, true]);
        // The returned placement actually achieves the pattern and
        // respects the separation constraint.
        assert_eq!(m.misses(&faults, 4), pattern);
        for w in faults.windows(2) {
            assert!(w[1] - w[0] >= us(6));
        }
    }

    #[test]
    fn oversized_cluster_never_kills() {
        let m = MissModel {
            period: us(10),
            deadline: us(5),
            fault_interval: us(5),
            tolerated: 1,
        };
        let (pattern, faults) = m.worst_pattern(6);
        assert!(pattern.iter().all(|&miss| !miss));
        assert!(faults.is_empty());
    }

    #[test]
    fn analyse_weakly_hard_certifies_and_rejects() {
        let costs = TemCosts {
            compare: SimDuration::ZERO,
            vote: SimDuration::ZERO,
            context_restore: SimDuration::ZERO,
        };
        // One critical task: R(f) = 30 + 30·f ≤ 80 ⇒ tolerates 1 fault.
        let spec = TaskSpecBuilder::new(TaskId(1), "brake")
            .period(us(100))
            .deadline(us(80))
            .wcet(us(30))
            .priority(Priority(0))
            .criticality(Criticality::Critical)
            .build()
            .unwrap();
        let set: TaskSet = [spec].into_iter().collect();
        // T_F = 60us: a 2-fault cluster spans 60 < 80, so a job is
        // killable, but killing one pushes the next admissible fault
        // past the following job's window — at most 2 of any 3 die.
        let bounds = analyse_weakly_hard(
            &set,
            &[
                (TaskId(1), MkContract::new(2, 3)),
                (TaskId(1), MkContract::new(1, 3)),
            ],
            us(60),
            &costs,
        );
        assert_eq!(bounds[0].tolerated_faults, Some(1));
        assert_eq!(bounds[0].worst_misses, 2);
        assert!(bounds[0].satisfied, "(2,3) admits the worst pattern");
        assert!(!bounds[1].satisfied, "(1,3) does not");
        assert_eq!(bounds[0].worst_pattern.len(), 3);

        // Rare faults: the cluster no longer fits any window at all.
        let calm = analyse_weakly_hard(&set, &[(TaskId(1), MkContract::new(0, 8))], us(90), &costs);
        assert_eq!(calm[0].worst_misses, 0);
        assert!(calm[0].satisfied);
    }

    #[test]
    fn non_critical_contracts_are_fault_immune() {
        let set = classic_set();
        let bounds = analyse_weakly_hard(
            &set,
            &[(TaskId(1), MkContract::new(0, 4))],
            us(10),
            &TemCosts::nominal(),
        );
        // Non-critical recovery is free, so faults cannot break it.
        assert!(bounds[0].satisfied);
        assert_eq!(bounds[0].worst_misses, 0);
        assert_eq!(bounds[0].tolerated_faults, Some(MAX_TOLERATED_FAULTS));
    }
}
