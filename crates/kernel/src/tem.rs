//! Temporal error masking (TEM) — the paper's §2.5 and Figure 3.
//!
//! The kernel executes every critical task **twice** and compares the two
//! result vectors. Four scenarios follow:
//!
//! 1. *(i)* the results match → the result is delivered, no third copy runs;
//! 2. *(ii)* the comparison mismatches → a **third copy** runs and a 2-of-3
//!    majority vote decides; three distinct results mean an **omission**;
//! 3. *(iii)/(iv)* a hardware or kernel EDM fires during a copy → that copy
//!    is terminated, the CPU context is restored from the task control
//!    block, and a replacement copy starts immediately, reclaiming the
//!    terminated copy's unused time plus reserved slack;
//! 4. before every additional copy, the kernel checks the deadline; when no
//!    time remains, **no result is delivered** (omission failure) — the
//!    task's state is rolled back so a later activation starts clean.
//!
//! The result of a task is its output-port vector *plus* a digest of its
//! state region *plus* its control-flow path signature — a computation
//! error that corrupts only state, or a control-flow error that bypasses
//! the output-producing code (§2.7), must not slip past the comparison.
//! State is committed only when two matching results exist (§2.5: "state
//! data are only updated when two matching results have been produced").

use std::fmt;

use nlft_machine::edm::Edm;
use nlft_machine::fault::{StuckAtFault, TransientFault};
use nlft_machine::machine::{Machine, RunExit, NUM_PORTS};
use nlft_machine::mem::WORD_BYTES;
use nlft_machine::workloads::{Workload, DATA_BASE, STACK_TOP};

/// Size (bytes) of the task state region digested into the result.
pub const STATE_BYTES: u32 = 0x400;

/// Configuration of the TEM executor for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemConfig {
    /// Execution-time-monitor budget for a single copy, in cycles.
    pub copy_budget: u64,
    /// Total cycle budget for the whole job (its deadline, as cycles).
    pub deadline_cycles: u64,
    /// Maximum number of *results* that may be voted on (the paper's 3).
    pub max_results: u32,
    /// Minimum number of results gathered before comparison/vote. The
    /// paper's TEM uses 2 (compare, escalate to 3 on mismatch); a node
    /// under *suspicion* by the diagnosis layer sets 3 so every job is
    /// triplicated and voted defensively ("TEM always triples").
    pub min_results: u32,
    /// Hard cap on executions including EDM-killed copies.
    pub max_executions: u32,
    /// Kernel overhead: result comparison.
    pub compare_cycles: u64,
    /// Kernel overhead: majority vote.
    pub vote_cycles: u64,
    /// Kernel overhead: restoring a clean context after an EDM detection.
    pub restore_cycles: u64,
}

impl TemConfig {
    /// A configuration sized for a workload with single-copy WCET
    /// `copy_budget`, reserving slack for one full recovery execution.
    pub fn with_budget(copy_budget: u64) -> Self {
        TemConfig {
            copy_budget,
            // Two scheduled copies + one recovery copy + kernel overheads.
            deadline_cycles: copy_budget * 3 + 200,
            max_results: 3,
            min_results: 2,
            max_executions: 4,
            compare_cycles: 20,
            vote_cycles: 40,
            restore_cycles: 15,
        }
    }
}

/// How one execution (copy) of the task ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyResult {
    /// Copy ran to completion and produced a result (digest of outputs+state).
    Completed,
    /// An EDM terminated the copy.
    Detected(Edm),
}

/// Trace entry for one executed copy — the raw material of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyTrace {
    /// 0-based execution index.
    pub index: u32,
    /// How the copy ended.
    pub result: CopyResult,
    /// Cycles the copy consumed.
    pub cycles: u64,
}

/// Final outcome of one TEM-protected job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Both scheduled copies matched (scenario i).
    DeliveredClean,
    /// An error was detected and masked; result still delivered
    /// (scenarios ii–iv).
    DeliveredMasked {
        /// The mechanism that *first* detected the error.
        detected_by: Edm,
    },
    /// No result delivered: error detected but not recoverable in time, or
    /// the vote found three distinct results.
    Omission {
        /// The mechanism that detected the (last) error.
        detected_by: Edm,
    },
}

impl JobOutcome {
    /// `true` when a result was delivered.
    pub fn delivered(self) -> bool {
        !matches!(self, JobOutcome::Omission { .. })
    }
}

impl fmt::Display for JobOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobOutcome::DeliveredClean => write!(f, "delivered (clean)"),
            JobOutcome::DeliveredMasked { detected_by } => {
                write!(f, "delivered (masked; detected by {detected_by})")
            }
            JobOutcome::Omission { detected_by } => {
                write!(f, "omission (detected by {detected_by})")
            }
        }
    }
}

/// Full report of a TEM job execution.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// The job outcome.
    pub outcome: JobOutcome,
    /// Per-copy execution trace.
    pub copies: Vec<CopyTrace>,
    /// Total cycles consumed, including kernel overheads.
    pub cycles_used: u64,
    /// Delivered output ports (`None` on omission).
    pub outputs: Option<[Option<u32>; NUM_PORTS]>,
    /// Every EDM detection event, in order.
    pub detections: Vec<Edm>,
}

impl JobReport {
    /// Number of copies executed.
    pub fn executions(&self) -> u32 {
        self.copies.len() as u32
    }
}

/// A planned fault injection into a specific copy of the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionPlan {
    /// 0-based execution index to inject into.
    pub copy: u32,
    /// Cycle offset within that copy.
    pub at_cycle: u64,
    /// The fault itself.
    pub fault: TransientFault,
}

/// A fault active during one TEM job — either a one-shot transient planted
/// into a chosen copy, or a permanent stuck-at bit asserted before every
/// instruction of *every* copy. The stuck-at case is the theoretical limit
/// of time redundancy: all copies run on the same damaged hardware, so the
/// error either trips an EDM in each copy (→ persistent omissions, the
/// signal the diagnosis layer feeds on) or corrupts every copy identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobFault {
    /// One transient bit flip into one copy.
    Transient(InjectionPlan),
    /// A permanent stuck-at bit affecting all copies.
    StuckAt(StuckAtFault),
}

/// One execution's captured result: outputs, a state digest, and the
/// control-flow path signature. Including the signature closes the §2.7
/// gap: a control-flow error that skips or repeats code yet happens to
/// leave outputs and state intact still diverges from the clean copy here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ResultVector {
    outputs: [Option<u32>; NUM_PORTS],
    state_digest: u64,
    path_sig: u64,
}

/// The TEM executor for one workload.
#[derive(Debug, Clone)]
pub struct TemExecutor {
    config: TemConfig,
}

impl TemExecutor {
    /// Creates an executor with the given configuration.
    pub fn new(config: TemConfig) -> Self {
        TemExecutor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TemConfig {
        &self.config
    }

    /// Runs one TEM-protected job of `workload` on `machine`.
    ///
    /// `inputs` are bound to the workload's input ports before every copy
    /// (re-reading inputs is free in this model — they are latched).
    /// `inject` optionally plants one transient fault into a chosen copy;
    /// `None` runs the job fault-free.
    pub fn run_job(
        &self,
        machine: &mut Machine,
        workload: &Workload,
        inputs: &[u32],
        inject: Option<InjectionPlan>,
    ) -> JobReport {
        self.run_job_with_fault(machine, workload, inputs, inject.map(JobFault::Transient))
    }

    /// Runs one TEM-protected job with an optional [`JobFault`] — the
    /// persistence-aware generalisation of [`TemExecutor::run_job`]:
    /// transients strike one copy, stuck-at faults are asserted before
    /// every instruction of every copy.
    pub fn run_job_with_fault(
        &self,
        machine: &mut Machine,
        workload: &Workload,
        inputs: &[u32],
        fault: Option<JobFault>,
    ) -> JobReport {
        let cfg = &self.config;
        let mut cycles_used: u64 = 0;
        let mut copies: Vec<CopyTrace> = Vec::new();
        let mut detections: Vec<Edm> = Vec::new();
        let mut results: Vec<ResultVector> = Vec::new();
        // Snapshot the state region so every copy starts from identical
        // state, and so an omission can roll back (§2.6).
        let state_snapshot = snapshot_state(machine);

        let deliver = |outcome_mask: Option<Edm>,
                       outputs: [Option<u32>; NUM_PORTS],
                       copies: Vec<CopyTrace>,
                       cycles_used: u64,
                       detections: Vec<Edm>| JobReport {
            outcome: match outcome_mask {
                None => JobOutcome::DeliveredClean,
                Some(edm) => JobOutcome::DeliveredMasked { detected_by: edm },
            },
            copies,
            cycles_used,
            outputs: Some(outputs),
            detections,
        };

        let mut results_wanted: u32 = cfg.min_results.clamp(2, cfg.max_results);
        loop {
            // Deadline check before starting any copy (§2.5): a fresh copy
            // needs its full budget plus the pending comparison.
            let next_cost = cfg.copy_budget + cfg.compare_cycles;
            let out_of_time = cycles_used + next_cost > cfg.deadline_cycles;
            let out_of_copies = copies.len() as u32 >= cfg.max_executions;
            if (results.len() as u32) < results_wanted && (out_of_time || out_of_copies) {
                restore_state(machine, &state_snapshot);
                let last = detections
                    .last()
                    .copied()
                    .unwrap_or(Edm::ExecutionTimeMonitor);
                return JobReport {
                    outcome: JobOutcome::Omission { detected_by: last },
                    copies,
                    cycles_used,
                    outputs: None,
                    detections,
                };
            }

            if (results.len() as u32) < results_wanted {
                // Execute one more copy.
                let index = copies.len() as u32;
                restore_state(machine, &state_snapshot);
                machine.reset(0, STACK_TOP);
                machine.clear_outputs();
                for (&port, &v) in workload.input_ports.iter().zip(inputs) {
                    machine.set_input(port, v);
                }
                let exit = match fault {
                    Some(JobFault::Transient(plan)) if plan.copy == index => {
                        let (out, _) = nlft_machine::fault::run_with_injection(
                            machine,
                            cfg.copy_budget,
                            plan.at_cycle,
                            plan.fault,
                        );
                        out
                    }
                    Some(JobFault::StuckAt(stuck)) => {
                        nlft_machine::fault::run_with_stuck_at(machine, cfg.copy_budget, stuck)
                    }
                    _ => machine.run(cfg.copy_budget),
                };
                cycles_used += exit.cycles_used;
                match exit.exit {
                    RunExit::Halted => {
                        // Digest the state region; an ECC trap while reading
                        // state counts as a detection of this copy.
                        match digest_state(machine) {
                            Ok(state_digest) => {
                                copies.push(CopyTrace {
                                    index,
                                    result: CopyResult::Completed,
                                    cycles: exit.cycles_used,
                                });
                                results.push(ResultVector {
                                    outputs: *machine.outputs(),
                                    state_digest,
                                    path_sig: machine.cpu.path_sig,
                                });
                            }
                            Err(e) => {
                                let edm = Edm::from_exception(&e);
                                detections.push(edm);
                                copies.push(CopyTrace {
                                    index,
                                    result: CopyResult::Detected(edm),
                                    cycles: exit.cycles_used,
                                });
                                cycles_used += cfg.restore_cycles;
                            }
                        }
                    }
                    RunExit::Exception(e) => {
                        // Scenario iii/iv: terminate, restore context, retry.
                        let edm = Edm::from_exception(&e);
                        detections.push(edm);
                        copies.push(CopyTrace {
                            index,
                            result: CopyResult::Detected(edm),
                            cycles: exit.cycles_used,
                        });
                        cycles_used += cfg.restore_cycles;
                    }
                    RunExit::BudgetExhausted => {
                        let edm = Edm::ExecutionTimeMonitor;
                        detections.push(edm);
                        copies.push(CopyTrace {
                            index,
                            result: CopyResult::Detected(edm),
                            cycles: exit.cycles_used,
                        });
                        cycles_used += cfg.restore_cycles;
                    }
                }
                continue;
            }

            // Enough results: compare or vote.
            if results.len() == 2 {
                cycles_used += cfg.compare_cycles;
                if results[0] == results[1] {
                    let masked = detections.first().copied();
                    return deliver(masked, results[1].outputs, copies, cycles_used, detections);
                }
                // Scenario ii: mismatch → need a third result for the vote.
                detections.push(Edm::TemComparison);
                if cfg.max_results >= 3 {
                    results_wanted = 3;
                    continue;
                }
                restore_state(machine, &state_snapshot);
                return JobReport {
                    outcome: JobOutcome::Omission {
                        detected_by: Edm::TemComparison,
                    },
                    copies,
                    cycles_used,
                    outputs: None,
                    detections,
                };
            }

            // Three results: 2-of-3 majority vote.
            debug_assert_eq!(results.len(), 3);
            cycles_used += cfg.vote_cycles;
            // The third result was executed last, so if it belongs to the
            // majority the machine state is already the winner's.
            let winner = if results[2] == results[0] || results[2] == results[1] {
                Some(results[2])
            } else if results[0] == results[1] {
                // Cannot happen via the mismatch path, but a replacement
                // sequence can produce it; state must be re-materialised by
                // re-running the winning copy — model as accepting result 1
                // whose state digest equals result 0's.
                Some(results[1])
            } else {
                None
            };
            return match winner {
                Some(w) => {
                    let first = detections.first().copied();
                    deliver(first, w.outputs, copies, cycles_used, detections)
                }
                None => {
                    detections.push(Edm::TemVote);
                    restore_state(machine, &state_snapshot);
                    JobReport {
                        outcome: JobOutcome::Omission {
                            detected_by: Edm::TemVote,
                        },
                        copies,
                        cycles_used,
                        outputs: None,
                        detections,
                    }
                }
            };
        }
    }
}

fn snapshot_state(machine: &Machine) -> Vec<u32> {
    (0..STATE_BYTES / WORD_BYTES)
        .map(|i| {
            machine
                .mem
                .peek(DATA_BASE + i * WORD_BYTES)
                .expect("state region is mapped")
        })
        .collect()
}

fn restore_state(machine: &mut Machine, snapshot: &[u32]) {
    for (i, &w) in snapshot.iter().enumerate() {
        machine
            .mem
            .store(DATA_BASE + i as u32 * WORD_BYTES, w)
            .expect("state region is mapped");
    }
}

/// FNV-1a digest of the state region, read through ECC like the kernel would.
fn digest_state(machine: &mut Machine) -> Result<u64, nlft_machine::machine::Exception> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..STATE_BYTES / WORD_BYTES {
        let w = machine.mem.load(DATA_BASE + i * WORD_BYTES)?;
        h ^= u64::from(w);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlft_machine::fault::FaultTarget;
    use nlft_machine::isa::Reg;
    use nlft_machine::workloads;

    fn executor_for(w: &Workload) -> (TemExecutor, Machine) {
        let machine = w.instantiate();
        // Measure a clean copy to size the budget.
        let inputs: Vec<u32> = w.input_ports.iter().map(|_| 500).collect();
        let (_, cycles) = w.golden_run(&inputs);
        let exec = TemExecutor::new(TemConfig::with_budget(cycles * 2));
        (exec, machine)
    }

    #[test]
    fn scenario_i_fault_free_two_copies() {
        let w = workloads::pid_controller();
        let (exec, mut m) = executor_for(&w);
        let report = exec.run_job(&mut m, &w, &[1000, 900], None);
        assert_eq!(report.outcome, JobOutcome::DeliveredClean);
        assert_eq!(report.executions(), 2, "no third copy when results match");
        assert!(report.detections.is_empty());
        assert!(report.outputs.unwrap()[0].is_some());
    }

    #[test]
    fn scenario_iii_edm_detection_triggers_replacement() {
        let w = workloads::pid_controller();
        let (exec, mut m) = executor_for(&w);
        // PC fault in copy 1 → hardware exception → replacement copy.
        let plan = InjectionPlan {
            copy: 1,
            at_cycle: 5,
            fault: TransientFault {
                target: FaultTarget::Pc,
                mask: 1 << 20,
            },
        };
        let report = exec.run_job(&mut m, &w, &[1000, 900], Some(plan));
        assert!(
            matches!(report.outcome, JobOutcome::DeliveredMasked { .. }),
            "outcome was {:?}",
            report.outcome
        );
        assert_eq!(report.executions(), 3, "killed copy + replacement");
        assert!(matches!(report.copies[1].result, CopyResult::Detected(_)));
        assert!(report.outputs.is_some());
    }

    #[test]
    fn scenario_iv_edm_detection_in_first_copy() {
        let w = workloads::pid_controller();
        let (exec, mut m) = executor_for(&w);
        let plan = InjectionPlan {
            copy: 0,
            at_cycle: 5,
            fault: TransientFault {
                target: FaultTarget::Pc,
                mask: 1 << 20,
            },
        };
        let report = exec.run_job(&mut m, &w, &[1000, 900], Some(plan));
        assert!(report.outcome.delivered());
        assert!(matches!(report.copies[0].result, CopyResult::Detected(_)));
        assert_eq!(report.executions(), 3);
    }

    #[test]
    fn scenario_ii_comparison_mismatch_then_vote() {
        let w = workloads::sum_series();
        let (exec, mut m) = executor_for(&w);
        // Silent data corruption in copy 0: flip a low bit of the accumulator
        // mid-loop. No EDM fires; only the comparison can see it.
        let plan = InjectionPlan {
            copy: 0,
            at_cycle: 60,
            fault: TransientFault {
                target: FaultTarget::Register(Reg::R1),
                mask: 1 << 3,
            },
        };
        let report = exec.run_job(&mut m, &w, &[100], Some(plan));
        match report.outcome {
            JobOutcome::DeliveredMasked { detected_by } => {
                assert_eq!(detected_by, Edm::TemComparison);
            }
            other => panic!("expected masked-by-comparison, got {other:?}"),
        }
        assert_eq!(report.executions(), 3, "vote needs a third copy");
        // The delivered result is the correct one.
        assert_eq!(report.outputs.unwrap()[0], Some(5050));
    }

    #[test]
    fn early_edm_detection_reclaims_time_and_still_delivers() {
        // A PC fault trips the hardware within a few cycles, so the killed
        // copy costs almost nothing; even a tight deadline of ~2 budgets
        // leaves room for the replacement — the "time reclaimed from the
        // terminated copy" of §2.5.
        let w = workloads::pid_controller();
        let inputs = [1000u32, 900];
        let (_, clean_cycles) = w.golden_run(&inputs);
        let mut cfg = TemConfig::with_budget(clean_cycles + 10);
        cfg.deadline_cycles = (clean_cycles + 10) * 2 + 2 * cfg.compare_cycles + cfg.restore_cycles;
        let exec = TemExecutor::new(cfg);
        let mut m = w.instantiate();
        let plan = InjectionPlan {
            copy: 0,
            at_cycle: 5,
            fault: TransientFault {
                target: FaultTarget::Pc,
                mask: 1 << 20,
            },
        };
        let report = exec.run_job(&mut m, &w, &inputs, Some(plan));
        assert!(
            matches!(report.outcome, JobOutcome::DeliveredMasked { .. }),
            "got {:?}",
            report.outcome
        );
    }

    #[test]
    fn deadline_exhaustion_forces_omission() {
        // A budget-overrun fault wastes a *full* copy budget, so a deadline
        // sized for exactly two copies cannot absorb the recovery.
        let w = workloads::sum_series();
        let (_, clean_cycles) = w.golden_run(&[100]);
        let budget = clean_cycles + 20;
        let mut cfg = TemConfig::with_budget(budget);
        cfg.deadline_cycles = budget * 2 + cfg.compare_cycles;
        let exec = TemExecutor::new(cfg);
        let mut m = w.instantiate();
        let plan = InjectionPlan {
            copy: 0,
            at_cycle: 30,
            fault: TransientFault {
                target: FaultTarget::Register(Reg::R0),
                mask: 1 << 28, // loop counter explodes → overrun
            },
        };
        let report = exec.run_job(&mut m, &w, &[100], Some(plan));
        match report.outcome {
            JobOutcome::Omission { detected_by } => {
                assert_eq!(detected_by, Edm::ExecutionTimeMonitor);
            }
            other => panic!("expected omission, got {other:?}"),
        }
        assert!(report.outputs.is_none(), "omission delivers nothing");
    }

    #[test]
    fn state_rolls_back_on_omission() {
        let w = workloads::pid_controller();
        let inputs = [1000u32, 900];
        let (_, clean_cycles) = w.golden_run(&inputs);
        let mut cfg = TemConfig::with_budget(clean_cycles + 10);
        // Cap executions at 2: the EDM-killed copy cannot be replaced, so
        // only one result exists and the job must omit.
        cfg.max_executions = 2;
        let exec = TemExecutor::new(cfg);
        let mut m = w.instantiate();
        let before = m.mem.peek(DATA_BASE).unwrap();
        let plan = InjectionPlan {
            copy: 0,
            at_cycle: 5,
            fault: TransientFault {
                target: FaultTarget::Pc,
                mask: 1 << 20,
            },
        };
        let report = exec.run_job(&mut m, &w, &inputs, Some(plan));
        assert!(matches!(report.outcome, JobOutcome::Omission { .. }));
        assert_eq!(
            m.mem.peek(DATA_BASE).unwrap(),
            before,
            "integral state must be rolled back on omission"
        );
    }

    #[test]
    fn state_commits_on_delivery() {
        let w = workloads::pid_controller();
        let (exec, mut m) = executor_for(&w);
        let before = m.mem.peek(DATA_BASE).unwrap();
        let report = exec.run_job(&mut m, &w, &[1000, 0], None);
        assert!(report.outcome.delivered());
        assert_ne!(
            m.mem.peek(DATA_BASE).unwrap(),
            before,
            "integral state must be updated after delivery"
        );
    }

    #[test]
    fn budget_overrun_detected_by_execution_time_monitor() {
        let w = workloads::sum_series();
        let (exec, mut m) = executor_for(&w);
        // Flip the loop counter to a huge value → runs far past the budget.
        let plan = InjectionPlan {
            copy: 0,
            at_cycle: 30,
            fault: TransientFault {
                target: FaultTarget::Register(Reg::R0),
                mask: 1 << 28,
            },
        };
        let report = exec.run_job(&mut m, &w, &[100], Some(plan));
        assert!(
            report.detections.contains(&Edm::ExecutionTimeMonitor),
            "detections were {:?}",
            report.detections
        );
        // Masked by replacement (if deadline allowed) or an omission —
        // either way the bad result must not be delivered.
        if let Some(outputs) = report.outputs {
            assert_eq!(outputs[0], Some(5050));
        }
    }

    #[test]
    fn identical_double_injection_defeats_comparison_realistically() {
        // Injecting the *same* silent corruption into both copies makes both
        // results identical and wrong — the known theoretical limit of pure
        // time redundancy (correlated faults). TEM delivers the wrong value;
        // this documents the model boundary honestly.
        let w = workloads::sum_series();
        let (exec, _) = executor_for(&w);
        let golden = w.golden_run(&[100]).0[0];
        let mut outputs = Vec::new();
        for copy in 0..2 {
            let mut m = w.instantiate();
            let plan = InjectionPlan {
                copy,
                at_cycle: 60,
                fault: TransientFault {
                    target: FaultTarget::Register(Reg::R1),
                    mask: 1 << 3,
                },
            };
            let r = exec.run_job(&mut m, &w, &[100], Some(plan));
            outputs.push(r.outputs.map(|o| o[0]));
        }
        // Single-copy injections are each masked (vote picks the two clean
        // copies), so both deliveries match golden.
        for o in outputs {
            assert_eq!(o, Some(golden));
        }
    }

    #[test]
    fn memory_state_double_flip_detected_via_ecc_digest() {
        let w = workloads::pid_controller();
        let (exec, mut m) = executor_for(&w);
        // Double-bit flip in the state region mid-copy: the completed copy's
        // state digest read traps on ECC.
        let plan = InjectionPlan {
            copy: 0,
            at_cycle: 10,
            fault: TransientFault {
                target: FaultTarget::MemoryWord(DATA_BASE + 8),
                mask: 0b11,
            },
        };
        let report = exec.run_job(&mut m, &w, &[1000, 900], Some(plan));
        // Either the copy itself trapped (if it read the word) or the digest
        // pass caught it; in both cases ECC appears in the detections and
        // the final result is correct.
        if !report.detections.is_empty() {
            assert!(report.detections.contains(&Edm::Ecc));
        }
        assert!(report.outcome.delivered());
    }

    #[test]
    fn control_flow_divergence_with_identical_outputs_is_detected() {
        // Both branch arms write the same value, so the *output* comparison
        // alone could never see a flipped branch decision — the §2.7
        // bypass. The path signature catches it.
        use nlft_machine::asm::assemble;
        use nlft_machine::workloads::standard_map;
        let image = assemble(
            "    in  r0, port0
                 in  r1, port1
                 cmp r0, r1
                 jn  less
                 ldi r2, 1
                 jmp done
             less:
                 ldi r2, 1
             done:
                 out r2, port0
                 halt",
        )
        .unwrap();
        let workload = Workload {
            name: "cfc-bypass",
            image,
            map: standard_map(),
            input_ports: vec![0, 1],
            output_ports: vec![0],
        };
        let mut clean = workload.instantiate();
        clean.set_input(0, 5);
        clean.set_input(1, 5);
        clean.run(1_000);
        assert_eq!(clean.output(0), Some(1));

        let exec = TemExecutor::new(TemConfig::with_budget(200));
        let mut m = workload.instantiate();
        // Flip the N flag right after CMP, before JN, in copy 0 only.
        let plan = InjectionPlan {
            copy: 0,
            at_cycle: 3,
            fault: TransientFault {
                target: FaultTarget::Status,
                mask: 0b10,
            },
        };
        let report = exec.run_job(&mut m, &workload, &[5, 5], Some(plan));
        assert!(
            report.detections.contains(&Edm::TemComparison),
            "path-signature divergence must trip the comparison: {:?}",
            report.detections
        );
        // The vote still delivers the (identical) correct output.
        assert!(report.outcome.delivered());
        assert_eq!(report.outputs.unwrap()[0], Some(1));
    }

    #[test]
    fn path_signatures_are_reproducible_across_copies() {
        let w = workloads::sum_series();
        let (exec, mut m) = executor_for(&w);
        let report = exec.run_job(&mut m, &w, &[100], None);
        assert_eq!(
            report.outcome,
            JobOutcome::DeliveredClean,
            "identical paths must compare equal"
        );
    }

    #[test]
    fn min_results_three_always_triples() {
        // A suspect node runs three copies and votes even when the first
        // two match — the defensive mode the escalation ladder switches on.
        let w = workloads::pid_controller();
        let (_, cycles) = w.golden_run(&[1000, 900]);
        let mut cfg = TemConfig::with_budget(cycles * 2);
        cfg.min_results = 3;
        let exec = TemExecutor::new(cfg);
        let mut m = w.instantiate();
        let report = exec.run_job(&mut m, &w, &[1000, 900], None);
        assert_eq!(report.outcome, JobOutcome::DeliveredClean);
        assert_eq!(report.executions(), 3, "triplicated even fault-free");
        // And a single silent corruption is outvoted without a TemComparison
        // escalation round.
        let mut m = w.instantiate();
        let plan = InjectionPlan {
            copy: 1,
            at_cycle: 8,
            fault: TransientFault {
                target: FaultTarget::Register(Reg::R1),
                mask: 1 << 2,
            },
        };
        let report = exec.run_job(&mut m, &w, &[1000, 900], Some(plan));
        assert!(report.outcome.delivered());
    }

    #[test]
    fn stuck_at_job_fault_defeats_time_redundancy() {
        use nlft_machine::fault::StuckAtFault;
        // Increment register stuck at zero: every copy loops forever, every
        // copy is killed by the execution-time monitor, so the job omits —
        // and does so *every* activation, the persistent signature that
        // distinguishes permanent damage from transient bad luck.
        let w = workloads::sum_series();
        let (_, cycles) = w.golden_run(&[100]);
        let exec = TemExecutor::new(TemConfig::with_budget(cycles * 2));
        let stuck = StuckAtFault {
            target: FaultTarget::Register(Reg::R2),
            bit: 1,
            stuck_high: false,
        };
        for _ in 0..3 {
            let mut m = w.instantiate();
            let report =
                exec.run_job_with_fault(&mut m, &w, &[100], Some(JobFault::StuckAt(stuck)));
            match report.outcome {
                JobOutcome::Omission { detected_by } => {
                    assert_eq!(detected_by, Edm::ExecutionTimeMonitor);
                }
                other => panic!("stuck increment must omit, got {other:?}"),
            }
            assert!(!report.detections.is_empty());
        }
    }

    #[test]
    fn benign_stuck_at_job_fault_delivers_clean() {
        use nlft_machine::fault::StuckAtFault;
        // A stuck bit in an unused register never activates; both copies
        // match and the job is indistinguishable from a healthy one.
        let w = workloads::sum_series();
        let (_, cycles) = w.golden_run(&[100]);
        let exec = TemExecutor::new(TemConfig::with_budget(cycles * 2));
        let stuck = StuckAtFault {
            target: FaultTarget::Register(Reg::R6),
            bit: 1 << 9,
            stuck_high: true,
        };
        let mut m = w.instantiate();
        let report = exec.run_job_with_fault(&mut m, &w, &[100], Some(JobFault::StuckAt(stuck)));
        assert_eq!(report.outcome, JobOutcome::DeliveredClean);
        assert_eq!(report.outputs.unwrap()[0], Some(5050));
    }

    #[test]
    fn report_cycles_account_for_overheads() {
        let w = workloads::sum_series();
        let (exec, mut m) = executor_for(&w);
        let report = exec.run_job(&mut m, &w, &[50], None);
        let copy_cycles: u64 = report.copies.iter().map(|c| c.cycles).sum();
        assert_eq!(
            report.cycles_used,
            copy_cycles + exec.config().compare_cycles,
            "clean job = two copies + one comparison"
        );
    }
}
