//! The node executive: the kernel's task-activation loop.
//!
//! Implements the three error-handling strategies of §2.2 on one machine:
//!
//! 1. **critical tasks** run under TEM ([`crate::tem`]) and may consume
//!    recovery slack; unrecoverable errors become omissions;
//! 2. **non-critical tasks** run once; any detected error shuts the task
//!    down so the rest of the schedule is untouched;
//! 3. **kernel errors** (faults striking while kernel code runs) silence
//!    the whole node — recovery is the system's job, not the node's.
//!
//! The executive also implements §2.5's permanent-fault suspicion: a task
//! whose activations keep failing for `repeated_error_threshold` consecutive
//! frames takes the node down for off-line diagnosis.

use std::fmt;

use nlft_machine::edm::Edm;
use nlft_machine::machine::{Machine, RunExit, NUM_PORTS};
use nlft_machine::mem::WORD_BYTES;
use nlft_machine::workloads::{Workload, DATA_BASE, STACK_TOP};

use crate::integrity::crc32;

use crate::task::{Criticality, TaskId, TaskSpec};
use crate::tem::{InjectionPlan, JobOutcome, TemConfig, TemExecutor};

/// A task bound to its executable workload.
#[derive(Debug, Clone)]
pub struct BoundTask {
    /// Static scheduling parameters.
    pub spec: TaskSpec,
    /// The program the task runs.
    pub workload: Workload,
    /// TEM configuration; required for critical tasks, ignored for
    /// non-critical ones.
    pub tem: Option<TemConfig>,
}

/// Executive configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutiveConfig {
    /// Consecutive erroneous activations of one task before the node
    /// suspects a permanent fault and silences itself (§2.5).
    pub repeated_error_threshold: u32,
    /// Cycle budget for one activation of a non-critical task.
    pub non_critical_budget: u64,
    /// Kernel overhead cycles charged per activation (dispatching,
    /// bookkeeping) — the ~5% of CPU the paper attributes to the kernel.
    pub kernel_overhead_cycles: u64,
    /// Kernel-side state protection (§2.6): after every delivered critical
    /// activation the kernel keeps a CRC-sealed copy of the task's state
    /// region; before the next activation it verifies the region and, on a
    /// mismatch (e.g. a wild store by another task or a fault between
    /// activations), restores the last good copy — a detection by the
    /// data-integrity mechanism that is then masked.
    pub seal_task_state: bool,
}

impl Default for ExecutiveConfig {
    fn default() -> Self {
        ExecutiveConfig {
            repeated_error_threshold: 3,
            non_critical_budget: 50_000,
            kernel_overhead_cycles: 40,
            seal_task_state: true,
        }
    }
}

/// Where an injected fault strikes, relative to the executive's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionSite {
    /// During a task's execution: frame index, position of the task in the
    /// schedule, and the in-job plan.
    Task {
        /// Frame in which to inject.
        frame: u32,
        /// Index of the task within the executive's schedule.
        task_index: usize,
        /// The TEM-level plan (copy, cycle, fault).
        plan: InjectionPlan,
    },
    /// During kernel execution in the given frame: detected by the kernel's
    /// internal checks, so the node goes silent (§2.2 strategy 3).
    Kernel {
        /// Frame in which the kernel is hit.
        frame: u32,
    },
    /// A wild store corrupting a task's state region *between* activations
    /// (the §2.6 scenario end-to-end checks exist for): before the given
    /// frame's activation of the task, `value` is written over the state
    /// word at `offset_words`.
    WildStateWrite {
        /// Frame before whose activation the write lands.
        frame: u32,
        /// Index of the victim task in the schedule.
        task_index: usize,
        /// Word offset within the state region.
        offset_words: u32,
        /// The garbage value written.
        value: u32,
    },
}

/// The record of one task activation.
#[derive(Debug, Clone, PartialEq)]
pub struct Activation {
    /// Frame number.
    pub frame: u32,
    /// Which task.
    pub task: TaskId,
    /// What happened.
    pub outcome: ActivationOutcome,
    /// Cycles the activation consumed (task + TEM overheads).
    pub cycles: u64,
}

/// Outcome of one task activation.
#[derive(Debug, Clone, PartialEq)]
pub enum ActivationOutcome {
    /// Result delivered (critical: via TEM; non-critical: plain run).
    Delivered {
        /// Output ports produced.
        outputs: [Option<u32>; NUM_PORTS],
        /// `true` if an error was masked along the way.
        masked: bool,
    },
    /// Critical task produced no result this period.
    Omission {
        /// The detecting mechanism.
        detected_by: Edm,
    },
    /// Non-critical task errored and was shut down.
    TaskShutdown {
        /// The detecting mechanism.
        detected_by: Edm,
    },
    /// Task skipped because it was previously shut down.
    Skipped,
}

/// Terminal state of the node after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Ran all frames.
    Completed,
    /// Kernel error → node silenced itself.
    FailSilent {
        /// Frame at which the node went silent.
        frame: u32,
    },
    /// Repeated task errors → node shut down for off-line diagnosis.
    SuspectedPermanent {
        /// The repeatedly failing task.
        task: TaskId,
        /// Frame at which the threshold tripped.
        frame: u32,
    },
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeState::Completed => write!(f, "completed"),
            NodeState::FailSilent { frame } => write!(f, "fail-silent at frame {frame}"),
            NodeState::SuspectedPermanent { task, frame } => {
                write!(f, "suspected permanent fault in {task} at frame {frame}")
            }
        }
    }
}

/// Full report of an executive run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutiveReport {
    /// Every activation, in execution order.
    pub activations: Vec<Activation>,
    /// Terminal node state.
    pub node_state: NodeState,
    /// Cycles spent in task code (including TEM copies).
    pub task_cycles: u64,
    /// Cycles charged to the kernel (dispatch + TEM overheads).
    pub kernel_cycles: u64,
}

impl ExecutiveReport {
    /// Fraction of CPU time spent in the kernel — the paper assumes ~5%,
    /// which grounds its `P_FS` parameter.
    pub fn kernel_share(&self) -> f64 {
        let total = self.task_cycles + self.kernel_cycles;
        if total == 0 {
            0.0
        } else {
            self.kernel_cycles as f64 / total as f64
        }
    }

    /// Activations of one task.
    pub fn for_task(&self, id: TaskId) -> impl Iterator<Item = &Activation> {
        self.activations.iter().filter(move |a| a.task == id)
    }
}

/// The node executive.
#[derive(Debug)]
pub struct NodeExecutive {
    tasks: Vec<BoundTask>,
    config: ExecutiveConfig,
}

impl NodeExecutive {
    /// Creates an executive over a schedule of bound tasks. Tasks execute
    /// each frame in the given order (assumed priority-sorted).
    ///
    /// # Panics
    ///
    /// Panics if a critical task lacks a TEM configuration.
    pub fn new(tasks: Vec<BoundTask>, config: ExecutiveConfig) -> Self {
        for t in &tasks {
            if t.spec.criticality == Criticality::Critical {
                assert!(
                    t.tem.is_some(),
                    "critical task {} requires a TEM configuration",
                    t.spec.name
                );
            }
        }
        NodeExecutive { tasks, config }
    }

    /// Runs `frames` cyclic frames on a fresh machine per task (tasks are
    /// MMU-confined and share nothing but the executive). Inputs for each
    /// activation come from `inputs(task_index, frame)`.
    pub fn run(
        &self,
        frames: u32,
        mut inputs: impl FnMut(usize, u32) -> Vec<u32>,
        injection: Option<InjectionSite>,
    ) -> ExecutiveReport {
        let mut machines: Vec<Machine> = self
            .tasks
            .iter()
            .map(|t| t.workload.instantiate())
            .collect();
        let mut shutdown = vec![false; self.tasks.len()];
        let mut consecutive_errors = vec![0u32; self.tasks.len()];
        // Kernel-side protected copies of each critical task's state region.
        let mut sealed_state: Vec<Option<(Vec<u32>, u32)>> = vec![None; self.tasks.len()];
        let mut activations = Vec::new();
        let mut task_cycles = 0u64;
        let mut kernel_cycles = 0u64;

        for frame in 0..frames {
            // Kernel-window fault?
            if let Some(InjectionSite::Kernel { frame: f }) = injection {
                if f == frame {
                    // Kernel assertions/EDMs catch it; node goes silent.
                    return ExecutiveReport {
                        activations,
                        node_state: NodeState::FailSilent { frame },
                        task_cycles,
                        kernel_cycles,
                    };
                }
            }
            for (idx, bound) in self.tasks.iter().enumerate() {
                kernel_cycles += self.config.kernel_overhead_cycles;
                if shutdown[idx] {
                    activations.push(Activation {
                        frame,
                        task: bound.spec.id,
                        outcome: ActivationOutcome::Skipped,
                        cycles: 0,
                    });
                    continue;
                }
                let plan = match injection {
                    Some(InjectionSite::Task {
                        frame: f,
                        task_index,
                        plan,
                    }) if f == frame && task_index == idx => Some(plan),
                    _ => None,
                };
                let input_vec = inputs(idx, frame);
                let machine = &mut machines[idx];
                // Apply any scheduled wild store before this activation.
                if let Some(InjectionSite::WildStateWrite {
                    frame: f,
                    task_index,
                    offset_words,
                    value,
                }) = injection
                {
                    if f == frame && task_index == idx {
                        let addr = DATA_BASE + (offset_words % 0x100) * WORD_BYTES;
                        machine
                            .mem
                            .store(addr, value)
                            .expect("state region is mapped");
                    }
                }
                let mut integrity_detection = false;
                if self.config.seal_task_state && bound.spec.criticality == Criticality::Critical {
                    kernel_cycles += self.config.kernel_overhead_cycles;
                    if let Some((copy, crc)) = &sealed_state[idx] {
                        let current = read_state(machine);
                        if crc32(&current) != *crc {
                            // Wild write detected: restore the kernel copy.
                            write_state(machine, copy);
                            integrity_detection = true;
                        }
                    }
                }
                let (outcome, cycles, errored) = match bound.spec.criticality {
                    Criticality::Critical => {
                        let tem = TemExecutor::new(bound.tem.expect("validated in new"));
                        let report = tem.run_job(machine, &bound.workload, &input_vec, plan);
                        // TEM overheads are kernel work; copies are task work.
                        let copies: u64 = report.copies.iter().map(|c| c.cycles).sum();
                        task_cycles += copies;
                        kernel_cycles += report.cycles_used - copies;
                        let errored = !report.detections.is_empty() || integrity_detection;
                        let outcome = match report.outcome {
                            JobOutcome::DeliveredClean => ActivationOutcome::Delivered {
                                outputs: report.outputs.expect("delivered"),
                                masked: integrity_detection,
                            },
                            JobOutcome::DeliveredMasked { .. } => ActivationOutcome::Delivered {
                                outputs: report.outputs.expect("delivered"),
                                masked: true,
                            },
                            JobOutcome::Omission { detected_by } => {
                                ActivationOutcome::Omission { detected_by }
                            }
                        };
                        if self.config.seal_task_state
                            && matches!(outcome, ActivationOutcome::Delivered { .. })
                        {
                            let state = read_state(machine);
                            let crc = crc32(&state);
                            sealed_state[idx] = Some((state, crc));
                        }
                        (outcome, report.cycles_used, errored)
                    }
                    Criticality::NonCritical => {
                        machine.reset(0, STACK_TOP);
                        machine.clear_outputs();
                        for (&port, &v) in bound.workload.input_ports.iter().zip(&input_vec) {
                            machine.set_input(port, v);
                        }
                        let exit = match plan {
                            Some(p) => {
                                let (o, _) = nlft_machine::fault::run_with_injection(
                                    machine,
                                    self.config.non_critical_budget,
                                    p.at_cycle,
                                    p.fault,
                                );
                                o
                            }
                            None => machine.run(self.config.non_critical_budget),
                        };
                        task_cycles += exit.cycles_used;
                        match exit.exit {
                            RunExit::Halted => (
                                ActivationOutcome::Delivered {
                                    outputs: *machine.outputs(),
                                    masked: false,
                                },
                                exit.cycles_used,
                                false,
                            ),
                            RunExit::Exception(e) => {
                                shutdown[idx] = true;
                                (
                                    ActivationOutcome::TaskShutdown {
                                        detected_by: Edm::from_exception(&e),
                                    },
                                    exit.cycles_used,
                                    true,
                                )
                            }
                            RunExit::BudgetExhausted => {
                                shutdown[idx] = true;
                                (
                                    ActivationOutcome::TaskShutdown {
                                        detected_by: Edm::ExecutionTimeMonitor,
                                    },
                                    exit.cycles_used,
                                    true,
                                )
                            }
                        }
                    }
                };
                if errored {
                    consecutive_errors[idx] += 1;
                } else {
                    consecutive_errors[idx] = 0;
                }
                let suspect = consecutive_errors[idx] >= self.config.repeated_error_threshold;
                activations.push(Activation {
                    frame,
                    task: bound.spec.id,
                    outcome,
                    cycles,
                });
                if suspect {
                    return ExecutiveReport {
                        activations,
                        node_state: NodeState::SuspectedPermanent {
                            task: bound.spec.id,
                            frame,
                        },
                        task_cycles,
                        kernel_cycles,
                    };
                }
            }
        }
        ExecutiveReport {
            activations,
            node_state: NodeState::Completed,
            task_cycles,
            kernel_cycles,
        }
    }
}

/// Kernel-mode raw read of a task's state region (oracle view; the sealed
/// copy lives in kernel memory, outside the task's MMU map).
fn read_state(machine: &Machine) -> Vec<u32> {
    (0..0x100u32)
        .map(|i| {
            machine
                .mem
                .peek(DATA_BASE + i * WORD_BYTES)
                .expect("state region is mapped")
        })
        .collect()
}

fn write_state(machine: &mut Machine, words: &[u32]) {
    for (i, &w) in words.iter().enumerate() {
        machine
            .mem
            .store(DATA_BASE + i as u32 * WORD_BYTES, w)
            .expect("state region is mapped");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Priority, TaskSpecBuilder};
    use nlft_machine::fault::{FaultTarget, StuckAtFault, TransientFault};
    use nlft_machine::isa::Reg;
    use nlft_machine::workloads;
    use nlft_sim::time::SimDuration;

    fn spec(id: u32, crit: Criticality) -> TaskSpec {
        TaskSpecBuilder::new(TaskId(id), format!("t{id}"))
            .period(SimDuration::from_millis(5))
            .wcet(SimDuration::from_micros(500))
            .priority(Priority(id))
            .criticality(crit)
            .build()
            .unwrap()
    }

    fn bound_pid(id: u32) -> BoundTask {
        let w = workloads::pid_controller();
        let (_, cycles) = w.golden_run(&[500, 400]);
        BoundTask {
            spec: spec(id, Criticality::Critical),
            workload: w,
            tem: Some(TemConfig::with_budget(cycles * 2)),
        }
    }

    fn bound_sum_noncritical(id: u32) -> BoundTask {
        BoundTask {
            spec: spec(id, Criticality::NonCritical),
            workload: workloads::sum_series(),
            tem: None,
        }
    }

    #[test]
    fn clean_run_delivers_every_frame() {
        let exec = NodeExecutive::new(
            vec![bound_pid(1), bound_sum_noncritical(2)],
            ExecutiveConfig::default(),
        );
        let report = exec.run(5, |_, _| vec![500, 400], None);
        assert_eq!(report.node_state, NodeState::Completed);
        assert_eq!(report.activations.len(), 10);
        assert!(report
            .activations
            .iter()
            .all(|a| matches!(a.outcome, ActivationOutcome::Delivered { .. })));
    }

    #[test]
    fn kernel_share_is_modest() {
        let exec = NodeExecutive::new(vec![bound_pid(1)], ExecutiveConfig::default());
        // Our toy PID copies are only ~50 cycles, so the fixed kernel
        // overhead (dispatch + sealed-state check) looms much larger than
        // the ~5% of a real system; the bound here just guards against
        // runaway accounting.
        let report = exec.run(20, |_, _| vec![500, 400], None);
        let share = report.kernel_share();
        assert!(share > 0.0 && share < 0.65, "kernel share {share}");
    }

    #[test]
    fn critical_task_masks_transient() {
        let exec = NodeExecutive::new(vec![bound_pid(1)], ExecutiveConfig::default());
        let site = InjectionSite::Task {
            frame: 2,
            task_index: 0,
            plan: InjectionPlan {
                copy: 0,
                at_cycle: 5,
                fault: TransientFault {
                    target: FaultTarget::Pc,
                    mask: 1 << 20,
                },
            },
        };
        let report = exec.run(5, |_, _| vec![500, 400], Some(site));
        assert_eq!(report.node_state, NodeState::Completed);
        let frame2 = report
            .activations
            .iter()
            .find(|a| a.frame == 2)
            .expect("frame 2 ran");
        assert!(
            matches!(
                frame2.outcome,
                ActivationOutcome::Delivered { masked: true, .. }
            ),
            "got {:?}",
            frame2.outcome
        );
    }

    #[test]
    fn non_critical_task_shuts_down_on_error() {
        let exec = NodeExecutive::new(
            vec![bound_pid(1), bound_sum_noncritical(2)],
            ExecutiveConfig::default(),
        );
        let site = InjectionSite::Task {
            frame: 1,
            task_index: 1,
            plan: InjectionPlan {
                copy: 0,
                at_cycle: 5,
                fault: TransientFault {
                    target: FaultTarget::Pc,
                    mask: 1 << 20,
                },
            },
        };
        let report = exec.run(
            4,
            |i, _| if i == 0 { vec![500, 400] } else { vec![100] },
            Some(site),
        );
        assert_eq!(report.node_state, NodeState::Completed, "node survives");
        let t2: Vec<_> = report.for_task(TaskId(2)).collect();
        assert!(matches!(
            t2[1].outcome,
            ActivationOutcome::TaskShutdown { .. }
        ));
        assert!(matches!(t2[2].outcome, ActivationOutcome::Skipped));
        assert!(matches!(t2[3].outcome, ActivationOutcome::Skipped));
        // Critical task unaffected in every frame (fault confinement).
        assert!(report
            .for_task(TaskId(1))
            .all(|a| matches!(a.outcome, ActivationOutcome::Delivered { .. })));
    }

    #[test]
    fn kernel_fault_silences_node() {
        let exec = NodeExecutive::new(vec![bound_pid(1)], ExecutiveConfig::default());
        let report = exec.run(
            5,
            |_, _| vec![500, 400],
            Some(InjectionSite::Kernel { frame: 3 }),
        );
        assert_eq!(report.node_state, NodeState::FailSilent { frame: 3 });
        // Frames 0..3 completed, nothing after.
        assert_eq!(report.activations.len(), 3);
    }

    #[test]
    fn repeated_errors_suspect_permanent_fault() {
        // A stuck-at fault in the machine reproduces errors every frame.
        // Emulate by a workload whose code region we corrupt with a 2-bit
        // ECC-uncorrectable flip: every activation traps.
        let w = workloads::sum_series();
        let (_, cycles) = w.golden_run(&[100]);
        let bound = BoundTask {
            spec: spec(1, Criticality::Critical),
            workload: w,
            tem: Some(TemConfig::with_budget(cycles * 2)),
        };
        let exec = NodeExecutive::new(vec![bound], ExecutiveConfig::default());
        // Injecting a permanent fault needs machine access; simplest path:
        // a transient injected every frame is not expressible via one plan,
        // so instead verify the threshold logic with a workload that always
        // overruns its (tiny) TEM budget.
        let w2 = workloads::sum_series();
        let bound2 = BoundTask {
            spec: spec(1, Criticality::Critical),
            workload: w2,
            tem: Some(TemConfig {
                copy_budget: 3, // absurdly small: every copy overruns
                deadline_cycles: 100,
                max_results: 3,
                min_results: 2,
                max_executions: 4,
                compare_cycles: 1,
                vote_cycles: 1,
                restore_cycles: 1,
            }),
        };
        let exec2 = NodeExecutive::new(vec![bound2], ExecutiveConfig::default());
        let report = exec2.run(10, |_, _| vec![100], None);
        match report.node_state {
            NodeState::SuspectedPermanent { task, frame } => {
                assert_eq!(task, TaskId(1));
                assert_eq!(frame, 2, "threshold of 3 consecutive errors");
            }
            other => panic!("expected suspected-permanent, got {other:?}"),
        }
        drop(exec);
    }

    #[test]
    fn wild_state_write_detected_and_repaired() {
        // Corrupt the PID's integral term between frames 2 and 3: the
        // kernel's sealed-state check catches and repairs it, so the
        // command sequence is identical to an unfaulted run.
        let run = |inject: Option<InjectionSite>| {
            let exec = NodeExecutive::new(vec![bound_pid(1)], ExecutiveConfig::default());
            exec.run(6, |_, _| vec![800, 500], inject)
        };
        let clean = run(None);
        let site = InjectionSite::WildStateWrite {
            frame: 3,
            task_index: 0,
            offset_words: 0, // the integral term
            value: 0xDEAD,
        };
        let faulted = run(Some(site));
        assert_eq!(faulted.node_state, NodeState::Completed);
        let frame3 = faulted.activations.iter().find(|a| a.frame == 3).unwrap();
        assert!(
            matches!(
                frame3.outcome,
                ActivationOutcome::Delivered { masked: true, .. }
            ),
            "integrity check must mask the wild write: {:?}",
            frame3.outcome
        );
        // Every delivered command matches the clean run.
        for (c, f) in clean.activations.iter().zip(&faulted.activations) {
            let out = |a: &Activation| match &a.outcome {
                ActivationOutcome::Delivered { outputs, .. } => outputs[0],
                _ => None,
            };
            assert_eq!(out(c), out(f), "frame {} diverged", c.frame);
        }
    }

    #[test]
    fn without_sealing_wild_write_corrupts_silently() {
        let cfg = ExecutiveConfig {
            seal_task_state: false,
            ..Default::default()
        };
        let run = |cfg: ExecutiveConfig, inject: Option<InjectionSite>| {
            let exec = NodeExecutive::new(vec![bound_pid(1)], cfg);
            exec.run(6, |_, _| vec![800, 500], inject)
        };
        let clean = run(cfg, None);
        let site = InjectionSite::WildStateWrite {
            frame: 3,
            task_index: 0,
            offset_words: 0,
            value: 0x7FF, // plausible integral value: silent corruption
        };
        let faulted = run(cfg, Some(site));
        // No detection anywhere…
        assert!(faulted.activations.iter().all(|a| matches!(
            a.outcome,
            ActivationOutcome::Delivered { masked: false, .. }
        )));
        // …but the outputs diverge: exactly the failure §2.6 warns about.
        let outputs = |r: &ExecutiveReport| -> Vec<Option<u32>> {
            r.activations
                .iter()
                .map(|a| match &a.outcome {
                    ActivationOutcome::Delivered { outputs, .. } => outputs[0],
                    _ => None,
                })
                .collect()
        };
        assert_ne!(outputs(&clean), outputs(&faulted));
    }

    #[test]
    fn stuck_at_fault_model_composes_with_executive_machines() {
        // Smoke-check that StuckAtFault exists for permanent-fault
        // diagnostics at higher layers.
        let w = workloads::sum_series();
        let mut m = w.instantiate();
        let stuck = StuckAtFault {
            target: FaultTarget::Register(Reg::R2),
            bit: 1,
            stuck_high: false,
        };
        stuck.assert_on(&mut m);
        assert_eq!(m.cpu.reg(Reg::R2) & 1, 0);
    }
}
