//! # nlft-kernel — a real-time kernel with temporal error masking
//!
//! The software half of the paper's light-weight node-level fault
//! tolerance: a fixed-priority preemptive real-time kernel whose error
//! handling is *systematic* (application-independent), so the programmer
//! writes plain periodic tasks and the kernel supplies the redundancy.
//!
//! * [`task`] — task specifications, criticality-driven priorities and
//!   validated task sets.
//! * [`tem`] — temporal error masking: execute critical tasks twice,
//!   compare, recover with a third execution + 2-of-3 vote (Fig. 3).
//! * [`sched`] — an event-driven fixed-priority preemptive scheduler
//!   simulation used to validate the analysis empirically.
//! * [`analysis`] — response-time analysis, its fault-tolerant extension
//!   (slack for recovery), and the TEM task transformation.
//! * [`contract`] — weakly-hard (m,k) deadline-miss contracts with
//!   online monitoring and configurable degradation actions.
//! * [`integrity`] — data-integrity and end-to-end checks (§2.6).
//! * [`executive`] — the node-level activation loop implementing the three
//!   strategies of §2.2 (critical / non-critical / kernel errors).
//! * [`escalation`] — the recovery-escalation ladder: suspect → fail-silent
//!   → restart with capped exponential backoff → reintegrate or retire.
//! * [`resources`] — SRP ceiling analysis over declared resource-access
//!   sets, the SRP blocking bound, and fault-tolerant resource-sharing
//!   protocols (lock-based baseline vs LEFT-RS lock-free retry-bounded).
//! * [`multicore`] — an N-core partitioned fixed-priority executive with
//!   ceiling-boosted critical sections and core-death fault injection.
//!
//! # Examples
//!
//! Run a TEM-protected brake controller and mask an injected PC fault:
//!
//! ```
//! use nlft_kernel::tem::{InjectionPlan, TemConfig, TemExecutor};
//! use nlft_machine::fault::{FaultTarget, TransientFault};
//! use nlft_machine::workloads;
//!
//! let pid = workloads::pid_controller();
//! let (_, wcet) = pid.golden_run(&[1000, 900]);
//! let tem = TemExecutor::new(TemConfig::with_budget(wcet * 2));
//! let mut machine = pid.instantiate();
//! let plan = InjectionPlan {
//!     copy: 0,
//!     at_cycle: 5,
//!     fault: TransientFault { target: FaultTarget::Pc, mask: 1 << 20 },
//! };
//! let report = tem.run_job(&mut machine, &pid, &[1000, 900], Some(plan));
//! assert!(report.outcome.delivered(), "the transient was masked");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod contract;
pub mod escalation;
pub mod executive;
pub mod integrity;
pub mod multicore;
pub mod preemptive;
pub mod resources;
pub mod sched;
pub mod task;
pub mod tem;

pub use analysis::{analyse, analyse_with_faults, TemCosts};
pub use contract::{ContractOutcomes, DegradationAction, MkContract, TaskContract};
pub use escalation::{
    EscalationEvent, EscalationMachine, EscalationPolicy, NodeHealth, RestartPolicy,
};
pub use executive::{BoundTask, ExecutiveConfig, NodeExecutive, NodeState};
pub use multicore::{MulticoreExecutive, MulticoreReport, TaskCoreOutcome};
pub use preemptive::{PreemptiveExecutive, PreemptiveReport, ResidentTask};
pub use resources::{
    certify, left_rs_retry_term, CertifiedTask, CsAccess, LeftRs, LockBased, ProtocolKind,
    ResourceId, ResourceMap, ResourceProtocol, SectionCommit, SectionEntry,
};
pub use task::{Criticality, Priority, TaskId, TaskSet, TaskSpec, TaskSpecBuilder};
pub use tem::{InjectionPlan, JobFault, JobOutcome, JobReport, TemConfig, TemExecutor};
