//! A deterministic N-core partitioned fixed-priority executive with
//! SRP ceilings, pluggable resource sharing, and core-death injection.
//!
//! Each task is statically assigned to one core; each core schedules its
//! own tasks fixed-priority preemptive at a 1 µs tick. A job is a
//! three-segment program — compute, an optional critical section on one
//! declared resource, compute — and while inside the section the job runs
//! at the resource's SRP ceiling priority ([`crate::resources`]), so a
//! section is never preempted by a local task the ceiling dominates.
//!
//! The executive's reason to exist is the fault plane: a
//! [`CoreDeathFault`] kills one core, optionally deferred until the core
//! is *executing inside its critical section* — the adversarial placement.
//! A hard crash runs no cleanup: under the lock-based protocol the lock
//! leaks and every peer that needs the resource spins to its deadline
//! (counted as a deadlock); under LEFT-RS the dead core never commits and
//! peers are unharmed. An *escalated* death instead drives the core's
//! [`EscalationMachine`] to `FailSilent`, and the executive runs the
//! release hook — any held resource is revoked — so even the lock-based
//! protocol survives an orderly silence. That revocation-on-silence rule
//! also applies to a core silenced organically by its supervisor
//! observing errored jobs, closing the PR 3 escalation/resource hazard.
//!
//! Everything is integer tick arithmetic: runs are bit-deterministic and
//! contain no RNG, which is what lets campaign trials fork one labelled
//! stream per trial and stay bit-identical at any thread count.

use nlft_machine::fault::CoreDeathFault;
use nlft_sim::time::SimDuration;

use crate::escalation::{EscalationEvent, EscalationMachine, EscalationPolicy};
use crate::resources::{
    ProtocolKind, ResourceId, ResourceMap, ResourceProtocol, SectionCommit, SectionEntry,
};
use crate::task::{Criticality, Priority, TaskId, TaskSet, TaskSpecBuilder};

/// Execution phase of an active job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Pre-section compute segment.
    Pre,
    /// Attempting section entry (spinning when the protocol blocks).
    Entering,
    /// Executing the critical-section body.
    InSection,
    /// Post-section compute segment.
    Post,
}

#[derive(Debug, Clone, Copy)]
struct Job {
    release: u64,
    deadline_at: u64,
    phase: Phase,
    done: u64,
    retries: u32,
    blocked_on_dead: bool,
}

#[derive(Debug, Clone)]
struct Resident {
    id: TaskId,
    name: String,
    priority: Priority,
    core: usize,
    period: u64,
    deadline: u64,
    pre: u64,
    section: Option<(ResourceId, u64)>,
    post: u64,
    next_release: u64,
    job: Option<Job>,
    released: u64,
    completed: u64,
    missed: u64,
    deadlocked: u64,
    worst_response: u64,
}

#[derive(Debug)]
struct Core {
    alive: bool,
    silenced: bool,
    supervisor: Option<EscalationMachine>,
}

impl Core {
    fn down(&self) -> bool {
        !self.alive || self.silenced
    }
}

/// Per-task outcome of one executive run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskCoreOutcome {
    /// Task identity.
    pub id: TaskId,
    /// Task name for reports.
    pub name: String,
    /// Core the task was assigned to.
    pub core: usize,
    /// Jobs released.
    pub released: u64,
    /// Jobs completed in time.
    pub completed: u64,
    /// Jobs aborted at their deadline.
    pub missed: u64,
    /// Aborted jobs that were blocked on a resource held by a dead core.
    pub deadlocked: u64,
    /// Worst observed response time, `None` when no job completed.
    pub worst_response: Option<SimDuration>,
}

/// Outcome of one [`MulticoreExecutive::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticoreReport {
    /// Ticks simulated.
    pub ticks: u64,
    /// Jobs released across all cores.
    pub released: u64,
    /// Jobs completed in time.
    pub completed: u64,
    /// Jobs aborted at their deadline.
    pub missed: u64,
    /// Aborted jobs blocked on a dead holder — the lock-leak signature.
    pub deadlocks: u64,
    /// Worst per-job CAS retry count observed (LEFT-RS only).
    pub max_retries: u32,
    /// Worst per-job retry re-execution cost observed.
    pub max_retry_cost: SimDuration,
    /// Core-death faults that fired.
    pub core_deaths: u64,
    /// Escalation-ladder transitions, as `(tick, core, event)`.
    pub escalations: Vec<(u64, usize, EscalationEvent)>,
    /// Per-task outcomes, in task-set (priority) order.
    pub per_task: Vec<TaskCoreOutcome>,
}

impl MulticoreReport {
    /// `true` when no surviving-core job missed a deadline or deadlocked.
    pub fn clean(&self) -> bool {
        self.missed == 0 && self.deadlocks == 0
    }
}

/// The N-core executive. Construct, assign, inject, then [`run`] once.
///
/// [`run`]: MulticoreExecutive::run
#[derive(Debug)]
pub struct MulticoreExecutive {
    cores: Vec<Core>,
    residents: Vec<Resident>,
    ceilings: Vec<(ResourceId, Priority)>,
    protocol: Box<dyn ResourceProtocol>,
    deaths: Vec<(CoreDeathFault, bool)>,
    max_retries: u32,
    max_retry_cost: u64,
    core_deaths: u64,
    escalations: Vec<(u64, usize, EscalationEvent)>,
}

impl MulticoreExecutive {
    /// Builds an executive for `cores` cores running `set` under
    /// `protocol`, with critical sections declared in `map`. Tasks are
    /// assigned round-robin in priority order; override with [`assign`].
    ///
    /// [`assign`]: MulticoreExecutive::assign
    ///
    /// # Panics
    ///
    /// Panics when `cores` is zero, a task declares more than one
    /// resource, or a declared section exceeds its task's WCET.
    pub fn new(cores: usize, set: &TaskSet, map: &ResourceMap, protocol: ProtocolKind) -> Self {
        assert!(cores > 0, "a node has at least one core");
        let ceilings = map.ceilings(set);
        let residents = set
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let declared: Vec<_> = map.accesses().filter(|a| a.task == t.id).collect();
                assert!(
                    declared.len() <= 1,
                    "task {} declares {} resources; the executive models one section per job",
                    t.name,
                    declared.len()
                );
                let wcet = t.wcet.as_micros();
                let section = declared.first().map(|a| {
                    let s = a.section.as_micros();
                    assert!(s <= wcet, "section of {} exceeds its WCET", t.name);
                    (a.resource, s)
                });
                let sec_len = section.map_or(0, |(_, s)| s);
                let pre = (wcet - sec_len) / 2;
                Resident {
                    id: t.id,
                    name: t.name.clone(),
                    priority: t.priority,
                    core: i % cores,
                    period: t.period.as_micros(),
                    deadline: t.deadline.as_micros(),
                    pre,
                    section,
                    post: wcet - sec_len - pre,
                    next_release: 0,
                    job: None,
                    released: 0,
                    completed: 0,
                    missed: 0,
                    deadlocked: 0,
                    worst_response: 0,
                }
            })
            .collect();
        MulticoreExecutive {
            cores: (0..cores)
                .map(|_| Core {
                    alive: true,
                    silenced: false,
                    supervisor: None,
                })
                .collect(),
            residents,
            ceilings,
            protocol: protocol.build(),
            deaths: Vec::new(),
            max_retries: 0,
            max_retry_cost: 0,
            core_deaths: 0,
            escalations: Vec::new(),
        }
    }

    /// The reference 2+-core brake-node workload shared by the campaign,
    /// the cluster's dual-core nodes, the bench and the example: two
    /// critical controllers on separate cores sharing the wheel-state
    /// resource (R1, 40 µs sections), plus a non-critical monitor and
    /// telemetry task, plus one auxiliary sharing controller per extra
    /// core.
    pub fn reference_workload(cores: usize) -> (TaskSet, ResourceMap) {
        assert!(cores >= 1, "a node has at least one core");
        let us = SimDuration::from_micros;
        let mut tasks = vec![
            TaskSpecBuilder::new(TaskId(1), "brake-ctl")
                .period(us(400))
                .deadline(us(300))
                .wcet(us(120))
                .priority(Priority(0))
                .criticality(Criticality::Critical)
                .build()
                .unwrap(),
            TaskSpecBuilder::new(TaskId(2), "force-dist")
                .period(us(400))
                .deadline(us(350))
                .wcet(us(140))
                .priority(Priority(1))
                .criticality(Criticality::Critical)
                .build()
                .unwrap(),
            TaskSpecBuilder::new(TaskId(3), "abs-monitor")
                .period(us(800))
                .deadline(us(800))
                .wcet(us(100))
                .priority(Priority(2))
                .criticality(Criticality::NonCritical)
                .build()
                .unwrap(),
            TaskSpecBuilder::new(TaskId(4), "telemetry")
                .period(us(800))
                .deadline(us(800))
                .wcet(us(120))
                .priority(Priority(3))
                .criticality(Criticality::NonCritical)
                .build()
                .unwrap(),
        ];
        let mut map = ResourceMap::new();
        map.declare(TaskId(1), ResourceId(1), us(40));
        map.declare(TaskId(2), ResourceId(1), us(40));
        for extra in 2..cores {
            let id = TaskId(3 + extra as u32);
            tasks.push(
                TaskSpecBuilder::new(id, format!("aux-ctl-{extra}"))
                    .period(us(400))
                    .deadline(us(350))
                    .wcet(us(120))
                    .priority(Priority(2 + extra as u32))
                    .criticality(Criticality::Critical)
                    .build()
                    .unwrap(),
            );
            map.declare(id, ResourceId(1), us(40));
        }
        (tasks.into_iter().collect(), map)
    }

    /// The reference node assembled: [`reference_workload`] with its
    /// canonical assignment (controllers spread across cores, monitor
    /// with brake-ctl, telemetry with force-dist).
    ///
    /// [`reference_workload`]: MulticoreExecutive::reference_workload
    pub fn reference(cores: usize, protocol: ProtocolKind) -> Self {
        let (set, map) = Self::reference_workload(cores);
        let mut exec = MulticoreExecutive::new(cores, &set, &map, protocol);
        exec.assign(TaskId(1), 0);
        exec.assign(TaskId(2), 1 % cores);
        exec.assign(TaskId(3), 0);
        exec.assign(TaskId(4), 1 % cores);
        for extra in 2..cores {
            exec.assign(TaskId(3 + extra as u32), extra);
        }
        exec
    }

    /// Pins `task` to `core`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown task or out-of-range core.
    pub fn assign(&mut self, task: TaskId, core: usize) {
        assert!(core < self.cores.len(), "core {core} out of range");
        self.residents
            .iter_mut()
            .find(|r| r.id == task)
            .unwrap_or_else(|| panic!("unknown task {task:?}"))
            .core = core;
    }

    /// Attaches a PR 3 escalation ladder to `core`. Escalated deaths
    /// drive it to `FailSilent`; deadline-missed jobs feed it errored
    /// observations, so a core can also silence itself organically —
    /// either way the executive revokes its held resources.
    pub fn supervise(&mut self, core: usize, policy: EscalationPolicy) {
        self.cores[core].supervisor = Some(EscalationMachine::new(policy));
    }

    /// Schedules a core-death fault.
    pub fn inject(&mut self, death: CoreDeathFault) {
        self.deaths.push((death, false));
    }

    fn ceiling(&self, resource: ResourceId) -> Priority {
        self.ceilings
            .iter()
            .find(|(r, _)| *r == resource)
            .map(|&(_, c)| c)
            .expect("section on a resource without a ceiling")
    }

    /// Effective priority of resident `i`'s active job: the SRP ceiling
    /// boosts a job for as long as it is inside its section.
    fn effective_priority(&self, i: usize) -> (Priority, TaskId) {
        let r = &self.residents[i];
        let base = r.priority;
        let boosted = match (r.job.as_ref().map(|j| j.phase), r.section) {
            (Some(Phase::InSection), Some((res, _))) => base.min(self.ceiling(res)),
            _ => base,
        };
        (boosted, r.id)
    }

    /// Silences `core` in an orderly fashion: jobs are discarded and any
    /// in-section job's resource is revoked (the release hook runs).
    fn silence_core(&mut self, core: usize) {
        self.cores[core].silenced = true;
        for r in &mut self.residents {
            if r.core == core {
                if let Some(job) = r.job.take() {
                    if job.phase == Phase::InSection {
                        let (res, _) = r.section.expect("in-section job has a section");
                        self.protocol.abandon(res, core, true);
                    }
                }
            }
        }
    }

    /// Kills `core` without cleanup: an in-section job leaks whatever the
    /// protocol cannot survive leaking.
    fn crash_core(&mut self, core: usize) {
        self.cores[core].alive = false;
        for r in &mut self.residents {
            if r.core == core {
                if let Some(job) = r.job.take() {
                    if job.phase == Phase::InSection {
                        let (res, _) = r.section.expect("in-section job has a section");
                        self.protocol.abandon(res, core, false);
                    }
                }
            }
        }
    }

    /// Fires `death` now: escalated deaths walk the ladder (attached
    /// supervisor or a synthesized `WentSilent`) and silence in order;
    /// crashes just stop the core.
    fn fire_death(&mut self, death: CoreDeathFault, now: u64) {
        let core = death.core as usize;
        self.core_deaths += 1;
        if death.escalated {
            if let Some(mut ladder) = self.cores[core].supervisor.take() {
                let mut guard = 0;
                while !ladder.is_silent() && guard < 64 {
                    for e in ladder.observe(true) {
                        self.escalations.push((now, core, e));
                    }
                    guard += 1;
                }
                self.cores[core].supervisor = Some(ladder);
            } else {
                self.escalations
                    .push((now, core, EscalationEvent::WentSilent));
            }
            self.silence_core(core);
        } else {
            self.crash_core(core);
        }
    }

    /// Runs the executive for `horizon` ticks (1 tick = 1 µs) and
    /// reports. Call once per instance.
    pub fn run(&mut self, horizon: u64) -> MulticoreReport {
        for now in 0..horizon {
            self.abort_overdue(now);
            self.release_jobs(now);
            self.strike_deaths(now);
            for core in 0..self.cores.len() {
                if !self.cores[core].down() {
                    self.execute_core(core, now);
                }
            }
        }
        self.report(horizon)
    }

    fn abort_overdue(&mut self, now: u64) {
        for i in 0..self.residents.len() {
            let core = self.residents[i].core;
            if self.cores[core].down() {
                continue;
            }
            let Some(job) = self.residents[i].job else {
                continue;
            };
            if now < job.deadline_at {
                continue;
            }
            let r = &mut self.residents[i];
            r.missed += 1;
            let mut dead_holder = job.blocked_on_dead;
            if job.phase == Phase::Entering {
                if let Some((res, _)) = r.section {
                    if let Some(holder) = self.protocol.holder(res) {
                        dead_holder |= self.cores[holder].down();
                    }
                }
            }
            if dead_holder {
                r.deadlocked += 1;
            }
            if job.phase == Phase::InSection {
                let (res, _) = r.section.expect("in-section job has a section");
                // A kernel-controlled abort runs the release hook.
                self.protocol.abandon(res, core, true);
            }
            r.job = None;
            self.observe_job(core, now, true);
        }
    }

    fn release_jobs(&mut self, now: u64) {
        for r in &mut self.residents {
            if self.cores[r.core].down() || now != r.next_release {
                continue;
            }
            debug_assert!(r.job.is_none(), "deadline ≤ period: job gone by release");
            r.job = Some(Job {
                release: now,
                deadline_at: now + r.deadline,
                phase: if r.pre > 0 {
                    Phase::Pre
                } else if r.section.is_some() {
                    Phase::Entering
                } else {
                    Phase::Post
                },
                done: 0,
                retries: 0,
                blocked_on_dead: false,
            });
            r.released += 1;
            r.next_release = now + r.period;
        }
    }

    /// Fires armed deaths: immediate ones at their tick, in-section ones
    /// at the first tick the victim core would execute inside a section.
    fn strike_deaths(&mut self, now: u64) {
        for d in 0..self.deaths.len() {
            let (death, fired) = self.deaths[d];
            let core = death.core as usize;
            if fired || now < death.at_tick || core >= self.cores.len() {
                continue;
            }
            if self.cores[core].down() {
                self.deaths[d].1 = true;
                continue;
            }
            let strike = if death.in_section {
                self.chosen_job(core)
                    .and_then(|i| self.residents[i].job.as_ref())
                    .is_some_and(|j| j.phase == Phase::InSection)
            } else {
                true
            };
            if strike {
                self.deaths[d].1 = true;
                self.fire_death(death, now);
            }
        }
    }

    /// The resident whose job `core` would execute this tick.
    fn chosen_job(&self, core: usize) -> Option<usize> {
        (0..self.residents.len())
            .filter(|&i| self.residents[i].core == core && self.residents[i].job.is_some())
            .min_by_key(|&i| self.effective_priority(i))
    }

    fn execute_core(&mut self, core: usize, now: u64) {
        let Some(i) = self.chosen_job(core) else {
            return;
        };
        let (section, pre, post) = {
            let r = &self.residents[i];
            (r.section, r.pre, r.post)
        };
        let mut job = self.residents[i].job.take().expect("chosen job is active");
        let mut completed = false;
        match job.phase {
            Phase::Pre => {
                job.done += 1;
                if job.done == pre {
                    job.done = 0;
                    job.phase = if section.is_some() {
                        Phase::Entering
                    } else {
                        Phase::Post
                    };
                }
            }
            Phase::Entering => {
                let (res, sec_len) = section.expect("entering job has a section");
                match self.protocol.try_enter(res, core) {
                    SectionEntry::Enter => {
                        // Entry is instantaneous; this tick executes the
                        // first tick of the section body.
                        job.phase = Phase::InSection;
                        job.done = 1;
                        if job.done == sec_len {
                            self.commit_section(core, &mut job, res, sec_len, post, &mut completed);
                        }
                    }
                    SectionEntry::Blocked { holder } => {
                        // The tick is burnt spinning on the lock.
                        if self.cores[holder].down() {
                            job.blocked_on_dead = true;
                        }
                    }
                }
            }
            Phase::InSection => {
                let (res, sec_len) = section.expect("in-section job has a section");
                job.done += 1;
                if job.done == sec_len {
                    self.commit_section(core, &mut job, res, sec_len, post, &mut completed);
                }
            }
            Phase::Post => {
                job.done += 1;
                if job.done == post {
                    completed = true;
                }
            }
        }
        if completed {
            let response = now + 1 - job.release;
            let r = &mut self.residents[i];
            r.completed += 1;
            r.worst_response = r.worst_response.max(response);
            self.observe_job(core, now, false);
        } else {
            self.residents[i].job = Some(job);
        }
    }

    fn commit_section(
        &mut self,
        core: usize,
        job: &mut Job,
        res: ResourceId,
        sec_len: u64,
        post: u64,
        completed: &mut bool,
    ) {
        match self.protocol.commit(res, core) {
            SectionCommit::Committed => {
                job.done = 0;
                job.phase = Phase::Post;
                if post == 0 {
                    *completed = true;
                }
            }
            SectionCommit::Retry => {
                job.retries += 1;
                job.done = 0;
                self.max_retries = self.max_retries.max(job.retries);
                self.max_retry_cost = self.max_retry_cost.max(u64::from(job.retries) * sec_len);
            }
        }
    }

    /// Feeds one job outcome to the core's supervisor; a ladder that
    /// reaches `FailSilent`/`Retired` silences the core with revocation.
    fn observe_job(&mut self, core: usize, now: u64, errored: bool) {
        let Some(mut ladder) = self.cores[core].supervisor.take() else {
            return;
        };
        let events = ladder.observe(errored);
        let silenced = events
            .iter()
            .any(|e| matches!(e, EscalationEvent::WentSilent | EscalationEvent::Retired));
        for e in events {
            self.escalations.push((now, core, e));
        }
        self.cores[core].supervisor = Some(ladder);
        if silenced {
            self.silence_core(core);
        }
    }

    fn report(&mut self, horizon: u64) -> MulticoreReport {
        MulticoreReport {
            ticks: horizon,
            released: self.residents.iter().map(|r| r.released).sum(),
            completed: self.residents.iter().map(|r| r.completed).sum(),
            missed: self.residents.iter().map(|r| r.missed).sum(),
            deadlocks: self.residents.iter().map(|r| r.deadlocked).sum(),
            max_retries: self.max_retries,
            max_retry_cost: SimDuration::from_micros(self.max_retry_cost),
            core_deaths: self.core_deaths,
            escalations: std::mem::take(&mut self.escalations),
            per_task: self
                .residents
                .iter()
                .map(|r| TaskCoreOutcome {
                    id: r.id,
                    name: r.name.clone(),
                    core: r.core,
                    released: r.released,
                    completed: r.completed,
                    missed: r.missed,
                    deadlocked: r.deadlocked,
                    worst_response: (r.completed > 0)
                        .then(|| SimDuration::from_micros(r.worst_response)),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{certify, left_rs_retry_term};
    use crate::task::TaskSpec;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn death(core: u32, at_tick: u64, escalated: bool) -> CoreDeathFault {
        CoreDeathFault {
            core,
            at_tick,
            in_section: true,
            escalated,
        }
    }

    #[test]
    fn clean_reference_run_meets_all_deadlines_under_both_protocols() {
        for kind in [ProtocolKind::LockBased, ProtocolKind::LeftRs] {
            let mut exec = MulticoreExecutive::reference(2, kind);
            let report = exec.run(4000);
            assert!(report.clean(), "{}: {report:?}", kind.name());
            assert_eq!(report.released, report.completed);
            // 10 releases each of t1/t2, 5 each of t3/t4.
            assert_eq!(report.released, 30);
        }
    }

    #[test]
    fn left_rs_retries_stay_within_certified_bound() {
        let mut exec = MulticoreExecutive::reference(2, ProtocolKind::LeftRs);
        let report = exec.run(4000);
        // The overlapping t1/t2 sections defeat t2's first CAS each
        // hyperperiod: exactly one retry, never more (2 cores ⇒ bound 1).
        assert_eq!(report.max_retries, 1);
        assert_eq!(report.max_retry_cost, us(40));
        let (set, map) = MulticoreExecutive::reference_workload(2);
        let certified = left_rs_retry_term(&map, set.get(TaskId(2)).unwrap(), 2);
        assert!(report.max_retry_cost <= certified);
        // And the observed worst responses stay within certification.
        for (c, o) in certify(&set, &map, ProtocolKind::LeftRs, 2, 1)
            .iter()
            .zip(&report.per_task)
        {
            let r = c.response.expect("reference node certifies");
            assert!(o.worst_response.unwrap() <= r, "{}: {o:?} vs {r}", c.name);
        }
    }

    #[test]
    fn crash_in_section_deadlocks_lock_based_peers() {
        let mut exec = MulticoreExecutive::reference(2, ProtocolKind::LockBased);
        exec.inject(death(0, 45, false));
        let report = exec.run(4000);
        assert_eq!(report.core_deaths, 1);
        assert!(report.deadlocks >= 1, "{report:?}");
        assert!(report.missed >= 1);
        // The victim is force-dist on core 1.
        let t2 = &report.per_task[1];
        assert_eq!(t2.name, "force-dist");
        assert!(t2.deadlocked >= 1);
    }

    #[test]
    fn crash_in_section_is_invisible_to_left_rs_peers() {
        let mut exec = MulticoreExecutive::reference(2, ProtocolKind::LeftRs);
        exec.inject(death(0, 45, false));
        let report = exec.run(4000);
        assert_eq!(report.core_deaths, 1);
        assert!(report.clean(), "{report:?}");
        // Core 1's tasks keep completing every period after the death.
        assert_eq!(report.per_task[1].completed, 10);
    }

    #[test]
    fn escalated_silence_revokes_the_lock_so_peers_survive() {
        // The satellite-2 regression: the same placement that deadlocks
        // the lock-based baseline under a hard crash is survivable when
        // the PR 3 ladder silences the core — the release hook revokes
        // the held lock.
        let mut exec = MulticoreExecutive::reference(2, ProtocolKind::LockBased);
        exec.supervise(0, EscalationPolicy::default());
        exec.inject(death(0, 45, true));
        let report = exec.run(4000);
        assert_eq!(report.core_deaths, 1);
        assert_eq!(report.deadlocks, 0, "{report:?}");
        assert_eq!(report.missed, 0);
        // The ladder actually walked: Suspected then WentSilent.
        let events: Vec<_> = report.escalations.iter().map(|&(_, c, e)| (c, e)).collect();
        assert!(events.contains(&(0, EscalationEvent::Suspected)));
        assert!(events.contains(&(0, EscalationEvent::WentSilent)));
        // Peers on core 1 ran to the end of the horizon.
        assert_eq!(report.per_task[1].completed, 10);
    }

    #[test]
    fn escalated_silence_without_supervisor_still_revokes() {
        let mut exec = MulticoreExecutive::reference(2, ProtocolKind::LockBased);
        exec.inject(death(1, 500, true));
        let report = exec.run(4000);
        assert_eq!(report.deadlocks, 0);
        assert_eq!(report.missed, 0);
        assert!(report
            .escalations
            .iter()
            .any(|&(_, c, e)| c == 1 && e == EscalationEvent::WentSilent));
    }

    #[test]
    fn in_section_death_waits_for_the_section() {
        // Armed during t1's pre segment (tick 10); t1 enters its section
        // at tick 40. If the strike correctly waits until the core is
        // inside the section, the lock leaks and the peer deadlocks; a
        // premature strike at tick 10 would leak nothing.
        let mut exec = MulticoreExecutive::reference(2, ProtocolKind::LockBased);
        exec.inject(death(0, 10, false));
        let report = exec.run(4000);
        assert_eq!(report.core_deaths, 1);
        assert_eq!(report.per_task[0].completed, 0);
        assert!(report.deadlocks >= 1, "{report:?}");
    }

    #[test]
    fn immediate_death_fires_at_its_tick() {
        // The same arming tick without the in-section deferral dies in
        // t1's pre segment: nothing is held, so even the lock-based
        // protocol survives.
        let mut exec = MulticoreExecutive::reference(2, ProtocolKind::LockBased);
        exec.inject(CoreDeathFault {
            core: 0,
            at_tick: 10,
            in_section: false,
            escalated: false,
        });
        let report = exec.run(4000);
        assert_eq!(report.per_task[0].released, 1);
        assert!(report.clean(), "{report:?}");
    }

    #[test]
    fn ceiling_boost_keeps_sections_atomic_on_core() {
        // core 0: mid-priority t2 (no resource) + low-priority t3 whose
        // resource is shared with high-priority t1 on core 1 — so
        // ceiling(R) = P(0) and t3-in-section must not be preempted by
        // t2 even though t2 outranks it.
        let mk = |id: u32, prio: u32, period: u64, deadline: u64, wcet: u64| -> TaskSpec {
            TaskSpecBuilder::new(TaskId(id), format!("t{id}"))
                .period(us(period))
                .deadline(us(deadline))
                .wcet(us(wcet))
                .priority(Priority(prio))
                .criticality(Criticality::NonCritical)
                .build()
                .unwrap()
        };
        let set: TaskSet = [
            mk(1, 0, 400, 400, 20),
            mk(2, 1, 400, 400, 60),
            mk(3, 2, 400, 400, 90),
        ]
        .into_iter()
        .collect();
        let mut map = ResourceMap::new();
        map.declare(TaskId(1), ResourceId(7), us(10));
        map.declare(TaskId(3), ResourceId(7), us(30));
        assert_eq!(map.ceiling(&set, ResourceId(7)), Some(Priority(0)));
        let mut exec = MulticoreExecutive::new(2, &set, &map, ProtocolKind::LockBased);
        exec.assign(TaskId(1), 1);
        exec.assign(TaskId(2), 0);
        exec.assign(TaskId(3), 0);
        // Give t3 a head start into its section: delay t2's first
        // release by pushing it to a later phase via its own period is
        // not possible here, so instead verify the whole run is clean
        // and t3's sections never interleave badly: with the ceiling the
        // run completes all jobs.
        let report = exec.run(4000);
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.released, report.completed);
    }

    #[test]
    fn runs_are_bit_deterministic() {
        let run = || {
            let mut exec = MulticoreExecutive::reference(2, ProtocolKind::LeftRs);
            exec.inject(death(1, 777, false));
            exec.run(4000)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn five_core_reference_stays_schedulable_under_left_rs() {
        let mut exec = MulticoreExecutive::reference(5, ProtocolKind::LeftRs);
        let report = exec.run(4000);
        assert!(report.clean(), "{report:?}");
        // Retry bound on 5 cores is 4; the observed worst must respect
        // it. (Certification via the whole-set RTA is deliberately
        // pessimistic — it charges cross-core interference — so only the
        // 2-core reference is asserted to certify, above.)
        assert!(report.max_retries <= 4);
    }
}
