//! Fixed-priority preemptive scheduler simulation.
//!
//! An event-driven simulation of the kernel's dispatcher, at the job level:
//! tasks release periodically, the highest-priority ready job always owns
//! the CPU, and releases preempt lower-priority work (§2.8). The simulator
//! validates the response-time analysis of [`crate::analysis`] empirically
//! (observed response ≤ analytical bound) and measures the effect of
//! recovery demand injected by TEM — the "extra time reclaimed from slack"
//! of the paper's Figure 3.

use std::collections::BTreeMap;

use nlft_sim::event::EventQueue;
use nlft_sim::stats::OnlineStats;
use nlft_sim::time::{SimDuration, SimTime};

use crate::task::{TaskId, TaskSet};

/// An event in the scheduler simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Periodic release of a task.
    Release(TaskId),
    /// Additional execution demand (a TEM recovery) hits a task's current
    /// or next job.
    Recovery(TaskId, SimDuration),
}

/// A live job instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Job {
    task: TaskId,
    release: SimTime,
    deadline: SimTime,
    remaining: SimDuration,
}

/// Scheduling statistics for one task.
#[derive(Debug, Clone, Default)]
pub struct TaskStats {
    /// Response-time distribution over completed jobs (seconds).
    pub response: OnlineStats,
    /// Worst observed response time.
    pub max_response: SimDuration,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs that finished (or were still running) past their deadline.
    pub deadline_misses: u64,
}

/// Aggregate result of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Per-task statistics.
    pub tasks: BTreeMap<TaskId, TaskStats>,
    /// Number of preemptions observed.
    pub preemptions: u64,
    /// Total idle time.
    pub idle: SimDuration,
    /// Simulated horizon.
    pub horizon: SimDuration,
}

impl SimReport {
    /// `true` if no task missed a deadline.
    pub fn no_misses(&self) -> bool {
        self.tasks.values().all(|t| t.deadline_misses == 0)
    }

    /// Total CPU utilisation over the run.
    pub fn utilisation(&self) -> f64 {
        if self.horizon.is_zero() {
            return 0.0;
        }
        1.0 - self.idle.as_secs_f64() / self.horizon.as_secs_f64()
    }
}

/// The fixed-priority preemptive simulator.
///
/// # Examples
///
/// ```
/// use nlft_kernel::sched::FpSimulator;
/// use nlft_kernel::task::{Criticality, Priority, TaskId, TaskSet, TaskSpecBuilder};
/// use nlft_sim::time::SimDuration;
///
/// let set: TaskSet = [
///     TaskSpecBuilder::new(TaskId(1), "fast")
///         .period(SimDuration::from_millis(5))
///         .wcet(SimDuration::from_millis(1))
///         .priority(Priority(0))
///         .build()?,
/// ].into_iter().collect();
/// let report = FpSimulator::new(set).run(SimDuration::from_millis(100));
/// assert!(report.no_misses());
/// # Ok::<(), nlft_kernel::task::TaskSpecError>(())
/// ```
#[derive(Debug)]
pub struct FpSimulator {
    set: TaskSet,
    recoveries: Vec<(SimTime, TaskId, SimDuration)>,
    /// Tasks released only at explicit arrival times (sporadic, §2.1's
    /// event-triggered activities), not periodically.
    sporadic: std::collections::BTreeSet<TaskId>,
    arrivals: Vec<(SimTime, TaskId)>,
}

impl FpSimulator {
    /// Creates a simulator over a task set (all tasks release at time 0 —
    /// the critical instant).
    pub fn new(set: TaskSet) -> Self {
        FpSimulator {
            set,
            recoveries: Vec::new(),
            sporadic: std::collections::BTreeSet::new(),
            arrivals: Vec::new(),
        }
    }

    /// Marks a task sporadic and schedules its arrival times. A sporadic
    /// task releases exactly at the given instants (for schedulability the
    /// analysis treats it as periodic at its minimum inter-arrival time —
    /// its `period` field).
    ///
    /// # Panics
    ///
    /// Panics if the task is not in the set.
    pub fn set_sporadic(&mut self, task: TaskId, arrivals: Vec<SimTime>) {
        assert!(self.set.get(task).is_some(), "unknown task {task}");
        self.sporadic.insert(task);
        for at in arrivals {
            self.arrivals.push((at, task));
        }
    }

    /// Schedules extra execution demand for `task` at absolute time `at`:
    /// the model of a fault detected at `at` whose recovery re-executes
    /// part of the task. Demand lands on the task's active job, or on its
    /// next job if none is active.
    pub fn inject_recovery(&mut self, at: SimTime, task: TaskId, demand: SimDuration) {
        self.recoveries.push((at, task, demand));
    }

    /// Runs the simulation to `horizon` and reports statistics.
    ///
    /// # Panics
    ///
    /// Panics if the task set is empty.
    pub fn run(&self, horizon: SimDuration) -> SimReport {
        assert!(!self.set.is_empty(), "cannot simulate an empty task set");
        let end = SimTime::ZERO + horizon;
        let mut queue: EventQueue<Event> = EventQueue::new();
        for t in self.set.iter() {
            if !self.sporadic.contains(&t.id) {
                queue
                    .schedule(SimTime::ZERO, Event::Release(t.id))
                    .expect("initial releases at t=0");
            }
        }
        for &(at, task) in &self.arrivals {
            if at <= end {
                queue
                    .schedule(at, Event::Release(task))
                    .expect("arrival within horizon");
            }
        }
        for &(at, task, demand) in &self.recoveries {
            if at <= end {
                queue
                    .schedule(at, Event::Recovery(task, demand))
                    .expect("recovery within horizon");
            }
        }

        let mut report = SimReport {
            horizon,
            ..SimReport::default()
        };
        for t in self.set.iter() {
            report.tasks.insert(t.id, TaskStats::default());
        }

        // Ready jobs; the running job is the highest-priority entry.
        let mut ready: Vec<Job> = Vec::new();
        // Pending recovery demand for tasks with no active job.
        let mut pending_recovery: BTreeMap<TaskId, SimDuration> = BTreeMap::new();
        let mut now = SimTime::ZERO;

        let prio_key = |set: &TaskSet, j: &Job| {
            let t = set.get(j.task).expect("job task exists");
            (t.priority, t.id)
        };

        loop {
            // Find the currently running job (highest priority ready).
            ready.sort_by_key(|j| prio_key(&self.set, j));
            let next_event = queue.peek_time().filter(|&t| t <= end);

            if let Some(job) = ready.first().copied() {
                // Run until job completion or the next event.
                let completion = now + job.remaining;
                let until = match next_event {
                    Some(t) if t < completion => t,
                    _ => completion,
                };
                let until = until.min(end);
                let ran = until.saturating_since(now);
                now = until;
                if now == end && completion > end {
                    // Horizon reached with work left: account and stop.
                    ready[0].remaining -= ran;
                    break;
                }
                if until == completion {
                    // Job done.
                    let stats = report.tasks.get_mut(&job.task).expect("known task");
                    let resp = now.saturating_since(job.release);
                    stats.response.record(resp.as_secs_f64());
                    stats.max_response = stats.max_response.max(resp);
                    stats.completed += 1;
                    if now > job.deadline {
                        stats.deadline_misses += 1;
                    }
                    ready.remove(0);
                } else {
                    ready[0].remaining -= ran;
                    // Deliver the event at `until`.
                    let running_key = prio_key(&self.set, &ready[0]);
                    if let Some((_, ev)) = queue.pop_before(end) {
                        self.handle_event(
                            ev,
                            now,
                            &mut ready,
                            &mut pending_recovery,
                            &mut queue,
                            end,
                        );
                        // Preemption: a new head with higher priority.
                        ready.sort_by_key(|j| prio_key(&self.set, j));
                        if let Some(head) = ready.first() {
                            if prio_key(&self.set, head) < running_key {
                                report.preemptions += 1;
                            }
                        }
                    }
                }
            } else {
                // Idle until the next event or the horizon.
                match next_event {
                    Some(t) => {
                        report.idle += t.saturating_since(now);
                        now = t;
                        if let Some((_, ev)) = queue.pop_before(end) {
                            self.handle_event(
                                ev,
                                now,
                                &mut ready,
                                &mut pending_recovery,
                                &mut queue,
                                end,
                            );
                        }
                    }
                    None => {
                        report.idle += end.saturating_since(now);
                        break;
                    }
                }
            }
        }

        // Unfinished jobs past their deadline are misses.
        for job in &ready {
            if job.deadline < end {
                report
                    .tasks
                    .get_mut(&job.task)
                    .expect("known task")
                    .deadline_misses += 1;
            }
        }
        report
    }

    fn handle_event(
        &self,
        ev: Event,
        now: SimTime,
        ready: &mut Vec<Job>,
        pending_recovery: &mut BTreeMap<TaskId, SimDuration>,
        queue: &mut EventQueue<Event>,
        end: SimTime,
    ) {
        match ev {
            Event::Release(id) => {
                let spec = self.set.get(id).expect("released task exists");
                let mut remaining = spec.wcet;
                if let Some(extra) = pending_recovery.remove(&id) {
                    remaining += extra;
                }
                ready.push(Job {
                    task: id,
                    release: now,
                    deadline: now + spec.deadline,
                    remaining,
                });
                if !self.sporadic.contains(&id) {
                    let next = now + spec.period;
                    if next <= end {
                        queue
                            .schedule(next, Event::Release(id))
                            .expect("future release");
                    }
                }
            }
            Event::Recovery(id, demand) => {
                if let Some(job) = ready.iter_mut().find(|j| j.task == id) {
                    job.remaining += demand;
                } else {
                    *pending_recovery.entry(id).or_insert(SimDuration::ZERO) += demand;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{ft_response_time, response_time};
    use crate::task::{Criticality, Priority, TaskSpecBuilder};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn task(id: u32, prio: u32, period_us: u64, wcet_us: u64) -> crate::task::TaskSpec {
        TaskSpecBuilder::new(TaskId(id), format!("t{id}"))
            .period(us(period_us))
            .wcet(us(wcet_us))
            .priority(Priority(prio))
            .criticality(Criticality::Critical)
            .build()
            .unwrap()
    }

    fn classic_set() -> TaskSet {
        [task(1, 0, 50, 10), task(2, 1, 100, 20), task(3, 2, 200, 40)]
            .into_iter()
            .collect()
    }

    #[test]
    fn observed_max_response_matches_rta_at_critical_instant() {
        let set = classic_set();
        let report = FpSimulator::new(set.clone()).run(us(10_000));
        assert!(report.no_misses());
        for t in set.iter() {
            let bound = response_time(&set, t).unwrap();
            let observed = report.tasks[&t.id].max_response;
            assert!(
                observed <= bound,
                "{}: observed {observed} > bound {bound}",
                t.name
            );
        }
        // At the critical instant (synchronous release) the bound is tight
        // for the lowest-priority task.
        let t3 = set.get(TaskId(3)).unwrap();
        assert_eq!(
            report.tasks[&TaskId(3)].max_response,
            response_time(&set, t3).unwrap()
        );
    }

    #[test]
    fn preemption_happens_and_is_counted() {
        let set = classic_set();
        let report = FpSimulator::new(set).run(us(1_000));
        assert!(report.preemptions > 0, "high-rate task must preempt t3");
    }

    #[test]
    fn overload_misses_deadlines() {
        let set: TaskSet = [task(1, 0, 10, 6), task(2, 1, 20, 10)]
            .into_iter()
            .collect();
        let report = FpSimulator::new(set).run(us(1_000));
        assert!(!report.no_misses());
        assert!(report.tasks[&TaskId(2)].deadline_misses > 0);
    }

    #[test]
    fn idle_time_accounts_for_slack() {
        let set: TaskSet = [task(1, 0, 100, 10)].into_iter().collect();
        let report = FpSimulator::new(set).run(us(1_000));
        // 10 jobs × 10us = 100us busy of 1000us.
        assert!((report.utilisation() - 0.1).abs() < 0.02);
        assert_eq!(report.tasks[&TaskId(1)].completed, 10);
    }

    #[test]
    fn recovery_demand_extends_response_within_ft_bound() {
        let set = classic_set();
        let mut sim = FpSimulator::new(set.clone());
        // Fault at t=0 hits t3's job: recovery re-executes the largest hep
        // task (t3 itself, 40us).
        sim.inject_recovery(SimTime::ZERO, TaskId(3), us(40));
        let report = sim.run(us(10_000));
        let t3 = set.get(TaskId(3)).unwrap();
        let plain = response_time(&set, t3).unwrap();
        let ft = ft_response_time(&set, t3, us(200), |k| k.wcet).unwrap();
        let observed = report.tasks[&TaskId(3)].max_response;
        assert!(
            observed > plain,
            "recovery must be visible: {observed} <= {plain}"
        );
        assert!(
            observed <= ft,
            "FT-RTA must still bound it: {observed} > {ft}"
        );
        assert!(report.no_misses());
    }

    #[test]
    fn recovery_for_inactive_task_lands_on_next_job() {
        let set: TaskSet = [task(1, 0, 100, 10)].into_iter().collect();
        let mut sim = FpSimulator::new(set);
        // At t=50 no job is active (job 0 finished at t=10); demand carries
        // over to the release at t=100.
        sim.inject_recovery(SimTime::ZERO + us(50), TaskId(1), us(20));
        let report = sim.run(us(300));
        let stats = &report.tasks[&TaskId(1)];
        // Max response = 30us (job with recovery), min = 10us.
        assert_eq!(stats.max_response, us(30));
    }

    #[test]
    fn long_run_is_stable() {
        let set = classic_set();
        let report = FpSimulator::new(set).run(SimDuration::from_millis(100));
        let total: u64 = report.tasks.values().map(|t| t.completed).sum();
        // 100ms / 50us = 2000 jobs of t1, + 1000 + 500.
        assert_eq!(total, 3500);
        assert!(report.no_misses());
    }

    #[test]
    fn sporadic_task_releases_only_at_arrivals() {
        let set: TaskSet = [task(1, 0, 100, 10), task(2, 1, 50, 5)]
            .into_iter()
            .collect();
        let mut sim = FpSimulator::new(set);
        // Task 1 is sporadic with two arrivals.
        sim.set_sporadic(
            TaskId(1),
            vec![SimTime::ZERO + us(120), SimTime::ZERO + us(400)],
        );
        let report = sim.run(us(1_000));
        assert_eq!(report.tasks[&TaskId(1)].completed, 2, "exactly two jobs");
        // The periodic task runs normally.
        assert_eq!(report.tasks[&TaskId(2)].completed, 20);
        assert!(report.no_misses());
    }

    #[test]
    fn sporadic_respecting_min_interarrival_meets_periodic_bound() {
        // RTA treats a sporadic task as periodic at its minimum
        // inter-arrival; any arrival pattern at least that sparse must
        // observe the bound.
        let set = classic_set(); // periods 50/100/200
        let bound = response_time(&set, set.get(TaskId(2)).unwrap()).unwrap();
        let mut sim = FpSimulator::new(set);
        // Task 2 sporadic, arrivals ≥ 100us apart (its period).
        sim.set_sporadic(
            TaskId(2),
            vec![
                SimTime::ZERO,
                SimTime::ZERO + us(130),
                SimTime::ZERO + us(260),
                SimTime::ZERO + us(500),
            ],
        );
        let report = sim.run(us(1_000));
        assert_eq!(report.tasks[&TaskId(2)].completed, 4);
        assert!(report.tasks[&TaskId(2)].max_response <= bound);
        assert!(report.no_misses());
    }

    #[test]
    fn sporadic_with_no_arrivals_never_runs() {
        let set: TaskSet = [task(1, 0, 100, 10), task(2, 1, 100, 10)]
            .into_iter()
            .collect();
        let mut sim = FpSimulator::new(set);
        sim.set_sporadic(TaskId(1), vec![]);
        let report = sim.run(us(500));
        assert_eq!(report.tasks[&TaskId(1)].completed, 0);
        assert!(report.tasks[&TaskId(2)].completed > 0);
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn sporadic_unknown_task_rejected() {
        let set: TaskSet = [task(1, 0, 100, 10)].into_iter().collect();
        FpSimulator::new(set).set_sporadic(TaskId(9), vec![]);
    }

    #[test]
    #[should_panic(expected = "empty task set")]
    fn empty_set_rejected() {
        FpSimulator::new(TaskSet::new()).run(us(10));
    }
}
