//! Task model: specifications, criticality and control blocks.
//!
//! Tasks follow the paper's periodic *read input → compute → write output*
//! loop (Fig. 2). Each task carries a fixed priority assigned by
//! *criticality* (§2.8): the consequence of failure, not the rate, decides
//! who runs first. The task control block stores the initial CPU context so
//! the kernel can restore a clean state before a recovery execution
//! (scenario iii/iv of Fig. 3).

use std::fmt;

use nlft_sim::time::SimDuration;

/// Identifier of a task within one node's task set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Fixed priority; **lower numeric value = higher priority**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Priority(pub u32);

impl Priority {
    /// The highest priority.
    pub const HIGHEST: Priority = Priority(0);
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

/// Task criticality, which drives both priority assignment and the error
/// handling strategy (§2.2):
///
/// * **Critical** tasks are executed under TEM (twice + vote on error) and
///   may consume recovery slack;
/// * **NonCritical** tasks run once; on error they are simply shut down so
///   the critical tasks can keep going.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Criticality {
    /// Failure endangers the controlled system (e.g. a brake request).
    Critical,
    /// Failure is tolerable (e.g. a diagnostic request).
    NonCritical,
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Criticality::Critical => write!(f, "critical"),
            Criticality::NonCritical => write!(f, "non-critical"),
        }
    }
}

/// Static description of a periodic task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Identifier, unique within the task set.
    pub id: TaskId,
    /// Human-readable name for traces.
    pub name: String,
    /// Release period.
    pub period: SimDuration,
    /// Relative deadline (≤ period for this kernel).
    pub deadline: SimDuration,
    /// Worst-case execution time of *one* copy of the task.
    pub wcet: SimDuration,
    /// Fixed priority.
    pub priority: Priority,
    /// Criticality level.
    pub criticality: Criticality,
}

/// Builder for [`TaskSpec`] with validation at `build` time.
///
/// # Examples
///
/// ```
/// use nlft_kernel::task::{Criticality, Priority, TaskId, TaskSpecBuilder};
/// use nlft_sim::time::SimDuration;
///
/// let spec = TaskSpecBuilder::new(TaskId(1), "brake-ctl")
///     .period(SimDuration::from_millis(5))
///     .wcet(SimDuration::from_micros(400))
///     .priority(Priority(0))
///     .criticality(Criticality::Critical)
///     .build()?;
/// assert_eq!(spec.deadline, spec.period, "deadline defaults to the period");
/// # Ok::<(), nlft_kernel::task::TaskSpecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TaskSpecBuilder {
    id: TaskId,
    name: String,
    period: Option<SimDuration>,
    deadline: Option<SimDuration>,
    wcet: Option<SimDuration>,
    priority: Priority,
    criticality: Criticality,
}

/// Validation error from [`TaskSpecBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskSpecError {
    /// No period given or period is zero.
    InvalidPeriod,
    /// No WCET given or WCET is zero.
    InvalidWcet,
    /// Deadline is zero or exceeds the period.
    InvalidDeadline,
    /// WCET exceeds the deadline — the task can never meet it.
    WcetExceedsDeadline,
}

impl fmt::Display for TaskSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSpecError::InvalidPeriod => write!(f, "period must be positive"),
            TaskSpecError::InvalidWcet => write!(f, "wcet must be positive"),
            TaskSpecError::InvalidDeadline => {
                write!(f, "deadline must be positive and at most the period")
            }
            TaskSpecError::WcetExceedsDeadline => write!(f, "wcet exceeds deadline"),
        }
    }
}

impl std::error::Error for TaskSpecError {}

impl TaskSpecBuilder {
    /// Starts a builder; period, WCET and priority still need setting.
    pub fn new(id: TaskId, name: impl Into<String>) -> Self {
        TaskSpecBuilder {
            id,
            name: name.into(),
            period: None,
            deadline: None,
            wcet: None,
            priority: Priority(u32::MAX),
            criticality: Criticality::NonCritical,
        }
    }

    /// Sets the release period.
    pub fn period(mut self, p: SimDuration) -> Self {
        self.period = Some(p);
        self
    }

    /// Sets the relative deadline (defaults to the period).
    pub fn deadline(mut self, d: SimDuration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the single-copy WCET.
    pub fn wcet(mut self, c: SimDuration) -> Self {
        self.wcet = Some(c);
        self
    }

    /// Sets the fixed priority.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Sets the criticality level.
    pub fn criticality(mut self, c: Criticality) -> Self {
        self.criticality = c;
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskSpecError`] when the period/WCET are missing or zero,
    /// or the deadline is inconsistent.
    pub fn build(self) -> Result<TaskSpec, TaskSpecError> {
        let period = self
            .period
            .filter(|p| !p.is_zero())
            .ok_or(TaskSpecError::InvalidPeriod)?;
        let wcet = self
            .wcet
            .filter(|c| !c.is_zero())
            .ok_or(TaskSpecError::InvalidWcet)?;
        let deadline = self.deadline.unwrap_or(period);
        if deadline.is_zero() || deadline > period {
            return Err(TaskSpecError::InvalidDeadline);
        }
        if wcet > deadline {
            return Err(TaskSpecError::WcetExceedsDeadline);
        }
        Ok(TaskSpec {
            id: self.id,
            name: self.name,
            period,
            deadline,
            wcet,
            priority: self.priority,
            criticality: self.criticality,
        })
    }
}

/// A validated fixed-priority task set.
///
/// Invariants: non-empty-name tasks with unique ids; iteration order is by
/// descending priority (ascending numeric value), ties broken by id, which
/// is also the scheduler's dispatch order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskSet {
    tasks: Vec<TaskSpec>,
}

/// Error adding a task to a set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskSetError {
    /// A task with this id already exists.
    DuplicateId(TaskId),
}

impl fmt::Display for TaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSetError::DuplicateId(id) => write!(f, "duplicate {id}"),
        }
    }
}

impl std::error::Error for TaskSetError {}

impl TaskSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TaskSet::default()
    }

    /// Adds a task, keeping priority order.
    ///
    /// # Errors
    ///
    /// [`TaskSetError::DuplicateId`] if the id is taken.
    pub fn add(&mut self, spec: TaskSpec) -> Result<(), TaskSetError> {
        if self.tasks.iter().any(|t| t.id == spec.id) {
            return Err(TaskSetError::DuplicateId(spec.id));
        }
        self.tasks.push(spec);
        self.tasks.sort_by_key(|t| (t.priority, t.id));
        Ok(())
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the set has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Tasks in descending priority order.
    pub fn iter(&self) -> impl Iterator<Item = &TaskSpec> {
        self.tasks.iter()
    }

    /// Looks up a task by id.
    pub fn get(&self, id: TaskId) -> Option<&TaskSpec> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Tasks with strictly higher priority than `task`.
    pub fn higher_priority_than<'a>(
        &'a self,
        task: &TaskSpec,
    ) -> impl Iterator<Item = &'a TaskSpec> + 'a {
        let key = (task.priority, task.id);
        self.tasks.iter().filter(move |t| (t.priority, t.id) < key)
    }

    /// Tasks with higher-or-equal priority (including `task` itself) —
    /// the `hep(i)` set of fault-tolerant response-time analysis.
    pub fn higher_or_equal_priority<'a>(
        &'a self,
        task: &TaskSpec,
    ) -> impl Iterator<Item = &'a TaskSpec> + 'a {
        let key = (task.priority, task.id);
        self.tasks.iter().filter(move |t| (t.priority, t.id) <= key)
    }

    /// Total single-copy utilisation `Σ C_i / T_i`.
    pub fn utilisation(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.wcet.as_secs_f64() / t.period.as_secs_f64())
            .sum()
    }
}

impl FromIterator<TaskSpec> for TaskSet {
    /// Builds a set, panicking on duplicate ids (use [`TaskSet::add`] for
    /// fallible construction).
    fn from_iter<I: IntoIterator<Item = TaskSpec>>(iter: I) -> Self {
        let mut set = TaskSet::new();
        for t in iter {
            set.add(t).expect("duplicate task id in from_iter");
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn spec(id: u32, prio: u32, period_ms: u64, wcet_ms: u64) -> TaskSpec {
        TaskSpecBuilder::new(TaskId(id), format!("t{id}"))
            .period(ms(period_ms))
            .wcet(ms(wcet_ms))
            .priority(Priority(prio))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_period_and_wcet() {
        assert_eq!(
            TaskSpecBuilder::new(TaskId(1), "x").wcet(ms(1)).build(),
            Err(TaskSpecError::InvalidPeriod)
        );
        assert_eq!(
            TaskSpecBuilder::new(TaskId(1), "x").period(ms(5)).build(),
            Err(TaskSpecError::InvalidWcet)
        );
        assert_eq!(
            TaskSpecBuilder::new(TaskId(1), "x")
                .period(ms(5))
                .wcet(ms(6))
                .build(),
            Err(TaskSpecError::WcetExceedsDeadline)
        );
    }

    #[test]
    fn deadline_defaults_to_period_and_is_bounded() {
        let s = spec(1, 0, 10, 2);
        assert_eq!(s.deadline, ms(10));
        assert_eq!(
            TaskSpecBuilder::new(TaskId(1), "x")
                .period(ms(5))
                .deadline(ms(6))
                .wcet(ms(1))
                .build(),
            Err(TaskSpecError::InvalidDeadline)
        );
    }

    #[test]
    fn set_orders_by_priority_then_id() {
        let mut set = TaskSet::new();
        set.add(spec(3, 2, 100, 1)).unwrap();
        set.add(spec(1, 0, 10, 1)).unwrap();
        set.add(spec(2, 0, 20, 1)).unwrap();
        let order: Vec<u32> = set.iter().map(|t| t.id.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut set = TaskSet::new();
        set.add(spec(1, 0, 10, 1)).unwrap();
        assert_eq!(
            set.add(spec(1, 1, 20, 1)),
            Err(TaskSetError::DuplicateId(TaskId(1)))
        );
    }

    #[test]
    fn higher_priority_sets() {
        let set: TaskSet = [spec(1, 0, 10, 1), spec(2, 1, 20, 2), spec(3, 2, 40, 4)]
            .into_iter()
            .collect();
        let t2 = set.get(TaskId(2)).unwrap();
        let hp: Vec<u32> = set.higher_priority_than(t2).map(|t| t.id.0).collect();
        assert_eq!(hp, vec![1]);
        let hep: Vec<u32> = set.higher_or_equal_priority(t2).map(|t| t.id.0).collect();
        assert_eq!(hep, vec![1, 2]);
    }

    #[test]
    fn utilisation_sums_ratios() {
        let set: TaskSet = [spec(1, 0, 10, 1), spec(2, 1, 20, 2)].into_iter().collect();
        assert!((set.utilisation() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn criticality_orders_critical_first() {
        assert!(Criticality::Critical < Criticality::NonCritical);
    }
}
