//! A machine-level fixed-priority **preemptive** executive.
//!
//! Where [`crate::executive`] activates one task at a time on private
//! machines, this executive models the paper's actual kernel architecture:
//! several tasks co-resident in **one** memory, each confined to its own
//! MMU window, sharing one CPU under fixed-priority preemptive dispatch
//! (§2.8). A release of a higher-priority task suspends the running one by
//! saving its full CPU context into its task control block and restoring
//! it cycle-exactly later — the same context machinery TEM's recovery
//! relies on (§2.5).
//!
//! The executive also demonstrates the MMU's fault-confinement promise
//! (§2.4): a task whose pointers run wild can only trap, never write into
//! a neighbour's window.
//!
//! Time is measured in CPU cycles. Tasks follow the paper's task model:
//! read inputs at the start, write outputs at the end of each job, so a
//! preempted job's ports can be safely re-latched on resume.

use std::collections::BTreeMap;
use std::fmt;

use nlft_machine::asm::assemble_at;
use nlft_machine::cpu::CpuContext;
use nlft_machine::edm::Edm;
use nlft_machine::fault::TransientFault;
use nlft_machine::machine::{Machine, RunExit};
use nlft_machine::mem::WORD_BYTES;
use nlft_machine::mmu::{MemoryMap, Perms, Region};

use crate::contract::{ContractOutcomes, DegradationAction, MkContract, TaskContract};
use crate::task::{Priority, TaskId};

/// Size of one task window (code 1 KiB + data 1 KiB + stack 2 KiB).
pub const WINDOW_BYTES: u32 = 0x1000;
const CODE_BYTES: u32 = 0x400;
const DATA_BYTES: u32 = 0x400;

/// Static description of a resident task.
#[derive(Debug, Clone)]
pub struct ResidentTask {
    /// Identifier.
    pub id: TaskId,
    /// Name for reports.
    pub name: String,
    /// Release period in CPU cycles.
    pub period_cycles: u64,
    /// Relative deadline in cycles (≤ period).
    pub deadline_cycles: u64,
    /// Execution-time-monitor budget per job, in cycles.
    pub budget_cycles: u64,
    /// Fixed priority (lower value = higher priority).
    pub priority: Priority,
    /// Input port values latched for every job.
    pub inputs: Vec<(usize, u32)>,
    /// Output port read at job completion.
    pub output_port: usize,
    /// Run under TEM (§2.5): every job executes two copies with a
    /// comparison over outputs, state digest and path signature; on any
    /// detection a replacement/third copy runs (all copies preemptible)
    /// and a 2-of-3 vote decides; out of copies/budget → omission, the
    /// task stays alive for its next period.
    pub critical: bool,
}

/// Error from building the executive.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The assembly failed.
    Assembly(nlft_machine::asm::AsmError),
    /// The program does not fit its code window.
    ProgramTooLarge {
        /// Task name.
        name: String,
        /// Image size in bytes.
        bytes: u32,
    },
    /// More tasks than windows fit in memory.
    OutOfWindows,
    /// Invalid timing parameters.
    BadTiming(&'static str),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Assembly(e) => write!(f, "assembly failed: {e}"),
            BuildError::ProgramTooLarge { name, bytes } => {
                write!(f, "task `{name}` needs {bytes} bytes of code window")
            }
            BuildError::OutOfWindows => write!(f, "no free task window left"),
            BuildError::BadTiming(m) => write!(f, "bad timing: {m}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<nlft_machine::asm::AsmError> for BuildError {
    fn from(e: nlft_machine::asm::AsmError) -> Self {
        BuildError::Assembly(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Idle,
    /// Released, never dispatched yet.
    Ready {
        released_at: u64,
    },
    /// Preempted mid-execution.
    Suspended {
        released_at: u64,
        consumed: u64,
    },
}

/// Maximum executions per TEM job (two scheduled + up to two recoveries).
const MAX_COPIES: u32 = 4;
/// Maximum results voted over.
const MAX_RESULTS: usize = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CopyResultVec {
    output: Option<u32>,
    digest: u64,
    sig: u64,
}

#[derive(Debug, Clone)]
struct TemJob {
    snapshot: Vec<u32>,
    results: Vec<CopyResultVec>,
    copies: u32,
    detected: bool,
}

#[derive(Debug)]
struct Tcb {
    task: ResidentTask,
    window_base: u32,
    entry: u32,
    stack_top: u32,
    map: MemoryMap,
    context: Option<CpuContext>,
    state: JobState,
    next_release: u64,
    shutdown: bool,
    tem: Option<TemJob>,
}

/// Per-task statistics from a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResidentStats {
    /// Jobs completed.
    pub completed: u64,
    /// Worst observed response time in cycles.
    pub max_response_cycles: u64,
    /// Deadline misses.
    pub deadline_misses: u64,
    /// Budget-overrun aborts.
    pub overruns: u64,
    /// Exception aborts (non-critical: task shut down; critical: copy
    /// replaced).
    pub exceptions: u64,
    /// TEM copies executed (critical tasks only).
    pub copies: u64,
    /// Jobs delivered after masking an error (critical tasks only).
    pub masked: u64,
    /// Jobs that ended in an omission (critical tasks only).
    pub omissions: u64,
    /// Releases substituted by the safe job variant while the task's
    /// weakly-hard contract was violated.
    pub safe_substituted: u64,
    /// Last output value delivered.
    pub last_output: Option<u32>,
}

/// Result of a preemptive run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreemptiveReport {
    /// Per-task statistics.
    pub tasks: BTreeMap<TaskId, ResidentStats>,
    /// Context switches performed.
    pub context_switches: u64,
    /// Preemptions (a running job displaced by a higher-priority release).
    pub preemptions: u64,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Weakly-hard contract telemetry per registered task.
    pub contracts: BTreeMap<TaskId, ContractOutcomes>,
    /// `(task, cycle)` of each fresh contract violation under
    /// [`DegradationAction::Escalate`], ready to feed the node's
    /// escalation ladder.
    pub contract_escalations: Vec<(TaskId, u64)>,
}

impl PreemptiveReport {
    /// `true` when no deadline was missed anywhere.
    pub fn no_misses(&self) -> bool {
        self.tasks.values().all(|t| t.deadline_misses == 0)
    }
}

/// The preemptive executive: one machine, many confined tasks.
#[derive(Debug)]
pub struct PreemptiveExecutive {
    machine: Machine,
    tcbs: Vec<Tcb>,
    injection: Option<(u64, TaskId, TransientFault)>,
    contracts: BTreeMap<TaskId, TaskContract>,
}

impl PreemptiveExecutive {
    /// Creates an executive with `windows` task windows of 4 KiB each.
    pub fn new(windows: u32) -> Self {
        PreemptiveExecutive {
            machine: Machine::new(windows * WINDOW_BYTES, MemoryMap::new()),
            tcbs: Vec::new(),
            injection: None,
            contracts: BTreeMap::new(),
        }
    }

    /// Registers a weakly-hard (m,k) contract for an already-added task.
    /// Every job conclusion — delivery, omission, overrun or exception —
    /// feeds the contract's window; while it is violated the executive
    /// applies `action`.
    ///
    /// # Panics
    ///
    /// Panics when no task with `id` has been added.
    pub fn register_contract(
        &mut self,
        id: TaskId,
        contract: MkContract,
        action: DegradationAction,
    ) {
        assert!(
            self.tcbs.iter().any(|t| t.task.id == id),
            "contract registered for unknown task"
        );
        self.contracts
            .insert(id, TaskContract::new(contract, action));
    }

    /// Plants one transient fault, applied the first time `task` is on the
    /// CPU at or after global cycle `at_cycle`.
    pub fn inject(&mut self, at_cycle: u64, task: TaskId, fault: TransientFault) {
        self.injection = Some((at_cycle, task, fault));
    }

    /// Loads a task's assembly into the next free window.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for assembly failures, oversized programs,
    /// exhausted windows or inconsistent timing.
    pub fn add_task(&mut self, task: ResidentTask, source: &str) -> Result<(), BuildError> {
        if task.period_cycles == 0 || task.budget_cycles == 0 {
            return Err(BuildError::BadTiming("period and budget must be positive"));
        }
        if task.deadline_cycles == 0 || task.deadline_cycles > task.period_cycles {
            return Err(BuildError::BadTiming("deadline must be in (0, period]"));
        }
        let index = self.tcbs.len() as u32;
        let base = index * WINDOW_BYTES;
        if base + WINDOW_BYTES > self.machine.mem.size_bytes() {
            return Err(BuildError::OutOfWindows);
        }
        let image = assemble_at(source, base)?;
        if image.size_bytes() > CODE_BYTES {
            return Err(BuildError::ProgramTooLarge {
                name: task.name.clone(),
                bytes: image.size_bytes(),
            });
        }
        self.machine
            .load_program(base, &image.words)
            .expect("window is mapped");
        let map = MemoryMap::from_regions(vec![
            Region::new(base, CODE_BYTES, Perms::RX),
            Region::new(base + CODE_BYTES, DATA_BYTES, Perms::RW),
            Region::new(
                base + CODE_BYTES + DATA_BYTES,
                WINDOW_BYTES - CODE_BYTES - DATA_BYTES,
                Perms::RW,
            ),
        ]);
        self.tcbs.push(Tcb {
            stack_top: base + WINDOW_BYTES,
            entry: base,
            window_base: base,
            map,
            context: None,
            state: JobState::Idle,
            next_release: 0,
            shutdown: false,
            tem: None,
            task,
        });
        Ok(())
    }

    /// Base address of a task's window (for oracle inspection in tests).
    pub fn window_of(&self, id: TaskId) -> Option<u32> {
        self.tcbs
            .iter()
            .find(|t| t.task.id == id)
            .map(|t| t.window_base)
    }

    /// Raw access to the shared machine (oracle inspection).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Runs the executive for `horizon` CPU cycles.
    ///
    /// # Panics
    ///
    /// Panics if no tasks were added.
    pub fn run(&mut self, horizon: u64) -> PreemptiveReport {
        assert!(!self.tcbs.is_empty(), "no resident tasks");
        let mut report = PreemptiveReport::default();
        for t in &self.tcbs {
            report.tasks.insert(t.task.id, ResidentStats::default());
        }
        let mut now: u64 = 0;
        let mut running: Option<usize> = None; // index into tcbs

        while now < horizon {
            // 1. Process releases due now.
            for t in self.tcbs.iter_mut() {
                if !t.shutdown && t.next_release <= now {
                    if t.state == JobState::Idle {
                        // A degraded SkipToSafe task substitutes the
                        // release with its safe variant: the last good
                        // output stands, the job never occupies the CPU,
                        // and the guaranteed hit heals the window.
                        if let Some(c) = self.contracts.get_mut(&t.task.id) {
                            if c.wants_safe_substitute() {
                                c.record_safe_substitute();
                                let stats = report.tasks.get_mut(&t.task.id).expect("known task");
                                stats.completed += 1;
                                stats.safe_substituted += 1;
                                t.next_release += t.task.period_cycles;
                                continue;
                            }
                        }
                        t.state = JobState::Ready {
                            released_at: t.next_release,
                        };
                    }
                    // (A still-active job at its next release is already
                    // counted late via its deadline; skip re-release.)
                    t.next_release += t.task.period_cycles;
                }
            }

            // 2. Pick the highest-priority active job.
            let next = self
                .tcbs
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.shutdown && t.state != JobState::Idle)
                .min_by_key(|(_, t)| (t.task.priority, t.task.id));
            let Some((idx, _)) = next else {
                // Idle until the next release or the horizon.
                let next_release = self
                    .tcbs
                    .iter()
                    .filter(|t| !t.shutdown)
                    .map(|t| t.next_release)
                    .min()
                    .unwrap_or(horizon);
                now = next_release.max(now + 1).min(horizon);
                continue;
            };

            // 3. Context switch if needed.
            if running != Some(idx) {
                report.context_switches += 1;
                if let Some(old) = running {
                    // The displaced job was still mid-execution: preemption.
                    if matches!(self.tcbs[old].state, JobState::Suspended { .. }) {
                        report.preemptions += 1;
                    }
                }
                self.dispatch(idx);
                running = Some(idx);
            }

            // 4. Run until the next interesting instant: closest release,
            //    the job's remaining budget, or the horizon.
            let (released_at, consumed) = match self.tcbs[idx].state {
                JobState::Ready { released_at } => (released_at, 0),
                JobState::Suspended {
                    released_at,
                    consumed,
                } => (released_at, consumed),
                JobState::Idle => unreachable!("idle job dispatched"),
            };
            let next_release = self
                .tcbs
                .iter()
                .filter(|t| !t.shutdown)
                .map(|t| t.next_release)
                .min()
                .unwrap_or(horizon);
            let budget_left = self.tcbs[idx].task.budget_cycles.saturating_sub(consumed);
            let mut quantum = budget_left
                .min(next_release.saturating_sub(now))
                .min(horizon - now)
                .max(1);

            if let Some((at, victim, fault)) = self.injection {
                if victim == self.tcbs[idx].task.id {
                    if now >= at {
                        // Cycle-precise injection while the victim runs.
                        fault.apply(&mut self.machine);
                        self.injection = None;
                    } else {
                        // Stop the quantum at the injection instant.
                        quantum = quantum.min((at - now).max(1));
                    }
                }
            }

            let out = self.machine.run(quantum);
            now += out.cycles_used;
            let consumed = consumed + out.cycles_used;

            match out.exit {
                RunExit::Halted if self.tcbs[idx].task.critical => {
                    // One TEM copy finished: record its result vector and
                    // decide whether to run another copy, deliver, or omit.
                    let output = self.machine.output(self.tcbs[idx].task.output_port);
                    let digest = self.digest_window(idx);
                    let sig = self.machine.cpu.path_sig;
                    let cap = self.copy_cap(idx);
                    let t = &mut self.tcbs[idx];
                    let tem = t.tem.as_mut().expect("critical job has TEM state");
                    tem.results.push(CopyResultVec {
                        output,
                        digest,
                        sig,
                    });
                    report.tasks.get_mut(&t.task.id).expect("known task").copies += 1;
                    let decision = decide(tem, cap);
                    self.conclude_copy(idx, decision, now, released_at, &mut report);
                    running = None;
                }
                RunExit::Halted => {
                    // Non-critical job complete: deliver output, retire.
                    let t = &mut self.tcbs[idx];
                    let id = t.task.id;
                    let stats = report.tasks.get_mut(&id).expect("known task");
                    stats.completed += 1;
                    stats.last_output = self.machine.output(t.task.output_port);
                    let response = now - released_at;
                    stats.max_response_cycles = stats.max_response_cycles.max(response);
                    let miss = response > t.task.deadline_cycles;
                    if miss {
                        stats.deadline_misses += 1;
                    }
                    t.state = JobState::Idle;
                    t.context = None;
                    running = None;
                    self.observe_contract(id, miss, now, &mut report);
                }
                RunExit::BudgetExhausted => {
                    if consumed >= self.tcbs[idx].task.budget_cycles {
                        // Execution-time monitor trip.
                        if self.tcbs[idx].task.critical {
                            let cap = self.copy_cap(idx);
                            let t = &mut self.tcbs[idx];
                            let stats = report.tasks.get_mut(&t.task.id).expect("known task");
                            stats.overruns += 1;
                            let tem = t.tem.as_mut().expect("critical job has TEM state");
                            tem.detected = true;
                            let decision = decide(tem, cap);
                            self.conclude_copy(idx, decision, now, released_at, &mut report);
                            running = None;
                        } else {
                            let t = &mut self.tcbs[idx];
                            let id = t.task.id;
                            let stats = report.tasks.get_mut(&id).expect("known task");
                            stats.overruns += 1;
                            stats.deadline_misses += 1;
                            t.state = JobState::Idle;
                            t.context = None;
                            running = None;
                            self.observe_contract(id, true, now, &mut report);
                        }
                    } else {
                        // Quantum expired (a release is due): suspend.
                        let t = &mut self.tcbs[idx];
                        t.context = Some(self.machine.cpu.capture());
                        t.state = JobState::Suspended {
                            released_at,
                            consumed,
                        };
                        // `running` stays: if the released job has lower
                        // priority, step 2 re-picks this one without a
                        // context switch.
                    }
                }
                RunExit::Exception(e) => {
                    let _ = Edm::from_exception(&e);
                    if self.tcbs[idx].task.critical {
                        // Scenario iii/iv of Fig. 3: terminate the copy,
                        // restore a clean context, run a replacement.
                        let cap = self.copy_cap(idx);
                        let t = &mut self.tcbs[idx];
                        let stats = report.tasks.get_mut(&t.task.id).expect("known task");
                        stats.exceptions += 1;
                        let tem = t.tem.as_mut().expect("critical job has TEM state");
                        tem.detected = true;
                        let decision = decide(tem, cap);
                        self.conclude_copy(idx, decision, now, released_at, &mut report);
                        running = None;
                    } else {
                        // Fault confinement: only this task is affected; it
                        // is shut down like a non-critical task (§2.2).
                        let t = &mut self.tcbs[idx];
                        let id = t.task.id;
                        let stats = report.tasks.get_mut(&id).expect("known task");
                        stats.exceptions += 1;
                        t.state = JobState::Idle;
                        t.context = None;
                        t.shutdown = true;
                        running = None;
                        self.observe_contract(id, true, now, &mut report);
                    }
                }
            }
        }
        report.cycles = now;
        for (id, c) in &self.contracts {
            report.contracts.insert(*id, c.outcomes().clone());
        }
        report
    }

    /// TEM copy cap for task `idx` under its contract's current
    /// degradation state ([`MAX_COPIES`] when unconstrained).
    fn copy_cap(&self, idx: usize) -> u32 {
        self.contracts
            .get(&self.tcbs[idx].task.id)
            .and_then(|c| c.copy_cap())
            .unwrap_or(MAX_COPIES)
    }

    /// Feeds one concluded job into the task's contract window, logging
    /// fresh violations under the Escalate action.
    fn observe_contract(
        &mut self,
        id: TaskId,
        miss: bool,
        now: u64,
        report: &mut PreemptiveReport,
    ) {
        if let Some(c) = self.contracts.get_mut(&id) {
            let newly_violated = c.record(miss);
            if newly_violated && c.action() == DegradationAction::Escalate {
                report.contract_escalations.push((id, now));
            }
        }
    }

    /// Installs task `idx` on the CPU: MMU map, ports, and either a fresh
    /// entry context or the saved one.
    fn dispatch(&mut self, idx: usize) {
        let t = &mut self.tcbs[idx];
        self.machine.set_memory_map(t.map.clone());
        for &(port, value) in &t.task.inputs {
            self.machine.set_input(port, value);
        }
        self.machine.clear_halt();
        match (&t.state, &t.context) {
            (JobState::Suspended { .. }, Some(ctx)) => {
                self.machine.cpu.restore(ctx);
            }
            _ => {
                // Fresh copy: reset architectural state to the task's entry.
                let cycles = self.machine.cpu.cycles;
                self.machine.cpu = nlft_machine::cpu::CpuState::new(t.entry, t.stack_top);
                self.machine.cpu.cycles = cycles;
                self.machine.clear_outputs();
                if t.task.critical {
                    let base = t.window_base;
                    match &mut t.tem {
                        None => {
                            // First copy of a new job: snapshot the state
                            // window so every copy starts identically and
                            // omissions can roll back (§2.6).
                            let snapshot = snapshot_window(&self.machine, base);
                            t.tem = Some(TemJob {
                                snapshot,
                                results: Vec::new(),
                                copies: 1,
                                detected: false,
                            });
                        }
                        Some(tem) => {
                            tem.copies += 1;
                            let snapshot = tem.snapshot.clone();
                            restore_window(&mut self.machine, base, &snapshot);
                        }
                    }
                }
            }
        }
    }

    fn digest_window(&self, idx: usize) -> u64 {
        let base = self.tcbs[idx].window_base;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..DATA_BYTES / WORD_BYTES {
            let w = self
                .machine
                .mem
                .peek(base + CODE_BYTES + i * WORD_BYTES)
                .expect("data window is mapped");
            h ^= u64::from(w);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Applies a TEM decision after a copy ended (completed or detected).
    fn conclude_copy(
        &mut self,
        idx: usize,
        decision: TemDecision,
        now: u64,
        released_at: u64,
        report: &mut PreemptiveReport,
    ) {
        let id = self.tcbs[idx].task.id;
        let mut concluded: Option<bool> = None;
        match decision {
            TemDecision::AnotherCopy => {
                // Queue the next copy: the job stays Ready (fresh context
                // dispatch restores the snapshot and bumps the copy count).
                let t = &mut self.tcbs[idx];
                t.state = JobState::Ready { released_at };
                t.context = None;
            }
            TemDecision::Deliver { output, masked } => {
                let t = &mut self.tcbs[idx];
                let stats = report.tasks.get_mut(&t.task.id).expect("known task");
                stats.completed += 1;
                if masked {
                    stats.masked += 1;
                }
                stats.last_output = output;
                let response = now - released_at;
                stats.max_response_cycles = stats.max_response_cycles.max(response);
                let miss = response > t.task.deadline_cycles;
                if miss {
                    stats.deadline_misses += 1;
                }
                t.state = JobState::Idle;
                t.context = None;
                t.tem = None;
                concluded = Some(miss);
            }
            TemDecision::Omission => {
                // Roll the state window back and deliver nothing; the task
                // stays alive for its next period.
                let t = &mut self.tcbs[idx];
                let snapshot = t.tem.as_ref().expect("tem state").snapshot.clone();
                let base = t.window_base;
                restore_window(&mut self.machine, base, &snapshot);
                let stats = report.tasks.get_mut(&t.task.id).expect("known task");
                stats.omissions += 1;
                stats.deadline_misses += 1;
                t.state = JobState::Idle;
                t.context = None;
                t.tem = None;
                concluded = Some(true);
            }
        }
        if let Some(miss) = concluded {
            self.observe_contract(id, miss, now, report);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TemDecision {
    AnotherCopy,
    Deliver { output: Option<u32>, masked: bool },
    Omission,
}

/// The TEM progression rule over the copies executed so far.
/// `max_copies` is normally [`MAX_COPIES`] but a violated ClampRecovery
/// contract lowers it to the two scheduled copies.
fn decide(tem: &TemJob, max_copies: u32) -> TemDecision {
    let out_of_copies = tem.copies >= max_copies;
    match tem.results.len() {
        0 | 1 => {
            if out_of_copies {
                TemDecision::Omission
            } else {
                TemDecision::AnotherCopy
            }
        }
        2 => {
            if tem.results[0] == tem.results[1] {
                TemDecision::Deliver {
                    output: tem.results[1].output,
                    masked: tem.detected,
                }
            } else if out_of_copies {
                TemDecision::Omission
            } else {
                TemDecision::AnotherCopy
            }
        }
        n => {
            debug_assert!(n <= MAX_RESULTS);
            let r = &tem.results;
            if r[2] == r[0] || r[2] == r[1] {
                TemDecision::Deliver {
                    output: r[2].output,
                    masked: true,
                }
            } else if r[0] == r[1] {
                TemDecision::Deliver {
                    output: r[1].output,
                    masked: true,
                }
            } else {
                TemDecision::Omission
            }
        }
    }
}

fn snapshot_window(machine: &Machine, base: u32) -> Vec<u32> {
    (0..DATA_BYTES / WORD_BYTES)
        .map(|i| {
            machine
                .mem
                .peek(base + CODE_BYTES + i * WORD_BYTES)
                .expect("data window is mapped")
        })
        .collect()
}

fn restore_window(machine: &mut Machine, base: u32, snapshot: &[u32]) {
    for (i, &w) in snapshot.iter().enumerate() {
        machine
            .mem
            .store(base + CODE_BYTES + i as u32 * WORD_BYTES, w)
            .expect("data window is mapped");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_task_src(step: u32, iters: u32) -> String {
        // Busy loop of `iters` iterations, then outputs step*iters.
        format!(
            "    ldi r0, 0
                 ldi r1, {iters}
                 ldi r2, 1
                 ldi r3, {step}
             loop:
                 add r0, r0, r3
                 sub r1, r1, r2
                 jnz loop
                 out r0, port{port}
                 halt",
            iters = iters,
            step = step,
            port = 0
        )
    }

    fn resident(id: u32, prio: u32, period: u64, budget: u64) -> ResidentTask {
        ResidentTask {
            id: TaskId(id),
            name: format!("t{id}"),
            period_cycles: period,
            deadline_cycles: period,
            budget_cycles: budget,
            priority: Priority(prio),
            inputs: vec![],
            output_port: 0,
            critical: false,
        }
    }

    fn critical(id: u32, prio: u32, period: u64, budget: u64) -> ResidentTask {
        ResidentTask {
            critical: true,
            ..resident(id, prio, period, budget)
        }
    }

    #[test]
    fn two_tasks_share_the_cpu() {
        let mut exec = PreemptiveExecutive::new(2);
        exec.add_task(resident(1, 0, 500, 200), &counting_task_src(2, 20))
            .unwrap();
        exec.add_task(resident(2, 1, 1_000, 600), &counting_task_src(3, 100))
            .unwrap();
        let report = exec.run(10_000);
        assert!(report.tasks[&TaskId(1)].completed >= 19);
        assert!(report.tasks[&TaskId(2)].completed >= 9);
        assert_eq!(report.tasks[&TaskId(1)].last_output, Some(40));
        assert_eq!(report.tasks[&TaskId(2)].last_output, Some(300));
        assert!(report.no_misses());
    }

    #[test]
    fn high_priority_release_preempts_low_priority_job() {
        let mut exec = PreemptiveExecutive::new(2);
        // Task 1: short, frequent, high priority.
        exec.add_task(resident(1, 0, 300, 120), &counting_task_src(1, 10))
            .unwrap();
        // Task 2: long job that cannot finish between task-1 releases.
        exec.add_task(resident(2, 1, 3_000, 2_000), &counting_task_src(1, 400))
            .unwrap();
        let report = exec.run(9_000);
        assert!(report.preemptions > 0, "the long job must get preempted");
        assert!(report.tasks[&TaskId(2)].completed >= 2);
        // Preemption must not corrupt the long task's result.
        assert_eq!(report.tasks[&TaskId(2)].last_output, Some(400));
        assert!(report.no_misses());
    }

    #[test]
    fn preempted_context_resumes_exactly() {
        // The resumed job's output equals the uninterrupted golden value —
        // context save/restore is cycle-exact and register-exact.
        let mut solo = PreemptiveExecutive::new(1);
        solo.add_task(resident(2, 0, 10_000, 9_000), &counting_task_src(7, 333))
            .unwrap();
        let golden = solo.run(10_000).tasks[&TaskId(2)].last_output;

        let mut exec = PreemptiveExecutive::new(2);
        exec.add_task(resident(1, 0, 200, 80), &counting_task_src(1, 5))
            .unwrap();
        exec.add_task(resident(2, 1, 10_000, 9_000), &counting_task_src(7, 333))
            .unwrap();
        let report = exec.run(10_000);
        assert!(report.preemptions > 0);
        assert_eq!(report.tasks[&TaskId(2)].last_output, golden);
    }

    #[test]
    fn budget_overrun_aborts_only_the_offender() {
        let mut exec = PreemptiveExecutive::new(2);
        // Budget far below the job's real demand → every job overruns.
        exec.add_task(resident(1, 1, 2_000, 50), &counting_task_src(1, 200))
            .unwrap();
        exec.add_task(resident(2, 0, 500, 200), &counting_task_src(2, 20))
            .unwrap();
        let report = exec.run(8_000);
        assert!(report.tasks[&TaskId(1)].overruns > 0);
        assert_eq!(report.tasks[&TaskId(1)].completed, 0);
        assert!(
            report.tasks[&TaskId(2)].completed >= 14,
            "victim unaffected"
        );
        assert_eq!(report.tasks[&TaskId(2)].deadline_misses, 0);
    }

    #[test]
    fn mmu_confines_wild_task_to_its_window() {
        let mut exec = PreemptiveExecutive::new(2);
        // Task 1 (window 0) writes a sentinel into its data area each job.
        exec.add_task(
            resident(1, 0, 1_000, 400),
            "    ldi r1, 0x400
                 ldi r0, 77
                 st  r0, [r1+0]
                 out r0, port0
                 halt",
        )
        .unwrap();
        // Task 2 (window 1) tries to smash window 0's data (absolute 0x400).
        exec.add_task(
            resident(2, 1, 1_000, 400),
            "    ldi r1, 0x400      ; foreign window!
                 ldi r0, 666
                 st  r0, [r1+0]
                 halt",
        )
        .unwrap();
        let report = exec.run(5_000);
        // The attacker trapped and was shut down…
        assert_eq!(report.tasks[&TaskId(2)].exceptions, 1);
        assert_eq!(report.tasks[&TaskId(2)].completed, 0);
        // …while the victim kept running and its data is intact.
        assert!(report.tasks[&TaskId(1)].completed >= 4);
        assert_eq!(exec.machine().mem.peek(0x400).unwrap(), 77);
    }

    #[test]
    fn critical_task_runs_two_copies_per_clean_job() {
        let mut exec = PreemptiveExecutive::new(1);
        exec.add_task(critical(1, 0, 1_000, 400), &counting_task_src(2, 20))
            .unwrap();
        let report = exec.run(10_000);
        let s = &report.tasks[&TaskId(1)];
        assert!(s.completed >= 9);
        assert_eq!(s.copies, s.completed * 2, "no third copies when clean");
        assert_eq!(s.masked, 0);
        assert_eq!(s.omissions, 0);
        assert_eq!(s.last_output, Some(40));
        assert!(report.no_misses());
    }

    #[test]
    fn critical_task_masks_hardware_detected_fault() {
        let mut exec = PreemptiveExecutive::new(1);
        exec.add_task(critical(1, 0, 2_000, 800), &counting_task_src(2, 20))
            .unwrap();
        // PC flip mid-copy → fetch outside the window → MMU/bus trap.
        exec.inject(
            30,
            TaskId(1),
            TransientFault {
                target: nlft_machine::fault::FaultTarget::Pc,
                mask: 1 << 20,
            },
        );
        let report = exec.run(8_000);
        let s = &report.tasks[&TaskId(1)];
        assert_eq!(s.exceptions, 1, "the EDM fired once");
        assert_eq!(s.masked, 1, "the faulted job was masked");
        assert!(s.completed >= 3);
        assert_eq!(s.last_output, Some(40), "delivered values stay golden");
        assert_eq!(s.omissions, 0);
    }

    #[test]
    fn silent_corruption_caught_by_comparison_and_voted_out() {
        let mut exec = PreemptiveExecutive::new(1);
        exec.add_task(critical(1, 0, 2_000, 800), &counting_task_src(2, 20))
            .unwrap();
        // Accumulator flip mid-copy: no EDM fires; only the comparison can
        // see it, and the 2-of-3 vote recovers the golden result.
        exec.inject(
            30,
            TaskId(1),
            TransientFault {
                target: nlft_machine::fault::FaultTarget::Register(nlft_machine::isa::Reg::R0),
                mask: 1 << 4,
            },
        );
        let report = exec.run(8_000);
        let s = &report.tasks[&TaskId(1)];
        assert_eq!(s.masked, 1, "comparison + vote masked the corruption");
        assert_eq!(s.last_output, Some(40));
        // The faulted job used three copies.
        assert!(s.copies > s.completed * 2);
    }

    #[test]
    fn critical_omission_on_persistent_overrun_keeps_task_alive() {
        let mut exec = PreemptiveExecutive::new(2);
        // Budget far below demand: every copy overruns → omissions.
        exec.add_task(critical(1, 1, 3_000, 30), &counting_task_src(1, 100))
            .unwrap();
        exec.add_task(resident(2, 0, 500, 200), &counting_task_src(2, 20))
            .unwrap();
        let report = exec.run(9_000);
        let s1 = &report.tasks[&TaskId(1)];
        assert_eq!(s1.completed, 0);
        assert!(
            s1.omissions >= 2,
            "one omission per period, task stays alive"
        );
        assert!(s1.overruns >= s1.omissions, "overruns drove the omissions");
        // The neighbour is untouched.
        assert!(report.tasks[&TaskId(2)].completed >= 14);
        assert_eq!(report.tasks[&TaskId(2)].deadline_misses, 0);
    }

    #[test]
    fn tem_copies_are_preemptible_and_still_correct() {
        let mut exec = PreemptiveExecutive::new(2);
        // High-rate monitor preempts the critical task's copies.
        exec.add_task(resident(1, 0, 300, 120), &counting_task_src(1, 10))
            .unwrap();
        exec.add_task(critical(2, 1, 6_000, 2_500), &counting_task_src(7, 333))
            .unwrap();
        let report = exec.run(24_000);
        assert!(report.preemptions > 0, "copies must get preempted");
        let s = &report.tasks[&TaskId(2)];
        assert!(s.completed >= 3);
        assert_eq!(
            s.last_output,
            Some(2331),
            "7 × 333, copy-exact across preemption"
        );
        assert_eq!(s.masked, 0);
        assert!(report.no_misses());
    }

    #[test]
    fn build_errors_are_reported() {
        let mut exec = PreemptiveExecutive::new(1);
        assert!(matches!(
            exec.add_task(resident(1, 0, 0, 10), "halt"),
            Err(BuildError::BadTiming(_))
        ));
        assert!(matches!(
            exec.add_task(resident(1, 0, 100, 10), "bogus"),
            Err(BuildError::Assembly(_))
        ));
        // Fill the single window, then overflow.
        exec.add_task(resident(1, 0, 100, 10), "halt").unwrap();
        assert!(matches!(
            exec.add_task(resident(2, 0, 100, 10), "halt"),
            Err(BuildError::OutOfWindows)
        ));
    }

    #[test]
    fn oversized_program_rejected() {
        let mut exec = PreemptiveExecutive::new(1);
        let big = "nop\n".repeat(300); // 1200 bytes > 1 KiB window
        assert!(matches!(
            exec.add_task(resident(1, 0, 100, 10), &big),
            Err(BuildError::ProgramTooLarge { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "no resident tasks")]
    fn empty_executive_rejected() {
        PreemptiveExecutive::new(1).run(100);
    }

    #[test]
    fn skip_to_safe_substitutes_while_degraded() {
        let mut exec = PreemptiveExecutive::new(1);
        // Budget far below demand: every executed job overruns (a miss).
        exec.add_task(resident(1, 0, 1_000, 30), &counting_task_src(1, 100))
            .unwrap();
        exec.register_contract(
            TaskId(1),
            MkContract::new(1, 4),
            DegradationAction::SkipToSafe,
        );
        let report = exec.run(12_000);
        let s = &report.tasks[&TaskId(1)];
        let c = &report.contracts[&TaskId(1)];
        assert!(c.violations >= 1, "two misses in 4 jobs violate (1,4)");
        assert!(
            s.safe_substituted >= 3,
            "degraded releases are substituted until the window heals"
        );
        assert_eq!(s.completed, s.safe_substituted, "real jobs always overrun");
        assert_eq!(c.jobs, s.safe_substituted + s.overruns);
        assert_eq!(c.min_margin, 0);
        // Substitution heals the window, so the task re-violates in cycles
        // rather than missing every period.
        assert!(s.overruns < c.jobs);
    }

    #[test]
    fn clamp_recovery_caps_tem_copies_while_degraded() {
        let mut unclamped = PreemptiveExecutive::new(1);
        unclamped
            .add_task(critical(1, 0, 3_000, 30), &counting_task_src(1, 100))
            .unwrap();
        let free = unclamped.run(30_000);

        let mut exec = PreemptiveExecutive::new(1);
        exec.add_task(critical(1, 0, 3_000, 30), &counting_task_src(1, 100))
            .unwrap();
        exec.register_contract(
            TaskId(1),
            MkContract::new(0, 4),
            DegradationAction::ClampRecovery,
        );
        let report = exec.run(30_000);
        let s = &report.tasks[&TaskId(1)];
        let c = &report.contracts[&TaskId(1)];
        assert!(c.violations >= 1, "the first omission violates (0,4)");
        assert_eq!(s.completed, 0);
        assert_eq!(s.omissions, free.tasks[&TaskId(1)].omissions);
        // Clamped jobs stop after the two scheduled copies instead of
        // burning MAX_COPIES on a hopeless recovery: every copy overruns,
        // so the overrun count measures copies attempted.
        assert!(
            s.overruns < free.tasks[&TaskId(1)].overruns,
            "clamp must save recovery copies: {} vs {}",
            s.overruns,
            free.tasks[&TaskId(1)].overruns
        );
        assert!(c.degraded_jobs >= 1);
    }

    #[test]
    fn escalate_reports_fresh_violations_only() {
        let mut exec = PreemptiveExecutive::new(1);
        exec.add_task(resident(1, 0, 1_000, 30), &counting_task_src(1, 100))
            .unwrap();
        exec.register_contract(
            TaskId(1),
            MkContract::new(0, 8),
            DegradationAction::Escalate,
        );
        let report = exec.run(10_000);
        // Every period overruns, but the window never recovers within 8
        // jobs, so only the first miss is a *fresh* violation.
        assert_eq!(report.contract_escalations.len(), 1);
        assert_eq!(report.contract_escalations[0].0, TaskId(1));
        assert!(report.tasks[&TaskId(1)].overruns >= 8);
        assert_eq!(report.contracts[&TaskId(1)].violations, 1);
        // Escalate never alters the schedule.
        assert_eq!(report.tasks[&TaskId(1)].safe_substituted, 0);
    }

    #[test]
    fn healthy_task_never_degrades() {
        let mut exec = PreemptiveExecutive::new(1);
        exec.add_task(resident(1, 0, 500, 200), &counting_task_src(2, 20))
            .unwrap();
        exec.register_contract(
            TaskId(1),
            MkContract::new(1, 8),
            DegradationAction::SkipToSafe,
        );
        let report = exec.run(10_000);
        let c = &report.contracts[&TaskId(1)];
        assert_eq!(c.violations, 0);
        assert_eq!(c.misses, 0);
        assert_eq!(c.min_margin, 2, "full margin retained throughout");
        assert_eq!(report.tasks[&TaskId(1)].safe_substituted, 0);
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn contract_for_unknown_task_rejected() {
        let mut exec = PreemptiveExecutive::new(1);
        exec.register_contract(
            TaskId(9),
            MkContract::new(1, 4),
            DegradationAction::Escalate,
        );
    }
}
