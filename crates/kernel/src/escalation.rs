//! The recovery-escalation ladder: from suspicion to restart to retirement.
//!
//! The paper's kernel *detects* and *masks*; what it leaves to "the system"
//! is deciding what to do with a node whose errors keep coming back. This
//! module supplies that policy as a small, deterministic state machine —
//! the graceful-degradation ladder:
//!
//! ```text
//!                    errors >= suspect_after
//!   +---------+  ------------------------------>  +---------+
//!   | Healthy |                                   | Suspect |  TEM always
//!   +---------+  <------------------------------  +---------+  triples
//!        ^          clean >= calm_after                |
//!        |                                             | errors >= silence_after
//!        | clean >= reintegrate_after                  v
//!   +---------------+        wait expires        +------------+      +------------+
//!   | Reintegrating |  <-----------------------  | Restarting | <--- | FailSilent |
//!   +---------------+                            +------------+      +------------+
//!        |    error (relapse)                          ^ restart budget left   |
//!        +---------------------------------------------+                       |
//!                                                      budget exhausted        v
//!                                   (or a Permanent diagnosis)           +---------+
//!                                   ----------------------------------> | Retired |
//!                                                                       +---------+
//! ```
//!
//! * **Suspect** — the node keeps running but every TEM job is triplicated
//!   and voted ([`crate::tem::TemConfig::min_results`] = 3), trading CPU
//!   for evidence;
//! * **FailSilent** — the node stops transmitting (the paper's §2.2
//!   strategy 3) and hands itself to the restart machinery;
//! * **Restarting** — a reboot window whose length follows the same capped
//!   exponential backoff shape as the network layer's `ResyncPolicy`
//!   (initial wait, doubling per attempt, hard cap), drawn from a bounded
//!   restart budget;
//! * **Reintegrating** — back online but on probation: a relapse goes
//!   straight back to silence, a clean streak returns the node to service;
//! * **Retired** — terminal: the budget ran out, or the diagnosis layer
//!   delivered a `Permanent` verdict ([`EscalationMachine::retire`]).
//!
//! The machine is driven in *job time*: [`EscalationMachine::observe`] once
//! per executed job, [`EscalationMachine::tick`] once per job slot the node
//! spends silent. All state is integral, so the machine is `Eq + Hash` and
//! the analytic layer can unfold it into an exact Markov chain.

/// Where a node stands on the recovery-escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeHealth {
    /// Operating normally (TEM duplex + compare).
    Healthy,
    /// Error stream looks suspicious: every job triplicated and voted.
    Suspect,
    /// Node silenced itself; a restart is about to be scheduled.
    FailSilent,
    /// Rebooting; silent for the scheduled backoff window.
    Restarting,
    /// Back online on probation after a restart.
    Reintegrating,
    /// Permanently out of service (terminal).
    Retired,
}

impl NodeHealth {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            NodeHealth::Healthy => "healthy",
            NodeHealth::Suspect => "suspect",
            NodeHealth::FailSilent => "fail-silent",
            NodeHealth::Restarting => "restarting",
            NodeHealth::Reintegrating => "reintegrating",
            NodeHealth::Retired => "retired",
        }
    }
}

/// Restart scheduling parameters — deliberately the same shape as the
/// network layer's `ResyncPolicy` (initial wait, capped exponential
/// growth, bounded attempts), so the two recovery paths of the stack obey
/// one idiom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RestartPolicy {
    /// Silent job slots for the first restart.
    pub initial_wait_jobs: u32,
    /// Cap on the exponentially growing restart window.
    pub max_wait_jobs: u32,
    /// Restart budget: restarts allowed before the node is retired.
    pub max_restarts: u32,
}

impl RestartPolicy {
    /// The wait before the `restart`-th restart completes (1-based):
    /// capped exponential, exactly like `ResyncPolicy::wait_after`.
    pub fn wait_after(&self, restart: u32) -> u32 {
        self.initial_wait_jobs
            .saturating_mul(1u32 << (restart.saturating_sub(1)).min(16))
            .min(self.max_wait_jobs)
            .max(1)
    }
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            initial_wait_jobs: 2,
            max_wait_jobs: 16,
            max_restarts: 3,
        }
    }
}

/// Thresholds of the escalation ladder, in consecutive jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EscalationPolicy {
    /// Consecutive errored jobs that turn a healthy node suspect.
    pub suspect_after: u32,
    /// Consecutive errored jobs that silence a suspect node.
    pub silence_after: u32,
    /// Consecutive clean jobs that calm a suspect node back to healthy.
    pub calm_after: u32,
    /// Consecutive clean jobs that graduate a reintegrating node.
    pub reintegrate_after: u32,
    /// Restart scheduling and budget.
    pub restart: RestartPolicy,
    /// Route restarts through real network startup: when the restart
    /// window expires the machine emits
    /// [`EscalationEvent::AwaitingIntegration`] and *stays silent* until
    /// [`EscalationMachine::integration_complete`] confirms the node has
    /// re-synchronized and re-entered the agreed membership (TTP/C
    /// Listen → Cold-Start → Integrate). Off by default: the node then
    /// rejoins instantly when the window expires, as in a single-node
    /// model where no cluster exists to integrate with.
    pub gate_reintegration: bool,
}

impl Default for EscalationPolicy {
    fn default() -> Self {
        EscalationPolicy {
            suspect_after: 2,
            silence_after: 4,
            calm_after: 4,
            reintegrate_after: 2,
            restart: RestartPolicy::default(),
            gate_reintegration: false,
        }
    }
}

/// An externally visible transition of the ladder, for consumers (the BBW
/// cluster reacts to these; campaigns count them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EscalationEvent {
    /// Healthy → Suspect: TEM switches to always-triple.
    Suspected,
    /// The node silenced itself (entered `FailSilent`).
    WentSilent,
    /// A restart was scheduled with the given backoff window.
    RestartScheduled {
        /// Silent job slots until the restart completes.
        wait_jobs: u32,
    },
    /// The restart window elapsed, but reintegration is gated: the node
    /// stays silent until the network startup protocol readmits it (see
    /// [`EscalationPolicy::gate_reintegration`]).
    AwaitingIntegration,
    /// The restart window elapsed; the node is back online on probation.
    Restarted,
    /// The node returned to `Healthy` (calmed down or graduated probation).
    Recovered,
    /// The node was permanently retired.
    Retired,
}

/// The escalation state machine for one node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EscalationMachine {
    policy: EscalationPolicy,
    state: NodeHealth,
    error_streak: u32,
    clean_streak: u32,
    restarts_used: u32,
    wait_remaining: u32,
}

impl EscalationMachine {
    /// A fresh, healthy node.
    pub fn new(policy: EscalationPolicy) -> Self {
        EscalationMachine {
            policy,
            state: NodeHealth::Healthy,
            error_streak: 0,
            clean_streak: 0,
            restarts_used: 0,
            wait_remaining: 0,
        }
    }

    /// Current ladder position.
    pub fn state(&self) -> NodeHealth {
        self.state
    }

    /// The policy in force.
    pub fn policy(&self) -> &EscalationPolicy {
        &self.policy
    }

    /// Restarts consumed from the budget so far.
    pub fn restarts_used(&self) -> u32 {
        self.restarts_used
    }

    /// Whether the node currently runs jobs (and should be `observe`d).
    pub fn jobs_active(&self) -> bool {
        matches!(
            self.state,
            NodeHealth::Healthy | NodeHealth::Suspect | NodeHealth::Reintegrating
        )
    }

    /// Whether the node is silent this job slot (drive with `tick`).
    pub fn is_silent(&self) -> bool {
        matches!(
            self.state,
            NodeHealth::FailSilent | NodeHealth::Restarting | NodeHealth::Retired
        )
    }

    /// Whether TEM should triplicate every job (suspect or on probation).
    pub fn tem_triples(&self) -> bool {
        matches!(self.state, NodeHealth::Suspect | NodeHealth::Reintegrating)
    }

    /// Feeds the outcome of one executed job. Returns the transitions it
    /// caused, in order. Calling this while the node is silent is treated
    /// as a [`EscalationMachine::tick`].
    pub fn observe(&mut self, errored: bool) -> Vec<EscalationEvent> {
        let mut events = Vec::new();
        match self.state {
            NodeHealth::Retired => {}
            NodeHealth::FailSilent | NodeHealth::Restarting => {
                events.extend(self.tick());
            }
            NodeHealth::Healthy => {
                if errored {
                    self.error_streak += 1;
                    if self.error_streak >= self.policy.suspect_after {
                        self.state = NodeHealth::Suspect;
                        self.clean_streak = 0;
                        events.push(EscalationEvent::Suspected);
                    }
                } else {
                    self.error_streak = 0;
                }
            }
            NodeHealth::Suspect => {
                if errored {
                    self.error_streak += 1;
                    self.clean_streak = 0;
                    if self.error_streak >= self.policy.silence_after {
                        self.go_silent(&mut events);
                    }
                } else {
                    self.clean_streak += 1;
                    if self.clean_streak >= self.policy.calm_after {
                        self.back_to_healthy(&mut events);
                    }
                }
            }
            NodeHealth::Reintegrating => {
                if errored {
                    // Relapse on probation: no second chances at this rung —
                    // straight back to silence (or retirement).
                    self.go_silent(&mut events);
                } else {
                    self.clean_streak += 1;
                    if self.clean_streak >= self.policy.reintegrate_after {
                        self.back_to_healthy(&mut events);
                    }
                }
            }
        }
        events
    }

    /// Advances one silent job slot: schedules the pending restart, counts
    /// the backoff window down, and brings the node back online when the
    /// window expires. Returns the transitions it caused.
    pub fn tick(&mut self) -> Vec<EscalationEvent> {
        match self.state {
            NodeHealth::FailSilent => {
                if self.restarts_used >= self.policy.restart.max_restarts {
                    self.state = NodeHealth::Retired;
                    vec![EscalationEvent::Retired]
                } else {
                    self.restarts_used += 1;
                    self.wait_remaining = self.policy.restart.wait_after(self.restarts_used);
                    self.state = NodeHealth::Restarting;
                    vec![EscalationEvent::RestartScheduled {
                        wait_jobs: self.wait_remaining,
                    }]
                }
            }
            NodeHealth::Restarting => {
                if self.wait_remaining == 0 {
                    // Gated and already parked: silent until
                    // `integration_complete`.
                    return Vec::new();
                }
                self.wait_remaining -= 1;
                if self.wait_remaining == 0 {
                    if self.policy.gate_reintegration {
                        vec![EscalationEvent::AwaitingIntegration]
                    } else {
                        self.come_back_online();
                        vec![EscalationEvent::Restarted]
                    }
                } else {
                    Vec::new()
                }
            }
            _ => Vec::new(),
        }
    }

    /// Whether the machine is parked after its restart window, waiting
    /// for the startup protocol to readmit the node.
    pub fn awaiting_integration(&self) -> bool {
        self.state == NodeHealth::Restarting && self.wait_remaining == 0
    }

    /// Completes a gated reintegration: the startup protocol reports the
    /// node synchronized and active again. Returns
    /// [`EscalationEvent::Restarted`] when the machine was actually
    /// parked; a no-op otherwise.
    pub fn integration_complete(&mut self) -> Vec<EscalationEvent> {
        if self.awaiting_integration() {
            self.come_back_online();
            vec![EscalationEvent::Restarted]
        } else {
            Vec::new()
        }
    }

    fn come_back_online(&mut self) {
        self.state = NodeHealth::Reintegrating;
        self.clean_streak = 0;
        self.error_streak = 0;
        self.wait_remaining = 0;
    }

    /// Forces Healthy → Suspect on an external verdict (the α-count
    /// crossing its intermittent threshold). No-op in any other state.
    pub fn suspect(&mut self) -> Option<EscalationEvent> {
        if self.state == NodeHealth::Healthy {
            self.state = NodeHealth::Suspect;
            self.clean_streak = 0;
            Some(EscalationEvent::Suspected)
        } else {
            None
        }
    }

    /// Permanently retires the node (a `Permanent` diagnosis verdict).
    /// Idempotent; returns the event on the first call only.
    pub fn retire(&mut self) -> Option<EscalationEvent> {
        if self.state == NodeHealth::Retired {
            None
        } else {
            self.state = NodeHealth::Retired;
            Some(EscalationEvent::Retired)
        }
    }

    fn go_silent(&mut self, events: &mut Vec<EscalationEvent>) {
        self.state = NodeHealth::FailSilent;
        self.error_streak = 0;
        self.clean_streak = 0;
        events.push(EscalationEvent::WentSilent);
    }

    fn back_to_healthy(&mut self, events: &mut Vec<EscalationEvent>) {
        self.state = NodeHealth::Healthy;
        self.error_streak = 0;
        self.clean_streak = 0;
        events.push(EscalationEvent::Recovered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> EscalationMachine {
        EscalationMachine::new(EscalationPolicy::default())
    }

    #[test]
    fn ladder_walks_full_cycle() {
        let mut m = machine();
        assert_eq!(m.state(), NodeHealth::Healthy);
        assert!(!m.tem_triples());

        // Two consecutive errors → Suspect.
        assert!(m.observe(true).is_empty());
        assert_eq!(m.observe(true), vec![EscalationEvent::Suspected]);
        assert_eq!(m.state(), NodeHealth::Suspect);
        assert!(m.tem_triples());

        // Two more (streak hits silence_after = 4) → FailSilent.
        assert!(m.observe(true).is_empty());
        assert_eq!(m.observe(true), vec![EscalationEvent::WentSilent]);
        assert!(m.is_silent());

        // First silent slot schedules the restart with the initial wait.
        assert_eq!(
            m.tick(),
            vec![EscalationEvent::RestartScheduled { wait_jobs: 2 }]
        );
        assert_eq!(m.state(), NodeHealth::Restarting);
        assert!(m.tick().is_empty());
        assert_eq!(m.tick(), vec![EscalationEvent::Restarted]);
        assert_eq!(m.state(), NodeHealth::Reintegrating);
        assert!(m.tem_triples(), "probation keeps the triple vote");

        // Two clean jobs graduate the probation.
        assert!(m.observe(false).is_empty());
        assert_eq!(m.observe(false), vec![EscalationEvent::Recovered]);
        assert_eq!(m.state(), NodeHealth::Healthy);
        assert_eq!(m.restarts_used(), 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RestartPolicy {
            initial_wait_jobs: 2,
            max_wait_jobs: 16,
            max_restarts: 10,
        };
        let waits: Vec<u32> = (1..=6).map(|i| policy.wait_after(i)).collect();
        assert_eq!(waits, vec![2, 4, 8, 16, 16, 16]);
    }

    #[test]
    fn restart_budget_exhaustion_retires() {
        let mut policy = EscalationPolicy::default();
        policy.restart.max_restarts = 2;
        let mut m = EscalationMachine::new(policy);
        for round in 0..3 {
            // Drive to silence.
            while m.state() != NodeHealth::FailSilent && m.state() != NodeHealth::Retired {
                m.observe(true);
            }
            if m.state() == NodeHealth::Retired {
                break;
            }
            let events = m.tick();
            if round < 2 {
                assert!(matches!(
                    events[0],
                    EscalationEvent::RestartScheduled { .. }
                ));
                // Burn the window and the probation relapse comes later.
                while m.state() == NodeHealth::Restarting {
                    m.tick();
                }
                assert_eq!(m.state(), NodeHealth::Reintegrating);
            } else {
                assert_eq!(events, vec![EscalationEvent::Retired]);
            }
        }
        assert_eq!(m.state(), NodeHealth::Retired);
        assert_eq!(m.restarts_used(), 2, "budget fully consumed");
    }

    #[test]
    fn suspect_calms_back_to_healthy() {
        let mut m = machine();
        m.observe(true);
        m.observe(true);
        assert_eq!(m.state(), NodeHealth::Suspect);
        for _ in 0..3 {
            assert!(m.observe(false).is_empty());
        }
        assert_eq!(m.observe(false), vec![EscalationEvent::Recovered]);
        assert_eq!(m.state(), NodeHealth::Healthy);
        assert_eq!(m.restarts_used(), 0, "no restart was needed");
    }

    #[test]
    fn reintegration_relapse_goes_straight_back_to_silence() {
        let mut m = machine();
        for _ in 0..4 {
            m.observe(true);
        }
        m.tick(); // schedule
        while m.state() == NodeHealth::Restarting {
            m.tick();
        }
        assert_eq!(m.state(), NodeHealth::Reintegrating);
        assert_eq!(m.observe(true), vec![EscalationEvent::WentSilent]);
        assert_eq!(m.state(), NodeHealth::FailSilent);
        // The second restart waits twice as long.
        assert_eq!(
            m.tick(),
            vec![EscalationEvent::RestartScheduled { wait_jobs: 4 }]
        );
    }

    #[test]
    fn forced_suspicion_and_retirement() {
        let mut m = machine();
        assert_eq!(m.suspect(), Some(EscalationEvent::Suspected));
        assert_eq!(m.suspect(), None, "only from Healthy");
        assert_eq!(m.retire(), Some(EscalationEvent::Retired));
        assert_eq!(m.retire(), None, "idempotent");
        assert!(m.observe(true).is_empty());
        assert!(m.tick().is_empty());
        assert_eq!(m.state(), NodeHealth::Retired);
    }

    #[test]
    fn observe_while_silent_delegates_to_tick() {
        let mut m = machine();
        for _ in 0..4 {
            m.observe(true);
        }
        assert_eq!(m.state(), NodeHealth::FailSilent);
        let events = m.observe(false);
        assert!(matches!(
            events[0],
            EscalationEvent::RestartScheduled { .. }
        ));
    }

    /// Drives a fresh machine to the end of its first restart window.
    fn machine_at_window_end(gate: bool) -> EscalationMachine {
        let mut m = EscalationMachine::new(EscalationPolicy {
            gate_reintegration: gate,
            ..EscalationPolicy::default()
        });
        for _ in 0..4 {
            m.observe(true);
        }
        assert_eq!(m.state(), NodeHealth::FailSilent);
        assert_eq!(
            m.tick(),
            vec![EscalationEvent::RestartScheduled { wait_jobs: 2 }]
        );
        assert!(m.tick().is_empty(), "window still counting down");
        m
    }

    #[test]
    fn gated_restart_parks_until_integration_completes() {
        let mut m = machine_at_window_end(true);
        assert_eq!(m.tick(), vec![EscalationEvent::AwaitingIntegration]);
        assert_eq!(m.state(), NodeHealth::Restarting, "still silent");
        assert!(m.awaiting_integration());
        // Parked: further slots pass without progress — the node must
        // not rejoin until the startup protocol readmits it.
        for _ in 0..5 {
            assert!(m.tick().is_empty());
            assert!(m.is_silent());
        }
        assert_eq!(m.integration_complete(), vec![EscalationEvent::Restarted]);
        assert_eq!(m.state(), NodeHealth::Reintegrating);
        assert!(!m.awaiting_integration());
        assert!(
            m.integration_complete().is_empty(),
            "second completion is a no-op"
        );
    }

    #[test]
    fn ungated_restart_rejoins_instantly_as_before() {
        let mut m = machine_at_window_end(false);
        assert_eq!(m.tick(), vec![EscalationEvent::Restarted]);
        assert_eq!(m.state(), NodeHealth::Reintegrating);
        assert!(!m.awaiting_integration());
        assert!(m.integration_complete().is_empty());
    }

    #[test]
    fn integration_complete_is_a_noop_off_the_parking_state() {
        let mut m = machine();
        assert!(m.integration_complete().is_empty());
        m.observe(true);
        m.observe(true);
        assert_eq!(m.state(), NodeHealth::Suspect);
        assert!(m.integration_complete().is_empty());
    }
}
