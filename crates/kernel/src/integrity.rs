//! Data-integrity and end-to-end error detection (§2.6).
//!
//! TEM's comparison protects data *during* a computation; this module
//! protects it *between* computations and across the I/O boundary:
//!
//! * [`crc32`] — the CRC the kernel uses for larger structures;
//! * [`DuplicatedRegion`] — store-twice/compare-before-use protection for
//!   small state records;
//! * [`CrcRegion`] — checksummed memory blocks, verified before use and
//!   resealed after update;
//! * [`SealedMessage`] — end-to-end protection for input/output data
//!   travelling between tasks or nodes.

use std::fmt;

use nlft_machine::machine::Machine;
use nlft_machine::mem::WORD_BYTES;

/// CRC-32 (IEEE 802.3 polynomial, reflected) over raw bytes.
///
/// This is the classic CRC-32 ("CRC-32/ISO-HDLC"): its check value over
/// the ASCII digits `"123456789"` is `0xCBF43926`, which is pinned by a
/// known-answer test so the polynomial, reflection and init/final-xor
/// conventions can never silently regress. Delegates to the workspace's
/// one shared table-driven implementation ([`nlft_sim::crc`]), the same
/// routine the network frames use.
///
/// # Examples
///
/// ```
/// use nlft_kernel::integrity::crc32_bytes;
///
/// assert_eq!(crc32_bytes(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32_bytes(bytes: &[u8]) -> u32 {
    nlft_sim::crc::crc32(bytes)
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over words.
///
/// Each word contributes its four bytes in little-endian order, so
/// `crc32(&[w])` equals [`crc32_bytes`]`(&w.to_le_bytes())`.
///
/// # Examples
///
/// ```
/// use nlft_kernel::integrity::crc32;
///
/// let a = crc32(&[1, 2, 3]);
/// let b = crc32(&[1, 2, 4]);
/// assert_ne!(a, b);
/// assert_eq!(a, crc32(&[1, 2, 3]));
/// ```
pub fn crc32(words: &[u32]) -> u32 {
    nlft_sim::crc::crc32_words(words)
}

/// Failure reported by an integrity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// The two copies of a duplicated region disagree.
    DuplicateMismatch {
        /// Byte offset of the first disagreeing word.
        offset: u32,
    },
    /// A CRC-protected region fails verification.
    CrcMismatch {
        /// Expected (stored) CRC.
        expected: u32,
        /// CRC computed over the current contents.
        actual: u32,
    },
    /// The underlying memory access itself trapped (ECC/bus) — the fault
    /// was caught by hardware before the software check even ran.
    Memory(nlft_machine::machine::Exception),
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityError::DuplicateMismatch { offset } => {
                write!(f, "duplicated data mismatch at offset {offset:#x}")
            }
            IntegrityError::CrcMismatch { expected, actual } => {
                write!(
                    f,
                    "crc mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
            IntegrityError::Memory(e) => write!(f, "memory fault during check: {e}"),
        }
    }
}

impl std::error::Error for IntegrityError {}

/// A region stored twice in memory; reads are validated by comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicatedRegion {
    /// Base address of the primary copy.
    pub primary: u32,
    /// Base address of the shadow copy.
    pub shadow: u32,
    /// Length in words.
    pub words: u32,
}

impl DuplicatedRegion {
    /// Writes `data` to both copies.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::Memory`] if either region is unmapped.
    pub fn write(&self, m: &mut Machine, data: &[u32]) -> Result<(), IntegrityError> {
        assert!(data.len() as u32 <= self.words, "data exceeds region");
        for (i, &w) in data.iter().enumerate() {
            let off = i as u32 * WORD_BYTES;
            m.mem
                .store(self.primary + off, w)
                .map_err(|e| IntegrityError::Memory(e.into()))?;
            m.mem
                .store(self.shadow + off, w)
                .map_err(|e| IntegrityError::Memory(e.into()))?;
        }
        Ok(())
    }

    /// Reads the region, comparing both copies word by word.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::DuplicateMismatch`] on the first disagreement;
    /// [`IntegrityError::Memory`] if an access traps.
    pub fn read_checked(&self, m: &mut Machine) -> Result<Vec<u32>, IntegrityError> {
        let mut out = Vec::with_capacity(self.words as usize);
        for i in 0..self.words {
            let off = i * WORD_BYTES;
            let a = m
                .mem
                .load(self.primary + off)
                .map_err(|e| IntegrityError::Memory(e.into()))?;
            let b = m
                .mem
                .load(self.shadow + off)
                .map_err(|e| IntegrityError::Memory(e.into()))?;
            if a != b {
                return Err(IntegrityError::DuplicateMismatch { offset: off });
            }
            out.push(a);
        }
        Ok(out)
    }
}

/// A CRC-protected memory block: `words` data words followed by one CRC word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcRegion {
    /// Base address of the data.
    pub base: u32,
    /// Number of data words (CRC is stored right after them).
    pub words: u32,
}

impl CrcRegion {
    fn crc_addr(&self) -> u32 {
        self.base + self.words * WORD_BYTES
    }

    /// Writes `data` and seals the region with its CRC.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::Memory`] if the region is unmapped.
    pub fn write_sealed(&self, m: &mut Machine, data: &[u32]) -> Result<(), IntegrityError> {
        assert!(data.len() as u32 <= self.words, "data exceeds region");
        for (i, &w) in data.iter().enumerate() {
            m.mem
                .store(self.base + i as u32 * WORD_BYTES, w)
                .map_err(|e| IntegrityError::Memory(e.into()))?;
        }
        let mut all = Vec::with_capacity(self.words as usize);
        for i in 0..self.words {
            all.push(
                m.mem
                    .load(self.base + i * WORD_BYTES)
                    .map_err(|e| IntegrityError::Memory(e.into()))?,
            );
        }
        m.mem
            .store(self.crc_addr(), crc32(&all))
            .map_err(|e| IntegrityError::Memory(e.into()))?;
        Ok(())
    }

    /// Verifies the CRC and returns the data.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::CrcMismatch`] if the contents changed since
    /// sealing; [`IntegrityError::Memory`] if an access traps.
    pub fn read_verified(&self, m: &mut Machine) -> Result<Vec<u32>, IntegrityError> {
        let mut data = Vec::with_capacity(self.words as usize);
        for i in 0..self.words {
            data.push(
                m.mem
                    .load(self.base + i * WORD_BYTES)
                    .map_err(|e| IntegrityError::Memory(e.into()))?,
            );
        }
        let stored = m
            .mem
            .load(self.crc_addr())
            .map_err(|e| IntegrityError::Memory(e.into()))?;
        let actual = crc32(&data);
        if stored != actual {
            return Err(IntegrityError::CrcMismatch {
                expected: stored,
                actual,
            });
        }
        Ok(data)
    }
}

/// An end-to-end protected message: payload plus CRC, checked at the
/// consumer regardless of how many hops it crossed (§2.6, Kopetz).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedMessage {
    payload: Vec<u32>,
    crc: u32,
}

impl SealedMessage {
    /// Seals a payload.
    pub fn seal(payload: Vec<u32>) -> Self {
        let crc = crc32(&payload);
        SealedMessage { payload, crc }
    }

    /// Opens the message, verifying end-to-end integrity.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::CrcMismatch`] if payload or CRC were corrupted.
    pub fn open(self) -> Result<Vec<u32>, IntegrityError> {
        let actual = crc32(&self.payload);
        if actual != self.crc {
            return Err(IntegrityError::CrcMismatch {
                expected: self.crc,
                actual,
            });
        }
        Ok(self.payload)
    }

    /// Read-only view of the (unverified) payload.
    pub fn payload_unchecked(&self) -> &[u32] {
        &self.payload
    }

    /// Flips bits in the payload — test/fault-injection helper.
    pub fn corrupt_payload(&mut self, index: usize, mask: u32) {
        self.payload[index] ^= mask;
    }

    /// Flips bits in the CRC — test/fault-injection helper.
    pub fn corrupt_crc(&mut self, mask: u32) {
        self.crc ^= mask;
    }
}

/// An end-to-end protected *command*: payload, a sequence number naming
/// the cycle in which the producer sealed it, and a CRC over both.
///
/// Where [`SealedMessage`] only proves the payload was not corrupted in
/// transit, a `FreshSealedMessage` additionally lets the consumer prove
/// the command is *fresh*: a duplicated, replayed or stale command
/// carries a sequence number at or below one already consumed (or far
/// behind the consumer's clock) and is rejected even though its CRC is
/// intact — the application-level half of the end-to-end argument
/// (§2.6, Kopetz).
///
/// # Examples
///
/// ```
/// use nlft_kernel::integrity::FreshSealedMessage;
///
/// let msg = FreshSealedMessage::seal(7, vec![100, 200]);
/// let words = msg.to_words();
/// let back = FreshSealedMessage::from_words(&words).unwrap();
/// let (seq, payload) = back.open().unwrap();
/// assert_eq!((seq, payload), (7, vec![100, 200]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreshSealedMessage {
    seq: u32,
    payload: Vec<u32>,
    crc: u32,
}

impl FreshSealedMessage {
    /// Seals a payload under a sequence number.
    pub fn seal(seq: u32, payload: Vec<u32>) -> Self {
        let mut all = Vec::with_capacity(payload.len() + 1);
        all.push(seq);
        all.extend_from_slice(&payload);
        let crc = crc32(&all);
        FreshSealedMessage { seq, payload, crc }
    }

    /// The (unverified) sequence number.
    pub fn seq_unchecked(&self) -> u32 {
        self.seq
    }

    /// Read-only view of the (unverified) payload.
    pub fn payload_unchecked(&self) -> &[u32] {
        &self.payload
    }

    /// Serialises to `[seq, payload…, crc]` for transport in a frame.
    pub fn to_words(&self) -> Vec<u32> {
        let mut words = Vec::with_capacity(self.payload.len() + 2);
        words.push(self.seq);
        words.extend_from_slice(&self.payload);
        words.push(self.crc);
        words
    }

    /// Reassembles a message from its wire words. Returns `None` when the
    /// word count cannot hold even an empty sealed command — a malformed
    /// buffer, not merely a corrupted one.
    pub fn from_words(words: &[u32]) -> Option<Self> {
        if words.len() < 2 {
            return None;
        }
        Some(FreshSealedMessage {
            seq: words[0],
            payload: words[1..words.len() - 1].to_vec(),
            crc: words[words.len() - 1],
        })
    }

    /// Opens the message, verifying end-to-end integrity of sequence
    /// number and payload together. Freshness is the consumer's job — see
    /// [`CommandAcceptor`].
    ///
    /// # Errors
    ///
    /// [`IntegrityError::CrcMismatch`] if seq, payload or CRC were
    /// corrupted anywhere between sealing and opening.
    pub fn open(self) -> Result<(u32, Vec<u32>), IntegrityError> {
        let mut all = Vec::with_capacity(self.payload.len() + 1);
        all.push(self.seq);
        all.extend_from_slice(&self.payload);
        let actual = crc32(&all);
        if actual != self.crc {
            return Err(IntegrityError::CrcMismatch {
                expected: self.crc,
                actual,
            });
        }
        Ok((self.seq, self.payload))
    }

    /// Flips bits in one wire word (seq = 0, payload words, CRC last) —
    /// test/fault-injection helper.
    pub fn corrupt_word(&mut self, index: usize, mask: u32) {
        let last = self.payload.len() + 1;
        match index {
            0 => self.seq ^= mask,
            i if i == last => self.crc ^= mask,
            i => self.payload[i - 1] ^= mask,
        }
    }
}

/// Why a consumer rejected a sealed command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandReject {
    /// The wire buffer cannot hold a sealed command at all.
    Malformed,
    /// The end-to-end CRC failed: corrupted in some buffer past the bus.
    Corrupt(IntegrityError),
    /// Sequence number at or below one already consumed: a duplicated or
    /// replayed command.
    Stale {
        /// Sequence number carried by the rejected command.
        seq: u32,
        /// Highest sequence number already accepted.
        last: u32,
    },
    /// Sequence number too far behind the consumer's own clock: an aged
    /// command surviving in a buffer (e.g. across a consumer restart,
    /// when no `last` exists to compare against).
    TooOld {
        /// Cycles between sealing and the acceptance attempt.
        age: u32,
        /// Maximum age the acceptor tolerates.
        max_age: u32,
    },
}

impl fmt::Display for CommandReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandReject::Malformed => write!(f, "malformed command buffer"),
            CommandReject::Corrupt(e) => write!(f, "corrupt command: {e}"),
            CommandReject::Stale { seq, last } => {
                write!(f, "stale command: seq {seq} already superseded by {last}")
            }
            CommandReject::TooOld { age, max_age } => {
                write!(f, "aged command: {age} cycles old, limit {max_age}")
            }
        }
    }
}

/// Consumer-side freshness filter for [`FreshSealedMessage`] streams.
///
/// Tracks the highest sequence number accepted so far and rejects
/// anything corrupted, duplicated, replayed, or older than `max_age`
/// cycles relative to the consumer's clock. A rejected command must be
/// converted by the caller into a well-behaved omission (e.g. hold the
/// last safe value), never consumed.
///
/// # Examples
///
/// ```
/// use nlft_kernel::integrity::{CommandAcceptor, CommandReject, FreshSealedMessage};
///
/// let mut port = CommandAcceptor::new(2);
/// let cmd = FreshSealedMessage::seal(5, vec![900]);
/// assert_eq!(port.accept(&cmd.to_words(), 6).unwrap(), vec![900]);
/// // The same command delivered again is a replay.
/// assert!(matches!(
///     port.accept(&cmd.to_words(), 7),
///     Err(CommandReject::Stale { .. })
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct CommandAcceptor {
    last_seq: Option<u32>,
    max_age: u32,
    accepted: u64,
    rejected: u64,
}

impl CommandAcceptor {
    /// Creates an acceptor tolerating commands up to `max_age` cycles
    /// older than the consumer's clock at acceptance time.
    pub fn new(max_age: u32) -> Self {
        CommandAcceptor {
            last_seq: None,
            max_age,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Commands accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Commands rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Highest sequence number accepted, if any.
    pub fn last_seq(&self) -> Option<u32> {
        self.last_seq
    }

    /// Validates one wire buffer at consumer time `now` (same clock the
    /// producer seals with — in a time-triggered system, the global cycle
    /// count). Returns the payload on success.
    ///
    /// # Errors
    ///
    /// [`CommandReject`] when the buffer is malformed, fails the
    /// end-to-end CRC, repeats or precedes an accepted sequence number,
    /// or is older than the acceptor's age bound.
    pub fn accept(&mut self, words: &[u32], now: u32) -> Result<Vec<u32>, CommandReject> {
        let result = self.accept_inner(words, now);
        match result {
            Ok(_) => self.accepted += 1,
            Err(_) => self.rejected += 1,
        }
        result
    }

    fn accept_inner(&mut self, words: &[u32], now: u32) -> Result<Vec<u32>, CommandReject> {
        let msg = FreshSealedMessage::from_words(words).ok_or(CommandReject::Malformed)?;
        let (seq, payload) = msg.open().map_err(CommandReject::Corrupt)?;
        if let Some(last) = self.last_seq {
            if !seq_newer(seq, last) {
                return Err(CommandReject::Stale { seq, last });
            }
        }
        // Windowed age, like the staleness rule: a sequence number "ahead"
        // of the consumer clock (wrapping distance in the upper half of
        // the space) is a producer sealing just before the consumer's
        // cycle counter incremented — age 0, not four billion.
        let diff = now.wrapping_sub(seq);
        let age = if diff < 1 << 31 { diff } else { 0 };
        if age > self.max_age {
            return Err(CommandReject::TooOld {
                age,
                max_age: self.max_age,
            });
        }
        self.last_seq = Some(seq);
        Ok(payload)
    }
}

/// Serial-number arithmetic (RFC 1982): `a` is newer than `b` iff the
/// forward wrapping distance from `b` to `a` is non-zero and less than
/// half the sequence space. A plain `seq <= last` comparison would brick
/// the acceptor forever once the producer's counter wraps past
/// `u32::MAX` — every subsequent command would compare "stale".
fn seq_newer(a: u32, b: u32) -> bool {
    a != b && a.wrapping_sub(b) < 1 << 31
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlft_machine::mmu::MemoryMap;
    use nlft_machine::workloads::DATA_BASE;

    fn machine() -> Machine {
        Machine::new(4096, MemoryMap::permissive())
    }

    #[test]
    fn crc32_known_properties() {
        assert_eq!(crc32(&[]), 0);
        assert_ne!(crc32(&[0]), crc32(&[0, 0]));
        // Single-bit sensitivity.
        for bit in 0..32 {
            assert_ne!(crc32(&[0]), crc32(&[1 << bit]));
        }
    }

    /// IEEE 802.3 known-answer test: the check value of CRC-32/ISO-HDLC
    /// over `"123456789"` is 0xCBF43926. If this fails, the polynomial,
    /// reflection or init/final-xor convention silently changed — which
    /// invalidates every sealed structure in the workspace.
    #[test]
    fn crc32_ieee_known_answer() {
        assert_eq!(crc32_bytes(b"123456789"), 0xCBF43926);
        // And a second vector: 32 zero bytes.
        assert_eq!(crc32_bytes(&[0u8; 32]), 0x190A55AD);
    }

    /// The word-oriented API is byte-for-byte the same CRC: each word
    /// contributes its little-endian bytes, so the 8-byte prefix of the
    /// IEEE vector is reachable through two words.
    #[test]
    fn crc32_words_match_bytes() {
        let w1 = u32::from_le_bytes(*b"1234");
        let w2 = u32::from_le_bytes(*b"5678");
        assert_eq!(crc32(&[w1, w2]), crc32_bytes(b"12345678"));
        assert_eq!(
            crc32(&[0xDEAD_BEEF]),
            crc32_bytes(&0xDEAD_BEEFu32.to_le_bytes())
        );
        assert_eq!(crc32(&[]), crc32_bytes(&[]));
    }

    #[test]
    fn fresh_sealed_round_trip_and_wire_format() {
        let msg = FreshSealedMessage::seal(42, vec![10, 20, 30]);
        let words = msg.to_words();
        assert_eq!(words.len(), 5, "[seq, 3 payload words, crc]");
        assert_eq!(words[0], 42);
        let back = FreshSealedMessage::from_words(&words).unwrap();
        assert_eq!(back, msg);
        assert_eq!(back.open().unwrap(), (42, vec![10, 20, 30]));
    }

    #[test]
    fn fresh_sealed_detects_corruption_of_any_word() {
        let words = FreshSealedMessage::seal(9, vec![7, 8]).to_words();
        for i in 0..words.len() {
            let mut msg = FreshSealedMessage::from_words(&words).unwrap();
            msg.corrupt_word(i, 1 << (i % 32));
            assert!(msg.open().is_err(), "corruption of word {i} must be caught");
        }
    }

    #[test]
    fn acceptor_accepts_fresh_rejects_replay_and_stale() {
        let mut port = CommandAcceptor::new(2);
        let c5 = FreshSealedMessage::seal(5, vec![100]).to_words();
        let c6 = FreshSealedMessage::seal(6, vec![110]).to_words();
        assert_eq!(port.accept(&c5, 5).unwrap(), vec![100]);
        assert_eq!(port.accept(&c6, 7).unwrap(), vec![110]);
        // Replay of c5 (duplicate from a faulty driver): stale.
        assert!(matches!(
            port.accept(&c5, 8),
            Err(CommandReject::Stale { seq: 5, last: 6 })
        ));
        // Replay of the *latest* command is equally stale.
        assert!(matches!(
            port.accept(&c6, 8),
            Err(CommandReject::Stale { seq: 6, last: 6 })
        ));
        assert_eq!(port.accepted(), 2);
        assert_eq!(port.rejected(), 2);
    }

    #[test]
    fn acceptor_age_check_catches_replay_after_restart() {
        // A consumer restart wipes `last_seq`; a buffer surviving from
        // cycle 3 must still be rejected at cycle 10 by age alone.
        let mut port = CommandAcceptor::new(2);
        let old = FreshSealedMessage::seal(3, vec![900]).to_words();
        assert!(matches!(
            port.accept(&old, 10),
            Err(CommandReject::TooOld { age: 7, max_age: 2 })
        ));
        // A fresh command is fine.
        let fresh = FreshSealedMessage::seal(10, vec![901]).to_words();
        assert!(port.accept(&fresh, 10).is_ok());
    }

    #[test]
    fn acceptor_rejects_corrupt_and_malformed() {
        let mut port = CommandAcceptor::new(2);
        let mut msg = FreshSealedMessage::seal(4, vec![1, 2, 3]);
        msg.corrupt_word(2, 0x40);
        assert!(matches!(
            port.accept(&msg.to_words(), 4),
            Err(CommandReject::Corrupt(_))
        ));
        assert!(matches!(
            port.accept(&[1], 4),
            Err(CommandReject::Malformed)
        ));
        assert_eq!(port.rejected(), 2);
        // Rejections never advance the freshness state.
        assert_eq!(port.last_seq(), None);
    }

    #[test]
    fn acceptor_survives_sequence_wraparound() {
        // At the wrap: u32::MAX is accepted normally…
        let mut port = CommandAcceptor::new(2);
        let last = FreshSealedMessage::seal(u32::MAX, vec![900]).to_words();
        assert_eq!(port.accept(&last, u32::MAX).unwrap(), vec![900]);
        assert_eq!(port.last_seq(), Some(u32::MAX));
        // …and across it: seq 0 is *newer* than u32::MAX by serial-number
        // arithmetic, not "stale forever" as a plain `<=` would decide.
        let wrapped = FreshSealedMessage::seal(0, vec![901]).to_words();
        assert_eq!(port.accept(&wrapped, 0).unwrap(), vec![901]);
        assert_eq!(port.last_seq(), Some(0));
        // The stream keeps flowing after the wrap.
        let next = FreshSealedMessage::seal(1, vec![902]).to_words();
        assert_eq!(port.accept(&next, 1).unwrap(), vec![902]);
        // A replay from just before the wrap is still stale.
        assert!(matches!(
            port.accept(&last, 1),
            Err(CommandReject::Stale {
                seq: u32::MAX,
                last: 1
            })
        ));
    }

    #[test]
    fn acceptor_age_window_spans_the_wrap() {
        // Sealed two cycles before the consumer clock wrapped: age 2,
        // within a max_age of 2 — the old `saturating_sub` would have
        // called this four billion cycles old via the unwrapped clock.
        let mut port = CommandAcceptor::new(2);
        let cmd = FreshSealedMessage::seal(u32::MAX - 1, vec![903]).to_words();
        assert_eq!(port.accept(&cmd, 0).unwrap(), vec![903]);
        // Three cycles across the wrap is past the bound.
        let mut port = CommandAcceptor::new(2);
        let cmd = FreshSealedMessage::seal(u32::MAX - 1, vec![904]).to_words();
        assert!(matches!(
            port.accept(&cmd, 1),
            Err(CommandReject::TooOld { age: 3, max_age: 2 })
        ));
    }

    #[test]
    fn seq_newer_is_windowed() {
        assert!(seq_newer(1, 0));
        assert!(seq_newer(0, u32::MAX));
        assert!(seq_newer(5, u32::MAX - 5));
        assert!(!seq_newer(0, 0));
        assert!(!seq_newer(0, 1));
        assert!(!seq_newer(u32::MAX, 0));
        // Exactly half the space away counts as old, never newer.
        assert!(!seq_newer(1 << 31, 0));
    }

    #[test]
    fn seq_corruption_cannot_smuggle_a_stale_command_past_the_crc() {
        // Forging a higher sequence number onto an old payload breaks the
        // seal: seq participates in the CRC.
        let mut msg = FreshSealedMessage::seal(3, vec![55]);
        msg.corrupt_word(0, 3 ^ 20);
        let mut port = CommandAcceptor::new(2);
        assert!(matches!(
            port.accept(&msg.to_words(), 20),
            Err(CommandReject::Corrupt(_))
        ));
    }

    #[test]
    fn duplicated_region_round_trip() {
        let mut m = machine();
        let region = DuplicatedRegion {
            primary: DATA_BASE,
            shadow: DATA_BASE + 0x100,
            words: 4,
        };
        region.write(&mut m, &[10, 20, 30, 40]).unwrap();
        assert_eq!(region.read_checked(&mut m).unwrap(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn duplicated_region_detects_corruption() {
        let mut m = machine();
        let region = DuplicatedRegion {
            primary: DATA_BASE,
            shadow: DATA_BASE + 0x100,
            words: 4,
        };
        region.write(&mut m, &[1, 2, 3, 4]).unwrap();
        // Corrupt the primary copy directly (bypassing ECC bookkeeping by a
        // plain store, modelling a wild store by a faulty task).
        m.mem.store(DATA_BASE + 8, 99).unwrap();
        assert_eq!(
            region.read_checked(&mut m),
            Err(IntegrityError::DuplicateMismatch { offset: 8 })
        );
    }

    #[test]
    fn crc_region_round_trip_and_detection() {
        let mut m = machine();
        let region = CrcRegion {
            base: DATA_BASE,
            words: 8,
        };
        region
            .write_sealed(&mut m, &[5, 6, 7, 8, 9, 10, 11, 12])
            .unwrap();
        assert_eq!(
            region.read_verified(&mut m).unwrap(),
            vec![5, 6, 7, 8, 9, 10, 11, 12]
        );
        m.mem.store(DATA_BASE + 4, 0xBAD).unwrap();
        assert!(matches!(
            region.read_verified(&mut m),
            Err(IntegrityError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn crc_region_detects_wild_write_into_crc_word() {
        let mut m = machine();
        let region = CrcRegion {
            base: DATA_BASE,
            words: 2,
        };
        region.write_sealed(&mut m, &[1, 2]).unwrap();
        m.mem.store(DATA_BASE + 8, 0).unwrap(); // clobber stored CRC
        assert!(region.read_verified(&mut m).is_err());
    }

    #[test]
    fn sealed_message_round_trip() {
        let msg = SealedMessage::seal(vec![7, 8, 9]);
        assert_eq!(msg.open().unwrap(), vec![7, 8, 9]);
    }

    #[test]
    fn sealed_message_detects_payload_and_crc_corruption() {
        let mut msg = SealedMessage::seal(vec![7, 8, 9]);
        msg.corrupt_payload(1, 0x10);
        assert!(msg.open().is_err());

        let mut msg = SealedMessage::seal(vec![7, 8, 9]);
        msg.corrupt_crc(1);
        assert!(msg.open().is_err());
    }

    #[test]
    fn empty_message_is_valid() {
        assert_eq!(
            SealedMessage::seal(vec![]).open().unwrap(),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn write_past_region_panics() {
        let mut m = machine();
        let region = CrcRegion {
            base: DATA_BASE,
            words: 1,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            region.write_sealed(&mut m, &[1, 2]).unwrap();
        }));
        assert!(result.is_err());
    }
}
