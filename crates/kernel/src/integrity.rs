//! Data-integrity and end-to-end error detection (§2.6).
//!
//! TEM's comparison protects data *during* a computation; this module
//! protects it *between* computations and across the I/O boundary:
//!
//! * [`crc32`] — the CRC the kernel uses for larger structures;
//! * [`DuplicatedRegion`] — store-twice/compare-before-use protection for
//!   small state records;
//! * [`CrcRegion`] — checksummed memory blocks, verified before use and
//!   resealed after update;
//! * [`SealedMessage`] — end-to-end protection for input/output data
//!   travelling between tasks or nodes.

use std::fmt;

use nlft_machine::machine::Machine;
use nlft_machine::mem::WORD_BYTES;

/// Bitwise CRC-32 (IEEE 802.3 polynomial, reflected) over words.
///
/// # Examples
///
/// ```
/// use nlft_kernel::integrity::crc32;
///
/// let a = crc32(&[1, 2, 3]);
/// let b = crc32(&[1, 2, 4]);
/// assert_ne!(a, b);
/// assert_eq!(a, crc32(&[1, 2, 3]));
/// ```
pub fn crc32(words: &[u32]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &w in words {
        for byte in w.to_le_bytes() {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb != 0 {
                    crc ^= 0xEDB8_8320;
                }
            }
        }
    }
    !crc
}

/// Failure reported by an integrity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// The two copies of a duplicated region disagree.
    DuplicateMismatch {
        /// Byte offset of the first disagreeing word.
        offset: u32,
    },
    /// A CRC-protected region fails verification.
    CrcMismatch {
        /// Expected (stored) CRC.
        expected: u32,
        /// CRC computed over the current contents.
        actual: u32,
    },
    /// The underlying memory access itself trapped (ECC/bus) — the fault
    /// was caught by hardware before the software check even ran.
    Memory(nlft_machine::machine::Exception),
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityError::DuplicateMismatch { offset } => {
                write!(f, "duplicated data mismatch at offset {offset:#x}")
            }
            IntegrityError::CrcMismatch { expected, actual } => {
                write!(f, "crc mismatch: stored {expected:#010x}, computed {actual:#010x}")
            }
            IntegrityError::Memory(e) => write!(f, "memory fault during check: {e}"),
        }
    }
}

impl std::error::Error for IntegrityError {}

/// A region stored twice in memory; reads are validated by comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicatedRegion {
    /// Base address of the primary copy.
    pub primary: u32,
    /// Base address of the shadow copy.
    pub shadow: u32,
    /// Length in words.
    pub words: u32,
}

impl DuplicatedRegion {
    /// Writes `data` to both copies.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::Memory`] if either region is unmapped.
    pub fn write(&self, m: &mut Machine, data: &[u32]) -> Result<(), IntegrityError> {
        assert!(data.len() as u32 <= self.words, "data exceeds region");
        for (i, &w) in data.iter().enumerate() {
            let off = i as u32 * WORD_BYTES;
            m.mem
                .store(self.primary + off, w)
                .map_err(|e| IntegrityError::Memory(e.into()))?;
            m.mem
                .store(self.shadow + off, w)
                .map_err(|e| IntegrityError::Memory(e.into()))?;
        }
        Ok(())
    }

    /// Reads the region, comparing both copies word by word.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::DuplicateMismatch`] on the first disagreement;
    /// [`IntegrityError::Memory`] if an access traps.
    pub fn read_checked(&self, m: &mut Machine) -> Result<Vec<u32>, IntegrityError> {
        let mut out = Vec::with_capacity(self.words as usize);
        for i in 0..self.words {
            let off = i * WORD_BYTES;
            let a = m
                .mem
                .load(self.primary + off)
                .map_err(|e| IntegrityError::Memory(e.into()))?;
            let b = m
                .mem
                .load(self.shadow + off)
                .map_err(|e| IntegrityError::Memory(e.into()))?;
            if a != b {
                return Err(IntegrityError::DuplicateMismatch { offset: off });
            }
            out.push(a);
        }
        Ok(out)
    }
}

/// A CRC-protected memory block: `words` data words followed by one CRC word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcRegion {
    /// Base address of the data.
    pub base: u32,
    /// Number of data words (CRC is stored right after them).
    pub words: u32,
}

impl CrcRegion {
    fn crc_addr(&self) -> u32 {
        self.base + self.words * WORD_BYTES
    }

    /// Writes `data` and seals the region with its CRC.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::Memory`] if the region is unmapped.
    pub fn write_sealed(&self, m: &mut Machine, data: &[u32]) -> Result<(), IntegrityError> {
        assert!(data.len() as u32 <= self.words, "data exceeds region");
        for (i, &w) in data.iter().enumerate() {
            m.mem
                .store(self.base + i as u32 * WORD_BYTES, w)
                .map_err(|e| IntegrityError::Memory(e.into()))?;
        }
        let mut all = Vec::with_capacity(self.words as usize);
        for i in 0..self.words {
            all.push(
                m.mem
                    .load(self.base + i * WORD_BYTES)
                    .map_err(|e| IntegrityError::Memory(e.into()))?,
            );
        }
        m.mem
            .store(self.crc_addr(), crc32(&all))
            .map_err(|e| IntegrityError::Memory(e.into()))?;
        Ok(())
    }

    /// Verifies the CRC and returns the data.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::CrcMismatch`] if the contents changed since
    /// sealing; [`IntegrityError::Memory`] if an access traps.
    pub fn read_verified(&self, m: &mut Machine) -> Result<Vec<u32>, IntegrityError> {
        let mut data = Vec::with_capacity(self.words as usize);
        for i in 0..self.words {
            data.push(
                m.mem
                    .load(self.base + i * WORD_BYTES)
                    .map_err(|e| IntegrityError::Memory(e.into()))?,
            );
        }
        let stored = m
            .mem
            .load(self.crc_addr())
            .map_err(|e| IntegrityError::Memory(e.into()))?;
        let actual = crc32(&data);
        if stored != actual {
            return Err(IntegrityError::CrcMismatch {
                expected: stored,
                actual,
            });
        }
        Ok(data)
    }
}

/// An end-to-end protected message: payload plus CRC, checked at the
/// consumer regardless of how many hops it crossed (§2.6, [Kopetz]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedMessage {
    payload: Vec<u32>,
    crc: u32,
}

impl SealedMessage {
    /// Seals a payload.
    pub fn seal(payload: Vec<u32>) -> Self {
        let crc = crc32(&payload);
        SealedMessage { payload, crc }
    }

    /// Opens the message, verifying end-to-end integrity.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::CrcMismatch`] if payload or CRC were corrupted.
    pub fn open(self) -> Result<Vec<u32>, IntegrityError> {
        let actual = crc32(&self.payload);
        if actual != self.crc {
            return Err(IntegrityError::CrcMismatch {
                expected: self.crc,
                actual,
            });
        }
        Ok(self.payload)
    }

    /// Read-only view of the (unverified) payload.
    pub fn payload_unchecked(&self) -> &[u32] {
        &self.payload
    }

    /// Flips bits in the payload — test/fault-injection helper.
    pub fn corrupt_payload(&mut self, index: usize, mask: u32) {
        self.payload[index] ^= mask;
    }

    /// Flips bits in the CRC — test/fault-injection helper.
    pub fn corrupt_crc(&mut self, mask: u32) {
        self.crc ^= mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlft_machine::mmu::MemoryMap;
    use nlft_machine::workloads::DATA_BASE;

    fn machine() -> Machine {
        Machine::new(4096, MemoryMap::permissive())
    }

    #[test]
    fn crc32_known_properties() {
        assert_eq!(crc32(&[]), 0);
        assert_ne!(crc32(&[0]), crc32(&[0, 0]));
        // Single-bit sensitivity.
        for bit in 0..32 {
            assert_ne!(crc32(&[0]), crc32(&[1 << bit]));
        }
    }

    #[test]
    fn duplicated_region_round_trip() {
        let mut m = machine();
        let region = DuplicatedRegion {
            primary: DATA_BASE,
            shadow: DATA_BASE + 0x100,
            words: 4,
        };
        region.write(&mut m, &[10, 20, 30, 40]).unwrap();
        assert_eq!(region.read_checked(&mut m).unwrap(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn duplicated_region_detects_corruption() {
        let mut m = machine();
        let region = DuplicatedRegion {
            primary: DATA_BASE,
            shadow: DATA_BASE + 0x100,
            words: 4,
        };
        region.write(&mut m, &[1, 2, 3, 4]).unwrap();
        // Corrupt the primary copy directly (bypassing ECC bookkeeping by a
        // plain store, modelling a wild store by a faulty task).
        m.mem.store(DATA_BASE + 8, 99).unwrap();
        assert_eq!(
            region.read_checked(&mut m),
            Err(IntegrityError::DuplicateMismatch { offset: 8 })
        );
    }

    #[test]
    fn crc_region_round_trip_and_detection() {
        let mut m = machine();
        let region = CrcRegion {
            base: DATA_BASE,
            words: 8,
        };
        region.write_sealed(&mut m, &[5, 6, 7, 8, 9, 10, 11, 12]).unwrap();
        assert_eq!(
            region.read_verified(&mut m).unwrap(),
            vec![5, 6, 7, 8, 9, 10, 11, 12]
        );
        m.mem.store(DATA_BASE + 4, 0xBAD).unwrap();
        assert!(matches!(
            region.read_verified(&mut m),
            Err(IntegrityError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn crc_region_detects_wild_write_into_crc_word() {
        let mut m = machine();
        let region = CrcRegion {
            base: DATA_BASE,
            words: 2,
        };
        region.write_sealed(&mut m, &[1, 2]).unwrap();
        m.mem.store(DATA_BASE + 8, 0).unwrap(); // clobber stored CRC
        assert!(region.read_verified(&mut m).is_err());
    }

    #[test]
    fn sealed_message_round_trip() {
        let msg = SealedMessage::seal(vec![7, 8, 9]);
        assert_eq!(msg.open().unwrap(), vec![7, 8, 9]);
    }

    #[test]
    fn sealed_message_detects_payload_and_crc_corruption() {
        let mut msg = SealedMessage::seal(vec![7, 8, 9]);
        msg.corrupt_payload(1, 0x10);
        assert!(msg.open().is_err());

        let mut msg = SealedMessage::seal(vec![7, 8, 9]);
        msg.corrupt_crc(1);
        assert!(msg.open().is_err());
    }

    #[test]
    fn empty_message_is_valid() {
        assert_eq!(SealedMessage::seal(vec![]).open().unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn write_past_region_panics() {
        let mut m = machine();
        let region = CrcRegion {
            base: DATA_BASE,
            words: 1,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            region.write_sealed(&mut m, &[1, 2]).unwrap();
        }));
        assert!(result.is_err());
    }
}
