//! Weakly-hard (m,k) deadline-miss contracts for kernel tasks.
//!
//! The paper's node-level argument is that a node may degrade under
//! faults as long as the *system* still delivers its real-time service.
//! A weakly-hard contract makes that claim precise per task: "at most
//! `m` deadline misses in any `k` consecutive jobs" (Liang et al.).
//! Occasional omissions — TEM running out of copies, a budget overrun —
//! are then within spec; it is the *density* of misses that breaks the
//! contract, and only then does the kernel degrade the task.
//!
//! A [`TaskContract`] couples the static [`MkContract`] with an online
//! [`WeaklyHard`] monitor and a [`DegradationAction`] the executive
//! applies while the window is violated:
//!
//! * [`DegradationAction::SkipToSafe`] — substitute releases with the
//!   safe job variant (deliver the last good output at negligible cost)
//!   until the window recovers; substituted jobs count as hits.
//! * [`DegradationAction::ClampRecovery`] — clamp the TEM re-execution
//!   budget to the two scheduled copies (no recovery copies) while
//!   degraded, bounding the CPU a misbehaving task can draw.
//! * [`DegradationAction::Escalate`] — report each fresh violation so
//!   the node feeds it into the [`crate::escalation`] ladder.
//!
//! The matching *offline* guarantee — is the contract satisfiable under
//! fault-recovery response-time analysis at all — lives in
//! [`crate::analysis::analyse_weakly_hard`].

use std::fmt;

use nlft_sim::weakly_hard::WeaklyHard;

/// Why an (m,k) contract was rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContractError {
    /// `window` (k) was zero — there is no window to constrain.
    ZeroWindow,
    /// `max_misses >= window` — every pattern satisfies the contract,
    /// so it constrains nothing.
    Vacuous {
        /// Tolerated misses per window (`m`).
        max_misses: u32,
        /// Window length in jobs (`k`).
        window: u32,
    },
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::ZeroWindow => write!(f, "contract window must be positive"),
            ContractError::Vacuous { max_misses, window } => write!(
                f,
                "({max_misses},{window}) contract must forbid at least one miss pattern"
            ),
        }
    }
}

impl std::error::Error for ContractError {}

/// A weakly-hard constraint on a task: at most `max_misses` deadline
/// misses within any window of `window` consecutive jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MkContract {
    /// Tolerated misses per window (`m`).
    pub max_misses: u32,
    /// Window length in jobs (`k`).
    pub window: u32,
}

impl MkContract {
    /// Creates a contract tolerating `max_misses` misses in any
    /// `window` consecutive jobs.
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero or `max_misses >= window` (a
    /// contract every pattern satisfies constrains nothing).
    pub fn new(max_misses: u32, window: u32) -> Self {
        match MkContract::try_new(max_misses, window) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking form of [`MkContract::new`]: rejects a zero window
    /// and vacuous (`max_misses >= window`) contracts with a typed error.
    pub fn try_new(max_misses: u32, window: u32) -> Result<Self, ContractError> {
        if window == 0 {
            return Err(ContractError::ZeroWindow);
        }
        if max_misses >= window {
            return Err(ContractError::Vacuous { max_misses, window });
        }
        Ok(MkContract { max_misses, window })
    }

    /// The online monitor for this contract: violated at
    /// `max_misses + 1` misses within the window.
    pub fn monitor(&self) -> WeaklyHard {
        WeaklyHard::new(self.max_misses + 1, self.window)
    }

    /// Whether a miss pattern (true = miss) over one window satisfies
    /// the contract in *every* `window`-length slice.
    pub fn satisfied_by(&self, pattern: &[bool]) -> bool {
        let mut w = self.monitor();
        pattern.iter().all(|&miss| !w.record(miss).violated)
    }
}

/// What the executive does to a task while its contract is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationAction {
    /// Substitute releases with the safe job variant (last good output,
    /// negligible cost) until the window recovers.
    SkipToSafe,
    /// Clamp TEM to its two scheduled copies — no recovery copies —
    /// while degraded.
    ClampRecovery,
    /// Record the violation for the node's escalation ladder; the task
    /// itself keeps running unchanged.
    Escalate,
}

/// Aggregated contract telemetry for one task over a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractOutcomes {
    /// Jobs observed (including safe substitutions).
    pub jobs: u64,
    /// Deadline misses observed.
    pub misses: u64,
    /// Transitions into the violated state.
    pub violations: u64,
    /// Worst (highest) miss count seen in any window.
    pub worst_misses_in_window: u32,
    /// Smallest distance-to-violation seen (0 = violated at some point).
    pub min_margin: u32,
    /// Releases substituted by the safe variant.
    pub safe_substituted: u64,
    /// Jobs concluded while the task was degraded.
    pub degraded_jobs: u64,
}

/// A registered contract: static terms, online monitor, degradation
/// state and telemetry.
#[derive(Debug, Clone)]
pub struct TaskContract {
    contract: MkContract,
    action: DegradationAction,
    monitor: WeaklyHard,
    degraded: bool,
    outcomes: ContractOutcomes,
}

impl TaskContract {
    /// Creates an armed contract with a clean window.
    pub fn new(contract: MkContract, action: DegradationAction) -> Self {
        let monitor = contract.monitor();
        let min_margin = monitor.margin();
        TaskContract {
            contract,
            action,
            monitor,
            degraded: false,
            outcomes: ContractOutcomes {
                jobs: 0,
                misses: 0,
                violations: 0,
                worst_misses_in_window: 0,
                min_margin,
                safe_substituted: 0,
                degraded_jobs: 0,
            },
        }
    }

    /// The static contract terms.
    pub fn contract(&self) -> MkContract {
        self.contract
    }

    /// The configured degradation action.
    pub fn action(&self) -> DegradationAction {
        self.action
    }

    /// Whether the task is currently degraded (window violated at the
    /// last recorded job, not yet recovered).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Misses the window still absorbs before violating.
    pub fn margin(&self) -> u32 {
        self.monitor.margin()
    }

    /// Telemetry collected so far.
    pub fn outcomes(&self) -> &ContractOutcomes {
        &self.outcomes
    }

    /// Records one concluded job. Returns `true` when this job *newly*
    /// violated the contract (a violated→violated job returns `false`).
    ///
    /// Degraded mode engages on violation and disengages as soon as the
    /// window drops back below the threshold.
    pub fn record(&mut self, miss: bool) -> bool {
        let was_violated = self.monitor.is_violated();
        let v = self.monitor.record(miss);
        self.outcomes.jobs += 1;
        if miss {
            self.outcomes.misses += 1;
        }
        self.outcomes.worst_misses_in_window =
            self.outcomes.worst_misses_in_window.max(v.misses_in_window);
        self.outcomes.min_margin = self.outcomes.min_margin.min(v.margin);
        let newly = v.violated && !was_violated;
        if newly {
            self.outcomes.violations += 1;
        }
        self.degraded = v.violated;
        if self.degraded {
            self.outcomes.degraded_jobs += 1;
        }
        newly
    }

    /// Whether the next release should be substituted by the safe
    /// variant.
    pub fn wants_safe_substitute(&self) -> bool {
        self.degraded && self.action == DegradationAction::SkipToSafe
    }

    /// Records a safe-substituted release: counts as a hit (the safe
    /// variant always meets its deadline), so substitution itself heals
    /// the window.
    pub fn record_safe_substitute(&mut self) {
        self.outcomes.safe_substituted += 1;
        self.record(false);
    }

    /// TEM copy cap while degraded under
    /// [`DegradationAction::ClampRecovery`]; `None` = no clamp.
    pub fn copy_cap(&self) -> Option<u32> {
        if self.degraded && self.action == DegradationAction::ClampRecovery {
            Some(2)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_violates_at_one_past_the_tolerance() {
        let c = MkContract::new(2, 5);
        let mut w = c.monitor();
        assert!(!w.record(true).violated);
        assert!(!w.record(true).violated, "two misses are within contract");
        assert!(w.record(true).violated, "the third breaks it");
    }

    #[test]
    fn satisfied_by_slides_the_window() {
        let c = MkContract::new(1, 3);
        assert!(c.satisfied_by(&[true, false, false, true, false]));
        // Misses 2 apart share a 3-window.
        assert!(!c.satisfied_by(&[true, false, true]));
    }

    #[test]
    fn degraded_engages_and_disengages_with_the_window() {
        let mut tc = TaskContract::new(MkContract::new(1, 4), DegradationAction::SkipToSafe);
        assert!(!tc.record(true));
        assert!(!tc.is_degraded());
        assert!(tc.record(true), "second miss in 4 newly violates");
        assert!(tc.is_degraded());
        assert!(tc.wants_safe_substitute());
        // Hits heal the window once the first miss falls out of it.
        tc.record_safe_substitute();
        tc.record_safe_substitute();
        assert!(tc.is_degraded(), "both misses still inside the 4-window");
        tc.record_safe_substitute();
        assert!(!tc.is_degraded(), "the first miss aged out");
        assert_eq!(tc.outcomes().violations, 1);
        assert_eq!(tc.outcomes().safe_substituted, 3);
        assert_eq!(tc.outcomes().min_margin, 0);
    }

    #[test]
    fn copy_cap_only_for_clamp_while_degraded() {
        let mut tc = TaskContract::new(MkContract::new(0, 2), DegradationAction::ClampRecovery);
        assert_eq!(tc.copy_cap(), None);
        tc.record(true);
        assert_eq!(tc.copy_cap(), Some(2));
        let mut esc = TaskContract::new(MkContract::new(0, 2), DegradationAction::Escalate);
        esc.record(true);
        assert_eq!(esc.copy_cap(), None);
        assert!(!esc.wants_safe_substitute());
    }

    #[test]
    fn violation_counts_transitions_not_jobs() {
        let mut tc = TaskContract::new(MkContract::new(0, 3), DegradationAction::Escalate);
        assert!(tc.record(true));
        assert!(!tc.record(true), "still violated, not a new violation");
        assert!(!tc.record(false));
        assert!(!tc.record(false));
        assert!(!tc.record(false), "window clean again");
        assert!(tc.record(true), "fresh violation");
        assert_eq!(tc.outcomes().violations, 2);
        assert_eq!(tc.outcomes().worst_misses_in_window, 2);
    }

    #[test]
    #[should_panic(expected = "forbid at least one miss pattern")]
    fn vacuous_contract_rejected() {
        MkContract::new(3, 3);
    }
}
