//! Shared-resource model for multicore NLFT nodes: SRP-style ceiling
//! analysis and fault-tolerant resource-sharing protocols.
//!
//! The paper's kernel is strictly single-core, so "a task holds a
//! resource" never outlives the task: fail-silence at the node level
//! subsumes everything. On a multicore node two cores share state, and a
//! core can die *inside* a critical section — the questions the paper
//! never asks become the interesting ones:
//!
//! * **Ceiling analysis** ([`ResourceMap`]): each resource's priority
//!   ceiling is derived statically from the task set's resource-access
//!   declarations — ceiling(ρ) = the highest priority (numerically
//!   smallest [`Priority`]) of any task accessing ρ, exactly the RTFM/RTIC
//!   construction. From the ceilings follows the classic SRP blocking
//!   bound ([`ResourceMap::blocking_bound`]): a task is blocked at most
//!   once, by the longest critical section of a lower-priority task on a
//!   resource whose ceiling reaches the task's priority.
//! * **Protocols** ([`ResourceProtocol`]): a lock-based baseline
//!   ([`LockBased`]) and a LEFT-RS-style lock-free retry-bounded protocol
//!   ([`LeftRs`]). Under the lock, a core that dies while holding leaves
//!   the lock held forever — peers deadlock. Under LEFT-RS nothing is ever
//!   *held*: a section is executed optimistically against a per-resource
//!   generation counter and committed with a single CAS; a dead core
//!   simply never commits, and peers proceed unharmed. The price is
//!   bounded re-execution — on `n` cores a section retries at most
//!   `n − 1` times ([`LeftRs` retry bound][ResourceProtocol::retry_bound]),
//!   and that cost feeds [`crate::analysis::response_time_with_blocking`]
//!   as an explicit recovery term.

use std::collections::BTreeMap;
use std::fmt;

use nlft_sim::time::SimDuration;

use crate::analysis::response_time_with_blocking;
use crate::task::{Priority, TaskId, TaskSet, TaskSpec};

/// Identifies one shared resource of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u32);

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// One task's declared critical section on one resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsAccess {
    /// The accessing task.
    pub task: TaskId,
    /// The resource accessed.
    pub resource: ResourceId,
    /// Worst-case critical-section length.
    pub section: SimDuration,
}

/// The static resource-access declaration of a task set, and the ceiling
/// analysis derived from it.
///
/// Declarations are the input to everything else: ceilings, blocking
/// bounds and the retry term are all pure functions of this map plus the
/// task set's priorities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceMap {
    accesses: Vec<CsAccess>,
}

impl ResourceMap {
    /// An empty map: no task shares anything.
    pub fn new() -> Self {
        ResourceMap::default()
    }

    /// Declares that `task` accesses `resource` with a critical section of
    /// worst-case length `section`.
    ///
    /// # Panics
    ///
    /// Panics when `section` is zero or the `(task, resource)` pair was
    /// already declared — each task declares each resource at most once,
    /// with its single worst-case section length.
    pub fn declare(&mut self, task: TaskId, resource: ResourceId, section: SimDuration) {
        assert!(!section.is_zero(), "critical section must have a length");
        assert!(
            !self
                .accesses
                .iter()
                .any(|a| a.task == task && a.resource == resource),
            "duplicate access declaration for task {task:?} on {resource}",
        );
        self.accesses.push(CsAccess {
            task,
            resource,
            section,
        });
    }

    /// All declared accesses, in declaration order.
    pub fn accesses(&self) -> impl Iterator<Item = &CsAccess> {
        self.accesses.iter()
    }

    /// All declared resources, sorted and deduplicated.
    pub fn resources(&self) -> Vec<ResourceId> {
        let mut ids: Vec<ResourceId> = self.accesses.iter().map(|a| a.resource).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// The declared section length of `task` on `resource`, if any.
    pub fn section(&self, task: TaskId, resource: ResourceId) -> Option<SimDuration> {
        self.accesses
            .iter()
            .find(|a| a.task == task && a.resource == resource)
            .map(|a| a.section)
    }

    /// The longest critical section `task` declares on any resource
    /// (zero when it shares nothing) — the unit of LEFT-RS re-execution.
    pub fn longest_section(&self, task: TaskId) -> SimDuration {
        self.accesses
            .iter()
            .filter(|a| a.task == task)
            .map(|a| a.section)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The SRP/RTFM priority ceiling of `resource`: the highest priority
    /// (numerically smallest [`Priority`]) among its accessors in `set`.
    ///
    /// Returns `None` when no declared accessor touches the resource.
    ///
    /// # Panics
    ///
    /// Panics when an accessor of `resource` is not a member of `set` —
    /// the access declaration would be dead static analysis input.
    pub fn ceiling(&self, set: &TaskSet, resource: ResourceId) -> Option<Priority> {
        self.accesses
            .iter()
            .filter(|a| a.resource == resource)
            .map(|a| {
                set.get(a.task)
                    .unwrap_or_else(|| panic!("{resource} accessed by unknown task {:?}", a.task))
                    .priority
            })
            .min()
    }

    /// The ceiling of every declared resource, sorted by resource id.
    pub fn ceilings(&self, set: &TaskSet) -> Vec<(ResourceId, Priority)> {
        self.resources()
            .into_iter()
            .map(|r| (r, self.ceiling(set, r).expect("resource has an accessor")))
            .collect()
    }

    /// The SRP blocking bound for `task`: the longest critical section of
    /// any *lower*-priority task on a resource whose ceiling is at least
    /// `task`'s priority (numerically `≤ task.priority`). Under SRP a task
    /// is blocked at most once, before it starts, so the bound is a `max`,
    /// not a sum.
    ///
    /// Priority ties break like [`TaskSet`] ordering: `(priority, id)`.
    pub fn blocking_bound(&self, set: &TaskSet, task: &TaskSpec) -> SimDuration {
        let key = (task.priority, task.id);
        self.accesses
            .iter()
            .filter(|a| {
                let Some(accessor) = set.get(a.task) else {
                    return false;
                };
                let lower = (accessor.priority, accessor.id) > key;
                let ceiling_reaches = self
                    .ceiling(set, a.resource)
                    .is_some_and(|c| c <= task.priority);
                lower && ceiling_reaches
            })
            .map(|a| a.section)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Outcome of a section entry attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionEntry {
    /// The core may execute the section.
    Enter,
    /// Lock-based only: another core holds the resource; the caller spins.
    Blocked {
        /// The core currently holding the resource.
        holder: usize,
    },
}

/// Outcome of a section commit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionCommit {
    /// The section's effects are published.
    Committed,
    /// LEFT-RS only: a peer committed first; re-execute the section
    /// against the fresh state.
    Retry,
}

/// A resource-sharing protocol for the multicore executive, modelled at
/// the granularity the fault analysis needs: entry, commit, and what
/// happens when the core inside a section dies.
///
/// Both implementations are driven by the deterministic tick executive in
/// [`crate::multicore`], which serializes core steps — the protocol state
/// machines themselves are sequential models of the concurrent originals.
pub trait ResourceProtocol: fmt::Debug {
    /// Protocol name for reports.
    fn name(&self) -> &'static str;

    /// `true` when a dead holder can never block peers (lock-freedom).
    fn lock_free(&self) -> bool;

    /// `core` asks to start executing a section on `resource`.
    fn try_enter(&mut self, resource: ResourceId, core: usize) -> SectionEntry;

    /// `core` finished executing the section body and asks to publish.
    fn commit(&mut self, resource: ResourceId, core: usize) -> SectionCommit;

    /// `core` left the section without committing. `orderly` is `true`
    /// when the kernel's escalation ladder silenced the core (FailSilent /
    /// Retired) and ran its release hook — the fix for the
    /// dead-holder-blocks-peers hazard — and `false` for a hard crash,
    /// where no release code runs.
    fn abandon(&mut self, resource: ResourceId, core: usize, orderly: bool);

    /// The core currently holding `resource`, when the protocol has a
    /// notion of holding (lock-free protocols always return `None`).
    fn holder(&self, resource: ResourceId) -> Option<usize>;

    /// Worst-case number of section re-executions on a node with `cores`
    /// cores. Zero for blocking protocols.
    fn retry_bound(&self, cores: u32) -> u32;
}

/// The lock-based baseline: a plain per-resource spin lock.
///
/// Correct and retry-free while everyone is alive; when the holding core
/// dies uncleanly the lock stays held forever and every peer that needs
/// the resource spins until its deadline — the deadlock the campaign
/// demonstrates.
#[derive(Debug, Clone, Default)]
pub struct LockBased {
    held: BTreeMap<ResourceId, usize>,
}

impl LockBased {
    /// A fresh protocol instance with no lock held.
    pub fn new() -> Self {
        LockBased::default()
    }
}

impl ResourceProtocol for LockBased {
    fn name(&self) -> &'static str {
        "lock-based"
    }

    fn lock_free(&self) -> bool {
        false
    }

    fn try_enter(&mut self, resource: ResourceId, core: usize) -> SectionEntry {
        match self.held.get(&resource) {
            Some(&holder) if holder != core => SectionEntry::Blocked { holder },
            _ => {
                self.held.insert(resource, core);
                SectionEntry::Enter
            }
        }
    }

    fn commit(&mut self, resource: ResourceId, core: usize) -> SectionCommit {
        debug_assert_eq!(self.held.get(&resource), Some(&core));
        self.held.remove(&resource);
        SectionCommit::Committed
    }

    fn abandon(&mut self, resource: ResourceId, core: usize, orderly: bool) {
        if self.held.get(&resource) == Some(&core) && orderly {
            // The escalation ladder's release hook ran: the lock is
            // revoked. A hard crash leaves it held — that is the hazard.
            self.held.remove(&resource);
        }
    }

    fn holder(&self, resource: ResourceId) -> Option<usize> {
        self.held.get(&resource).copied()
    }

    fn retry_bound(&self, _cores: u32) -> u32 {
        0
    }
}

/// LEFT-RS-style lock-free retry-bounded resource sharing.
///
/// Each resource carries a generation counter. A core entering a section
/// snapshots the generation, executes the section body against a private
/// copy, and commits with a single CAS: if the generation is unchanged the
/// commit publishes (generation bumps), otherwise a peer won the race and
/// the core re-executes against the fresh state. On `n` cores at most
/// `n − 1` peers can defeat one commit, so a section re-executes at most
/// `n − 1` times. Nothing is ever held: a core dying mid-section simply
/// never commits, and the fault is invisible to peers.
#[derive(Debug, Clone, Default)]
pub struct LeftRs {
    generation: BTreeMap<ResourceId, u64>,
    snapshot: BTreeMap<(ResourceId, usize), u64>,
}

impl LeftRs {
    /// A fresh protocol instance at generation zero everywhere.
    pub fn new() -> Self {
        LeftRs::default()
    }
}

impl ResourceProtocol for LeftRs {
    fn name(&self) -> &'static str {
        "left-rs"
    }

    fn lock_free(&self) -> bool {
        true
    }

    fn try_enter(&mut self, resource: ResourceId, core: usize) -> SectionEntry {
        let generation = self.generation.get(&resource).copied().unwrap_or(0);
        self.snapshot.insert((resource, core), generation);
        SectionEntry::Enter
    }

    fn commit(&mut self, resource: ResourceId, core: usize) -> SectionCommit {
        let generation = self.generation.entry(resource).or_insert(0);
        match self.snapshot.get(&(resource, core)) {
            Some(&snap) if snap == *generation => {
                *generation += 1;
                self.snapshot.remove(&(resource, core));
                SectionCommit::Committed
            }
            _ => {
                // CAS lost: re-snapshot and re-execute the section body.
                self.snapshot.insert((resource, core), *generation);
                SectionCommit::Retry
            }
        }
    }

    fn abandon(&mut self, resource: ResourceId, core: usize, _orderly: bool) {
        // Nothing is held; drop the private snapshot and move on.
        self.snapshot.remove(&(resource, core));
    }

    fn holder(&self, _resource: ResourceId) -> Option<usize> {
        None
    }

    fn retry_bound(&self, cores: u32) -> u32 {
        cores.saturating_sub(1)
    }
}

/// Selects which [`ResourceProtocol`] a node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Per-resource spin locks ([`LockBased`]).
    LockBased,
    /// LEFT-RS lock-free retry-bounded sections ([`LeftRs`]).
    LeftRs,
}

impl ProtocolKind {
    /// Instantiates the protocol.
    pub fn build(self) -> Box<dyn ResourceProtocol> {
        match self {
            ProtocolKind::LockBased => Box::new(LockBased::new()),
            ProtocolKind::LeftRs => Box::new(LeftRs::new()),
        }
    }

    /// Protocol name without instantiating.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::LockBased => "lock-based",
            ProtocolKind::LeftRs => "left-rs",
        }
    }

    /// Worst-case section re-executions on `cores` cores.
    pub fn retry_bound(self, cores: u32) -> u32 {
        match self {
            ProtocolKind::LockBased => 0,
            ProtocolKind::LeftRs => cores.saturating_sub(1),
        }
    }
}

/// Worst-case LEFT-RS re-execution cost for one job of `task` on a node
/// with `cores` cores: the longest declared section, re-executed once per
/// possible CAS defeat. This is the retry term fed to
/// [`response_time_with_blocking`] as an explicit recovery cost.
pub fn left_rs_retry_term(map: &ResourceMap, task: &TaskSpec, cores: u32) -> SimDuration {
    map.longest_section(task.id) * u64::from(cores.saturating_sub(1))
}

/// One task's certification verdict under [`certify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifiedTask {
    /// Task certified.
    pub id: TaskId,
    /// Task name for reports.
    pub name: String,
    /// Blocking term charged (SRP bound for locks, zero for LEFT-RS).
    pub blocking: SimDuration,
    /// Per-episode recovery term charged (retry re-execution for LEFT-RS).
    pub recovery: SimDuration,
    /// Worst-case response time, `None` when the deadline is blown.
    pub response: Option<SimDuration>,
}

/// Certifies every task of a `cores`-core node sharing `map` under
/// `protocol`, with `episodes` fault/contention episodes charged per job:
///
/// * **lock-based**: blocking = the SRP bound (the holder is assumed to
///   *finish* its section — an assumption a dead core voids, which is
///   exactly why certification does not save the baseline from core
///   death); recovery = zero (no retries).
/// * **LEFT-RS**: blocking = zero (nothing ever blocks); recovery = the
///   bounded retry re-execution term [`left_rs_retry_term`], charged once
///   per episode. This certification survives core death: a dead peer
///   only ever *removes* contention.
///
/// TEM recovery composes orthogonally — pass the combined closure to
/// [`response_time_with_blocking`] directly for a TEM-transformed set.
pub fn certify(
    set: &TaskSet,
    map: &ResourceMap,
    protocol: ProtocolKind,
    cores: u32,
    episodes: u32,
) -> Vec<CertifiedTask> {
    set.iter()
        .map(|t| {
            let (blocking, recovery) = match protocol {
                ProtocolKind::LockBased => (map.blocking_bound(set, t), SimDuration::ZERO),
                ProtocolKind::LeftRs => (SimDuration::ZERO, left_rs_retry_term(map, t, cores)),
            };
            let response =
                response_time_with_blocking(set, t, blocking, episodes, |k| match protocol {
                    ProtocolKind::LockBased => SimDuration::ZERO,
                    ProtocolKind::LeftRs => left_rs_retry_term(map, k, cores),
                });
            CertifiedTask {
                id: t.id,
                name: t.name.clone(),
                blocking,
                recovery,
                response,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Criticality, TaskSpecBuilder};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn task(id: u32, prio: u32, period_us: u64, wcet_us: u64) -> TaskSpec {
        TaskSpecBuilder::new(TaskId(id), format!("t{id}"))
            .period(us(period_us))
            .wcet(us(wcet_us))
            .priority(Priority(prio))
            .criticality(Criticality::NonCritical)
            .build()
            .unwrap()
    }

    fn three_task_set() -> TaskSet {
        [
            task(1, 0, 100, 10),
            task(2, 1, 200, 20),
            task(3, 2, 400, 40),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn ceiling_is_highest_accessor_priority() {
        let set = three_task_set();
        let mut map = ResourceMap::new();
        map.declare(TaskId(2), ResourceId(1), us(5));
        map.declare(TaskId(3), ResourceId(1), us(8));
        map.declare(TaskId(3), ResourceId(2), us(4));
        assert_eq!(map.ceiling(&set, ResourceId(1)), Some(Priority(1)));
        assert_eq!(map.ceiling(&set, ResourceId(2)), Some(Priority(2)));
        assert_eq!(map.ceiling(&set, ResourceId(9)), None);
        assert_eq!(
            map.ceilings(&set),
            vec![(ResourceId(1), Priority(1)), (ResourceId(2), Priority(2))]
        );
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn ceiling_rejects_unknown_accessor() {
        let set = three_task_set();
        let mut map = ResourceMap::new();
        map.declare(TaskId(99), ResourceId(1), us(5));
        map.ceiling(&set, ResourceId(1));
    }

    #[test]
    #[should_panic(expected = "duplicate access")]
    fn duplicate_declaration_rejected() {
        let mut map = ResourceMap::new();
        map.declare(TaskId(1), ResourceId(1), us(5));
        map.declare(TaskId(1), ResourceId(1), us(6));
    }

    #[test]
    fn blocking_bound_is_max_lower_section_reaching_ceiling() {
        let set = three_task_set();
        let mut map = ResourceMap::new();
        // R1 shared by t1 and t3: ceiling = P(0). t3's 8us section can
        // block both t1 and t2 (ceiling reaches them).
        map.declare(TaskId(1), ResourceId(1), us(3));
        map.declare(TaskId(3), ResourceId(1), us(8));
        // R2 private to t2 and t3: ceiling = P(1), out of t1's reach.
        map.declare(TaskId(2), ResourceId(2), us(2));
        map.declare(TaskId(3), ResourceId(2), us(9));
        let t1 = set.get(TaskId(1)).unwrap();
        let t2 = set.get(TaskId(2)).unwrap();
        let t3 = set.get(TaskId(3)).unwrap();
        assert_eq!(map.blocking_bound(&set, t1), us(8));
        assert_eq!(map.blocking_bound(&set, t2), us(9));
        // Nothing runs below t3: it is never blocked.
        assert_eq!(map.blocking_bound(&set, t3), SimDuration::ZERO);
    }

    #[test]
    fn longest_section_and_lookup() {
        let mut map = ResourceMap::new();
        map.declare(TaskId(1), ResourceId(1), us(3));
        map.declare(TaskId(1), ResourceId(2), us(7));
        assert_eq!(map.longest_section(TaskId(1)), us(7));
        assert_eq!(map.longest_section(TaskId(9)), SimDuration::ZERO);
        assert_eq!(map.section(TaskId(1), ResourceId(1)), Some(us(3)));
        assert_eq!(map.section(TaskId(1), ResourceId(9)), None);
    }

    #[test]
    fn lock_based_blocks_and_releases() {
        let mut p = LockBased::new();
        let r = ResourceId(1);
        assert_eq!(p.try_enter(r, 0), SectionEntry::Enter);
        assert_eq!(p.try_enter(r, 1), SectionEntry::Blocked { holder: 0 });
        assert_eq!(p.holder(r), Some(0));
        assert_eq!(p.commit(r, 0), SectionCommit::Committed);
        assert_eq!(p.holder(r), None);
        assert_eq!(p.try_enter(r, 1), SectionEntry::Enter);
    }

    #[test]
    fn lock_based_crash_leaks_orderly_revokes() {
        let r = ResourceId(1);
        // Hard crash: the lock stays held; peers block forever.
        let mut p = LockBased::new();
        p.try_enter(r, 0);
        p.abandon(r, 0, false);
        assert_eq!(p.holder(r), Some(0));
        assert_eq!(p.try_enter(r, 1), SectionEntry::Blocked { holder: 0 });
        // Orderly fail-silence: the release hook revokes the lock.
        let mut p = LockBased::new();
        p.try_enter(r, 0);
        p.abandon(r, 0, true);
        assert_eq!(p.holder(r), None);
        assert_eq!(p.try_enter(r, 1), SectionEntry::Enter);
    }

    #[test]
    fn left_rs_never_blocks_and_retries_on_defeat() {
        let mut p = LeftRs::new();
        let r = ResourceId(1);
        assert_eq!(p.try_enter(r, 0), SectionEntry::Enter);
        assert_eq!(p.try_enter(r, 1), SectionEntry::Enter);
        assert_eq!(p.holder(r), None);
        // Core 0 commits first; core 1's CAS is defeated once.
        assert_eq!(p.commit(r, 0), SectionCommit::Committed);
        assert_eq!(p.commit(r, 1), SectionCommit::Retry);
        // Re-executed against the fresh snapshot, it commits.
        assert_eq!(p.commit(r, 1), SectionCommit::Committed);
    }

    #[test]
    fn left_rs_dead_core_is_invisible() {
        let mut p = LeftRs::new();
        let r = ResourceId(1);
        p.try_enter(r, 0);
        p.abandon(r, 0, false); // hard crash mid-section
        assert_eq!(p.try_enter(r, 1), SectionEntry::Enter);
        assert_eq!(p.commit(r, 1), SectionCommit::Committed);
    }

    #[test]
    fn retry_bounds() {
        assert_eq!(ProtocolKind::LockBased.retry_bound(4), 0);
        assert_eq!(ProtocolKind::LeftRs.retry_bound(1), 0);
        assert_eq!(ProtocolKind::LeftRs.retry_bound(2), 1);
        assert_eq!(ProtocolKind::LeftRs.retry_bound(5), 4);
        assert_eq!(LeftRs::new().retry_bound(3), 2);
        assert_eq!(LockBased::new().retry_bound(3), 0);
    }

    #[test]
    fn retry_term_scales_with_cores_and_section() {
        let set = three_task_set();
        let mut map = ResourceMap::new();
        map.declare(TaskId(1), ResourceId(1), us(5));
        let t1 = set.get(TaskId(1)).unwrap();
        let t2 = set.get(TaskId(2)).unwrap();
        assert_eq!(left_rs_retry_term(&map, t1, 2), us(5));
        assert_eq!(left_rs_retry_term(&map, t1, 4), us(15));
        assert_eq!(left_rs_retry_term(&map, t2, 4), SimDuration::ZERO);
    }

    #[test]
    fn certify_charges_blocking_for_locks_and_retries_for_left_rs() {
        let set = three_task_set();
        let mut map = ResourceMap::new();
        map.declare(TaskId(1), ResourceId(1), us(4));
        map.declare(TaskId(3), ResourceId(1), us(8));
        let locks = certify(&set, &map, ProtocolKind::LockBased, 2, 1);
        let cas = certify(&set, &map, ProtocolKind::LeftRs, 2, 1);
        // t1 under locks: R = 10 + B(8) = 18.
        assert_eq!(locks[0].blocking, us(8));
        assert_eq!(locks[0].response, Some(us(18)));
        // t1 under LEFT-RS: R = 10 + one 4us re-execution = 14.
        assert_eq!(cas[0].blocking, SimDuration::ZERO);
        assert_eq!(cas[0].recovery, us(4));
        assert_eq!(cas[0].response, Some(us(14)));
        // t2 declares nothing, yet neither protocol leaves it untouched:
        // under locks t3's ceiling-P(0) section blocks it (B = 8,
        // R = 20+8+10 = 38); under LEFT-RS the hep max-recovery charges
        // t1's retry term (R = 20+4+10 = 34).
        assert_eq!(locks[1].response, Some(us(38)));
        assert_eq!(cas[1].response, Some(us(34)));
    }
}
