//! Property-based tests for the TM32 machine.

use nlft_machine::asm::{assemble, disassemble};
use nlft_machine::fault::{run_with_injection, FaultSpace};
use nlft_machine::isa::{Instr, Reg};
use nlft_machine::machine::{Machine, RunExit};
use nlft_machine::mmu::MemoryMap;
use nlft_machine::workloads;
use nlft_sim::rng::RngStream;
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(|i| Reg::new(i).unwrap())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Ret),
        (arb_reg(), any::<i16>()).prop_map(|(r, v)| Instr::Ldi(r, v)),
        (arb_reg(), any::<u16>()).prop_map(|(r, v)| Instr::Lui(r, v)),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(a, b, v)| Instr::Ld(a, b, v)),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(a, b, v)| Instr::St(a, b, v)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Mov(a, b)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Instr::Add(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Instr::Sub(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Instr::Mul(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Instr::Div(a, b, c)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(a, b, c)| Instr::Xor(a, b, c)),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(a, b, v)| Instr::Addi(a, b, v)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Cmp(a, b)),
        any::<u16>().prop_map(Instr::Jmp),
        any::<u16>().prop_map(Instr::Jz),
        any::<u16>().prop_map(Instr::Call),
        arb_reg().prop_map(Instr::Push),
        arb_reg().prop_map(Instr::Pop),
        (arb_reg(), 0u16..16).prop_map(|(r, p)| Instr::In(r, p)),
        (arb_reg(), 0u16..16).prop_map(|(r, p)| Instr::Out(r, p)),
    ]
}

proptest! {
    /// Every instruction round-trips through encode/decode.
    #[test]
    fn isa_encode_decode_roundtrip(instr in arb_instr()) {
        prop_assert_eq!(Instr::decode(instr.encode()).unwrap(), instr);
    }

    /// The machine never panics on arbitrary programs — every outcome is a
    /// clean halt, budget stop, or a typed exception.
    #[test]
    fn machine_total_on_arbitrary_programs(
        words in prop::collection::vec(any::<u32>(), 1..64),
        inputs in prop::collection::vec(any::<u32>(), 16),
    ) {
        let mut m = Machine::new(4096, MemoryMap::permissive());
        m.load_program(0, &words).unwrap();
        m.reset(0, 4096);
        for (p, &v) in inputs.iter().enumerate() {
            m.set_input(p, v);
        }
        let out = m.run(10_000);
        match out.exit {
            RunExit::Halted | RunExit::BudgetExhausted | RunExit::Exception(_) => {}
        }
        prop_assert!(out.cycles_used <= 10_000 + 8, "budget respected modulo one instruction");
    }

    /// Disassembly never panics and emits one line per word.
    #[test]
    fn disassemble_total(words in prop::collection::vec(any::<u32>(), 0..64)) {
        let text = disassemble(&words);
        prop_assert_eq!(text.lines().count(), words.len());
    }

    /// Two machines running the same program with the same injected fault
    /// behave identically (campaigns are exactly replayable).
    #[test]
    fn injection_is_deterministic(seed in any::<u64>(), cycle in 1u64..2000) {
        let w = workloads::pid_controller();
        let mut rng = RngStream::new(seed);
        let fault = FaultSpace::cpu_only().sample(&mut rng);

        let run = |fault, cycle| {
            let mut m = w.instantiate();
            m.set_input(0, 1200);
            m.set_input(1, 800);
            let (out, injected) = run_with_injection(&mut m, 20_000, cycle, fault);
            (out, injected, *m.outputs())
        };
        let a = run(fault, cycle);
        let b = run(fault, cycle);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }

    /// The golden PID command is always within the actuator range for any
    /// inputs in the sensor range.
    #[test]
    fn pid_output_always_in_actuator_range(sp in 0u32..4096, meas in 0u32..4096) {
        let w = workloads::pid_controller();
        let (out, _) = w.golden_run(&[sp, meas]);
        let u = out[0].expect("pid always writes its output");
        prop_assert!(u <= 4095, "command {u} exceeds actuator range");
    }

    /// Assembling then disassembling preserves mnemonics for a simple program.
    #[test]
    fn asm_disasm_consistent(n in 1u32..50) {
        let src = format!("ldi r0, {n}\naddi r0, r0, 1\nhalt");
        let image = assemble(&src).unwrap();
        let text = disassemble(&image.words);
        let expected = format!("ldi r0, {}", n);
        prop_assert!(text.contains(&expected));
        prop_assert!(text.contains("halt"));
    }
}
