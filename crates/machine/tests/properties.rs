//! Property-based tests for the TM32 machine.

use nlft_machine::asm::{assemble, disassemble};
use nlft_machine::fault::{run_with_injection, FaultSpace};
use nlft_machine::isa::{Instr, Reg};
use nlft_machine::machine::{Machine, RunExit};
use nlft_machine::mmu::MemoryMap;
use nlft_machine::workloads;
use nlft_sim::rng::RngStream;
use nlft_testkit::prop::{gens, Suite};
use nlft_testkit::rng::TkRng;
use nlft_testkit::{prop_assert, prop_assert_eq};

const SUITE: Suite = Suite::new(0x5EED_00AC);

fn arb_reg(r: &mut TkRng) -> Reg {
    Reg::new(r.range(0, 8) as u8).unwrap()
}

fn arb_i16(r: &mut TkRng) -> i16 {
    r.next_u64() as i16
}

fn arb_u16(r: &mut TkRng) -> u16 {
    r.next_u64() as u16
}

fn arb_instr(r: &mut TkRng) -> Instr {
    match r.usize_range(0, 22) {
        0 => Instr::Nop,
        1 => Instr::Halt,
        2 => Instr::Ret,
        3 => Instr::Ldi(arb_reg(r), arb_i16(r)),
        4 => Instr::Lui(arb_reg(r), arb_u16(r)),
        5 => Instr::Ld(arb_reg(r), arb_reg(r), arb_i16(r)),
        6 => Instr::St(arb_reg(r), arb_reg(r), arb_i16(r)),
        7 => Instr::Mov(arb_reg(r), arb_reg(r)),
        8 => Instr::Add(arb_reg(r), arb_reg(r), arb_reg(r)),
        9 => Instr::Sub(arb_reg(r), arb_reg(r), arb_reg(r)),
        10 => Instr::Mul(arb_reg(r), arb_reg(r), arb_reg(r)),
        11 => Instr::Div(arb_reg(r), arb_reg(r), arb_reg(r)),
        12 => Instr::Xor(arb_reg(r), arb_reg(r), arb_reg(r)),
        13 => Instr::Addi(arb_reg(r), arb_reg(r), arb_i16(r)),
        14 => Instr::Cmp(arb_reg(r), arb_reg(r)),
        15 => Instr::Jmp(arb_u16(r)),
        16 => Instr::Jz(arb_u16(r)),
        17 => Instr::Call(arb_u16(r)),
        18 => Instr::Push(arb_reg(r)),
        19 => Instr::Pop(arb_reg(r)),
        20 => Instr::In(arb_reg(r), r.range(0, 16) as u16),
        _ => Instr::Out(arb_reg(r), r.range(0, 16) as u16),
    }
}

/// Every instruction round-trips through encode/decode.
#[test]
fn isa_encode_decode_roundtrip() {
    SUITE.check("isa_encode_decode_roundtrip", arb_instr, |&instr| {
        prop_assert_eq!(Instr::decode(instr.encode()).unwrap(), instr);
        Ok(())
    });
}

/// The machine never panics on arbitrary programs — every outcome is a
/// clean halt, budget stop, or a typed exception.
#[test]
fn machine_total_on_arbitrary_programs() {
    SUITE.check(
        "machine_total_on_arbitrary_programs",
        {
            let mut words = gens::vec(|r| r.next_u32(), 1..64);
            let mut inputs = gens::vec(|r| r.next_u32(), 16..17);
            move |r: &mut TkRng| (words(r), inputs(r))
        },
        |(words, inputs)| {
            let mut m = Machine::new(4096, MemoryMap::permissive());
            m.load_program(0, words).unwrap();
            m.reset(0, 4096);
            for (p, &v) in inputs.iter().enumerate() {
                m.set_input(p, v);
            }
            let out = m.run(10_000);
            match out.exit {
                RunExit::Halted | RunExit::BudgetExhausted | RunExit::Exception(_) => {}
            }
            prop_assert!(
                out.cycles_used <= 10_000 + 8,
                "budget respected modulo one instruction"
            );
            Ok(())
        },
    );
}

/// Disassembly never panics and emits one line per word.
#[test]
fn disassemble_total() {
    SUITE.check(
        "disassemble_total",
        gens::vec(|r| r.next_u32(), 0..64),
        |words| {
            let text = disassemble(words);
            prop_assert_eq!(text.lines().count(), words.len());
            Ok(())
        },
    );
}

/// Two machines running the same program with the same injected fault
/// behave identically (campaigns are exactly replayable).
#[test]
fn injection_is_deterministic() {
    SUITE.check(
        "injection_is_deterministic",
        |r: &mut TkRng| (r.next_u64(), r.range(1, 2000)),
        |&(seed, cycle)| {
            let w = workloads::pid_controller();
            let mut rng = RngStream::new(seed);
            let fault = FaultSpace::cpu_only().sample(&mut rng);

            let run = |fault, cycle| {
                let mut m = w.instantiate();
                m.set_input(0, 1200);
                m.set_input(1, 800);
                let (out, injected) = run_with_injection(&mut m, 20_000, cycle, fault);
                (out, injected, *m.outputs())
            };
            let a = run(fault, cycle);
            let b = run(fault, cycle);
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1, b.1);
            prop_assert_eq!(a.2, b.2);
            Ok(())
        },
    );
}

/// The golden PID command is always within the actuator range for any
/// inputs in the sensor range.
#[test]
fn pid_output_always_in_actuator_range() {
    SUITE.check(
        "pid_output_always_in_actuator_range",
        |r: &mut TkRng| (r.range(0, 4096) as u32, r.range(0, 4096) as u32),
        |&(sp, meas)| {
            let w = workloads::pid_controller();
            let (out, _) = w.golden_run(&[sp, meas]);
            let u = out[0].expect("pid always writes its output");
            prop_assert!(u <= 4095, "command {u} exceeds actuator range");
            Ok(())
        },
    );
}

/// Assembling then disassembling preserves mnemonics for a simple program.
#[test]
fn asm_disasm_consistent() {
    SUITE.check(
        "asm_disasm_consistent",
        |r: &mut TkRng| r.range(1, 50) as u32,
        |&n| {
            let src = format!("ldi r0, {n}\naddi r0, r0, 1\nhalt");
            let image = assemble(&src).unwrap();
            let text = disassemble(&image.words);
            let expected = format!("ldi r0, {}", n);
            prop_assert!(text.contains(&expected));
            prop_assert!(text.contains("halt"));
            Ok(())
        },
    );
}

/// A stuck bit re-manifests every time it is asserted: however the program
/// rewrites the target between instructions, re-asserting the fault forces
/// the bit back, on every single read/execute, until the fault is cleared —
/// after which the target holds whatever is written to it.
#[test]
fn stuck_at_bit_remanifests_until_cleared() {
    use nlft_machine::fault::{FaultTarget, StuckAtFault};

    SUITE.check(
        "stuck_at_bit_remanifests_until_cleared",
        |r: &mut TkRng| {
            (
                r.range(0, 8) as u8,   // register
                r.range(0, 32) as u32, // bit index
                r.next_u64() & 1 == 1, // stuck high?
                r.range(10, 200),      // steps to run
            )
        },
        |&(reg, bit_index, stuck_high, steps)| {
            let reg = Reg::new(reg).unwrap();
            let stuck = StuckAtFault {
                target: FaultTarget::Register(reg),
                bit: 1 << bit_index,
                stuck_high,
            };
            let w = workloads::pid_controller();
            let mut m = w.instantiate();
            m.set_input(0, 1500);
            m.set_input(1, 700);
            for _ in 0..steps {
                stuck.assert_on(&mut m);
                // Immediately after assertion the bit must read forced.
                let v = m.cpu.reg(reg);
                if stuck_high {
                    prop_assert!(v & stuck.bit != 0, "stuck-high bit read as 0");
                } else {
                    prop_assert!(v & stuck.bit == 0, "stuck-low bit read as 1");
                }
                if m.step().is_err() {
                    break; // an EDM fired; the fault model still held so far
                }
            }
            // Cleared: stop asserting and the target is writable again.
            let wanted = if stuck_high { 0u32 } else { stuck.bit };
            m.cpu.set_reg(reg, wanted);
            prop_assert_eq!(m.cpu.reg(reg), wanted, "cleared bit must stick");
            Ok(())
        },
    );
}

/// The decoded-instruction cache is bit-invisible: for arbitrary programs
/// and arbitrary single-event upsets drawn from the full SEU space
/// (registers, PC, SP, status, and memory words — including instruction
/// memory), a cached and an uncached machine produce identical exits,
/// cycle counts, injection decisions, outputs, architectural state, traces
/// and ECC statistics, with ECC both on and off.
#[test]
fn decode_cache_is_bit_invisible_under_fault_injection() {
    SUITE.check(
        "decode_cache_is_bit_invisible_under_fault_injection",
        {
            let mut words = gens::vec(|r| r.next_u32(), 1..64);
            move |r: &mut TkRng| {
                (
                    words(r),
                    r.next_u64(),          // fault seed
                    r.range(1, 2000),      // injection cycle
                    r.next_u64() & 1 == 1, // ECC enabled?
                )
            }
        },
        |(words, seed, cycle, ecc)| {
            let run = |cached: bool| {
                let mut m = if *ecc {
                    Machine::new(4096, MemoryMap::permissive())
                } else {
                    Machine::new_without_ecc(4096, MemoryMap::permissive())
                };
                m.set_decode_cache_enabled(cached);
                m.enable_trace(4096);
                m.load_program(0, words).unwrap();
                m.reset(0, 4096);
                let mut rng = RngStream::new(*seed);
                let fault = FaultSpace::seu(4096).sample(&mut rng);
                let (out, injected) = run_with_injection(&mut m, 5_000, *cycle, fault);
                let trace: Vec<_> = m.trace().copied().collect();
                (
                    out,
                    injected,
                    *m.outputs(),
                    m.cpu.clone(),
                    trace,
                    m.mem.ecc_stats(),
                )
            };
            let cached = run(true);
            let uncached = run(false);
            prop_assert_eq!(&cached.0, &uncached.0, "exit and cycle count differ");
            prop_assert_eq!(cached.1, uncached.1, "injection decision differs");
            prop_assert_eq!(&cached.2, &uncached.2, "outputs differ");
            prop_assert_eq!(&cached.3, &uncached.3, "architectural state differs");
            prop_assert_eq!(&cached.4, &uncached.4, "traces differ");
            prop_assert_eq!(&cached.5, &uncached.5, "ECC statistics differ");
            Ok(())
        },
    );
}

/// The cache stays bit-invisible across the campaign reuse pattern: flips
/// pre-planted in instruction memory, a run, `clear_faults`, a *second*
/// program loaded over the first, and a second run. Every phase must match
/// the uncached machine exactly — this exercises the generation bump on
/// `inject_flip`, `clear_faults` and `load_image`, and the word-tag check
/// for ECC-off corrupted fetches.
#[test]
fn decode_cache_is_bit_invisible_across_reuse_and_reload() {
    SUITE.check(
        "decode_cache_is_bit_invisible_across_reuse_and_reload",
        {
            let mut first = gens::vec(|r| r.next_u32(), 1..48);
            let mut second = gens::vec(|r| r.next_u32(), 1..48);
            move |r: &mut TkRng| {
                let flips: Vec<(u32, u32)> = (0..r.usize_range(1, 4))
                    .map(|_| (r.range(0, 48) as u32 * 4, 1 << r.range(0, 32)))
                    .collect();
                (first(r), second(r), flips, r.next_u64() & 1 == 1)
            }
        },
        |(first, second, flips, ecc)| {
            let run = |cached: bool| {
                let mut m = if *ecc {
                    Machine::new(4096, MemoryMap::permissive())
                } else {
                    Machine::new_without_ecc(4096, MemoryMap::permissive())
                };
                m.set_decode_cache_enabled(cached);
                m.load_program(0, first).unwrap();
                m.reset(0, 4096);
                for &(addr, mask) in flips {
                    m.mem.inject_flip(addr, mask);
                }
                let out_a = m.run(2_000);
                let snap_a = (out_a, m.cpu.clone(), m.mem.ecc_stats());
                m.mem.clear_faults();
                m.load_program(0, second).unwrap();
                m.reset(0, 4096);
                let out_b = m.run(2_000);
                (snap_a, (out_b, m.cpu.clone(), m.mem.ecc_stats()))
            };
            let cached = run(true);
            let uncached = run(false);
            prop_assert_eq!(&cached.0, &uncached.0, "first phase differs");
            prop_assert_eq!(&cached.1, &uncached.1, "second phase differs");
            Ok(())
        },
    );
}

/// EDM classification of a stuck-at fault is consistent: running the same
/// workload against the same stuck bit always ends the same way (same exit,
/// same cycle count, same outputs) — a permanent fault produces a *stable*
/// error signature, which is what lets the diagnosis layer separate it from
/// transient bad luck.
#[test]
fn stuck_at_detection_classifies_consistently() {
    use nlft_machine::fault::{run_with_stuck_at, FaultModel, FaultSpace};

    SUITE.check(
        "stuck_at_detection_classifies_consistently",
        |r: &mut TkRng| r.next_u64(),
        |&seed| {
            let mut rng = RngStream::new(seed);
            let space = FaultSpace::cpu_only().with_stuck_at(1.0);
            let FaultModel::StuckAt(stuck) = space.sample_model(&mut rng) else {
                unreachable!("fraction 1.0 always draws stuck-at");
            };
            let w = workloads::sum_series();
            let run = || {
                let mut m = w.instantiate();
                m.set_input(0, 120);
                let out = run_with_stuck_at(&mut m, 30_000, stuck);
                (out, *m.outputs())
            };
            let a = run();
            let b = run();
            prop_assert_eq!(a.0, b.0, "exit and cycles must repeat exactly");
            prop_assert_eq!(a.1, b.1, "outputs must repeat exactly");
            Ok(())
        },
    );
}
