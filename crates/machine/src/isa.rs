//! The TM32 instruction-set architecture.
//!
//! TM32 is a deliberately small 32-bit load/store ISA that stands in for the
//! COTS microcontrollers of the paper (Motorola 68340, Thor). It is *not*
//! meant to be fast or featureful — it is meant to expose exactly the
//! architectural fault targets the paper's error-detection arguments rely
//! on: a program counter, a stack pointer, a status register, data
//! registers, an opcode stream and a data memory. Bit flips in each of
//! those surface through distinct hardware detection mechanisms (illegal
//! opcode, address/bus error, ECC, MMU), mirroring the fault-injection
//! observations cited in §2.5 of the paper.
//!
//! ## Encoding
//!
//! Fixed 32-bit words: `[31:24] opcode | [23:20] rd | [19:16] rs1 | [15:0] imm16`.
//! Register-register ALU ops read their second operand from the low four
//! bits of `imm16`. Branch/CALL targets are absolute byte addresses.

use std::fmt;

/// Number of general-purpose registers (`R0`–`R7`).
pub const NUM_REGS: usize = 8;

/// A general-purpose register index, guaranteed in `0..NUM_REGS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Register `R0`, conventionally the accumulator.
    pub const R0: Reg = Reg(0);
    /// Register `R1`.
    pub const R1: Reg = Reg(1);
    /// Register `R2`.
    pub const R2: Reg = Reg(2);
    /// Register `R3`.
    pub const R3: Reg = Reg(3);
    /// Register `R4`.
    pub const R4: Reg = Reg(4);
    /// Register `R5`.
    pub const R5: Reg = Reg(5);
    /// Register `R6`.
    pub const R6: Reg = Reg(6);
    /// Register `R7`, conventionally a scratch/link register.
    pub const R7: Reg = Reg(7);

    /// Creates a register index.
    ///
    /// Returns `None` when `i >= NUM_REGS`.
    pub const fn new(i: u8) -> Option<Reg> {
        if (i as usize) < NUM_REGS {
            Some(Reg(i))
        } else {
            None
        }
    }

    /// The raw index in `0..NUM_REGS`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A decoded TM32 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Stop execution; the kernel interprets this as task completion.
    Halt,
    /// `rd = sign_extend(imm16)`.
    Ldi(Reg, i16),
    /// `rd = imm16 << 16` (build full 32-bit constants with `Ldi`+`Lui`).
    Lui(Reg, u16),
    /// `rd = mem32[rs1 + simm16]`.
    Ld(Reg, Reg, i16),
    /// `mem32[rs1 + simm16] = rd`.
    St(Reg, Reg, i16),
    /// `rd = rs1`.
    Mov(Reg, Reg),
    /// `rd = rs1 + rs2` (wrapping; sets Z/N).
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2` (wrapping; sets Z/N).
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 * rs2` (wrapping; sets Z/N). Costs extra cycles.
    Mul(Reg, Reg, Reg),
    /// `rd = rs1 / rs2` signed; division by zero raises a hardware exception.
    Div(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`.
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`.
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`.
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 << (rs2 & 31)`.
    Shl(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 31)` (logical).
    Shr(Reg, Reg, Reg),
    /// `rd = rs1 + simm16` (wrapping; sets Z/N).
    Addi(Reg, Reg, i16),
    /// Compare `rd` with `rs1`: sets Z if equal, N if `rd < rs1` (signed).
    Cmp(Reg, Reg),
    /// Unconditional jump to absolute byte address.
    Jmp(u16),
    /// Jump if Z flag set.
    Jz(u16),
    /// Jump if Z flag clear.
    Jnz(u16),
    /// Jump if N flag set.
    Jn(u16),
    /// Jump if N flag clear (greater-or-equal after `Cmp`).
    Jge(u16),
    /// Push return address, jump to absolute byte address.
    Call(u16),
    /// Pop return address into PC.
    Ret,
    /// Push `rd` onto the stack (pre-decrement SP by 4).
    Push(Reg),
    /// Pop into `rd` (post-increment SP by 4).
    Pop(Reg),
    /// `rd = input_port[imm16]`; reads the task's input vector.
    In(Reg, u16),
    /// `output_port[imm16] = rd`; writes the task's result vector.
    Out(Reg, u16),
}

/// Error produced when decoding a word that is not a valid instruction.
///
/// This models the *illegal op-code detection* hardware EDM from Table 1 of
/// the paper: a fault that lands in the opcode stream (or diverts the PC
/// into data) usually produces one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal opcode in word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

mod op {
    pub const NOP: u8 = 0x00;
    pub const HALT: u8 = 0x01;
    pub const LDI: u8 = 0x10;
    pub const LUI: u8 = 0x11;
    pub const LD: u8 = 0x12;
    pub const ST: u8 = 0x13;
    pub const MOV: u8 = 0x14;
    pub const ADD: u8 = 0x20;
    pub const SUB: u8 = 0x21;
    pub const MUL: u8 = 0x22;
    pub const DIV: u8 = 0x23;
    pub const AND: u8 = 0x24;
    pub const OR: u8 = 0x25;
    pub const XOR: u8 = 0x26;
    pub const SHL: u8 = 0x27;
    pub const SHR: u8 = 0x28;
    pub const ADDI: u8 = 0x29;
    pub const CMP: u8 = 0x2A;
    pub const JMP: u8 = 0x30;
    pub const JZ: u8 = 0x31;
    pub const JNZ: u8 = 0x32;
    pub const JN: u8 = 0x33;
    pub const JGE: u8 = 0x34;
    pub const CALL: u8 = 0x35;
    pub const RET: u8 = 0x36;
    pub const PUSH: u8 = 0x37;
    pub const POP: u8 = 0x38;
    pub const IN: u8 = 0x40;
    pub const OUT: u8 = 0x41;
}

fn field_rd(w: u32) -> Option<Reg> {
    Reg::new(((w >> 20) & 0xF) as u8)
}

fn field_rs1(w: u32) -> Option<Reg> {
    Reg::new(((w >> 16) & 0xF) as u8)
}

fn field_rs2(w: u32) -> Option<Reg> {
    Reg::new((w & 0xF) as u8)
}

fn field_imm(w: u32) -> u16 {
    (w & 0xFFFF) as u16
}

impl Instr {
    /// Encodes the instruction into its 32-bit word.
    pub fn encode(self) -> u32 {
        fn rrr(opc: u8, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
            (u32::from(opc) << 24)
                | ((rd.index() as u32) << 20)
                | ((rs1.index() as u32) << 16)
                | rs2.index() as u32
        }
        fn ri(opc: u8, rd: Reg, imm: u16) -> u32 {
            (u32::from(opc) << 24) | ((rd.index() as u32) << 20) | u32::from(imm)
        }
        fn rri(opc: u8, rd: Reg, rs1: Reg, imm: u16) -> u32 {
            ri(opc, rd, imm) | ((rs1.index() as u32) << 16)
        }
        fn i(opc: u8, imm: u16) -> u32 {
            (u32::from(opc) << 24) | u32::from(imm)
        }
        match self {
            Instr::Nop => i(op::NOP, 0),
            Instr::Halt => i(op::HALT, 0),
            Instr::Ldi(rd, v) => ri(op::LDI, rd, v as u16),
            Instr::Lui(rd, v) => ri(op::LUI, rd, v),
            Instr::Ld(rd, rs1, off) => rri(op::LD, rd, rs1, off as u16),
            Instr::St(rd, rs1, off) => rri(op::ST, rd, rs1, off as u16),
            Instr::Mov(rd, rs1) => rri(op::MOV, rd, rs1, 0),
            Instr::Add(rd, a, b) => rrr(op::ADD, rd, a, b),
            Instr::Sub(rd, a, b) => rrr(op::SUB, rd, a, b),
            Instr::Mul(rd, a, b) => rrr(op::MUL, rd, a, b),
            Instr::Div(rd, a, b) => rrr(op::DIV, rd, a, b),
            Instr::And(rd, a, b) => rrr(op::AND, rd, a, b),
            Instr::Or(rd, a, b) => rrr(op::OR, rd, a, b),
            Instr::Xor(rd, a, b) => rrr(op::XOR, rd, a, b),
            Instr::Shl(rd, a, b) => rrr(op::SHL, rd, a, b),
            Instr::Shr(rd, a, b) => rrr(op::SHR, rd, a, b),
            Instr::Addi(rd, rs1, v) => rri(op::ADDI, rd, rs1, v as u16),
            Instr::Cmp(a, b) => rri(op::CMP, a, b, 0),
            Instr::Jmp(t) => i(op::JMP, t),
            Instr::Jz(t) => i(op::JZ, t),
            Instr::Jnz(t) => i(op::JNZ, t),
            Instr::Jn(t) => i(op::JN, t),
            Instr::Jge(t) => i(op::JGE, t),
            Instr::Call(t) => i(op::CALL, t),
            Instr::Ret => i(op::RET, 0),
            Instr::Push(rd) => ri(op::PUSH, rd, 0),
            Instr::Pop(rd) => ri(op::POP, rd, 0),
            Instr::In(rd, p) => ri(op::IN, rd, p),
            Instr::Out(rd, p) => ri(op::OUT, rd, p),
        }
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the opcode byte is undefined or a
    /// register field is out of range — this is the hardware's illegal
    /// op-code detector firing.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let opc = (word >> 24) as u8;
        let err = DecodeError { word };
        let rd = || field_rd(word).ok_or(err);
        let rs1 = || field_rs1(word).ok_or(err);
        let rs2 = || field_rs2(word).ok_or(err);
        let imm = field_imm(word);
        Ok(match opc {
            op::NOP => Instr::Nop,
            op::HALT => Instr::Halt,
            op::LDI => Instr::Ldi(rd()?, imm as i16),
            op::LUI => Instr::Lui(rd()?, imm),
            op::LD => Instr::Ld(rd()?, rs1()?, imm as i16),
            op::ST => Instr::St(rd()?, rs1()?, imm as i16),
            op::MOV => Instr::Mov(rd()?, rs1()?),
            op::ADD => Instr::Add(rd()?, rs1()?, rs2()?),
            op::SUB => Instr::Sub(rd()?, rs1()?, rs2()?),
            op::MUL => Instr::Mul(rd()?, rs1()?, rs2()?),
            op::DIV => Instr::Div(rd()?, rs1()?, rs2()?),
            op::AND => Instr::And(rd()?, rs1()?, rs2()?),
            op::OR => Instr::Or(rd()?, rs1()?, rs2()?),
            op::XOR => Instr::Xor(rd()?, rs1()?, rs2()?),
            op::SHL => Instr::Shl(rd()?, rs1()?, rs2()?),
            op::SHR => Instr::Shr(rd()?, rs1()?, rs2()?),
            op::ADDI => Instr::Addi(rd()?, rs1()?, imm as i16),
            op::CMP => Instr::Cmp(rd()?, rs1()?),
            op::JMP => Instr::Jmp(imm),
            op::JZ => Instr::Jz(imm),
            op::JNZ => Instr::Jnz(imm),
            op::JN => Instr::Jn(imm),
            op::JGE => Instr::Jge(imm),
            op::CALL => Instr::Call(imm),
            op::RET => Instr::Ret,
            op::PUSH => Instr::Push(rd()?),
            op::POP => Instr::Pop(rd()?),
            op::IN => Instr::In(rd()?, imm),
            op::OUT => Instr::Out(rd()?, imm),
            _ => return Err(err),
        })
    }

    /// Nominal cycle cost of the instruction (MUL/DIV are multi-cycle, as on
    /// the microcontrollers the paper targets).
    pub fn cycles(self) -> u64 {
        match self {
            Instr::Mul(..) => 4,
            Instr::Div(..) => 8,
            Instr::Ld(..) | Instr::St(..) | Instr::Push(_) | Instr::Pop(_) => 2,
            Instr::Call(_) | Instr::Ret => 3,
            _ => 1,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::Ldi(rd, v) => write!(f, "ldi {rd}, {v}"),
            Instr::Lui(rd, v) => write!(f, "lui {rd}, {v}"),
            Instr::Ld(rd, rs, o) => write!(f, "ld {rd}, [{rs}{o:+}]"),
            Instr::St(rd, rs, o) => write!(f, "st {rd}, [{rs}{o:+}]"),
            Instr::Mov(rd, rs) => write!(f, "mov {rd}, {rs}"),
            Instr::Add(rd, a, b) => write!(f, "add {rd}, {a}, {b}"),
            Instr::Sub(rd, a, b) => write!(f, "sub {rd}, {a}, {b}"),
            Instr::Mul(rd, a, b) => write!(f, "mul {rd}, {a}, {b}"),
            Instr::Div(rd, a, b) => write!(f, "div {rd}, {a}, {b}"),
            Instr::And(rd, a, b) => write!(f, "and {rd}, {a}, {b}"),
            Instr::Or(rd, a, b) => write!(f, "or {rd}, {a}, {b}"),
            Instr::Xor(rd, a, b) => write!(f, "xor {rd}, {a}, {b}"),
            Instr::Shl(rd, a, b) => write!(f, "shl {rd}, {a}, {b}"),
            Instr::Shr(rd, a, b) => write!(f, "shr {rd}, {a}, {b}"),
            Instr::Addi(rd, rs, v) => write!(f, "addi {rd}, {rs}, {v}"),
            Instr::Cmp(a, b) => write!(f, "cmp {a}, {b}"),
            Instr::Jmp(t) => write!(f, "jmp {t:#x}"),
            Instr::Jz(t) => write!(f, "jz {t:#x}"),
            Instr::Jnz(t) => write!(f, "jnz {t:#x}"),
            Instr::Jn(t) => write!(f, "jn {t:#x}"),
            Instr::Jge(t) => write!(f, "jge {t:#x}"),
            Instr::Call(t) => write!(f, "call {t:#x}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Push(rd) => write!(f, "push {rd}"),
            Instr::Pop(rd) => write!(f, "pop {rd}"),
            Instr::In(rd, p) => write!(f, "in {rd}, port{p}"),
            Instr::Out(rd, p) => write!(f, "out {rd}, port{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instrs() -> Vec<Instr> {
        use Instr::*;
        vec![
            Nop,
            Halt,
            Ldi(Reg::R1, -42),
            Lui(Reg::R2, 0xBEEF),
            Ld(Reg::R3, Reg::R4, -8),
            St(Reg::R5, Reg::R6, 12),
            Mov(Reg::R0, Reg::R7),
            Add(Reg::R0, Reg::R1, Reg::R2),
            Sub(Reg::R3, Reg::R4, Reg::R5),
            Mul(Reg::R6, Reg::R7, Reg::R0),
            Div(Reg::R1, Reg::R2, Reg::R3),
            And(Reg::R4, Reg::R5, Reg::R6),
            Or(Reg::R7, Reg::R0, Reg::R1),
            Xor(Reg::R2, Reg::R3, Reg::R4),
            Shl(Reg::R5, Reg::R6, Reg::R7),
            Shr(Reg::R0, Reg::R1, Reg::R2),
            Addi(Reg::R3, Reg::R4, 1000),
            Cmp(Reg::R5, Reg::R6),
            Jmp(0x100),
            Jz(0x104),
            Jnz(0x108),
            Jn(0x10C),
            Jge(0x110),
            Call(0x200),
            Ret,
            Push(Reg::R7),
            Pop(Reg::R0),
            In(Reg::R1, 3),
            Out(Reg::R2, 5),
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for instr in all_sample_instrs() {
            let word = instr.encode();
            let back = Instr::decode(word).unwrap();
            assert_eq!(instr, back, "round trip failed for {instr}");
        }
    }

    #[test]
    fn undefined_opcodes_are_illegal() {
        for opc in [0x02u8, 0x0F, 0x1A, 0x2B, 0x39, 0x42, 0x7F, 0xFF] {
            let word = u32::from(opc) << 24;
            assert!(
                Instr::decode(word).is_err(),
                "opcode {opc:#x} should be illegal"
            );
        }
    }

    #[test]
    fn out_of_range_register_fields_are_illegal() {
        // ADD with rd = 12 (only 8 registers exist).
        let word = (u32::from(0x20u8) << 24) | (12 << 20);
        assert!(Instr::decode(word).is_err());
    }

    #[test]
    fn negative_immediates_survive_round_trip() {
        let i = Instr::Addi(Reg::R1, Reg::R2, -32768);
        assert_eq!(Instr::decode(i.encode()).unwrap(), i);
        let i = Instr::Ldi(Reg::R0, i16::MIN);
        assert_eq!(Instr::decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn reg_constructor_validates() {
        assert!(Reg::new(7).is_some());
        assert!(Reg::new(8).is_none());
        assert_eq!(Reg::new(3).unwrap(), Reg::R3);
    }

    #[test]
    fn cycle_costs_reflect_complexity() {
        assert!(Instr::Mul(Reg::R0, Reg::R0, Reg::R0).cycles() > Instr::Nop.cycles());
        assert!(
            Instr::Div(Reg::R0, Reg::R0, Reg::R0).cycles()
                > Instr::Mul(Reg::R0, Reg::R0, Reg::R0).cycles()
        );
    }

    #[test]
    fn display_is_nonempty_for_all() {
        for instr in all_sample_instrs() {
            assert!(!instr.to_string().is_empty());
        }
    }

    #[test]
    fn random_words_never_panic_on_decode() {
        // Fault injection feeds arbitrary words to the decoder; it must fail
        // cleanly, never panic.
        let mut x = 0x12345678u32;
        for _ in 0..10_000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let _ = Instr::decode(x);
        }
    }
}
