//! A small two-pass assembler for TM32.
//!
//! The fault-injection workloads (brake controllers, checksum loops, …) are
//! written as real assembly programs so that injected faults propagate the
//! way they would on the paper's hardware — through genuine loads, stores,
//! branches and stack traffic — instead of through a high-level behavioural
//! model.
//!
//! ## Syntax
//!
//! * one instruction per line; `;` or `#` starts a comment;
//! * labels are `name:`, on their own line or before an instruction;
//! * registers are `r0`–`r7`; immediates are decimal or `0x…` hex;
//! * memory operands are `[rN+off]` / `[rN-off]`;
//! * ports are `portN`;
//! * `.word v` emits a raw data word; `.zero n` emits `n` zero words.
//!
//! # Examples
//!
//! ```
//! use nlft_machine::asm::assemble;
//!
//! let image = assemble("
//!     start:
//!         ldi r0, 10     ; counter
//!     loop:
//!         addi r0, r0, -1
//!         jnz loop
//!         halt
//! ")?;
//! assert_eq!(image.words.len(), 4);
//! assert_eq!(image.labels["loop"], 4);
//! # Ok::<(), nlft_machine::asm::AsmError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::isa::{Instr, Reg};
use crate::mem::WORD_BYTES;

/// An assembled program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Encoded instruction/data words, loaded contiguously from [`Image::base`].
    pub words: Vec<u32>,
    /// Label name → byte address (already relocated).
    pub labels: HashMap<String, u32>,
    /// Load address of the first word.
    pub base: u32,
}

impl Image {
    /// Size of the image in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.words.len() as u32 * WORD_BYTES
    }

    /// Looks up a label's byte address.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }
}

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// One parsed statement awaiting label resolution.
#[derive(Debug, Clone)]
enum Stmt {
    Instr {
        line: usize,
        mnemonic: String,
        operands: Vec<String>,
    },
    Word(u32),
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    let rest = s
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected register, got `{s}`")))?;
    let idx: u8 = rest
        .parse()
        .map_err(|_| err(line, format!("bad register `{s}`")))?;
    Reg::new(idx).ok_or_else(|| err(line, format!("register out of range `{s}`")))
}

fn parse_int(s: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(line, format!("bad integer `{s}`")))?;
    Ok(if neg { -value } else { value })
}

fn parse_i16(s: &str, line: usize) -> Result<i16, AsmError> {
    let v = parse_int(s, line)?;
    i16::try_from(v).map_err(|_| err(line, format!("immediate `{s}` out of i16 range")))
}

fn parse_u16_any(s: &str, line: usize) -> Result<u16, AsmError> {
    let v = parse_int(s, line)?;
    if (0..=0xFFFF).contains(&v) {
        Ok(v as u16)
    } else if (-0x8000..0).contains(&v) {
        Ok(v as i16 as u16)
    } else {
        Err(err(line, format!("immediate `{s}` out of 16-bit range")))
    }
}

fn parse_port(s: &str, line: usize) -> Result<u16, AsmError> {
    let rest = s
        .strip_prefix("port")
        .ok_or_else(|| err(line, format!("expected portN, got `{s}`")))?;
    rest.parse()
        .map_err(|_| err(line, format!("bad port `{s}`")))
}

/// Parses `[rN+off]` / `[rN-off]` / `[rN]`.
fn parse_mem(s: &str, line: usize) -> Result<(Reg, i16), AsmError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [reg+off], got `{s}`")))?;
    if let Some(pos) = inner.find(['+', '-']) {
        let (r, off) = inner.split_at(pos);
        Ok((parse_reg(r.trim(), line)?, parse_i16(off.trim(), line)?))
    } else {
        Ok((parse_reg(inner.trim(), line)?, 0))
    }
}

/// Resolves a branch target: a label or a numeric address.
fn resolve_target(s: &str, labels: &HashMap<String, u32>, line: usize) -> Result<u16, AsmError> {
    if let Some(&addr) = labels.get(s) {
        return u16::try_from(addr)
            .map_err(|_| err(line, format!("label `{s}` beyond 16-bit address space")));
    }
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return parse_u16_any(s, line);
    }
    Err(err(line, format!("unknown label `{s}`")))
}

/// Assembles TM32 source into an image based at address 0.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered: unknown mnemonics, malformed
/// operands, out-of-range immediates, duplicate or unknown labels.
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    assemble_at(source, 0)
}

/// Assembles TM32 source relocated to `base`: labels (and therefore all
/// branch/call targets and label immediates) resolve to `base + offset`,
/// so several programs can be co-resident in one memory under MMU
/// confinement — the layout a preemptive multi-task kernel needs.
///
/// # Errors
///
/// As [`assemble`]; additionally rejects a base that pushes any label past
/// the 16-bit immediate range or that is not word-aligned.
pub fn assemble_at(source: &str, base: u32) -> Result<Image, AsmError> {
    if !base.is_multiple_of(WORD_BYTES) {
        return Err(err(0, format!("base {base:#x} is not word-aligned")));
    }
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut stmts: Vec<Stmt> = Vec::new();

    // Pass 1: strip comments, collect labels and raw statements.
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = raw;
        if let Some(p) = text.find([';', '#']) {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Possibly several labels on one line: `a: b: instr`.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                || label.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                return Err(err(line_no, format!("bad label `{label}`")));
            }
            let addr = base + stmts.len() as u32 * WORD_BYTES;
            if labels.insert(label.to_string(), addr).is_some() {
                return Err(err(line_no, format!("duplicate label `{label}`")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(p) => (&text[..p], text[p..].trim()),
            None => (text, ""),
        };
        let mnemonic = mnemonic.to_ascii_lowercase();
        let operands: Vec<String> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(|s| s.trim().to_string()).collect()
        };
        match mnemonic.as_str() {
            ".word" => {
                if operands.len() != 1 {
                    return Err(err(line_no, ".word takes one operand"));
                }
                let v = parse_int(&operands[0], line_no)?;
                let w = if v < 0 { v as i32 as u32 } else { v as u32 };
                stmts.push(Stmt::Word(w));
            }
            ".zero" => {
                if operands.len() != 1 {
                    return Err(err(line_no, ".zero takes one operand"));
                }
                let n = parse_int(&operands[0], line_no)?;
                if !(0..=65_536).contains(&n) {
                    return Err(err(line_no, ".zero count out of range"));
                }
                for _ in 0..n {
                    stmts.push(Stmt::Word(0));
                }
            }
            _ => stmts.push(Stmt::Instr {
                line: line_no,
                mnemonic,
                operands,
            }),
        }
    }

    // Pass 2: encode with resolved labels.
    let mut words = Vec::with_capacity(stmts.len());
    for stmt in &stmts {
        match stmt {
            Stmt::Word(w) => words.push(*w),
            Stmt::Instr {
                line,
                mnemonic,
                operands,
            } => {
                let line = *line;
                let ops = operands;
                let need = |n: usize| -> Result<(), AsmError> {
                    if ops.len() == n {
                        Ok(())
                    } else {
                        Err(err(
                            line,
                            format!("{mnemonic} expects {n} operand(s), got {}", ops.len()),
                        ))
                    }
                };
                let rrr = |f: fn(Reg, Reg, Reg) -> Instr| -> Result<Instr, AsmError> {
                    need(3)?;
                    Ok(f(
                        parse_reg(&ops[0], line)?,
                        parse_reg(&ops[1], line)?,
                        parse_reg(&ops[2], line)?,
                    ))
                };
                let jump = |f: fn(u16) -> Instr| -> Result<Instr, AsmError> {
                    need(1)?;
                    Ok(f(resolve_target(&ops[0], &labels, line)?))
                };
                let instr = match mnemonic.as_str() {
                    "nop" => {
                        need(0)?;
                        Instr::Nop
                    }
                    "halt" => {
                        need(0)?;
                        Instr::Halt
                    }
                    "ldi" => {
                        need(2)?;
                        // The immediate may be a label: loading a data-table
                        // address into a register is the common idiom.
                        let imm = if let Some(&addr) = labels.get(ops[1].as_str()) {
                            u16::try_from(addr).map_err(|_| {
                                err(line, format!("label `{}` beyond 16-bit range", ops[1]))
                            })?
                        } else {
                            parse_u16_any(&ops[1], line)?
                        };
                        Instr::Ldi(parse_reg(&ops[0], line)?, imm as i16)
                    }
                    "lui" => {
                        need(2)?;
                        Instr::Lui(parse_reg(&ops[0], line)?, parse_u16_any(&ops[1], line)?)
                    }
                    "ld" => {
                        need(2)?;
                        let (rs1, off) = parse_mem(&ops[1], line)?;
                        Instr::Ld(parse_reg(&ops[0], line)?, rs1, off)
                    }
                    "st" => {
                        need(2)?;
                        let (rs1, off) = parse_mem(&ops[1], line)?;
                        Instr::St(parse_reg(&ops[0], line)?, rs1, off)
                    }
                    "mov" => {
                        need(2)?;
                        Instr::Mov(parse_reg(&ops[0], line)?, parse_reg(&ops[1], line)?)
                    }
                    "add" => rrr(Instr::Add)?,
                    "sub" => rrr(Instr::Sub)?,
                    "mul" => rrr(Instr::Mul)?,
                    "div" => rrr(Instr::Div)?,
                    "and" => rrr(Instr::And)?,
                    "or" => rrr(Instr::Or)?,
                    "xor" => rrr(Instr::Xor)?,
                    "shl" => rrr(Instr::Shl)?,
                    "shr" => rrr(Instr::Shr)?,
                    "addi" => {
                        need(3)?;
                        Instr::Addi(
                            parse_reg(&ops[0], line)?,
                            parse_reg(&ops[1], line)?,
                            parse_i16(&ops[2], line)?,
                        )
                    }
                    "cmp" => {
                        need(2)?;
                        Instr::Cmp(parse_reg(&ops[0], line)?, parse_reg(&ops[1], line)?)
                    }
                    "jmp" => jump(Instr::Jmp)?,
                    "jz" => jump(Instr::Jz)?,
                    "jnz" => jump(Instr::Jnz)?,
                    "jn" => jump(Instr::Jn)?,
                    "jge" => jump(Instr::Jge)?,
                    "call" => jump(Instr::Call)?,
                    "ret" => {
                        need(0)?;
                        Instr::Ret
                    }
                    "push" => {
                        need(1)?;
                        Instr::Push(parse_reg(&ops[0], line)?)
                    }
                    "pop" => {
                        need(1)?;
                        Instr::Pop(parse_reg(&ops[0], line)?)
                    }
                    "in" => {
                        need(2)?;
                        Instr::In(parse_reg(&ops[0], line)?, parse_port(&ops[1], line)?)
                    }
                    "out" => {
                        need(2)?;
                        Instr::Out(parse_reg(&ops[0], line)?, parse_port(&ops[1], line)?)
                    }
                    other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
                };
                words.push(instr.encode());
            }
        }
    }

    Ok(Image {
        words,
        labels,
        base,
    })
}

/// Disassembles an image for traces and debugging; undecodable words render
/// as `.word`.
pub fn disassemble(words: &[u32]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let addr = i as u32 * WORD_BYTES;
        match Instr::decode(w) {
            Ok(instr) => {
                let _ = writeln!(out, "{addr:#06x}: {instr}");
            }
            Err(_) => {
                let _ = writeln!(out, "{addr:#06x}: .word {w:#010x}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_all_mnemonics() {
        let src = "
            start:
                nop
                ldi r0, -5
                lui r1, 0xFFFF
                ld  r2, [r1+8]
                st  r2, [r1-8]
                mov r3, r2
                add r4, r3, r2
                sub r4, r3, r2
                mul r4, r3, r2
                div r4, r3, r2
                and r4, r3, r2
                or  r4, r3, r2
                xor r4, r3, r2
                shl r4, r3, r2
                shr r4, r3, r2
                addi r5, r4, 100
                cmp r5, r4
                jmp start
                jz  start
                jnz start
                jn  start
                jge start
                call start
                ret
                push r6
                pop  r7
                in  r0, port0
                out r0, port15
                halt";
        let image = assemble(src).unwrap();
        assert_eq!(image.words.len(), 29);
        // Everything decodes back.
        for &w in &image.words {
            Instr::decode(w).unwrap();
        }
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let src = "
            a:  jmp b
                nop
            b:  jmp a
                halt";
        let image = assemble(src).unwrap();
        assert_eq!(image.label("a"), Some(0));
        assert_eq!(image.label("b"), Some(8));
        assert_eq!(Instr::decode(image.words[0]).unwrap(), Instr::Jmp(8));
        assert_eq!(Instr::decode(image.words[2]).unwrap(), Instr::Jmp(0));
    }

    #[test]
    fn word_and_zero_directives() {
        let image = assemble(
            "
            data: .word 0xDEADBEEF
                  .word -1
                  .zero 3
                  halt",
        )
        .unwrap();
        assert_eq!(image.words[0], 0xDEAD_BEEF);
        assert_eq!(image.words[1], 0xFFFF_FFFF);
        assert_eq!(&image.words[2..5], &[0, 0, 0]);
        assert_eq!(image.words.len(), 6);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let image = assemble(
            "; file header
             # another comment style

             nop  ; trailing
             halt # trailing too",
        )
        .unwrap();
        assert_eq!(image.words.len(), 2);
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a:\na: nop").unwrap_err();
        assert!(e.message.contains("duplicate"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_label_rejected() {
        let e = assemble("jmp nowhere").unwrap_err();
        assert!(e.message.contains("unknown label"));
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = assemble("frobnicate r1, r2").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));
    }

    #[test]
    fn operand_count_checked() {
        assert!(assemble("add r0, r1").is_err());
        assert!(assemble("ret r0").is_err());
        assert!(assemble("push").is_err());
    }

    #[test]
    fn immediates_out_of_range_rejected() {
        assert!(assemble("addi r0, r0, 70000").is_err());
        assert!(assemble("ldi r0, 0x1FFFF").is_err());
        assert!(
            assemble("ldi r0, 0xFFFF").is_ok(),
            "0xFFFF allowed as bit pattern"
        );
    }

    #[test]
    fn memory_operand_forms() {
        let image = assemble("ld r0, [r1]\nld r0, [r1+4]\nld r0, [r1-4]").unwrap();
        assert_eq!(
            Instr::decode(image.words[0]).unwrap(),
            Instr::Ld(Reg::R0, Reg::R1, 0)
        );
        assert_eq!(
            Instr::decode(image.words[1]).unwrap(),
            Instr::Ld(Reg::R0, Reg::R1, 4)
        );
        assert_eq!(
            Instr::decode(image.words[2]).unwrap(),
            Instr::Ld(Reg::R0, Reg::R1, -4)
        );
    }

    #[test]
    fn disassembly_round_trips_text() {
        let image = assemble("ldi r0, 1\nadd r1, r0, r0\nhalt").unwrap();
        let text = disassemble(&image.words);
        assert!(text.contains("ldi r0, 1"));
        assert!(text.contains("add r1, r0, r0"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn disassembly_marks_data_words() {
        let text = disassemble(&[0xFFFF_FFFF]);
        assert!(text.contains(".word"));
    }

    #[test]
    fn relocated_assembly_offsets_labels_and_targets() {
        let src = "
            start:
                ldi r1, table
                jmp start
            table: .word 7";
        let at0 = assemble_at(src, 0).unwrap();
        let at8k = assemble_at(src, 0x2000).unwrap();
        assert_eq!(at0.base, 0);
        assert_eq!(at8k.base, 0x2000);
        assert_eq!(at8k.label("start"), Some(0x2000));
        assert_eq!(at8k.label("table"), Some(0x2008));
        // The JMP target moved with the base.
        assert_eq!(Instr::decode(at8k.words[1]).unwrap(), Instr::Jmp(0x2000));
        // And the LDI label immediate too.
        assert_eq!(
            Instr::decode(at8k.words[0]).unwrap(),
            Instr::Ldi(Reg::R1, 0x2008)
        );
        // Words are identical except for relocated references.
        assert_eq!(at0.words.len(), at8k.words.len());
    }

    #[test]
    fn relocation_rejects_misaligned_or_oversized_base() {
        assert!(assemble_at("halt", 2).is_err());
        assert!(
            assemble_at("a: jmp a", 0x1_0000).is_err(),
            "label beyond u16"
        );
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = assemble("nop\nnop\nbogus").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(!e.to_string().is_empty());
    }
}
