//! Error-detection mechanism (EDM) taxonomy — the paper's Table 1.
//!
//! Maps every detectable event in the simulated stack to the mechanism that
//! caught it, so fault-injection campaigns can report *which* mechanism
//! detects *which* fault class — the evidence Table 1 of the paper
//! summarises. Hardware mechanisms live here; the software mechanisms
//! (temporal error masking, execution-time monitoring, data-integrity
//! checks) are raised by the kernel crate but share this taxonomy.

use std::collections::BTreeMap;
use std::fmt;

use crate::fault::TargetClass;
use crate::machine::Exception;
use crate::mem::MemError;

/// An error-detection mechanism from Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Edm {
    /// CPU hardware exception: illegal op-code detection.
    IllegalOpcode,
    /// CPU hardware exception: address error (misalignment).
    AddressError,
    /// CPU hardware exception: bus error (unmapped access).
    BusError,
    /// CPU hardware exception: arithmetic trap (division by zero).
    ArithmeticTrap,
    /// Error-correcting code on memory detected an uncorrectable error.
    Ecc,
    /// Memory-management unit protection violation.
    Mmu,
    /// Kernel execution-time monitor (budget timer) expiry.
    ExecutionTimeMonitor,
    /// TEM double-execution result comparison mismatch.
    TemComparison,
    /// TEM three-way majority vote (no two results agree).
    TemVote,
    /// Data-integrity check (duplicated state or CRC mismatch).
    DataIntegrity,
    /// End-to-end check on message/input data.
    EndToEnd,
}

impl Edm {
    /// All mechanisms, in reporting order.
    pub const ALL: [Edm; 11] = [
        Edm::IllegalOpcode,
        Edm::AddressError,
        Edm::BusError,
        Edm::ArithmeticTrap,
        Edm::Ecc,
        Edm::Mmu,
        Edm::ExecutionTimeMonitor,
        Edm::TemComparison,
        Edm::TemVote,
        Edm::DataIntegrity,
        Edm::EndToEnd,
    ];

    /// Classifies a hardware exception by the mechanism that raised it.
    pub fn from_exception(e: &Exception) -> Edm {
        match e {
            Exception::IllegalOpcode { .. } => Edm::IllegalOpcode,
            Exception::Memory(MemError::Misaligned { .. }) => Edm::AddressError,
            Exception::Memory(MemError::Bus { .. }) => Edm::BusError,
            Exception::Memory(MemError::EccUncorrectable { .. }) => Edm::Ecc,
            Exception::Mmu(_) => Edm::Mmu,
            Exception::DivideByZero { .. } => Edm::ArithmeticTrap,
            Exception::PortFault { .. } => Edm::BusError,
        }
    }

    /// Whether this is a hardware mechanism (upper half of Table 1) or a
    /// software mechanism provided by the kernel (lower half).
    pub fn is_hardware(self) -> bool {
        matches!(
            self,
            Edm::IllegalOpcode
                | Edm::AddressError
                | Edm::BusError
                | Edm::ArithmeticTrap
                | Edm::Ecc
                | Edm::Mmu
        )
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Edm::IllegalOpcode => "illegal opcode",
            Edm::AddressError => "address error",
            Edm::BusError => "bus error",
            Edm::ArithmeticTrap => "arithmetic trap",
            Edm::Ecc => "ECC",
            Edm::Mmu => "MMU",
            Edm::ExecutionTimeMonitor => "execution-time monitor",
            Edm::TemComparison => "TEM comparison",
            Edm::TemVote => "TEM majority vote",
            Edm::DataIntegrity => "data integrity check",
            Edm::EndToEnd => "end-to-end check",
        }
    }
}

impl fmt::Display for Edm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A (fault class × detection mechanism) count matrix.
///
/// Fault-injection campaigns accumulate one of these to reproduce Table 1:
/// every detected error increments the cell for the injected fault's class
/// and the mechanism that caught it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectionMatrix {
    cells: BTreeMap<(TargetClass, Edm), u64>,
    undetected: BTreeMap<TargetClass, u64>,
    benign: BTreeMap<TargetClass, u64>,
}

impl DetectionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        DetectionMatrix::default()
    }

    /// Records a detection of a fault from `class` by `edm`.
    pub fn record_detection(&mut self, class: TargetClass, edm: Edm) {
        *self.cells.entry((class, edm)).or_insert(0) += 1;
    }

    /// Records a fault whose error escaped every mechanism (silent data
    /// corruption / failure).
    pub fn record_undetected(&mut self, class: TargetClass) {
        *self.undetected.entry(class).or_insert(0) += 1;
    }

    /// Records a fault with no observable effect (overwritten or latent).
    pub fn record_benign(&mut self, class: TargetClass) {
        *self.benign.entry(class).or_insert(0) += 1;
    }

    /// Count in one cell.
    pub fn detections(&self, class: TargetClass, edm: Edm) -> u64 {
        self.cells.get(&(class, edm)).copied().unwrap_or(0)
    }

    /// Escapes for a class.
    pub fn undetected(&self, class: TargetClass) -> u64 {
        self.undetected.get(&class).copied().unwrap_or(0)
    }

    /// Benign outcomes for a class.
    pub fn benign(&self, class: TargetClass) -> u64 {
        self.benign.get(&class).copied().unwrap_or(0)
    }

    /// Total detected errors for a class across all mechanisms.
    pub fn total_detected(&self, class: TargetClass) -> u64 {
        Edm::ALL.iter().map(|&e| self.detections(class, e)).sum()
    }

    /// Total injections recorded for a class (detected + undetected + benign).
    pub fn total(&self, class: TargetClass) -> u64 {
        self.total_detected(class) + self.undetected(class) + self.benign(class)
    }

    /// Error-detection coverage for a class: detected / (detected +
    /// undetected). Benign faults do not count — the paper's fault rate
    /// covers *activated* faults only. Returns `None` with no errors.
    pub fn coverage(&self, class: TargetClass) -> Option<f64> {
        let det = self.total_detected(class) as f64;
        let esc = self.undetected(class) as f64;
        if det + esc == 0.0 {
            None
        } else {
            Some(det / (det + esc))
        }
    }

    /// Overall coverage across all classes.
    pub fn overall_coverage(&self) -> Option<f64> {
        let det: u64 = TargetClass::ALL
            .iter()
            .map(|&c| self.total_detected(c))
            .sum();
        let esc: u64 = TargetClass::ALL.iter().map(|&c| self.undetected(c)).sum();
        if det + esc == 0 {
            None
        } else {
            Some(det as f64 / (det + esc) as f64)
        }
    }

    /// Merges another matrix into this one (parallel campaign shards).
    pub fn merge(&mut self, other: &DetectionMatrix) {
        for (&k, &v) in &other.cells {
            *self.cells.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.undetected {
            *self.undetected.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.benign {
            *self.benign.entry(k).or_insert(0) += v;
        }
    }

    /// Renders the matrix as a fixed-width text table (the Table-1 artifact).
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(out, "{:<18}", "fault class");
        for e in Edm::ALL {
            let _ = write!(out, "{:>12}", abbreviate(e));
        }
        let _ = writeln!(out, "{:>10}{:>10}{:>10}", "escaped", "benign", "coverage");
        for c in TargetClass::ALL {
            if self.total(c) == 0 {
                continue;
            }
            let _ = write!(out, "{:<18}", c.name());
            for e in Edm::ALL {
                let _ = write!(out, "{:>12}", self.detections(c, e));
            }
            let cov = self
                .coverage(c)
                .map(|c| format!("{:.3}", c))
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{:>10}{:>10}{:>10}",
                self.undetected(c),
                self.benign(c),
                cov
            );
        }
        out
    }
}

fn abbreviate(e: Edm) -> &'static str {
    match e {
        Edm::IllegalOpcode => "ill-op",
        Edm::AddressError => "addr-err",
        Edm::BusError => "bus-err",
        Edm::ArithmeticTrap => "arith",
        Edm::Ecc => "ecc",
        Edm::Mmu => "mmu",
        Edm::ExecutionTimeMonitor => "budget",
        Edm::TemComparison => "tem-cmp",
        Edm::TemVote => "tem-vote",
        Edm::DataIntegrity => "integrity",
        Edm::EndToEnd => "end2end",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmu::{Access, MmuViolation};

    #[test]
    fn exception_mapping_covers_every_variant() {
        assert_eq!(
            Edm::from_exception(&Exception::IllegalOpcode { pc: 0, word: 0 }),
            Edm::IllegalOpcode
        );
        assert_eq!(
            Edm::from_exception(&Exception::Memory(MemError::Misaligned { addr: 2 })),
            Edm::AddressError
        );
        assert_eq!(
            Edm::from_exception(&Exception::Memory(MemError::Bus { addr: 0 })),
            Edm::BusError
        );
        assert_eq!(
            Edm::from_exception(&Exception::Memory(MemError::EccUncorrectable { addr: 0 })),
            Edm::Ecc
        );
        assert_eq!(
            Edm::from_exception(&Exception::Mmu(MmuViolation {
                addr: 0,
                access: Access::Write
            })),
            Edm::Mmu
        );
        assert_eq!(
            Edm::from_exception(&Exception::DivideByZero { pc: 0 }),
            Edm::ArithmeticTrap
        );
        assert_eq!(
            Edm::from_exception(&Exception::PortFault { port: 99 }),
            Edm::BusError
        );
    }

    #[test]
    fn hardware_software_split_matches_table1() {
        assert!(Edm::IllegalOpcode.is_hardware());
        assert!(Edm::Ecc.is_hardware());
        assert!(Edm::Mmu.is_hardware());
        assert!(!Edm::TemComparison.is_hardware());
        assert!(!Edm::ExecutionTimeMonitor.is_hardware());
        assert!(!Edm::DataIntegrity.is_hardware());
    }

    #[test]
    fn matrix_counts_and_coverage() {
        let mut m = DetectionMatrix::new();
        for _ in 0..90 {
            m.record_detection(TargetClass::Pc, Edm::IllegalOpcode);
        }
        for _ in 0..9 {
            m.record_detection(TargetClass::Pc, Edm::BusError);
        }
        m.record_undetected(TargetClass::Pc);
        for _ in 0..5 {
            m.record_benign(TargetClass::Pc);
        }
        assert_eq!(m.detections(TargetClass::Pc, Edm::IllegalOpcode), 90);
        assert_eq!(m.total_detected(TargetClass::Pc), 99);
        assert_eq!(m.total(TargetClass::Pc), 105);
        assert!((m.coverage(TargetClass::Pc).unwrap() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn coverage_none_when_no_errors() {
        let mut m = DetectionMatrix::new();
        assert_eq!(m.coverage(TargetClass::Memory), None);
        m.record_benign(TargetClass::Memory);
        assert_eq!(
            m.coverage(TargetClass::Memory),
            None,
            "benign-only has no coverage"
        );
        assert_eq!(m.overall_coverage(), None);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = DetectionMatrix::new();
        let mut b = DetectionMatrix::new();
        a.record_detection(TargetClass::Sp, Edm::BusError);
        b.record_detection(TargetClass::Sp, Edm::BusError);
        b.record_undetected(TargetClass::Sp);
        a.merge(&b);
        assert_eq!(a.detections(TargetClass::Sp, Edm::BusError), 2);
        assert_eq!(a.undetected(TargetClass::Sp), 1);
    }

    #[test]
    fn render_table_mentions_active_rows_only() {
        let mut m = DetectionMatrix::new();
        m.record_detection(TargetClass::Pc, Edm::IllegalOpcode);
        let table = m.render_table();
        assert!(table.contains("program counter"));
        assert!(!table.contains("stack pointer"));
        assert!(table.contains("coverage"));
    }
}
