//! # nlft-machine — a simulated COTS host processor with hardware EDMs
//!
//! The paper's light-weight node-level fault tolerance runs on commercial
//! off-the-shelf microprocessors whose built-in error-detection mechanisms
//! (EDMs) — illegal op-code detection, address/bus errors, ECC memory, an
//! MMU — catch most of the errors that transient faults produce. This crate
//! substitutes for that hardware: a deterministic 32-bit machine (**TM32**)
//! whose architectural resources are individually exposed to a seedable
//! fault injector, so the detection pathways the paper argues about can be
//! reproduced structurally.
//!
//! * [`isa`] — the TM32 instruction set with encode/decode (illegal-opcode
//!   detection lives in the decoder).
//! * [`asm`] — a two-pass assembler + disassembler for writing workloads.
//! * [`cpu`] — register file, status flags, save/restore contexts.
//! * [`mem`] — SEC-DED ECC memory with injectable bit flips.
//! * [`mmu`] — per-task region protection (fault confinement).
//! * [`machine`] — the interpreter tying it together, with cycle-accurate
//!   budgets (execution-time monitoring) and I/O ports.
//! * [`fault`] — SWIFI-style transient and stuck-at fault injection.
//! * [`edm`] — the Table-1 taxonomy and detection matrices.
//! * [`workloads`] — canonical brake-by-wire task programs.
//!
//! # Examples
//!
//! Inject a PC fault into a brake controller and watch the hardware catch it:
//!
//! ```
//! use nlft_machine::fault::{run_with_injection, FaultTarget, TransientFault};
//! use nlft_machine::machine::RunExit;
//! use nlft_machine::workloads;
//!
//! let pid = workloads::pid_controller();
//! let mut m = pid.instantiate();
//! m.set_input(0, 1000);
//! m.set_input(1, 900);
//! let fault = TransientFault { target: FaultTarget::Pc, mask: 1 << 15 };
//! let (outcome, injected) = run_with_injection(&mut m, 50_000, 10, fault);
//! assert!(injected);
//! assert!(matches!(outcome.exit, RunExit::Exception(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod edm;
pub mod fault;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod mmu;
pub mod workloads;

pub use cpu::{CpuContext, CpuState};
pub use edm::{DetectionMatrix, Edm};
pub use fault::{CoreDeathFault, FaultSpace, FaultTarget, TransientFault};
pub use isa::{Instr, Reg};
pub use machine::{Exception, Machine, RunExit, RunOutcome};
pub use mem::EccMemory;
pub use mmu::{Access, MemoryMap, Perms, Region};
pub use workloads::Workload;
