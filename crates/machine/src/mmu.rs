//! Memory-management unit with per-task region protection.
//!
//! The paper relies on an MMU for *fault confinement*: every task gets a set
//! of allowed regions, so a fault that derails a task's memory accesses (a
//! corrupted address register, a runaway stack pointer, a control-flow error
//! into foreign code) trips a protection violation instead of corrupting
//! other tasks or the kernel (§2.4, §2.7). Regions carry conventional
//! read/write/execute permissions.

use std::fmt;

/// The kind of access being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Execute,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read => write!(f, "read"),
            Access::Write => write!(f, "write"),
            Access::Execute => write!(f, "execute"),
        }
    }
}

/// Permission bits of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms {
    /// Loads allowed.
    pub read: bool,
    /// Stores allowed.
    pub write: bool,
    /// Instruction fetches allowed.
    pub execute: bool,
}

impl Perms {
    /// Read-only data (constants, calibration tables).
    pub const R: Perms = Perms {
        read: true,
        write: false,
        execute: false,
    };
    /// Read-write data.
    pub const RW: Perms = Perms {
        read: true,
        write: true,
        execute: false,
    };
    /// Executable, read-only code.
    pub const RX: Perms = Perms {
        read: true,
        write: false,
        execute: true,
    };

    /// Whether the permission set allows the given access.
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.read,
            Access::Write => self.write,
            Access::Execute => self.execute,
        }
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.execute { 'x' } else { '-' }
        )
    }
}

/// A contiguous protected address range `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address covered.
    pub start: u32,
    /// Length in bytes.
    pub len: u32,
    /// Allowed access kinds.
    pub perms: Perms,
}

impl Region {
    /// Creates a region.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty or wraps around the address space.
    pub fn new(start: u32, len: u32, perms: Perms) -> Self {
        assert!(len > 0, "region must be non-empty");
        assert!(
            start.checked_add(len - 1).is_some(),
            "region wraps address space"
        );
        Region { start, len, perms }
    }

    /// Whether `addr` lies inside the region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr - self.start < self.len
    }
}

/// A protection violation detected by the MMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmuViolation {
    /// The faulting byte address.
    pub addr: u32,
    /// The attempted access kind.
    pub access: Access,
}

impl fmt::Display for MmuViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MMU violation: {} at {:#06x}", self.access, self.addr)
    }
}

impl std::error::Error for MmuViolation {}

/// A task's (or the kernel's) view of memory: an ordered set of regions.
///
/// # Examples
///
/// ```
/// use nlft_machine::mmu::{Access, MemoryMap, Perms, Region};
///
/// let map = MemoryMap::from_regions(vec![
///     Region::new(0x0000, 0x400, Perms::RX),  // code
///     Region::new(0x1000, 0x400, Perms::RW),  // data + stack
/// ]);
/// assert!(map.check(0x0004, Access::Execute).is_ok());
/// assert!(map.check(0x1004, Access::Write).is_ok());
/// assert!(map.check(0x1004, Access::Execute).is_err());
/// assert!(map.check(0x2000, Access::Read).is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryMap {
    regions: Vec<Region>,
}

impl MemoryMap {
    /// An empty map that denies everything.
    pub fn new() -> Self {
        MemoryMap::default()
    }

    /// Builds a map from a list of regions. Overlaps are allowed; an access
    /// is permitted if *any* covering region allows it.
    pub fn from_regions(regions: Vec<Region>) -> Self {
        MemoryMap { regions }
    }

    /// A map with a single region spanning the whole space with all
    /// permissions — the "MMU disabled" configuration.
    pub fn permissive() -> Self {
        MemoryMap::from_regions(vec![Region::new(
            0,
            u32::MAX,
            Perms {
                read: true,
                write: true,
                execute: true,
            },
        )])
    }

    /// Adds a region.
    pub fn add_region(&mut self, region: Region) {
        self.regions.push(region);
    }

    /// The configured regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Checks an access against the map.
    ///
    /// # Errors
    ///
    /// Returns [`MmuViolation`] when no region both covers `addr` and allows
    /// `access`.
    pub fn check(&self, addr: u32, access: Access) -> Result<(), MmuViolation> {
        for r in &self.regions {
            if r.contains(addr) && r.perms.allows(access) {
                return Ok(());
            }
        }
        Err(MmuViolation { addr, access })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task_map() -> MemoryMap {
        MemoryMap::from_regions(vec![
            Region::new(0x000, 0x100, Perms::RX),
            Region::new(0x200, 0x080, Perms::R),
            Region::new(0x400, 0x100, Perms::RW),
        ])
    }

    #[test]
    fn grants_access_inside_matching_region() {
        let m = task_map();
        assert!(m.check(0x000, Access::Execute).is_ok());
        assert!(m.check(0x0FF, Access::Read).is_ok());
        assert!(m.check(0x210, Access::Read).is_ok());
        assert!(m.check(0x4FF, Access::Write).is_ok());
    }

    #[test]
    fn denies_wrong_permission() {
        let m = task_map();
        assert_eq!(
            m.check(0x000, Access::Write),
            Err(MmuViolation {
                addr: 0x000,
                access: Access::Write
            })
        );
        assert!(m.check(0x210, Access::Write).is_err());
        assert!(m.check(0x400, Access::Execute).is_err());
    }

    #[test]
    fn denies_gaps_between_regions() {
        let m = task_map();
        assert!(m.check(0x100, Access::Read).is_err());
        assert!(m.check(0x3FF, Access::Read).is_err());
        assert!(m.check(0xFFFF_FFFF, Access::Read).is_err());
    }

    #[test]
    fn region_boundaries_are_half_open() {
        let r = Region::new(0x100, 0x10, Perms::RW);
        assert!(r.contains(0x100));
        assert!(r.contains(0x10F));
        assert!(!r.contains(0x110));
        assert!(!r.contains(0x0FF));
    }

    #[test]
    fn overlapping_regions_union_permissions() {
        let m = MemoryMap::from_regions(vec![
            Region::new(0x0, 0x100, Perms::R),
            Region::new(0x0, 0x100, Perms::RW),
        ]);
        assert!(m.check(0x10, Access::Write).is_ok());
    }

    #[test]
    fn permissive_map_allows_everything() {
        // Covers [0, u32::MAX) — every address a 64 KiB machine can emit.
        let m = MemoryMap::permissive();
        assert!(m.check(0, Access::Execute).is_ok());
        assert!(m.check(u32::MAX - 1, Access::Write).is_ok());
    }

    #[test]
    fn empty_map_denies_everything() {
        let m = MemoryMap::new();
        assert!(m.check(0, Access::Read).is_err());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_length_region_rejected() {
        Region::new(0, 0, Perms::R);
    }

    #[test]
    #[should_panic(expected = "wraps")]
    fn wrapping_region_rejected() {
        Region::new(u32::MAX, 2, Perms::R);
    }

    #[test]
    fn perms_display() {
        assert_eq!(Perms::RX.to_string(), "r-x");
        assert_eq!(Perms::RW.to_string(), "rw-");
        assert_eq!(Perms::default().to_string(), "---");
    }
}
