//! Canonical task workloads for experiments.
//!
//! Real TM32 assembly programs in the *read input → compute → write output*
//! shape of the paper's task model (Fig. 2). They are the payloads the
//! fault-injection campaigns and the kernel tests execute:
//!
//! * [`pid_controller`] — the wheel-node brake-force regulator (the paper's
//!   motivating brake-by-wire application);
//! * [`brake_distribution`] — the central-unit pedal-to-wheel force split;
//! * [`checksum_block`] — a data-traversal workload exercising memory;
//! * [`sum_series`] — a tight arithmetic loop, the smallest useful victim.
//!
//! All workloads use the same memory layout so one [`MemoryMap`] template
//! confines any of them: code (RX) in `[0, 0x400)`, task data (RW) in
//! `[0x400, 0x800)`, stack (RW) in `[0x800, 0x1000)`.

use crate::asm::{assemble, Image};
use crate::machine::{Machine, RunExit, NUM_PORTS};
use crate::mmu::{MemoryMap, Perms, Region};

/// Memory size every workload machine uses.
pub const MEM_BYTES: u32 = 4096;
/// Start of the read-write data region.
pub const DATA_BASE: u32 = 0x400;
/// Initial stack pointer (top of the stack region).
pub const STACK_TOP: u32 = 0x1000;
/// Generous cycle budget for a clean run of any standard workload.
pub const DEFAULT_BUDGET: u64 = 50_000;

/// A ready-to-run task program with its confinement map and port wiring.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short identifier, e.g. `"pid"`.
    pub name: &'static str,
    /// Assembled program image (loaded at address 0).
    pub image: Image,
    /// MMU map confining the task.
    pub map: MemoryMap,
    /// Input ports the workload reads.
    pub input_ports: Vec<usize>,
    /// Output ports the workload writes.
    pub output_ports: Vec<usize>,
}

impl Workload {
    /// Builds a fresh machine loaded with this workload, reset and confined.
    pub fn instantiate(&self) -> Machine {
        let mut m = Machine::new(MEM_BYTES, self.map.clone());
        m.load_program(0, &self.image.words)
            .expect("workload image fits standard memory");
        m.reset(0, STACK_TOP);
        m
    }

    /// Runs the workload cleanly with the given inputs and returns the
    /// output-port vector and consumed cycles — the golden reference for
    /// fault-injection comparison.
    ///
    /// # Panics
    ///
    /// Panics if the clean run does not halt within [`DEFAULT_BUDGET`]
    /// cycles — a workload bug, not an experiment outcome.
    pub fn golden_run(&self, inputs: &[u32]) -> ([Option<u32>; NUM_PORTS], u64) {
        let mut m = self.instantiate();
        for (&port, &v) in self.input_ports.iter().zip(inputs) {
            m.set_input(port, v);
        }
        let out = m.run(DEFAULT_BUDGET);
        assert_eq!(
            out.exit,
            RunExit::Halted,
            "golden run of `{}` must halt, got {:?}",
            self.name,
            out.exit
        );
        (*m.outputs(), out.cycles_used)
    }
}

/// The standard confinement map shared by all workloads.
pub fn standard_map() -> MemoryMap {
    MemoryMap::from_regions(vec![
        Region::new(0, DATA_BASE, Perms::RX),
        Region::new(DATA_BASE, 0x400, Perms::RW),
        Region::new(0x800, 0x800, Perms::RW),
    ])
}

fn build(name: &'static str, src: &str, inputs: &[usize], outputs: &[usize]) -> Workload {
    Workload {
        name,
        image: assemble(src).unwrap_or_else(|e| panic!("workload `{name}`: {e}")),
        map: standard_map(),
        input_ports: inputs.to_vec(),
        output_ports: outputs.to_vec(),
    }
}

/// Sum of `1..=N`, with `N` on port 0; result on port 0.
pub fn sum_series() -> Workload {
    build(
        "sum",
        "
            in   r0, port0       ; N
            ldi  r1, 0           ; acc
            ldi  r2, 1
            cmp  r0, r1          ; guard: N == 0 sums to 0
            jz   done
        loop:
            add  r1, r1, r0
            sub  r0, r0, r2
            jnz  loop
        done:
            out  r1, port0
            halt
        ",
        &[0],
        &[0],
    )
}

/// A fixed-gain integer PID brake-force regulator — the wheel-node control
/// task of the brake-by-wire case study.
///
/// Inputs: port 0 = set-point force, port 1 = measured force.
/// Output: port 0 = actuator command, clamped to `[0, 4095]`.
/// State (integral term, previous error) lives at [`DATA_BASE`], so the
/// workload also exercises stores — the path end-to-end checks protect.
pub fn pid_controller() -> Workload {
    build(
        "pid",
        "
            in   r0, port0       ; setpoint
            in   r1, port1       ; measured
            sub  r2, r0, r1      ; e = sp - meas
            ldi  r6, 0x400       ; state base
            ld   r3, [r6+0]      ; integral
            add  r3, r3, r2
            ldi  r4, 2047        ; clamp integral high
            cmp  r3, r4
            jn   i_hi_ok
            mov  r3, r4
        i_hi_ok:
            ldi  r4, -2048       ; clamp integral low
            cmp  r4, r3
            jn   i_lo_ok
            mov  r3, r4
        i_lo_ok:
            st   r3, [r6+0]
            ld   r4, [r6+4]      ; prev error
            sub  r5, r2, r4      ; derivative
            st   r2, [r6+4]
            ldi  r7, 8
            mul  r0, r2, r7      ; 8*e
            ldi  r7, 2
            mul  r1, r3, r7      ; 2*I
            add  r0, r0, r1
            add  r0, r0, r5      ; + d
            ldi  r7, 16
            div  r0, r0, r7      ; scale
            ldi  r7, 0
            cmp  r0, r7
            jge  u_pos
            mov  r0, r7
        u_pos:
            ldi  r7, 4095
            cmp  r0, r7
            jn   u_ok
            mov  r0, r7
        u_ok:
            out  r0, port0
            halt
        ",
        &[0, 1],
        &[0],
    )
}

/// Central-unit brake distribution: pedal position on port 0; per-wheel
/// force requests on ports 0–3 (front-biased 60/40 split).
pub fn brake_distribution() -> Workload {
    build(
        "brakedist",
        "
            in   r0, port0       ; pedal 0..4095
            ldi  r1, 2
            mul  r0, r0, r1      ; total demand
            ldi  r1, 3
            mul  r2, r0, r1
            ldi  r1, 10
            div  r2, r2, r1      ; each front wheel: 30%
            ldi  r1, 2
            mul  r3, r0, r1
            ldi  r1, 10
            div  r3, r3, r1      ; each rear wheel: 20%
            out  r2, port0
            out  r2, port1
            out  r3, port2
            out  r3, port3
            halt
        ",
        &[0],
        &[0, 1, 2, 3],
    )
}

/// Mixing checksum over a 32-word constant table — a memory-heavy workload
/// whose output depends on every table bit, so memory corruption that ECC
/// misses shows up in the result.
pub fn checksum_block() -> Workload {
    let mut src = String::from(
        "
            ldi  r0, 0           ; acc
            ldi  r1, table
            ldi  r2, 32          ; count
            ldi  r3, 1
        loop:
            ld   r4, [r1+0]
            add  r0, r0, r4
            ldi  r5, 5
            shl  r5, r0, r5
            xor  r0, r0, r5      ; mix
            addi r1, r1, 4
            sub  r2, r2, r3
            jnz  loop
            out  r0, port0
            halt
        table:
        ",
    );
    // A fixed pseudo-random table (LCG) — deterministic across builds.
    let mut x: u32 = 0x2545_F491;
    for _ in 0..32 {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        src.push_str(&format!("            .word {:#010x}\n", x));
    }
    build("checksum", &src, &[], &[0])
}

/// Averaging filter implemented with a real call stack (CALL/PUSH/POP), so
/// stack-pointer faults are *activated* — the paper observed SP faults
/// raising address/bus exceptions (§2.5), which needs stack traffic.
pub fn stacked_average() -> Workload {
    build(
        "stackavg",
        "
            in   r0, port0
            in   r1, port1
            call avg
            in   r1, port2
            call avg
            out  r0, port0
            halt
        avg:
            push r1
            push r2
            add  r0, r0, r1
            ldi  r2, 2
            div  r0, r0, r2
            pop  r2
            pop  r1
            ret
        ",
        &[0, 1, 2],
        &[0],
    )
}

/// An anti-lock-braking slip controller: modulates a requested brake force
/// so wheel slip stays below a threshold.
///
/// Inputs: port 0 = requested force, port 1 = vehicle speed, port 2 =
/// wheel speed (all 0..4095). Output: port 0 = applied force.
/// Slip is `(v - w) * 256 / v`; above the threshold (~20 %) the force is
/// halved, giving the characteristic ABS pumping when iterated.
pub fn abs_controller() -> Workload {
    build(
        "abs",
        "
            in   r0, port0       ; requested force
            in   r1, port1       ; vehicle speed v
            in   r2, port2       ; wheel speed w
            ldi  r3, 0
            cmp  r1, r3          ; v == 0? no slip computable, apply as-is
            jz   apply
            sub  r4, r1, r2      ; v - w
            cmp  r4, r3          ; negative (wheel overspeed)? treat as 0
            jge  slip_pos
            ldi  r4, 0
        slip_pos:
            ldi  r5, 256
            mul  r4, r4, r5
            div  r4, r4, r1      ; slip = (v-w)*256/v
            ldi  r5, 51          ; threshold: ~20% of 256
            cmp  r4, r5
            jn   apply           ; slip < threshold: full force
            ldi  r5, 2
            div  r0, r0, r5      ; slipping: halve the force
        apply:
            out  r0, port0
            halt
        ",
        &[0, 1, 2],
        &[0],
    )
}

/// All standard workloads, in campaign order.
pub fn standard_workloads() -> Vec<Workload> {
    vec![
        sum_series(),
        pid_controller(),
        brake_distribution(),
        checksum_block(),
        stacked_average(),
        abs_controller(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_series_golden() {
        let w = sum_series();
        let (out, cycles) = w.golden_run(&[100]);
        assert_eq!(out[0], Some(5050));
        assert!(cycles > 100);
    }

    #[test]
    fn pid_converges_toward_setpoint() {
        let w = pid_controller();
        // First invocation from zero state: e = 1000, u = (8*1000 + 2*1000 + 1000)/16
        // with integral clamped at 2047 ... compute expected directly:
        let (out, _) = w.golden_run(&[1000, 0]);
        let u = out[0].expect("command written") as i32;
        assert!(u > 0, "positive error must give positive command");
        assert!(u <= 4095);
    }

    #[test]
    fn pid_clamps_to_actuator_range() {
        let w = pid_controller();
        // Max error: e = 4095, integral clamps to 2047, derivative = 4095:
        // u = (8*4095 + 2*2047 + 4095) / 16 = 2559 — the documented ceiling
        // of the integer gain schedule, well inside the actuator range.
        let (out, _) = w.golden_run(&[4095, 0]);
        assert_eq!(out[0], Some(2559), "maximum command from gain schedule");
        // Max negative error saturates at the low clamp.
        let (out, _) = w.golden_run(&[0, 4095]);
        assert_eq!(out[0], Some(0), "saturates low");
    }

    #[test]
    fn pid_state_persists_across_invocations() {
        let w = pid_controller();
        let mut m = w.instantiate();
        m.set_input(0, 100);
        m.set_input(1, 90);
        m.run(DEFAULT_BUDGET);
        let first = m.output(0).unwrap();
        // Re-run without clearing memory: the integral term has grown.
        m.reset(0, STACK_TOP);
        m.set_input(0, 100);
        m.set_input(1, 90);
        m.run(DEFAULT_BUDGET);
        let second = m.output(0).unwrap();
        assert!(
            second > first,
            "integral action accumulates: {first} -> {second}"
        );
    }

    #[test]
    fn brake_distribution_split() {
        let w = brake_distribution();
        let (out, _) = w.golden_run(&[1000]);
        assert_eq!(out[0], Some(600)); // front = 2000 * 3 / 10
        assert_eq!(out[1], Some(600));
        assert_eq!(out[2], Some(400)); // rear = 2000 * 2 / 10
        assert_eq!(out[3], Some(400));
    }

    #[test]
    fn checksum_is_stable_and_input_free() {
        let w = checksum_block();
        let (a, _) = w.golden_run(&[]);
        let (b, _) = w.golden_run(&[]);
        assert_eq!(a[0], b[0]);
        assert!(a[0].is_some());
    }

    #[test]
    fn abs_passes_force_through_when_grip_is_good() {
        let w = abs_controller();
        // v = 1000, w = 950: slip = 50*256/1000 = 12 < 51.
        let (out, _) = w.golden_run(&[2000, 1000, 950]);
        assert_eq!(out[0], Some(2000));
    }

    #[test]
    fn abs_halves_force_when_wheel_locks() {
        let w = abs_controller();
        // v = 1000, w = 500: slip = 128 >= 51 → halve.
        let (out, _) = w.golden_run(&[2000, 1000, 500]);
        assert_eq!(out[0], Some(1000));
        // Fully locked wheel.
        let (out, _) = w.golden_run(&[2000, 1000, 0]);
        assert_eq!(out[0], Some(1000));
    }

    #[test]
    fn abs_handles_edge_speeds() {
        let w = abs_controller();
        // Standing still: no slip computable, apply requested force.
        let (out, _) = w.golden_run(&[1500, 0, 0]);
        assert_eq!(out[0], Some(1500));
        // Wheel faster than vehicle (spin-up): no braking intervention.
        let (out, _) = w.golden_run(&[1500, 800, 900]);
        assert_eq!(out[0], Some(1500));
    }

    #[test]
    fn all_workloads_halt_within_budget_under_confinement() {
        for w in standard_workloads() {
            let inputs: Vec<u32> = w.input_ports.iter().map(|_| 50).collect();
            let (_, cycles) = w.golden_run(&inputs);
            assert!(
                cycles < DEFAULT_BUDGET,
                "workload {} uses {cycles} cycles",
                w.name
            );
        }
    }

    #[test]
    fn workload_names_are_unique() {
        let ws = standard_workloads();
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ws.len());
    }

    #[test]
    fn workloads_fit_code_region() {
        for w in standard_workloads() {
            assert!(
                w.image.size_bytes() <= DATA_BASE,
                "workload {} code spills into data region",
                w.name
            );
        }
    }
}
