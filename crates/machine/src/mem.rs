//! ECC-protected main memory.
//!
//! Models a word-organised SRAM/DRAM with single-error-correct /
//! double-error-detect (SEC-DED) coding, the standard hardware EDM the paper
//! assumes for memories (Table 1). The model keeps the *true* value of each
//! word plus a mask of bits currently flipped by injected faults:
//!
//! * a **read** with one flipped bit is silently corrected (and counted) —
//!   this is why pure memory faults rarely become errors on ECC machines;
//! * a read with two or more flipped bits raises an uncorrectable-ECC
//!   exception — detected, not masked;
//! * a **write** re-encodes the word, clearing any accumulated flips;
//! * with ECC disabled (cheap-node configuration), reads return the
//!   corrupted value with no indication *to the program* — the fault
//!   escapes; the harness-visible [`EccStats::escaped`] counter records
//!   the exposure so campaigns can report it.
//!
//! Faulty words are additionally tracked in a dense per-word dirty bitset:
//! the fault-free load path — the overwhelmingly common case — tests one
//! bit and never touches the sparse flip map, keeping the interpreter's
//! fetch/load hot loop free of hashing.

use std::collections::HashMap;
use std::fmt;

/// Byte size of one memory word.
pub const WORD_BYTES: u32 = 4;

/// Outcome of a memory access that violates the bus or ECC rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemError {
    /// Address not mapped by the memory array (bus error).
    Bus {
        /// The faulting byte address.
        addr: u32,
    },
    /// Address not word-aligned (address error).
    Misaligned {
        /// The faulting byte address.
        addr: u32,
    },
    /// Two or more flipped bits in the word: ECC detects but cannot correct.
    EccUncorrectable {
        /// The faulting byte address.
        addr: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Bus { addr } => write!(f, "bus error at {addr:#06x}"),
            MemError::Misaligned { addr } => write!(f, "misaligned access at {addr:#06x}"),
            MemError::EccUncorrectable { addr } => {
                write!(f, "uncorrectable ECC error at {addr:#06x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Counters exposed by the ECC logic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EccStats {
    /// Single-bit errors silently corrected on read.
    pub corrected: u64,
    /// Multi-bit errors detected (exceptions raised).
    pub detected_uncorrectable: u64,
    /// Corrupted reads served with ECC disabled — the fault escaped into
    /// the program with no hardware indication. Campaigns on cheap nodes
    /// use this to report silent-corruption exposure, which the escape
    /// path previously left invisible.
    pub escaped: u64,
}

/// Word-addressed main memory with SEC-DED ECC.
///
/// # Examples
///
/// ```
/// use nlft_machine::mem::EccMemory;
///
/// let mut mem = EccMemory::new(1024);
/// mem.store(0x10, 0xDEAD_BEEF)?;
/// assert_eq!(mem.load(0x10)?, 0xDEAD_BEEF);
///
/// // A single injected bit flip is corrected transparently.
/// mem.inject_flip(0x10, 0x0000_0001);
/// assert_eq!(mem.load(0x10)?, 0xDEAD_BEEF);
/// assert_eq!(mem.ecc_stats().corrected, 1);
/// # Ok::<(), nlft_machine::mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EccMemory {
    words: Vec<u32>,
    /// Injected-fault bit masks, keyed by word index. Sparse: faults are rare.
    flips: HashMap<u32, u32>,
    /// One bit per word, set exactly when `flips` holds a mask for it.
    /// Fault-free loads test this bitset and never touch the hash map —
    /// the dominant case in every campaign (most trials run clean up to
    /// the single injection point).
    dirty: Vec<u64>,
    ecc_enabled: bool,
    stats: EccStats,
    /// Bumped by every operation that can change the instruction stream
    /// other than an ordinary store: image loads, resets, fault injection
    /// and scrubs. The machine's decoded-instruction cache keys on it.
    generation: u64,
}

impl EccMemory {
    /// Creates a zeroed memory of `bytes` bytes (rounded down to whole words)
    /// with ECC enabled.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one word.
    pub fn new(bytes: u32) -> Self {
        assert!(bytes >= WORD_BYTES, "memory must hold at least one word");
        let words = (bytes / WORD_BYTES) as usize;
        EccMemory {
            words: vec![0; words],
            flips: HashMap::new(),
            dirty: vec![0; words.div_ceil(64)],
            ecc_enabled: true,
            stats: EccStats::default(),
            generation: 0,
        }
    }

    /// Creates a memory with ECC disabled (models a low-cost node without
    /// memory protection; injected faults then propagate silently).
    pub fn new_without_ecc(bytes: u32) -> Self {
        let mut m = EccMemory::new(bytes);
        m.ecc_enabled = false;
        m
    }

    /// Memory size in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.words.len() as u32 * WORD_BYTES
    }

    /// Whether ECC is active.
    pub fn ecc_enabled(&self) -> bool {
        self.ecc_enabled
    }

    /// ECC correction/detection counters.
    pub fn ecc_stats(&self) -> EccStats {
        self.stats
    }

    /// Instruction-stream mutation counter: changes whenever an image
    /// load, reset, fault injection, scrub or fault-clear may have altered
    /// what a fetch would observe. Ordinary stores are *not* counted —
    /// consumers that cache decoded instructions also tag entries with the
    /// fetched word, which covers self-modifying stores exactly.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    #[inline]
    fn is_dirty(&self, idx: usize) -> bool {
        self.dirty[idx >> 6] & (1u64 << (idx & 63)) != 0
    }

    fn set_dirty(&mut self, idx: usize) {
        self.dirty[idx >> 6] |= 1u64 << (idx & 63);
    }

    fn clear_dirty(&mut self, idx: usize) {
        self.dirty[idx >> 6] &= !(1u64 << (idx & 63));
    }

    fn word_index(&self, addr: u32) -> Result<usize, MemError> {
        if !addr.is_multiple_of(WORD_BYTES) {
            return Err(MemError::Misaligned { addr });
        }
        let idx = (addr / WORD_BYTES) as usize;
        if idx >= self.words.len() {
            return Err(MemError::Bus { addr });
        }
        Ok(idx)
    }

    /// Loads the 32-bit word at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] for unaligned addresses, [`MemError::Bus`]
    /// for unmapped addresses, and [`MemError::EccUncorrectable`] when the
    /// word carries a multi-bit fault and ECC is enabled.
    pub fn load(&mut self, addr: u32) -> Result<u32, MemError> {
        let idx = self.word_index(addr)?;
        // Dirty-word fast path: fault-free words never touch the hash map.
        if !self.is_dirty(idx) {
            return Ok(self.words[idx]);
        }
        self.load_faulty(addr, idx)
    }

    /// Slow path for a load whose word carries an injected fault.
    fn load_faulty(&mut self, addr: u32, idx: usize) -> Result<u32, MemError> {
        let mask = self.flips.get(&(idx as u32)).copied().unwrap_or(0);
        if mask == 0 {
            return Ok(self.words[idx]);
        }
        if !self.ecc_enabled {
            // Fault escapes: the program sees the corrupted value, and only
            // the (harness-visible) counter records that it happened.
            self.stats.escaped += 1;
            return Ok(self.words[idx] ^ mask);
        }
        if mask.count_ones() == 1 {
            // SEC: corrected in place (scrubbing).
            self.flips.remove(&(idx as u32));
            self.clear_dirty(idx);
            self.generation = self.generation.wrapping_add(1);
            self.stats.corrected += 1;
            Ok(self.words[idx])
        } else {
            self.stats.detected_uncorrectable += 1;
            Err(MemError::EccUncorrectable { addr })
        }
    }

    /// Stores a 32-bit word; rewriting a word clears any injected flips.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::Bus`] as for [`EccMemory::load`].
    pub fn store(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        let idx = self.word_index(addr)?;
        self.words[idx] = value;
        if self.is_dirty(idx) {
            self.flips.remove(&(idx as u32));
            self.clear_dirty(idx);
        }
        Ok(())
    }

    /// Reads a word bypassing ECC and fault masks — the "golden" value.
    ///
    /// Used by experiment harnesses for oracle comparison, never by the
    /// simulated software.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::Bus`].
    pub fn peek(&self, addr: u32) -> Result<u32, MemError> {
        let idx = self.word_index(addr)?;
        Ok(self.words[idx])
    }

    /// XORs `mask` into the injected-fault state of the word at `addr`.
    ///
    /// Does nothing (and returns `false`) for invalid addresses — fault
    /// injectors may target arbitrary addresses.
    pub fn inject_flip(&mut self, addr: u32, mask: u32) -> bool {
        match self.word_index(addr) {
            Ok(idx) => {
                let e = self.flips.entry(idx as u32).or_insert(0);
                *e ^= mask;
                if *e == 0 {
                    self.flips.remove(&(idx as u32));
                    self.clear_dirty(idx);
                } else {
                    self.set_dirty(idx);
                }
                self.generation = self.generation.wrapping_add(1);
                true
            }
            Err(_) => false,
        }
    }

    /// Number of words currently carrying injected faults.
    pub fn faulty_words(&self) -> usize {
        self.flips.len()
    }

    /// Clears all injected faults (models a scrub cycle or power reset).
    pub fn clear_faults(&mut self) {
        self.flips.clear();
        self.dirty.fill(0);
        self.generation = self.generation.wrapping_add(1);
    }

    /// Zeroes all of memory and clears fault state (hard reset).
    pub fn reset(&mut self) {
        self.words.fill(0);
        self.flips.clear();
        self.dirty.fill(0);
        self.generation = self.generation.wrapping_add(1);
    }

    /// Bulk-loads `words` starting at byte address `base` (program loading).
    ///
    /// # Errors
    ///
    /// Fails like [`EccMemory::store`] on the first invalid address.
    pub fn load_image(&mut self, base: u32, words: &[u32]) -> Result<(), MemError> {
        for (i, &w) in words.iter().enumerate() {
            self.store(base + (i as u32) * WORD_BYTES, w)?;
        }
        self.generation = self.generation.wrapping_add(1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_round_trip() {
        let mut m = EccMemory::new(64);
        m.store(0, 1).unwrap();
        m.store(60, 0xFFFF_FFFF).unwrap();
        assert_eq!(m.load(0).unwrap(), 1);
        assert_eq!(m.load(60).unwrap(), 0xFFFF_FFFF);
    }

    #[test]
    fn misaligned_and_out_of_range_fail() {
        let mut m = EccMemory::new(64);
        assert_eq!(m.load(2), Err(MemError::Misaligned { addr: 2 }));
        assert_eq!(m.load(64), Err(MemError::Bus { addr: 64 }));
        assert_eq!(m.store(65, 0), Err(MemError::Misaligned { addr: 65 }));
        assert_eq!(m.store(1 << 20, 0), Err(MemError::Bus { addr: 1 << 20 }));
    }

    #[test]
    fn single_bit_flip_corrected_and_scrubbed() {
        let mut m = EccMemory::new(64);
        m.store(8, 0xAAAA_5555).unwrap();
        m.inject_flip(8, 0x8000_0000);
        assert_eq!(m.load(8).unwrap(), 0xAAAA_5555);
        assert_eq!(m.ecc_stats().corrected, 1);
        // Scrubbed: a second read needs no correction.
        m.load(8).unwrap();
        assert_eq!(m.ecc_stats().corrected, 1);
        assert_eq!(m.faulty_words(), 0);
    }

    #[test]
    fn double_bit_flip_detected_uncorrectable() {
        let mut m = EccMemory::new(64);
        m.store(8, 7).unwrap();
        m.inject_flip(8, 0b11);
        assert_eq!(m.load(8), Err(MemError::EccUncorrectable { addr: 8 }));
        assert_eq!(m.ecc_stats().detected_uncorrectable, 1);
    }

    #[test]
    fn write_clears_fault() {
        let mut m = EccMemory::new(64);
        m.inject_flip(8, 0b111);
        m.store(8, 42).unwrap();
        assert_eq!(m.load(8).unwrap(), 42);
        assert_eq!(m.ecc_stats().detected_uncorrectable, 0);
    }

    #[test]
    fn without_ecc_faults_escape_silently() {
        let mut m = EccMemory::new_without_ecc(64);
        m.store(8, 0b1000).unwrap();
        m.inject_flip(8, 0b0001);
        assert_eq!(m.load(8).unwrap(), 0b1001, "corrupted value visible");
        assert_eq!(m.ecc_stats().corrected, 0);
        // The escape is invisible to the program but counted for the
        // harness: each corrupted read is one exposure.
        assert_eq!(m.ecc_stats().escaped, 1);
        m.load(8).unwrap();
        assert_eq!(m.ecc_stats().escaped, 2, "no scrub without ECC");
        // peek still sees the golden value.
        assert_eq!(m.peek(8).unwrap(), 0b1000);
        // Clean words never count as escapes.
        m.load(4).unwrap();
        assert_eq!(m.ecc_stats().escaped, 2);
    }

    #[test]
    fn dirty_tracking_follows_fault_state() {
        let mut m = EccMemory::new(256);
        // Clean loads take the fast path and see stored values.
        m.store(16, 0x1234).unwrap();
        assert_eq!(m.load(16).unwrap(), 0x1234);
        // Inject, then store: the store must clear the fault.
        m.inject_flip(16, 0b11);
        m.store(16, 0x5678).unwrap();
        assert_eq!(m.load(16).unwrap(), 0x5678);
        assert_eq!(m.faulty_words(), 0);
        assert_eq!(m.ecc_stats().detected_uncorrectable, 0);
        // Cancelling injections leave the word clean.
        m.inject_flip(20, 0b100);
        m.inject_flip(20, 0b100);
        assert_eq!(m.load(20).unwrap(), 0);
        assert_eq!(m.ecc_stats().corrected, 0, "cancelled flip is no fault");
        // clear_faults wipes all dirty state.
        m.inject_flip(24, 0b11);
        m.clear_faults();
        assert_eq!(m.load(24).unwrap(), 0);
        assert_eq!(m.ecc_stats().detected_uncorrectable, 0);
    }

    #[test]
    fn generation_tracks_instruction_stream_mutations() {
        let mut m = EccMemory::new(64);
        let g0 = m.generation();
        // Ordinary stores do not bump — the decode cache covers them with
        // its word tag.
        m.store(0, 7).unwrap();
        assert_eq!(m.generation(), g0);
        m.inject_flip(0, 1);
        let g1 = m.generation();
        assert_ne!(g1, g0, "injection bumps");
        // A corrected (scrubbing) load changes fault state: bump.
        m.load(0).unwrap();
        assert_ne!(m.generation(), g1, "scrub bumps");
        let g2 = m.generation();
        m.load_image(0, &[1, 2]).unwrap();
        assert_ne!(m.generation(), g2, "image load bumps");
        let g3 = m.generation();
        m.reset();
        assert_ne!(m.generation(), g3, "reset bumps");
        let g4 = m.generation();
        m.clear_faults();
        assert_ne!(m.generation(), g4, "fault clear bumps");
    }

    #[test]
    fn inject_into_invalid_address_reports_false() {
        let mut m = EccMemory::new(64);
        assert!(!m.inject_flip(1 << 20, 1));
        assert!(!m.inject_flip(3, 1));
        assert!(m.inject_flip(4, 1));
    }

    #[test]
    fn double_inject_same_bit_cancels() {
        let mut m = EccMemory::new(64);
        m.inject_flip(4, 0b10);
        m.inject_flip(4, 0b10);
        assert_eq!(m.faulty_words(), 0);
    }

    #[test]
    fn load_image_places_program() {
        let mut m = EccMemory::new(64);
        m.load_image(16, &[1, 2, 3]).unwrap();
        assert_eq!(m.load(16).unwrap(), 1);
        assert_eq!(m.load(20).unwrap(), 2);
        assert_eq!(m.load(24).unwrap(), 3);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut m = EccMemory::new(64);
        m.store(4, 9).unwrap();
        m.inject_flip(8, 3);
        m.reset();
        assert_eq!(m.load(4).unwrap(), 0);
        assert_eq!(m.faulty_words(), 0);
    }
}
