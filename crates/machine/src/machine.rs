//! The simulated host machine: CPU core + ECC memory + MMU + I/O ports.
//!
//! [`Machine`] executes TM32 programs deterministically, cycle-by-cycle,
//! raising [`Exception`]s for everything the hardware error-detection
//! mechanisms of the paper's Table 1 would catch: illegal opcodes, address
//! and bus errors, MMU protection violations, uncorrectable ECC errors and
//! division by zero. The kernel (in `nlft-kernel`) layers budget timers,
//! TEM and data-integrity checks on top.

use std::collections::VecDeque;
use std::fmt;

use crate::cpu::{CpuState, StatusFlags};
use crate::isa::Instr;
use crate::mem::{EccMemory, MemError, WORD_BYTES};
use crate::mmu::{Access, MemoryMap, MmuViolation};

/// Number of input and output ports a machine exposes.
pub const NUM_PORTS: usize = 16;

/// A hardware-detected execution error.
///
/// Each variant corresponds to a hardware EDM from Table 1 of the paper;
/// [`crate::edm::Edm::from_exception`] maps variants to mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exception {
    /// The fetched word does not decode to a valid instruction.
    IllegalOpcode {
        /// PC of the undecodable word.
        pc: u32,
        /// The word itself.
        word: u32,
    },
    /// Bus, alignment or uncorrectable-ECC failure on a memory access.
    Memory(MemError),
    /// Access outside the active memory map.
    Mmu(MmuViolation),
    /// Signed division by zero.
    DivideByZero {
        /// PC of the faulting instruction.
        pc: u32,
    },
    /// `IN`/`OUT` addressed a nonexistent port (peripheral bus error).
    PortFault {
        /// The out-of-range port number.
        port: u16,
    },
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exception::IllegalOpcode { pc, word } => {
                write!(f, "illegal opcode {word:#010x} at pc={pc:#06x}")
            }
            Exception::Memory(e) => write!(f, "{e}"),
            Exception::Mmu(v) => write!(f, "{v}"),
            Exception::DivideByZero { pc } => write!(f, "divide by zero at pc={pc:#06x}"),
            Exception::PortFault { port } => write!(f, "access to nonexistent port {port}"),
        }
    }
}

impl std::error::Error for Exception {}

impl From<MemError> for Exception {
    fn from(e: MemError) -> Self {
        Exception::Memory(e)
    }
}

impl From<MmuViolation> for Exception {
    fn from(v: MmuViolation) -> Self {
        Exception::Mmu(v)
    }
}

/// Result of executing a single instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Instruction retired; execution continues.
    Running,
    /// A `HALT` retired; the program is complete.
    Halted,
}

/// Why a [`Machine::run`] call stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// Program executed `HALT`.
    Halted,
    /// The cycle budget was exhausted first (execution-time monitor trip).
    BudgetExhausted,
    /// A hardware exception was raised.
    Exception(Exception),
}

/// Outcome of [`Machine::run`]: exit reason plus cycles actually consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why execution stopped.
    pub exit: RunExit,
    /// Cycles consumed by this run call.
    pub cycles_used: u64,
}

/// A deterministic TM32 machine.
///
/// # Examples
///
/// ```
/// use nlft_machine::asm::assemble;
/// use nlft_machine::machine::{Machine, RunExit};
/// use nlft_machine::mmu::MemoryMap;
///
/// let image = assemble("
///     in   r0, port0
///     in   r1, port1
///     add  r2, r0, r1
///     out  r2, port0
///     halt
/// ").unwrap();
/// let mut m = Machine::new(4096, MemoryMap::permissive());
/// m.load_program(0, &image.words).unwrap();
/// m.reset(0, 4096);
/// m.set_input(0, 20);
/// m.set_input(1, 22);
/// let out = m.run(1_000);
/// assert_eq!(out.exit, RunExit::Halted);
/// assert_eq!(m.output(0), Some(42));
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    /// Architectural CPU state (public so fault injectors can reach it).
    pub cpu: CpuState,
    /// Main memory (public for fault injection and oracle inspection).
    pub mem: EccMemory,
    map: MemoryMap,
    inputs: [u32; NUM_PORTS],
    outputs: [Option<u32>; NUM_PORTS],
    halted: bool,
    trace: Option<VecDeque<TraceEntry>>,
    trace_capacity: usize,
    /// Decoded-instruction cache, indexed by word address (`pc / 4`).
    /// Grown lazily to the highest fetched PC, so a freshly instantiated
    /// machine (one per campaign trial) pays for its code footprint, not
    /// its memory size.
    decode_cache: Vec<DecodeEntry>,
    /// Bumped whenever the active memory map changes; entries from older
    /// epochs are stale because their Execute-permission check may no
    /// longer hold.
    cache_epoch: u64,
    decode_cache_enabled: bool,
}

/// One slot of the decoded-instruction cache.
///
/// A hit requires all three tags to match: the machine's `cache_epoch`
/// (the MMU Execute check was performed under the *current* map), the
/// memory's mutation [`EccMemory::generation`] (no image load, reset,
/// injection or scrub since the fill), and the fetched `word` itself
/// (catches ordinary stores into the instruction stream, which bump
/// neither counter). The word tag alone already makes the cache
/// semantically transparent; the generation tag is belt-and-braces that
/// also keeps hits off the faulty-word load path entirely.
#[derive(Debug, Clone, Copy)]
struct DecodeEntry {
    /// `cache_epoch` at fill time; 0 marks an empty slot.
    epoch: u64,
    /// Memory mutation generation at fill time.
    generation: u64,
    /// The instruction word this entry decoded.
    word: u32,
    /// Its decoding.
    instr: Instr,
}

impl DecodeEntry {
    const EMPTY: DecodeEntry = DecodeEntry {
        epoch: 0,
        generation: 0,
        word: 0,
        instr: Instr::Nop,
    };
}

/// One retired (or faulting) instruction in the execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// PC the instruction was fetched from.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// Cycle counter *after* the instruction.
    pub cycles: u64,
}

impl Machine {
    /// Creates a machine with `mem_bytes` of ECC memory and the given
    /// (initially active) memory map. CPU starts reset at address 0.
    pub fn new(mem_bytes: u32, map: MemoryMap) -> Self {
        Machine {
            cpu: CpuState::new(0, mem_bytes),
            mem: EccMemory::new(mem_bytes),
            map,
            inputs: [0; NUM_PORTS],
            outputs: [None; NUM_PORTS],
            halted: false,
            trace: None,
            trace_capacity: 0,
            decode_cache: Vec::new(),
            cache_epoch: 1,
            decode_cache_enabled: true,
        }
    }

    /// Enables the execution trace, keeping the most recent `capacity`
    /// instructions — fault forensics: after an exception, the trace shows
    /// the path that led there.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace(&mut self, capacity: usize) {
        assert!(capacity > 0, "trace capacity must be positive");
        self.trace = Some(VecDeque::with_capacity(capacity));
        self.trace_capacity = capacity;
    }

    /// Disables and discards the trace.
    pub fn disable_trace(&mut self) {
        self.trace = None;
        self.trace_capacity = 0;
    }

    /// The most recent trace entries, oldest first. Empty when tracing is
    /// disabled.
    pub fn trace(&self) -> impl Iterator<Item = &TraceEntry> {
        self.trace.iter().flatten()
    }

    /// Renders the trace as disassembly, one line per retired instruction.
    pub fn format_trace(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in self.trace() {
            let _ = writeln!(out, "{:>10}  {:#06x}: {}", e.cycles, e.pc, e.instr);
        }
        out
    }

    /// Creates a machine whose memory has no ECC (cheap-node configuration).
    pub fn new_without_ecc(mem_bytes: u32, map: MemoryMap) -> Self {
        let mut m = Machine::new(mem_bytes, map);
        m.mem = EccMemory::new_without_ecc(mem_bytes);
        m
    }

    /// Replaces the active memory map (the kernel does this on every task
    /// switch to confine the incoming task).
    pub fn set_memory_map(&mut self, map: MemoryMap) {
        self.map = map;
        // Cached entries embedded an Execute check against the old map.
        self.cache_epoch = self.cache_epoch.wrapping_add(1);
        if self.cache_epoch == 0 {
            // 0 marks empty slots; skip it on wrap-around.
            self.cache_epoch = 1;
        }
    }

    /// Enables or disables the decoded-instruction cache (on by default).
    ///
    /// Execution is bit-identical either way — the differential property
    /// suite runs the same programs and fault plans through both modes and
    /// asserts identical traces, exceptions and cycle counts; disabling
    /// only exists for that comparison and for forensics.
    pub fn set_decode_cache_enabled(&mut self, enabled: bool) {
        self.decode_cache_enabled = enabled;
    }

    /// The active memory map.
    pub fn memory_map(&self) -> &MemoryMap {
        &self.map
    }

    /// Loads a program image at `base` (bypasses the MMU — boot loader).
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] for invalid addresses.
    pub fn load_program(&mut self, base: u32, words: &[u32]) -> Result<(), MemError> {
        self.mem.load_image(base, words)
    }

    /// Resets the CPU to `entry` with the stack at `stack_top`, clears the
    /// halt latch and all output ports. Memory contents are preserved.
    pub fn reset(&mut self, entry: u32, stack_top: u32) {
        self.cpu = CpuState::new(entry, stack_top);
        self.outputs = [None; NUM_PORTS];
        self.halted = false;
    }

    /// Sets an input port value.
    ///
    /// # Panics
    ///
    /// Panics if `port >= NUM_PORTS`.
    pub fn set_input(&mut self, port: usize, value: u32) {
        self.inputs[port] = value;
    }

    /// Reads back an output port; `None` if the program never wrote it.
    ///
    /// # Panics
    ///
    /// Panics if `port >= NUM_PORTS`.
    pub fn output(&self, port: usize) -> Option<u32> {
        self.outputs[port]
    }

    /// All output ports (index = port number).
    pub fn outputs(&self) -> &[Option<u32>; NUM_PORTS] {
        &self.outputs
    }

    /// Clears all output ports (between redundant TEM executions).
    pub fn clear_outputs(&mut self) {
        self.outputs = [None; NUM_PORTS];
    }

    /// Whether the last step retired a `HALT`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Clears the halt latch without touching CPU state — the kernel uses
    /// this when dispatching a different task's context after the current
    /// one halted.
    pub fn clear_halt(&mut self) {
        self.halted = false;
    }

    fn load_checked(&mut self, addr: u32, access: Access) -> Result<u32, Exception> {
        self.map.check(addr, access)?;
        Ok(self.mem.load(addr)?)
    }

    /// Fetches and decodes the instruction at `pc`, consulting the decode
    /// cache.
    ///
    /// The memory load is *never* skipped: ECC semantics (correction
    /// counters, scrubbing, uncorrectable exceptions, silent escapes) must
    /// fire exactly as they would uncached. What a hit skips is the MMU
    /// region scan (validated under the current `cache_epoch` at fill
    /// time; the check is a pure function of map, address and access, so
    /// an unchanged epoch implies an unchanged outcome) and the decoder.
    #[inline]
    fn fetch_decode(&mut self, pc: u32) -> Result<Instr, Exception> {
        if self.decode_cache_enabled && pc.is_multiple_of(WORD_BYTES) {
            let idx = (pc / WORD_BYTES) as usize;
            if idx < self.decode_cache.len() {
                let e = self.decode_cache[idx];
                if e.epoch == self.cache_epoch && e.generation == self.mem.generation() {
                    let word = self.mem.load(pc)?;
                    if word == e.word {
                        return Ok(e.instr);
                    }
                }
            }
        }
        self.fetch_decode_slow(pc)
    }

    fn fetch_decode_slow(&mut self, pc: u32) -> Result<Instr, Exception> {
        let word = self.load_checked(pc, Access::Execute)?;
        let instr =
            Instr::decode(word).map_err(|e| Exception::IllegalOpcode { pc, word: e.word })?;
        if self.decode_cache_enabled && pc.is_multiple_of(WORD_BYTES) {
            let idx = (pc / WORD_BYTES) as usize;
            if idx < (self.mem.size_bytes() / WORD_BYTES) as usize {
                if idx >= self.decode_cache.len() {
                    // Amortised growth: `resize` reserves geometrically.
                    self.decode_cache.resize(idx + 1, DecodeEntry::EMPTY);
                }
                self.decode_cache[idx] = DecodeEntry {
                    epoch: self.cache_epoch,
                    generation: self.mem.generation(),
                    word,
                    instr,
                };
            }
        }
        Ok(instr)
    }

    fn store_checked(&mut self, addr: u32, value: u32) -> Result<(), Exception> {
        self.map.check(addr, Access::Write)?;
        self.mem.store(addr, value)?;
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns the [`Exception`] raised by any hardware EDM. The CPU state
    /// is left as-is at the fault point so a diagnostic handler (the kernel)
    /// can inspect it.
    pub fn step(&mut self) -> Result<Step, Exception> {
        if self.halted {
            return Ok(Step::Halted);
        }
        let pc = self.cpu.pc;
        let instr = self.fetch_decode(pc)?;
        self.cpu.cycles += instr.cycles();
        if let Some(trace) = &mut self.trace {
            if trace.len() == self.trace_capacity {
                trace.pop_front();
            }
            trace.push_back(TraceEntry {
                pc,
                instr,
                cycles: self.cpu.cycles,
            });
        }
        let mut next_pc = pc.wrapping_add(WORD_BYTES);

        macro_rules! alu {
            ($rd:expr, $val:expr) => {{
                let v = $val;
                self.cpu.set_reg($rd, v);
                self.cpu.flags = StatusFlags::from_result(v);
            }};
        }

        match instr {
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
                return Ok(Step::Halted);
            }
            Instr::Ldi(rd, v) => alu!(rd, v as i32 as u32),
            Instr::Lui(rd, v) => alu!(rd, u32::from(v) << 16),
            Instr::Ld(rd, rs1, off) => {
                let addr = self.cpu.reg(rs1).wrapping_add(off as i32 as u32);
                let v = self.load_checked(addr, Access::Read)?;
                alu!(rd, v);
            }
            Instr::St(rd, rs1, off) => {
                let addr = self.cpu.reg(rs1).wrapping_add(off as i32 as u32);
                self.store_checked(addr, self.cpu.reg(rd))?;
            }
            Instr::Mov(rd, rs1) => alu!(rd, self.cpu.reg(rs1)),
            Instr::Add(rd, a, b) => alu!(rd, self.cpu.reg(a).wrapping_add(self.cpu.reg(b))),
            Instr::Sub(rd, a, b) => alu!(rd, self.cpu.reg(a).wrapping_sub(self.cpu.reg(b))),
            Instr::Mul(rd, a, b) => alu!(rd, self.cpu.reg(a).wrapping_mul(self.cpu.reg(b))),
            Instr::Div(rd, a, b) => {
                let divisor = self.cpu.reg(b) as i32;
                if divisor == 0 {
                    return Err(Exception::DivideByZero { pc });
                }
                let dividend = self.cpu.reg(a) as i32;
                alu!(rd, dividend.wrapping_div(divisor) as u32);
            }
            Instr::And(rd, a, b) => alu!(rd, self.cpu.reg(a) & self.cpu.reg(b)),
            Instr::Or(rd, a, b) => alu!(rd, self.cpu.reg(a) | self.cpu.reg(b)),
            Instr::Xor(rd, a, b) => alu!(rd, self.cpu.reg(a) ^ self.cpu.reg(b)),
            Instr::Shl(rd, a, b) => alu!(rd, self.cpu.reg(a) << (self.cpu.reg(b) & 31)),
            Instr::Shr(rd, a, b) => alu!(rd, self.cpu.reg(a) >> (self.cpu.reg(b) & 31)),
            Instr::Addi(rd, rs1, v) => {
                alu!(rd, self.cpu.reg(rs1).wrapping_add(v as i32 as u32))
            }
            Instr::Cmp(a, b) => {
                let (x, y) = (self.cpu.reg(a) as i32, self.cpu.reg(b) as i32);
                self.cpu.flags = StatusFlags {
                    zero: x == y,
                    negative: x < y,
                };
            }
            Instr::Jmp(t) => {
                next_pc = u32::from(t);
                self.cpu.record_branch(pc, next_pc);
            }
            Instr::Jz(t) => {
                if self.cpu.flags.zero {
                    next_pc = u32::from(t);
                    self.cpu.record_branch(pc, next_pc);
                }
            }
            Instr::Jnz(t) => {
                if !self.cpu.flags.zero {
                    next_pc = u32::from(t);
                    self.cpu.record_branch(pc, next_pc);
                }
            }
            Instr::Jn(t) => {
                if self.cpu.flags.negative {
                    next_pc = u32::from(t);
                    self.cpu.record_branch(pc, next_pc);
                }
            }
            Instr::Jge(t) => {
                if !self.cpu.flags.negative {
                    next_pc = u32::from(t);
                    self.cpu.record_branch(pc, next_pc);
                }
            }
            Instr::Call(t) => {
                let sp = self.cpu.sp.wrapping_sub(WORD_BYTES);
                self.store_checked(sp, next_pc)?;
                self.cpu.sp = sp;
                next_pc = u32::from(t);
                self.cpu.record_branch(pc, next_pc);
            }
            Instr::Ret => {
                let v = self.load_checked(self.cpu.sp, Access::Read)?;
                self.cpu.sp = self.cpu.sp.wrapping_add(WORD_BYTES);
                next_pc = v;
                self.cpu.record_branch(pc, next_pc);
            }
            Instr::Push(rd) => {
                let sp = self.cpu.sp.wrapping_sub(WORD_BYTES);
                self.store_checked(sp, self.cpu.reg(rd))?;
                self.cpu.sp = sp;
            }
            Instr::Pop(rd) => {
                let v = self.load_checked(self.cpu.sp, Access::Read)?;
                self.cpu.sp = self.cpu.sp.wrapping_add(WORD_BYTES);
                self.cpu.set_reg(rd, v);
            }
            Instr::In(rd, port) => {
                let p = port as usize;
                if p >= NUM_PORTS {
                    return Err(Exception::PortFault { port });
                }
                self.cpu.set_reg(rd, self.inputs[p]);
            }
            Instr::Out(rd, port) => {
                let p = port as usize;
                if p >= NUM_PORTS {
                    return Err(Exception::PortFault { port });
                }
                self.outputs[p] = Some(self.cpu.reg(rd));
            }
        }
        self.cpu.pc = next_pc;
        Ok(Step::Running)
    }

    /// Runs until `HALT`, an exception, or `cycle_budget` cycles elapse.
    ///
    /// The budget models the execution-time monitor of Table 1: a task that
    /// overruns (e.g. a control-flow error trapped it in a loop) is stopped
    /// and the overrun reported, rather than starving other tasks.
    pub fn run(&mut self, cycle_budget: u64) -> RunOutcome {
        let start = self.cpu.cycles;
        loop {
            let used = self.cpu.cycles - start;
            if used >= cycle_budget {
                return RunOutcome {
                    exit: RunExit::BudgetExhausted,
                    cycles_used: used,
                };
            }
            match self.step() {
                Ok(Step::Running) => {}
                Ok(Step::Halted) => {
                    return RunOutcome {
                        exit: RunExit::Halted,
                        cycles_used: self.cpu.cycles - start,
                    };
                }
                Err(e) => {
                    return RunOutcome {
                        exit: RunExit::Exception(e),
                        cycles_used: self.cpu.cycles - start,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::isa::Reg;
    use crate::mmu::{Perms, Region};

    fn machine_with(src: &str) -> Machine {
        let image = assemble(src).expect("test program must assemble");
        let mut m = Machine::new(4096, MemoryMap::permissive());
        m.load_program(0, &image.words).unwrap();
        m.reset(0, 4096);
        m
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut m = machine_with(
            "ldi r0, 6
             ldi r1, 7
             mul r2, r0, r1
             out r2, port0
             halt",
        );
        let out = m.run(100);
        assert_eq!(out.exit, RunExit::Halted);
        assert_eq!(m.output(0), Some(42));
        assert!(out.cycles_used > 0);
    }

    #[test]
    fn branching_loop_sums() {
        // sum 1..=5 into r0
        let mut m = machine_with(
            "    ldi r0, 0
                 ldi r1, 5
                 ldi r2, 1
             loop:
                 add r0, r0, r1
                 sub r1, r1, r2
                 jnz loop
                 out r0, port0
                 halt",
        );
        assert_eq!(m.run(1000).exit, RunExit::Halted);
        assert_eq!(m.output(0), Some(15));
    }

    #[test]
    fn call_ret_uses_stack() {
        let mut m = machine_with(
            "    ldi r0, 1
                 call fn
                 out r0, port0
                 halt
             fn:
                 addi r0, r0, 10
                 ret",
        );
        assert_eq!(m.run(100).exit, RunExit::Halted);
        assert_eq!(m.output(0), Some(11));
    }

    #[test]
    fn memory_load_store() {
        let mut m = machine_with(
            "ldi r1, 1024
             ldi r0, 77
             st  r0, [r1+0]
             ld  r2, [r1+0]
             out r2, port1
             halt",
        );
        assert_eq!(m.run(100).exit, RunExit::Halted);
        assert_eq!(m.output(1), Some(77));
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut m = machine_with(
            "ldi r0, 10
             ldi r1, 0
             div r2, r0, r1
             halt",
        );
        match m.run(100).exit {
            RunExit::Exception(Exception::DivideByZero { pc }) => assert_eq!(pc, 8),
            other => panic!("expected divide-by-zero, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_stops_infinite_loop() {
        let mut m = machine_with("loop: jmp loop");
        let out = m.run(50);
        assert_eq!(out.exit, RunExit::BudgetExhausted);
        assert!(out.cycles_used >= 50);
    }

    #[test]
    fn mmu_violation_on_store_outside_map() {
        let image = assemble(
            "ldi r1, 0
             lui r1, 1
             ldi r0, 5
             st  r0, [r1+0]
             halt",
        )
        .unwrap();
        let map = MemoryMap::from_regions(vec![Region::new(0, 4096, Perms::RX)]);
        let mut m = Machine::new(4096, map);
        m.load_program(0, &image.words).unwrap();
        m.reset(0, 4096);
        match m.run(100).exit {
            RunExit::Exception(Exception::Mmu(v)) => {
                assert_eq!(v.access, Access::Write);
                assert_eq!(v.addr, 0x10000);
            }
            other => panic!("expected MMU violation, got {other:?}"),
        }
    }

    #[test]
    fn bus_error_on_unmapped_memory() {
        let mut m = machine_with(
            "lui r1, 2
             ld  r0, [r1+0]
             halt",
        );
        match m.run(100).exit {
            RunExit::Exception(Exception::Memory(MemError::Bus { addr })) => {
                assert_eq!(addr, 0x20000)
            }
            other => panic!("expected bus error, got {other:?}"),
        }
    }

    #[test]
    fn misaligned_pc_raises_address_error() {
        let mut m = machine_with("halt");
        m.cpu.pc = 2; // as if a fault flipped a PC bit
        match m.run(100).exit {
            RunExit::Exception(Exception::Memory(MemError::Misaligned { addr })) => {
                assert_eq!(addr, 2)
            }
            other => panic!("expected misaligned, got {other:?}"),
        }
    }

    #[test]
    fn illegal_opcode_from_data_fetch() {
        let mut m = machine_with("halt");
        m.mem.store(100, 0xFF00_0000).unwrap();
        m.cpu.pc = 100; // control-flow error into garbage
        match m.run(100).exit {
            RunExit::Exception(Exception::IllegalOpcode { pc, word }) => {
                assert_eq!(pc, 100);
                assert_eq!(word, 0xFF00_0000);
            }
            other => panic!("expected illegal opcode, got {other:?}"),
        }
    }

    #[test]
    fn port_fault_on_bad_port() {
        let mut m = machine_with("in r0, port15\nhalt");
        assert_eq!(m.run(10).exit, RunExit::Halted);
        // port 16 is out of range: patch an IN with port 16
        let mut m2 = Machine::new(4096, MemoryMap::permissive());
        m2.load_program(0, &[Instr::In(Reg::R0, 16).encode()])
            .unwrap();
        m2.reset(0, 4096);
        assert_eq!(
            m2.run(10).exit,
            RunExit::Exception(Exception::PortFault { port: 16 })
        );
    }

    #[test]
    fn outputs_cleared_between_executions() {
        let mut m = machine_with("ldi r0, 9\nout r0, port2\nhalt");
        m.run(100);
        assert_eq!(m.output(2), Some(9));
        m.clear_outputs();
        assert_eq!(m.output(2), None);
        m.reset(0, 4096);
        m.run(100);
        assert_eq!(m.output(2), Some(9), "reset + rerun reproduces output");
    }

    #[test]
    fn deterministic_replay() {
        let src = "
            in  r0, port0
            ldi r1, 3
            mul r2, r0, r1
            addi r2, r2, 17
            out r2, port0
            halt";
        let mut a = machine_with(src);
        let mut b = machine_with(src);
        a.set_input(0, 1234);
        b.set_input(0, 1234);
        let oa = a.run(1000);
        let ob = b.run(1000);
        assert_eq!(oa, ob);
        assert_eq!(a.output(0), b.output(0));
        assert_eq!(a.cpu, b.cpu);
    }

    #[test]
    fn trace_records_recent_instructions() {
        let mut m = machine_with(
            "ldi r0, 1
             ldi r1, 2
             add r2, r0, r1
             out r2, port0
             halt",
        );
        m.enable_trace(8);
        m.run(100);
        let pcs: Vec<u32> = m.trace().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![0, 4, 8, 12, 16]);
        let text = m.format_trace();
        assert!(text.contains("add r2, r0, r1"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn trace_ring_buffer_keeps_only_recent() {
        let mut m = machine_with(
            "    ldi r0, 20
                 ldi r1, 1
             loop:
                 sub r0, r0, r1
                 jnz loop
                 halt",
        );
        m.enable_trace(4);
        m.run(1_000);
        let entries: Vec<_> = m.trace().copied().collect();
        assert_eq!(entries.len(), 4, "capacity bounds the trace");
        // The last entry is the HALT.
        assert_eq!(entries.last().unwrap().instr, Instr::Halt);
        // Cycle counters are strictly increasing.
        for w in entries.windows(2) {
            assert!(w[0].cycles < w[1].cycles);
        }
    }

    #[test]
    fn trace_shows_path_to_exception() {
        let mut m = machine_with(
            "ldi r0, 10
             ldi r1, 0
             div r2, r0, r1
             halt",
        );
        m.enable_trace(16);
        let out = m.run(100);
        assert!(matches!(out.exit, RunExit::Exception(_)));
        // The faulting DIV is the last traced instruction.
        let last = m.trace().last().unwrap();
        assert!(matches!(last.instr, Instr::Div(..)));
    }

    #[test]
    fn disabled_trace_is_empty_and_free() {
        let mut m = machine_with("halt");
        m.run(10);
        assert_eq!(m.trace().count(), 0);
        assert!(m.format_trace().is_empty());
        m.enable_trace(4);
        m.disable_trace();
        m.reset(0, 4096);
        m.run(10);
        assert_eq!(m.trace().count(), 0);
    }

    #[test]
    fn step_after_halt_stays_halted() {
        let mut m = machine_with("halt");
        assert_eq!(m.step().unwrap(), Step::Halted);
        assert_eq!(m.step().unwrap(), Step::Halted);
        assert!(m.is_halted());
    }

    #[test]
    fn decode_cache_sees_direct_instruction_store() {
        // Self-modifying code through a plain data store never bumps the
        // memory generation; the word tag on the cached entry must catch
        // the rewrite anyway.
        let src = "ldi r0, 1
                   out r0, port0
                   halt";
        let image = assemble(src).unwrap();
        let mut m = Machine::new(4096, MemoryMap::permissive());
        m.load_program(0, &image.words).unwrap();
        m.reset(0, 4096);
        assert_eq!(m.run(100).exit, RunExit::Halted);
        assert_eq!(m.output(0), Some(1));

        // Patch the first instruction behind the cache's back.
        let patched = assemble("ldi r0, 99").unwrap();
        m.mem.store(0, patched.words[0]).unwrap();
        m.reset(0, 4096);
        assert_eq!(m.run(100).exit, RunExit::Halted);
        assert_eq!(m.output(0), Some(99), "stale decode served after patch");
    }

    #[test]
    fn decode_cache_invalidated_by_map_switch() {
        // A successful run fills the cache; switching to a map that revokes
        // Execute on the code region must raise the MMU violation instead
        // of serving cached decodes.
        let mut m = machine_with("ldi r0, 5\nout r0, port0\nhalt");
        assert_eq!(m.run(100).exit, RunExit::Halted);

        m.set_memory_map(MemoryMap::from_regions(vec![Region::new(
            0x0000,
            0x1000,
            Perms::RW,
        )]));
        m.reset(0, 4096);
        let out = m.run(100);
        assert!(
            matches!(out.exit, RunExit::Exception(Exception::Mmu(_))),
            "expected MMU violation after Execute revoked, got {:?}",
            out.exit
        );
    }

    #[test]
    fn decode_cache_disabled_matches_enabled() {
        // Sanity pin for the differential property suite: the same program
        // produces identical outputs and cycle counts either way.
        let src = "    ldi r0, 0
                       ldi r1, 10
                       ldi r2, 1
                   loop:
                       add r0, r0, r1
                       sub r1, r1, r2
                       jnz loop
                       out r0, port0
                       halt";
        let run = |cached: bool| {
            let mut m = machine_with(src);
            m.set_decode_cache_enabled(cached);
            let out = m.run(1_000);
            (out, m.output(0), m.cpu.clone())
        };
        assert_eq!(run(true), run(false));
    }
}
