//! Software-implemented fault injection (SWIFI) for the TM32 machine.
//!
//! Replaces the heavy-ion and pin-level injection campaigns of the paper's
//! companion studies with deterministic, seedable bit flips into the same
//! architectural resources: data registers, PC, SP, status register and
//! memory words. Transient faults are single XOR events; permanent faults
//! are stuck-at bits re-asserted before every instruction.

use std::fmt;

use nlft_sim::rng::RngStream;

use crate::cpu::StatusFlags;
use crate::isa::{Reg, NUM_REGS};
use crate::machine::{Machine, RunExit, RunOutcome};
use crate::mem::WORD_BYTES;

/// Why a fault specification was rejected at construction. Fractions and
/// recurrence probabilities must be real numbers in `[0, 1]`; NaN and
/// out-of-range values are rejected here with the offending field named,
/// never clamped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpecError {
    /// A fraction or probability was NaN or outside `[0, 1]`.
    NotAProbability {
        /// Which field was rejected (e.g. `"stuck_at_fraction"`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::NotAProbability { field, value } => {
                write!(f, "{field} {value} must be a probability in [0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// Checks one probability field, rejecting NaN and out-of-range values.
fn probability(field: &'static str, value: f64) -> Result<(), FaultSpecError> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(FaultSpecError::NotAProbability { field, value })
    }
}

/// The architectural resource a fault lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// A general-purpose data register.
    Register(Reg),
    /// The program counter.
    Pc,
    /// The stack pointer.
    Sp,
    /// The status (flags) register.
    Status,
    /// A 32-bit memory word at the given byte address.
    MemoryWord(u32),
}

impl FaultTarget {
    /// Coarse class used for detection-matrix reporting.
    pub fn class(self) -> TargetClass {
        match self {
            FaultTarget::Register(_) => TargetClass::DataRegister,
            FaultTarget::Pc => TargetClass::Pc,
            FaultTarget::Sp => TargetClass::Sp,
            FaultTarget::Status => TargetClass::Status,
            FaultTarget::MemoryWord(_) => TargetClass::Memory,
        }
    }
}

/// Coarse fault-target classes, the rows of the Table-1 detection matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TargetClass {
    /// General-purpose registers.
    DataRegister,
    /// Program counter.
    Pc,
    /// Stack pointer.
    Sp,
    /// Status register.
    Status,
    /// Main memory.
    Memory,
}

impl TargetClass {
    /// All classes, in reporting order.
    pub const ALL: [TargetClass; 5] = [
        TargetClass::DataRegister,
        TargetClass::Pc,
        TargetClass::Sp,
        TargetClass::Status,
        TargetClass::Memory,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TargetClass::DataRegister => "data register",
            TargetClass::Pc => "program counter",
            TargetClass::Sp => "stack pointer",
            TargetClass::Status => "status register",
            TargetClass::Memory => "memory word",
        }
    }
}

/// A single transient fault: an XOR of `mask` into `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientFault {
    /// Where the fault strikes.
    pub target: FaultTarget,
    /// Which bits flip.
    pub mask: u32,
}

impl TransientFault {
    /// Applies the bit flip to the machine. Memory flips into unmapped
    /// addresses vanish without effect (as in reality).
    pub fn apply(&self, m: &mut Machine) {
        match self.target {
            FaultTarget::Register(r) => m.cpu.flip_reg(r, self.mask),
            FaultTarget::Pc => m.cpu.pc ^= self.mask,
            FaultTarget::Sp => m.cpu.sp ^= self.mask,
            FaultTarget::Status => {
                let w = m.cpu.flags.to_word() ^ self.mask;
                m.cpu.flags = StatusFlags::from_word(w);
            }
            FaultTarget::MemoryWord(addr) => {
                m.mem.inject_flip(addr, self.mask);
            }
        }
    }
}

/// A permanent stuck-at fault, re-asserted before every instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckAtFault {
    /// Where the fault sits.
    pub target: FaultTarget,
    /// The stuck bit (single-bit mask).
    pub bit: u32,
    /// Stuck-at-one when `true`, stuck-at-zero otherwise.
    pub stuck_high: bool,
}

impl StuckAtFault {
    /// Forces the stuck bit to its value.
    pub fn assert_on(&self, m: &mut Machine) {
        let force = |v: u32| {
            if self.stuck_high {
                v | self.bit
            } else {
                v & !self.bit
            }
        };
        match self.target {
            FaultTarget::Register(r) => {
                let v = m.cpu.reg(r);
                m.cpu.set_reg(r, force(v));
            }
            FaultTarget::Pc => m.cpu.pc = force(m.cpu.pc),
            FaultTarget::Sp => m.cpu.sp = force(m.cpu.sp),
            FaultTarget::Status => {
                m.cpu.flags = StatusFlags::from_word(force(m.cpu.flags.to_word()));
            }
            FaultTarget::MemoryWord(addr) => {
                // Model as repeated corruption of the word's true value.
                if let Ok(v) = m.mem.peek(addr) {
                    let _ = m.mem.store(addr, force(v));
                }
            }
        }
    }
}

/// The persistence class of a fault model — the ground truth a diagnosis
/// layer tries to recover from the error stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultPersistence {
    /// A one-shot event; never recurs.
    Transient,
    /// A recurring burst of transients; dies out eventually.
    Intermittent,
    /// Permanent hardware damage; survives restarts.
    Permanent,
}

impl FaultPersistence {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FaultPersistence::Transient => "transient",
            FaultPersistence::Intermittent => "intermittent",
            FaultPersistence::Permanent => "permanent",
        }
    }
}

/// An intermittent fault: the same transient re-manifests over a burst of
/// jobs with a fixed per-job recurrence probability, then dies out —
/// marginal hardware, a loose connection, or an environmental disturbance
/// that eventually passes. Between manifestations the node looks healthy,
/// which is exactly what makes intermittents hard to tell from bad luck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntermittentFault {
    /// The transient that recurs.
    pub fault: TransientFault,
    /// Probability the fault manifests in a given job of the burst.
    pub recurrence: f64,
    /// Burst length in jobs since onset; after this many jobs the fault
    /// never manifests again.
    pub burst_jobs: u32,
}

impl IntermittentFault {
    /// Validates the spec: the recurrence must be a real probability in
    /// `[0, 1]` (NaN rejected).
    pub fn check(&self) -> Result<(), FaultSpecError> {
        probability("recurrence", self.recurrence)
    }

    /// Whether the fault manifests in the job `jobs_since_onset` jobs after
    /// onset (0-based). The onset job always manifests; later jobs inside
    /// the burst manifest with probability [`IntermittentFault::recurrence`].
    pub fn manifests(&self, jobs_since_onset: u32, rng: &mut RngStream) -> bool {
        if jobs_since_onset >= self.burst_jobs {
            return false;
        }
        jobs_since_onset == 0 || rng.bernoulli(self.recurrence)
    }
}

/// A core-level fault for multicore NLFT nodes: one core of the node
/// stops executing, either as a hard crash (no cleanup code runs — a lock
/// held at that instant leaks forever) or escalated through the kernel's
/// fail-silence ladder (an orderly silence whose release hook revokes any
/// held resource).
///
/// Consumed by the multicore executive in `nlft-kernel`; deliberately not
/// part of [`FaultSpace::sample`]'s draw sequence so every existing
/// campaign's RNG stream stays bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreDeathFault {
    /// The core that dies (executive core index).
    pub core: u32,
    /// Earliest tick at which the fault strikes.
    pub at_tick: u64,
    /// Defer the strike until the core is executing *inside* a critical
    /// section (the adversarial placement the lock-based baseline cannot
    /// survive); when `false` the core dies exactly at `at_tick`.
    pub in_section: bool,
    /// Escalated fail-silence (orderly, resources revoked) instead of a
    /// hard crash.
    pub escalated: bool,
}

impl CoreDeathFault {
    /// Samples an in-section core death: uniform victim core, uniform
    /// arming tick in `[1, horizon)`, escalated with probability
    /// `escalated_p`. Three draws, in that order.
    ///
    /// # Panics
    ///
    /// Panics when `cores` is zero or `horizon < 2`.
    pub fn sample(rng: &mut RngStream, cores: u32, horizon: u64, escalated_p: f64) -> Self {
        assert!(cores > 0, "a node has at least one core");
        assert!(horizon >= 2, "horizon too short to arm a death");
        let core = rng.uniform_range(0, u64::from(cores)) as u32;
        let at_tick = rng.uniform_range(1, horizon);
        let escalated = rng.bernoulli(escalated_p);
        CoreDeathFault {
            core,
            at_tick,
            in_section: true,
            escalated,
        }
    }
}

/// A sampled fault of any persistence class (see [`FaultSpace::sample_model`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// A one-shot bit flip.
    Transient(TransientFault),
    /// A recurring burst of the same bit flip.
    Intermittent(IntermittentFault),
    /// A permanently stuck bit.
    StuckAt(StuckAtFault),
}

impl FaultModel {
    /// The ground-truth persistence class of this model.
    pub fn persistence(&self) -> FaultPersistence {
        match self {
            FaultModel::Transient(_) => FaultPersistence::Transient,
            FaultModel::Intermittent(_) => FaultPersistence::Intermittent,
            FaultModel::StuckAt(_) => FaultPersistence::Permanent,
        }
    }

    /// The architectural target the model strikes.
    pub fn target(&self) -> FaultTarget {
        match self {
            FaultModel::Transient(f) => f.target,
            FaultModel::Intermittent(f) => f.fault.target,
            FaultModel::StuckAt(f) => f.target,
        }
    }
}

/// The sampling space for random fault generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpace {
    /// Include general-purpose registers.
    pub registers: bool,
    /// Include the PC.
    pub pc: bool,
    /// Include the SP.
    pub sp: bool,
    /// Include the status register.
    pub status: bool,
    /// Include memory words in `[0, memory_bytes)`; `0` excludes memory.
    pub memory_bytes: u32,
    /// Number of bits to flip (1 = classic single-event upset).
    pub bits: u32,
    /// Probability that a [`FaultSpace::sample_model`] draw is an
    /// intermittent (recurring) fault rather than a one-shot transient.
    pub intermittent_fraction: f64,
    /// Per-job recurrence probability given to sampled intermittent faults.
    pub recurrence: f64,
    /// Burst length (jobs) given to sampled intermittent faults.
    pub burst_jobs: u32,
    /// Probability that a [`FaultSpace::sample_model`] draw is a permanent
    /// stuck-at bit. Zero in every stock constructor: permanent faults are
    /// opt-in per campaign via [`FaultSpace::with_stuck_at`].
    pub stuck_at_fraction: f64,
}

impl FaultSpace {
    /// The classic single-event-upset space over a whole machine: registers,
    /// PC, SP, status and `memory_bytes` of main memory, single-bit flips.
    ///
    /// The space is purely *transient* — [`FaultSpace::sample`] draws
    /// one-shot flips and [`FaultSpace::sample_model`] never yields an
    /// intermittent or stuck-at fault unless the fractions are raised via
    /// [`FaultSpace::with_intermittent`] / [`FaultSpace::with_stuck_at`].
    pub fn seu(memory_bytes: u32) -> Self {
        FaultSpace {
            registers: true,
            pc: true,
            sp: true,
            status: true,
            memory_bytes,
            bits: 1,
            intermittent_fraction: 0.0,
            recurrence: 0.0,
            burst_jobs: 0,
            stuck_at_fraction: 0.0,
        }
    }

    /// CPU-internal single-bit transients only (registers, PC, SP, status;
    /// no memory) — the component of the space that ECC cannot help with,
    /// and the one TEM exists for. Like [`FaultSpace::seu`] this space is
    /// transient-only until intermittent or stuck-at fractions are opted
    /// into via the builder methods.
    pub fn cpu_only() -> Self {
        FaultSpace {
            registers: true,
            pc: true,
            sp: true,
            status: true,
            memory_bytes: 0,
            bits: 1,
            intermittent_fraction: 0.0,
            recurrence: 0.0,
            burst_jobs: 0,
            stuck_at_fraction: 0.0,
        }
    }

    /// Opts permanent stuck-at faults into the space: `fraction` of
    /// [`FaultSpace::sample_model`] draws become [`StuckAtFault`]s instead
    /// of transients. Campaigns that only call [`FaultSpace::sample`] are
    /// unaffected.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction <= 1.0`.
    pub fn with_stuck_at(self, fraction: f64) -> Self {
        match self.try_with_stuck_at(fraction) {
            Ok(space) => space,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking form of [`FaultSpace::with_stuck_at`]: rejects NaN
    /// and out-of-`[0, 1]` fractions with a typed error.
    pub fn try_with_stuck_at(mut self, fraction: f64) -> Result<Self, FaultSpecError> {
        probability("stuck_at_fraction", fraction)?;
        self.stuck_at_fraction = fraction;
        Ok(self)
    }

    /// Opts intermittent (recurring-burst) faults into the space: `fraction`
    /// of [`FaultSpace::sample_model`] draws become [`IntermittentFault`]s
    /// with the given per-job `recurrence` probability and `burst_jobs`
    /// burst length.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` and `recurrence` are probabilities.
    pub fn with_intermittent(self, fraction: f64, recurrence: f64, burst_jobs: u32) -> Self {
        match self.try_with_intermittent(fraction, recurrence, burst_jobs) {
            Ok(space) => space,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking form of [`FaultSpace::with_intermittent`]: rejects
    /// NaN and out-of-`[0, 1]` fractions with a typed error.
    pub fn try_with_intermittent(
        mut self,
        fraction: f64,
        recurrence: f64,
        burst_jobs: u32,
    ) -> Result<Self, FaultSpecError> {
        probability("intermittent_fraction", fraction)?;
        probability("recurrence", recurrence)?;
        self.intermittent_fraction = fraction;
        self.recurrence = recurrence;
        self.burst_jobs = burst_jobs;
        Ok(self)
    }

    /// Draws a random fault from the space.
    ///
    /// Targets are weighted by rough "silicon area": each register counts 1,
    /// PC/SP/status count 1 each, and memory counts 1 per 64 words — memory
    /// cells are individually tiny but numerous, yet protected by ECC, so
    /// over-sampling memory would only demonstrate ECC, not TEM.
    ///
    /// # Panics
    ///
    /// Panics if the space is empty or `bits == 0`.
    pub fn sample(&self, rng: &mut RngStream) -> TransientFault {
        assert!(self.bits > 0, "must flip at least one bit");
        let target = self.sample_target(rng);
        let mut mask = 0u32;
        while mask.count_ones() < self.bits.min(32) {
            mask |= 1 << rng.uniform_range(0, 32);
        }
        TransientFault { target, mask }
    }

    /// Draws an area-weighted target from the space (the shared first stage
    /// of every sampler, so the transient and stuck-at distributions agree).
    fn sample_target(&self, rng: &mut RngStream) -> FaultTarget {
        let mut weights: Vec<(f64, u8)> = Vec::new(); // (weight, kind)
        if self.registers {
            weights.push((NUM_REGS as f64, 0));
        }
        if self.pc {
            weights.push((1.0, 1));
        }
        if self.sp {
            weights.push((1.0, 2));
        }
        if self.status {
            weights.push((1.0, 3));
        }
        if self.memory_bytes >= WORD_BYTES {
            weights.push((f64::from(self.memory_bytes / WORD_BYTES) / 64.0, 4));
        }
        assert!(!weights.is_empty(), "fault space is empty");
        let ws: Vec<f64> = weights.iter().map(|&(w, _)| w).collect();
        let kind = weights[rng.weighted_index(&ws)].1;
        match kind {
            0 => FaultTarget::Register(
                Reg::new(rng.uniform_range(0, NUM_REGS as u64) as u8).expect("in range"),
            ),
            1 => FaultTarget::Pc,
            2 => FaultTarget::Sp,
            3 => FaultTarget::Status,
            _ => {
                let words = u64::from(self.memory_bytes / WORD_BYTES);
                FaultTarget::MemoryWord(rng.uniform_range(0, words) as u32 * WORD_BYTES)
            }
        }
    }

    /// Draws a fault of any persistence class, honouring the configured
    /// stuck-at and intermittent fractions (both zero by default, making
    /// this equivalent to a [`FaultSpace::sample`] wrapped in
    /// [`FaultModel::Transient`]).
    ///
    /// # Panics
    ///
    /// Panics if the space is empty, `bits == 0`, or the fractions exceed
    /// one combined.
    pub fn sample_model(&self, rng: &mut RngStream) -> FaultModel {
        assert!(self.bits > 0, "must flip at least one bit");
        let transient_w = 1.0 - self.intermittent_fraction - self.stuck_at_fraction;
        assert!(
            transient_w >= -1e-12,
            "intermittent + stuck-at fractions exceed 1"
        );
        let kind = rng.weighted_index(&[
            transient_w.max(0.0),
            self.intermittent_fraction,
            self.stuck_at_fraction,
        ]);
        match kind {
            0 => FaultModel::Transient(self.sample(rng)),
            1 => FaultModel::Intermittent(IntermittentFault {
                fault: self.sample(rng),
                recurrence: self.recurrence,
                burst_jobs: self.burst_jobs,
            }),
            _ => {
                let target = self.sample_target(rng);
                let bit = 1u32 << rng.uniform_range(0, 32);
                let stuck_high = rng.bernoulli(0.5);
                FaultModel::StuckAt(StuckAtFault {
                    target,
                    bit,
                    stuck_high,
                })
            }
        }
    }
}

/// Runs a machine to completion within `cycle_budget` with a permanent
/// stuck-at fault asserted before every instruction — the hardware analogue
/// of [`run_with_injection`] for [`StuckAtFault`]s. Unlike a transient, the
/// fault is always "activated": it re-manifests on every read/execute for
/// as long as the run lasts.
pub fn run_with_stuck_at(m: &mut Machine, cycle_budget: u64, fault: StuckAtFault) -> RunOutcome {
    let start = m.cpu.cycles;
    loop {
        let used = m.cpu.cycles - start;
        if used >= cycle_budget {
            return RunOutcome {
                exit: RunExit::BudgetExhausted,
                cycles_used: used,
            };
        }
        fault.assert_on(m);
        match m.step() {
            Ok(crate::machine::Step::Running) => {}
            Ok(crate::machine::Step::Halted) => {
                return RunOutcome {
                    exit: RunExit::Halted,
                    cycles_used: m.cpu.cycles - start,
                };
            }
            Err(e) => {
                return RunOutcome {
                    exit: RunExit::Exception(e),
                    cycles_used: m.cpu.cycles - start,
                };
            }
        }
    }
}

/// Runs a machine with a transient fault injected after `inject_at_cycle`
/// cycles, then continues to completion within the overall `cycle_budget`.
///
/// Returns the outcome plus whether the injection actually happened (it
/// does not if the program finished first — the fault was *not activated*,
/// matching the paper's definition of fault rate as the rate of *activated*
/// faults).
pub fn run_with_injection(
    m: &mut Machine,
    cycle_budget: u64,
    inject_at_cycle: u64,
    fault: TransientFault,
) -> (RunOutcome, bool) {
    let start = m.cpu.cycles;
    // Phase 1: run up to the injection point.
    let pre_budget = inject_at_cycle.min(cycle_budget);
    let pre = m.run(pre_budget);
    match pre.exit {
        RunExit::BudgetExhausted if pre.cycles_used >= inject_at_cycle => {
            // Reached the injection point with the program still running.
            fault.apply(m);
            let remaining = cycle_budget - pre.cycles_used;
            let post = m.run(remaining);
            (
                RunOutcome {
                    exit: post.exit,
                    cycles_used: m.cpu.cycles - start,
                },
                true,
            )
        }
        _ => (pre, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::machine::Exception;
    use crate::mmu::MemoryMap;

    fn counting_machine() -> Machine {
        let image = assemble(
            "    ldi r0, 0
                 ldi r1, 100
                 ldi r2, 1
             loop:
                 add r0, r0, r2
                 cmp r0, r1
                 jnz loop
                 out r0, port0
                 halt",
        )
        .unwrap();
        let mut m = Machine::new(4096, MemoryMap::permissive());
        m.load_program(0, &image.words).unwrap();
        m.reset(0, 4096);
        m
    }

    #[test]
    fn register_flip_changes_result() {
        let mut clean = counting_machine();
        clean.run(10_000);
        let golden = clean.output(0);

        let mut m = counting_machine();
        let fault = TransientFault {
            target: FaultTarget::Register(Reg::R0),
            mask: 1 << 30,
        };
        let (out, injected) = run_with_injection(&mut m, 100_000, 50, fault);
        assert!(injected);
        // Either it diverges (different output) or loops forever until the
        // counter wraps; both are acceptable fault behaviours, but the
        // outcome must differ from golden or exhaust budget.
        match out.exit {
            RunExit::Halted => assert_ne!(m.output(0), golden),
            RunExit::BudgetExhausted => {}
            RunExit::Exception(_) => {}
        }
    }

    #[test]
    fn pc_flip_typically_detected_by_hardware() {
        // Flip a high PC bit → lands outside mapped memory → bus error,
        // reproducing the §2.5 observation that PC faults raise exceptions.
        let mut m = counting_machine();
        let fault = TransientFault {
            target: FaultTarget::Pc,
            mask: 1 << 20,
        };
        let (out, injected) = run_with_injection(&mut m, 100_000, 20, fault);
        assert!(injected);
        assert!(
            matches!(out.exit, RunExit::Exception(Exception::Memory(_))),
            "expected bus error, got {:?}",
            out.exit
        );
    }

    #[test]
    fn pc_low_bit_flip_raises_alignment_error() {
        let mut m = counting_machine();
        let fault = TransientFault {
            target: FaultTarget::Pc,
            mask: 0b10,
        };
        let (out, injected) = run_with_injection(&mut m, 100_000, 20, fault);
        assert!(injected);
        assert!(matches!(out.exit, RunExit::Exception(Exception::Memory(_))));
    }

    #[test]
    fn fault_after_halt_is_not_activated() {
        let mut m = counting_machine();
        let fault = TransientFault {
            target: FaultTarget::Register(Reg::R0),
            mask: 1,
        };
        let (out, injected) = run_with_injection(&mut m, 100_000, 99_999, fault);
        assert!(!injected, "program halts long before cycle 99999");
        assert_eq!(out.exit, RunExit::Halted);
    }

    #[test]
    fn status_flip_perturbs_branching() {
        // Flipping Z right before JNZ can end the loop early.
        let mut m = counting_machine();
        let fault = TransientFault {
            target: FaultTarget::Status,
            mask: 0b01,
        };
        let (_, injected) = run_with_injection(&mut m, 100_000, 10, fault);
        assert!(injected);
    }

    #[test]
    fn stuck_at_keeps_bit_forced() {
        let mut m = counting_machine();
        let stuck = StuckAtFault {
            target: FaultTarget::Register(Reg::R2),
            bit: 1,
            stuck_high: false, // increment register stuck at 0 → infinite loop
        };
        let start = m.cpu.cycles;
        let mut exit = None;
        while m.cpu.cycles - start < 5_000 {
            stuck.assert_on(&mut m);
            match m.step() {
                Ok(crate::machine::Step::Running) => {}
                Ok(crate::machine::Step::Halted) => {
                    exit = Some(RunExit::Halted);
                    break;
                }
                Err(e) => {
                    exit = Some(RunExit::Exception(e));
                    break;
                }
            }
        }
        assert!(exit.is_none(), "stuck-at-0 increment must loop forever");
    }

    #[test]
    fn sample_respects_space() {
        let mut rng = RngStream::new(42);
        let space = FaultSpace::cpu_only();
        for _ in 0..500 {
            let f = space.sample(&mut rng);
            assert!(!matches!(f.target, FaultTarget::MemoryWord(_)));
            assert_eq!(f.mask.count_ones(), 1);
        }
    }

    #[test]
    fn sample_memory_addresses_are_aligned_and_in_range() {
        let mut rng = RngStream::new(43);
        let space = FaultSpace {
            registers: false,
            pc: false,
            sp: false,
            status: false,
            bits: 2,
            ..FaultSpace::seu(4096)
        };
        for _ in 0..500 {
            let f = space.sample(&mut rng);
            match f.target {
                FaultTarget::MemoryWord(a) => {
                    assert_eq!(a % WORD_BYTES, 0);
                    assert!(a < 4096);
                }
                other => panic!("unexpected target {other:?}"),
            }
            assert_eq!(f.mask.count_ones(), 2);
        }
    }

    #[test]
    fn sampling_is_reproducible() {
        let space = FaultSpace::seu(4096);
        let a: Vec<_> = {
            let mut rng = RngStream::new(7).fork("faults");
            (0..50).map(|_| space.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = RngStream::new(7).fork("faults");
            (0..50).map(|_| space.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn stock_spaces_are_transient_only() {
        let mut rng = RngStream::new(99);
        for space in [FaultSpace::seu(4096), FaultSpace::cpu_only()] {
            for _ in 0..200 {
                assert!(matches!(
                    space.sample_model(&mut rng),
                    FaultModel::Transient(_)
                ));
            }
        }
    }

    #[test]
    fn with_stuck_at_draws_permanent_faults() {
        let mut rng = RngStream::new(100);
        let space = FaultSpace::cpu_only().with_stuck_at(0.5);
        let mut stuck = 0;
        for _ in 0..400 {
            match space.sample_model(&mut rng) {
                FaultModel::StuckAt(f) => {
                    stuck += 1;
                    assert_eq!(f.bit.count_ones(), 1, "stuck-at is a single bit");
                    assert!(!matches!(f.target, FaultTarget::MemoryWord(_)));
                }
                FaultModel::Transient(_) => {}
                other => panic!("no intermittents configured, got {other:?}"),
            }
        }
        assert!(
            (120..=280).contains(&stuck),
            "half the draws should be stuck-at, got {stuck}/400"
        );
    }

    #[test]
    fn with_intermittent_draws_recurring_faults() {
        let mut rng = RngStream::new(101);
        let space = FaultSpace::cpu_only().with_intermittent(1.0, 0.7, 5);
        match space.sample_model(&mut rng) {
            FaultModel::Intermittent(f) => {
                assert_eq!(f.recurrence, 0.7);
                assert_eq!(f.burst_jobs, 5);
                assert!(f.manifests(0, &mut rng), "onset always manifests");
                assert!(!f.manifests(5, &mut rng), "burst over, never recurs");
                assert_eq!(
                    FaultModel::Intermittent(f).persistence(),
                    FaultPersistence::Intermittent
                );
            }
            other => panic!("expected intermittent, got {other:?}"),
        }
    }

    #[test]
    fn intermittent_recurrence_rate_matches_probability() {
        let mut rng = RngStream::new(102);
        let f = IntermittentFault {
            fault: TransientFault {
                target: FaultTarget::Pc,
                mask: 1,
            },
            recurrence: 0.25,
            burst_jobs: u32::MAX,
        };
        let hits = (0..2000).filter(|_| f.manifests(1, &mut rng)).count();
        assert!(
            (400..=600).contains(&hits),
            "~25% expected, got {hits}/2000"
        );
    }

    #[test]
    fn run_with_stuck_at_detects_via_etm() {
        // Increment register stuck at 0 → the loop never terminates → the
        // execution-time monitor (budget) is the detecting mechanism, every
        // single run — this is what gives diagnosis a persistent signal.
        let stuck = StuckAtFault {
            target: FaultTarget::Register(Reg::R2),
            bit: 1,
            stuck_high: false,
        };
        for _ in 0..3 {
            let mut m = counting_machine();
            let out = run_with_stuck_at(&mut m, 5_000, stuck);
            assert_eq!(out.exit, RunExit::BudgetExhausted);
        }
    }

    #[test]
    fn run_with_stuck_at_on_benign_bit_still_halts() {
        // R3 is unused by the counting loop: the stuck bit never matters.
        let stuck = StuckAtFault {
            target: FaultTarget::Register(Reg::R3),
            bit: 1 << 7,
            stuck_high: true,
        };
        let mut m = counting_machine();
        let out = run_with_stuck_at(&mut m, 100_000, stuck);
        assert_eq!(out.exit, RunExit::Halted);
        assert_eq!(m.output(0), Some(100));
    }

    #[test]
    fn sample_model_is_reproducible() {
        let space = FaultSpace::seu(4096)
            .with_stuck_at(0.2)
            .with_intermittent(0.3, 0.5, 8);
        let draw = |seed: u64| -> Vec<FaultModel> {
            let mut rng = RngStream::new(seed).fork("models");
            (0..100).map(|_| space.sample_model(&mut rng)).collect()
        };
        assert_eq!(draw(11), draw(11));
    }

    #[test]
    fn core_death_sample_is_in_range_and_deterministic() {
        let draw = |seed: u64| {
            let mut rng = RngStream::new(seed).fork("core-death");
            (0..200)
                .map(|_| CoreDeathFault::sample(&mut rng, 2, 4000, 0.25))
                .collect::<Vec<_>>()
        };
        let deaths = draw(7);
        assert_eq!(deaths, draw(7), "sampling must be seed-deterministic");
        assert!(deaths.iter().all(|d| d.core < 2));
        assert!(deaths.iter().all(|d| d.at_tick >= 1 && d.at_tick < 4000));
        assert!(deaths.iter().all(|d| d.in_section));
        assert!(deaths.iter().any(|d| d.escalated));
        assert!(deaths.iter().any(|d| !d.escalated));
    }

    #[test]
    fn target_classes_cover_all_targets() {
        assert_eq!(FaultTarget::Pc.class(), TargetClass::Pc);
        assert_eq!(FaultTarget::Sp.class(), TargetClass::Sp);
        assert_eq!(FaultTarget::Status.class(), TargetClass::Status);
        assert_eq!(
            FaultTarget::Register(Reg::R0).class(),
            TargetClass::DataRegister
        );
        assert_eq!(FaultTarget::MemoryWord(0).class(), TargetClass::Memory);
        for c in TargetClass::ALL {
            assert!(!c.name().is_empty());
        }
    }

    /// Every fraction builder rejects NaN and out-of-`[0, 1]` values with
    /// a typed error naming the field — no clamping, no silent misuse.
    #[test]
    fn typed_rejection_of_bad_fractions() {
        for bad in [f64::NAN, -0.25, 1.5, f64::INFINITY] {
            let err = FaultSpace::cpu_only().try_with_stuck_at(bad).unwrap_err();
            assert!(matches!(
                err,
                FaultSpecError::NotAProbability {
                    field: "stuck_at_fraction",
                    ..
                }
            ));
            let err = FaultSpace::cpu_only()
                .try_with_intermittent(bad, 0.5, 4)
                .unwrap_err();
            assert!(matches!(
                err,
                FaultSpecError::NotAProbability {
                    field: "intermittent_fraction",
                    ..
                }
            ));
            let err = FaultSpace::cpu_only()
                .try_with_intermittent(0.5, bad, 4)
                .unwrap_err();
            assert!(matches!(
                err,
                FaultSpecError::NotAProbability {
                    field: "recurrence",
                    ..
                }
            ));
            let fault = IntermittentFault {
                fault: TransientFault {
                    target: FaultTarget::Pc,
                    mask: 1,
                },
                recurrence: bad,
                burst_jobs: 4,
            };
            assert!(fault.check().is_err(), "recurrence {bad} must be rejected");
        }
        assert!(FaultSpace::cpu_only().try_with_stuck_at(1.0).is_ok());
        assert!(FaultSpace::cpu_only()
            .try_with_intermittent(0.0, 1.0, 0)
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "stuck_at_fraction")]
    fn panicking_builder_delegates_to_typed_check() {
        FaultSpace::cpu_only().with_stuck_at(f64::NAN);
    }
}
