//! Software-implemented fault injection (SWIFI) for the TM32 machine.
//!
//! Replaces the heavy-ion and pin-level injection campaigns of the paper's
//! companion studies with deterministic, seedable bit flips into the same
//! architectural resources: data registers, PC, SP, status register and
//! memory words. Transient faults are single XOR events; permanent faults
//! are stuck-at bits re-asserted before every instruction.

use nlft_sim::rng::RngStream;

use crate::cpu::StatusFlags;
use crate::isa::{Reg, NUM_REGS};
use crate::machine::{Machine, RunExit, RunOutcome};
use crate::mem::WORD_BYTES;

/// The architectural resource a fault lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// A general-purpose data register.
    Register(Reg),
    /// The program counter.
    Pc,
    /// The stack pointer.
    Sp,
    /// The status (flags) register.
    Status,
    /// A 32-bit memory word at the given byte address.
    MemoryWord(u32),
}

impl FaultTarget {
    /// Coarse class used for detection-matrix reporting.
    pub fn class(self) -> TargetClass {
        match self {
            FaultTarget::Register(_) => TargetClass::DataRegister,
            FaultTarget::Pc => TargetClass::Pc,
            FaultTarget::Sp => TargetClass::Sp,
            FaultTarget::Status => TargetClass::Status,
            FaultTarget::MemoryWord(_) => TargetClass::Memory,
        }
    }
}

/// Coarse fault-target classes, the rows of the Table-1 detection matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TargetClass {
    /// General-purpose registers.
    DataRegister,
    /// Program counter.
    Pc,
    /// Stack pointer.
    Sp,
    /// Status register.
    Status,
    /// Main memory.
    Memory,
}

impl TargetClass {
    /// All classes, in reporting order.
    pub const ALL: [TargetClass; 5] = [
        TargetClass::DataRegister,
        TargetClass::Pc,
        TargetClass::Sp,
        TargetClass::Status,
        TargetClass::Memory,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TargetClass::DataRegister => "data register",
            TargetClass::Pc => "program counter",
            TargetClass::Sp => "stack pointer",
            TargetClass::Status => "status register",
            TargetClass::Memory => "memory word",
        }
    }
}

/// A single transient fault: an XOR of `mask` into `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientFault {
    /// Where the fault strikes.
    pub target: FaultTarget,
    /// Which bits flip.
    pub mask: u32,
}

impl TransientFault {
    /// Applies the bit flip to the machine. Memory flips into unmapped
    /// addresses vanish without effect (as in reality).
    pub fn apply(&self, m: &mut Machine) {
        match self.target {
            FaultTarget::Register(r) => m.cpu.flip_reg(r, self.mask),
            FaultTarget::Pc => m.cpu.pc ^= self.mask,
            FaultTarget::Sp => m.cpu.sp ^= self.mask,
            FaultTarget::Status => {
                let w = m.cpu.flags.to_word() ^ self.mask;
                m.cpu.flags = StatusFlags::from_word(w);
            }
            FaultTarget::MemoryWord(addr) => {
                m.mem.inject_flip(addr, self.mask);
            }
        }
    }
}

/// A permanent stuck-at fault, re-asserted before every instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckAtFault {
    /// Where the fault sits.
    pub target: FaultTarget,
    /// The stuck bit (single-bit mask).
    pub bit: u32,
    /// Stuck-at-one when `true`, stuck-at-zero otherwise.
    pub stuck_high: bool,
}

impl StuckAtFault {
    /// Forces the stuck bit to its value.
    pub fn assert_on(&self, m: &mut Machine) {
        let force = |v: u32| {
            if self.stuck_high {
                v | self.bit
            } else {
                v & !self.bit
            }
        };
        match self.target {
            FaultTarget::Register(r) => {
                let v = m.cpu.reg(r);
                m.cpu.set_reg(r, force(v));
            }
            FaultTarget::Pc => m.cpu.pc = force(m.cpu.pc),
            FaultTarget::Sp => m.cpu.sp = force(m.cpu.sp),
            FaultTarget::Status => {
                m.cpu.flags = StatusFlags::from_word(force(m.cpu.flags.to_word()));
            }
            FaultTarget::MemoryWord(addr) => {
                // Model as repeated corruption of the word's true value.
                if let Ok(v) = m.mem.peek(addr) {
                    let _ = m.mem.store(addr, force(v));
                }
            }
        }
    }
}

/// The sampling space for random fault generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpace {
    /// Include general-purpose registers.
    pub registers: bool,
    /// Include the PC.
    pub pc: bool,
    /// Include the SP.
    pub sp: bool,
    /// Include the status register.
    pub status: bool,
    /// Include memory words in `[0, memory_bytes)`; `0` excludes memory.
    pub memory_bytes: u32,
    /// Number of bits to flip (1 = classic single-event upset).
    pub bits: u32,
}

impl FaultSpace {
    /// The classic single-event-upset space over a whole machine.
    pub fn seu(memory_bytes: u32) -> Self {
        FaultSpace {
            registers: true,
            pc: true,
            sp: true,
            status: true,
            memory_bytes,
            bits: 1,
        }
    }

    /// CPU-internal faults only (registers, PC, SP, status) — the component
    /// of the space that ECC cannot help with, and the one TEM exists for.
    pub fn cpu_only() -> Self {
        FaultSpace {
            registers: true,
            pc: true,
            sp: true,
            status: true,
            memory_bytes: 0,
            bits: 1,
        }
    }

    /// Draws a random fault from the space.
    ///
    /// Targets are weighted by rough "silicon area": each register counts 1,
    /// PC/SP/status count 1 each, and memory counts 1 per 64 words — memory
    /// cells are individually tiny but numerous, yet protected by ECC, so
    /// over-sampling memory would only demonstrate ECC, not TEM.
    ///
    /// # Panics
    ///
    /// Panics if the space is empty or `bits == 0`.
    pub fn sample(&self, rng: &mut RngStream) -> TransientFault {
        assert!(self.bits > 0, "must flip at least one bit");
        let mut weights: Vec<(f64, u8)> = Vec::new(); // (weight, kind)
        if self.registers {
            weights.push((NUM_REGS as f64, 0));
        }
        if self.pc {
            weights.push((1.0, 1));
        }
        if self.sp {
            weights.push((1.0, 2));
        }
        if self.status {
            weights.push((1.0, 3));
        }
        if self.memory_bytes >= WORD_BYTES {
            weights.push((f64::from(self.memory_bytes / WORD_BYTES) / 64.0, 4));
        }
        assert!(!weights.is_empty(), "fault space is empty");
        let ws: Vec<f64> = weights.iter().map(|&(w, _)| w).collect();
        let kind = weights[rng.weighted_index(&ws)].1;
        let target = match kind {
            0 => FaultTarget::Register(
                Reg::new(rng.uniform_range(0, NUM_REGS as u64) as u8).expect("in range"),
            ),
            1 => FaultTarget::Pc,
            2 => FaultTarget::Sp,
            3 => FaultTarget::Status,
            _ => {
                let words = u64::from(self.memory_bytes / WORD_BYTES);
                FaultTarget::MemoryWord(rng.uniform_range(0, words) as u32 * WORD_BYTES)
            }
        };
        let mut mask = 0u32;
        while mask.count_ones() < self.bits.min(32) {
            mask |= 1 << rng.uniform_range(0, 32);
        }
        TransientFault { target, mask }
    }
}

/// Runs a machine with a transient fault injected after `inject_at_cycle`
/// cycles, then continues to completion within the overall `cycle_budget`.
///
/// Returns the outcome plus whether the injection actually happened (it
/// does not if the program finished first — the fault was *not activated*,
/// matching the paper's definition of fault rate as the rate of *activated*
/// faults).
pub fn run_with_injection(
    m: &mut Machine,
    cycle_budget: u64,
    inject_at_cycle: u64,
    fault: TransientFault,
) -> (RunOutcome, bool) {
    let start = m.cpu.cycles;
    // Phase 1: run up to the injection point.
    let pre_budget = inject_at_cycle.min(cycle_budget);
    let pre = m.run(pre_budget);
    match pre.exit {
        RunExit::BudgetExhausted if pre.cycles_used >= inject_at_cycle => {
            // Reached the injection point with the program still running.
            fault.apply(m);
            let remaining = cycle_budget - pre.cycles_used;
            let post = m.run(remaining);
            (
                RunOutcome {
                    exit: post.exit,
                    cycles_used: m.cpu.cycles - start,
                },
                true,
            )
        }
        _ => (pre, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::machine::Exception;
    use crate::mmu::MemoryMap;

    fn counting_machine() -> Machine {
        let image = assemble(
            "    ldi r0, 0
                 ldi r1, 100
                 ldi r2, 1
             loop:
                 add r0, r0, r2
                 cmp r0, r1
                 jnz loop
                 out r0, port0
                 halt",
        )
        .unwrap();
        let mut m = Machine::new(4096, MemoryMap::permissive());
        m.load_program(0, &image.words).unwrap();
        m.reset(0, 4096);
        m
    }

    #[test]
    fn register_flip_changes_result() {
        let mut clean = counting_machine();
        clean.run(10_000);
        let golden = clean.output(0);

        let mut m = counting_machine();
        let fault = TransientFault {
            target: FaultTarget::Register(Reg::R0),
            mask: 1 << 30,
        };
        let (out, injected) = run_with_injection(&mut m, 100_000, 50, fault);
        assert!(injected);
        // Either it diverges (different output) or loops forever until the
        // counter wraps; both are acceptable fault behaviours, but the
        // outcome must differ from golden or exhaust budget.
        match out.exit {
            RunExit::Halted => assert_ne!(m.output(0), golden),
            RunExit::BudgetExhausted => {}
            RunExit::Exception(_) => {}
        }
    }

    #[test]
    fn pc_flip_typically_detected_by_hardware() {
        // Flip a high PC bit → lands outside mapped memory → bus error,
        // reproducing the §2.5 observation that PC faults raise exceptions.
        let mut m = counting_machine();
        let fault = TransientFault {
            target: FaultTarget::Pc,
            mask: 1 << 20,
        };
        let (out, injected) = run_with_injection(&mut m, 100_000, 20, fault);
        assert!(injected);
        assert!(
            matches!(out.exit, RunExit::Exception(Exception::Memory(_))),
            "expected bus error, got {:?}",
            out.exit
        );
    }

    #[test]
    fn pc_low_bit_flip_raises_alignment_error() {
        let mut m = counting_machine();
        let fault = TransientFault {
            target: FaultTarget::Pc,
            mask: 0b10,
        };
        let (out, injected) = run_with_injection(&mut m, 100_000, 20, fault);
        assert!(injected);
        assert!(matches!(out.exit, RunExit::Exception(Exception::Memory(_))));
    }

    #[test]
    fn fault_after_halt_is_not_activated() {
        let mut m = counting_machine();
        let fault = TransientFault {
            target: FaultTarget::Register(Reg::R0),
            mask: 1,
        };
        let (out, injected) = run_with_injection(&mut m, 100_000, 99_999, fault);
        assert!(!injected, "program halts long before cycle 99999");
        assert_eq!(out.exit, RunExit::Halted);
    }

    #[test]
    fn status_flip_perturbs_branching() {
        // Flipping Z right before JNZ can end the loop early.
        let mut m = counting_machine();
        let fault = TransientFault {
            target: FaultTarget::Status,
            mask: 0b01,
        };
        let (_, injected) = run_with_injection(&mut m, 100_000, 10, fault);
        assert!(injected);
    }

    #[test]
    fn stuck_at_keeps_bit_forced() {
        let mut m = counting_machine();
        let stuck = StuckAtFault {
            target: FaultTarget::Register(Reg::R2),
            bit: 1,
            stuck_high: false, // increment register stuck at 0 → infinite loop
        };
        let start = m.cpu.cycles;
        let mut exit = None;
        while m.cpu.cycles - start < 5_000 {
            stuck.assert_on(&mut m);
            match m.step() {
                Ok(crate::machine::Step::Running) => {}
                Ok(crate::machine::Step::Halted) => {
                    exit = Some(RunExit::Halted);
                    break;
                }
                Err(e) => {
                    exit = Some(RunExit::Exception(e));
                    break;
                }
            }
        }
        assert!(exit.is_none(), "stuck-at-0 increment must loop forever");
    }

    #[test]
    fn sample_respects_space() {
        let mut rng = RngStream::new(42);
        let space = FaultSpace::cpu_only();
        for _ in 0..500 {
            let f = space.sample(&mut rng);
            assert!(!matches!(f.target, FaultTarget::MemoryWord(_)));
            assert_eq!(f.mask.count_ones(), 1);
        }
    }

    #[test]
    fn sample_memory_addresses_are_aligned_and_in_range() {
        let mut rng = RngStream::new(43);
        let space = FaultSpace {
            registers: false,
            pc: false,
            sp: false,
            status: false,
            memory_bytes: 4096,
            bits: 2,
        };
        for _ in 0..500 {
            let f = space.sample(&mut rng);
            match f.target {
                FaultTarget::MemoryWord(a) => {
                    assert_eq!(a % WORD_BYTES, 0);
                    assert!(a < 4096);
                }
                other => panic!("unexpected target {other:?}"),
            }
            assert_eq!(f.mask.count_ones(), 2);
        }
    }

    #[test]
    fn sampling_is_reproducible() {
        let space = FaultSpace::seu(4096);
        let a: Vec<_> = {
            let mut rng = RngStream::new(7).fork("faults");
            (0..50).map(|_| space.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = RngStream::new(7).fork("faults");
            (0..50).map(|_| space.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn target_classes_cover_all_targets() {
        assert_eq!(FaultTarget::Pc.class(), TargetClass::Pc);
        assert_eq!(FaultTarget::Sp.class(), TargetClass::Sp);
        assert_eq!(FaultTarget::Status.class(), TargetClass::Status);
        assert_eq!(
            FaultTarget::Register(Reg::R0).class(),
            TargetClass::DataRegister
        );
        assert_eq!(FaultTarget::MemoryWord(0).class(), TargetClass::Memory);
        for c in TargetClass::ALL {
            assert!(!c.name().is_empty());
        }
    }
}
