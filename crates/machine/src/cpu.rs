//! CPU register state and saved execution contexts.
//!
//! The register file is the premier transient-fault target: the paper's own
//! fault-injection studies found that PC faults mostly raise illegal-
//! instruction exceptions, SP faults raise address/bus errors, and data
//! register faults silently corrupt computation until TEM's comparison
//! catches them (§2.5). [`CpuState`] therefore exposes each of those
//! resources individually to the fault injector, and [`CpuContext`] is the
//! snapshot a task control block stores so the kernel can restore a clean
//! context before a recovery execution.

use std::fmt;

use crate::isa::{Reg, NUM_REGS};

/// Condition flags of the status register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatusFlags {
    /// Result was zero.
    pub zero: bool,
    /// Result was negative (two's complement).
    pub negative: bool,
}

impl StatusFlags {
    /// Packs the flags into a status-register word (bit 0 = Z, bit 1 = N).
    pub fn to_word(self) -> u32 {
        u32::from(self.zero) | (u32::from(self.negative) << 1)
    }

    /// Unpacks flags from a status-register word; undefined bits are ignored.
    pub fn from_word(word: u32) -> Self {
        StatusFlags {
            zero: word & 1 != 0,
            negative: word & 2 != 0,
        }
    }

    /// Recomputes flags from an ALU result.
    pub fn from_result(value: u32) -> Self {
        StatusFlags {
            zero: value == 0,
            negative: (value as i32) < 0,
        }
    }
}

/// Full architectural register state of the TM32 core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuState {
    regs: [u32; NUM_REGS],
    /// Program counter (byte address of the next instruction).
    pub pc: u32,
    /// Stack pointer (byte address of the last pushed word).
    pub sp: u32,
    /// Status register flags.
    pub flags: StatusFlags,
    /// Cycles consumed since reset.
    pub cycles: u64,
    /// Control-flow path signature: a running hash over every taken
    /// control transfer, updated by the core. Two executions of the same
    /// code with the same inputs produce identical signatures; a
    /// control-flow error that happens to leave the outputs intact still
    /// diverges here (the §2.7 bypass concern).
    pub path_sig: u64,
}

impl CpuState {
    /// Creates a reset CPU with the given entry point and initial stack top.
    pub fn new(entry: u32, stack_top: u32) -> Self {
        CpuState {
            regs: [0; NUM_REGS],
            pc: entry,
            sp: stack_top,
            flags: StatusFlags::default(),
            cycles: 0,
            path_sig: 0,
        }
    }

    /// Folds a taken control transfer into the path signature.
    pub fn record_branch(&mut self, from_pc: u32, to_pc: u32) {
        let x = (u64::from(from_pc) << 32) | u64::from(to_pc);
        self.path_sig = self.path_sig.rotate_left(7).wrapping_mul(0x100_0000_01b3) ^ x;
    }

    /// Reads a general-purpose register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a general-purpose register.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// All general-purpose registers, for context save and fault injection.
    pub fn regs(&self) -> &[u32; NUM_REGS] {
        &self.regs
    }

    /// XORs a bit mask into a general-purpose register (fault injection).
    pub fn flip_reg(&mut self, r: Reg, mask: u32) {
        self.regs[r.index()] ^= mask;
    }

    /// Captures a restorable snapshot of the architectural state.
    pub fn capture(&self) -> CpuContext {
        CpuContext {
            regs: self.regs,
            pc: self.pc,
            sp: self.sp,
            status: self.flags.to_word(),
            path_sig: self.path_sig,
        }
    }

    /// Restores a previously captured snapshot.
    ///
    /// The cycle counter is *not* restored — recovery costs real time. The
    /// path signature *is* part of the context: a preempted task's
    /// control-flow history must survive other tasks running in between.
    pub fn restore(&mut self, ctx: &CpuContext) {
        self.regs = ctx.regs;
        self.pc = ctx.pc;
        self.sp = ctx.sp;
        self.flags = StatusFlags::from_word(ctx.status);
        self.path_sig = ctx.path_sig;
    }
}

/// A saved CPU context, as stored in a task control block.
///
/// Restoring the *complete* context (not just the PC) before a recovery
/// execution matters because hardware-detected errors frequently originate
/// from corrupted PC/SP registers (§2.5); re-running with a half-dirty
/// context would just fail again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuContext {
    /// Saved general-purpose registers.
    pub regs: [u32; NUM_REGS],
    /// Saved program counter.
    pub pc: u32,
    /// Saved stack pointer.
    pub sp: u32,
    /// Saved status-register word.
    pub status: u32,
    /// Saved control-flow path signature.
    pub path_sig: u64,
}

impl fmt::Display for CpuContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{{pc={:#06x}, sp={:#06x}}}", self.pc, self.sp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_pack_round_trip() {
        for (z, n) in [(false, false), (true, false), (false, true), (true, true)] {
            let f = StatusFlags {
                zero: z,
                negative: n,
            };
            assert_eq!(StatusFlags::from_word(f.to_word()), f);
        }
    }

    #[test]
    fn flags_from_result() {
        assert!(StatusFlags::from_result(0).zero);
        assert!(!StatusFlags::from_result(1).zero);
        assert!(StatusFlags::from_result(u32::MAX).negative);
        assert!(!StatusFlags::from_result(5).negative);
    }

    #[test]
    fn capture_restore_round_trip() {
        let mut cpu = CpuState::new(0x100, 0x2000);
        cpu.set_reg(Reg::R3, 42);
        cpu.flags = StatusFlags {
            zero: true,
            negative: false,
        };
        cpu.cycles = 17;
        let ctx = cpu.capture();

        cpu.set_reg(Reg::R3, 99);
        cpu.pc = 0xDEAD;
        cpu.sp = 0xBEEC;
        cpu.flags = StatusFlags {
            zero: false,
            negative: true,
        };
        cpu.cycles = 50;

        cpu.restore(&ctx);
        assert_eq!(cpu.reg(Reg::R3), 42);
        assert_eq!(cpu.pc, 0x100);
        assert_eq!(cpu.sp, 0x2000);
        assert!(cpu.flags.zero);
        assert_eq!(cpu.cycles, 50, "cycles are never rolled back");
    }

    #[test]
    fn path_signature_travels_with_the_context() {
        let mut cpu = CpuState::new(0, 0x100);
        cpu.record_branch(0x10, 0x40);
        let ctx = cpu.capture();
        let sig = cpu.path_sig;
        assert_ne!(sig, 0);
        // Another task's branches pollute the live signature…
        cpu.record_branch(0x50, 0x80);
        assert_ne!(cpu.path_sig, sig);
        // …but restoring the context brings the task's own history back.
        cpu.restore(&ctx);
        assert_eq!(cpu.path_sig, sig);
    }

    #[test]
    fn flip_reg_is_xor() {
        let mut cpu = CpuState::new(0, 0);
        cpu.set_reg(Reg::R1, 0b1010);
        cpu.flip_reg(Reg::R1, 0b0110);
        assert_eq!(cpu.reg(Reg::R1), 0b1100);
        cpu.flip_reg(Reg::R1, 0b0110);
        assert_eq!(cpu.reg(Reg::R1), 0b1010);
    }
}
