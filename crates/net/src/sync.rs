//! Fault-tolerant clock synchronization.
//!
//! A time-triggered bus only works if every node agrees what time it is —
//! TTP/C and FlexRay both run a fault-tolerant clock-sync service
//! underneath the TDMA schedule. This module simulates the classic
//! **fault-tolerant midpoint** algorithm (Welch–Lynch, as used by TTP/C):
//! every resync round each node reads every clock (with a bounded reading
//! error), discards the `k` highest and `k` lowest readings, and steps its
//! clock to the midpoint of the extremes of the remainder. With `n ≥ 3k+1`
//! nodes the skew stays bounded even when `k` clocks are Byzantine
//! (reporting arbitrary nonsense), which is exactly the guarantee the
//! paper's "network interface provides reliable transmission" assumption
//! leans on.

use nlft_sim::rng::RngStream;

/// Behaviour of one node's oscillator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockBehaviour {
    /// Normal clock with the given drift (parts per million, signed).
    Drifting {
        /// Oscillator drift in ppm.
        ppm: f64,
    },
    /// Byzantine clock running the classic *split* attack: it tells every
    /// reader a value close to the reader's own clock, biased up for half
    /// the readers and down for the other half — plausible enough to
    /// survive trimming, adversarial enough to drag the cluster apart.
    Byzantine,
}

/// Configuration of the synchronization simulation.
#[derive(Debug, Clone)]
pub struct SyncConfig {
    /// One behaviour per node.
    pub clocks: Vec<ClockBehaviour>,
    /// Faulty clocks the midpoint must tolerate (`k`).
    pub tolerate: usize,
    /// Resync interval in microseconds of true time.
    pub resync_interval_us: f64,
    /// Bounded reading error `ε` in microseconds (message jitter).
    pub reading_error_us: f64,
}

impl SyncConfig {
    /// A TTP-like cluster: `n` clocks with ±`ppm` drifts, tolerating `k`.
    pub fn cluster(n: usize, max_ppm: f64, tolerate: usize, rng: &mut RngStream) -> Self {
        let clocks = (0..n)
            .map(|_| ClockBehaviour::Drifting {
                ppm: (rng.uniform_f64() * 2.0 - 1.0) * max_ppm,
            })
            .collect();
        SyncConfig {
            clocks,
            tolerate,
            resync_interval_us: 10_000.0, // 10 ms, a TTP-like round
            reading_error_us: 1.0,
        }
    }

    /// Overrides the resynchronisation interval `R` (µs). The drift term
    /// of the skew bound scales linearly with it.
    ///
    /// # Panics
    ///
    /// Panics unless `us` is finite and positive.
    pub fn with_resync_interval(mut self, us: f64) -> Self {
        assert!(
            us.is_finite() && us > 0.0,
            "resync interval must be positive"
        );
        self.resync_interval_us = us;
        self
    }

    /// Overrides the clock-reading error `ε` (µs) — the dominant term of
    /// the Welch–Lynch skew bound `4ε + 2ρR`.
    ///
    /// # Panics
    ///
    /// Panics unless `us` is finite and non-negative.
    pub fn with_reading_error(mut self, us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "reading error must be non-negative"
        );
        self.reading_error_us = us;
        self
    }
}

/// A one-off clock jump injected into a run — the clock-fault half of the
/// network fault model: a node whose oscillator glitches loses slot
/// alignment until the resynchronisation algorithm pulls it back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockGlitch {
    /// Index of the node whose clock jumps.
    pub node: usize,
    /// Round at whose start the jump is applied.
    pub at_round: usize,
    /// Signed jump in microseconds.
    pub offset_us: f64,
}

/// Result of a synchronization run.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncReport {
    /// Worst skew between any two *correct* clocks, per round (µs).
    pub max_skew_per_round: Vec<f64>,
    /// The theoretical bound `4ε + 2·ρ·R` for the configuration (µs).
    pub skew_bound_us: f64,
    /// For each injected [`ClockGlitch`], how many rounds (from the glitch
    /// round, inclusive) until the glitched node is back within the skew
    /// bound of every other correct clock; `None` if it never recovered
    /// within the run. Empty when no glitches were injected.
    pub recovery_rounds: Vec<Option<u32>>,
}

impl SyncReport {
    /// Largest skew observed after the initial convergence (from round 2).
    pub fn steady_state_skew(&self) -> f64 {
        self.max_skew_per_round
            .iter()
            .skip(2)
            .cloned()
            .fold(0.0, f64::max)
    }
}

/// Runs `rounds` resync rounds and reports the inter-clock skew.
///
/// Clocks start with offsets drawn in `[0, initial_offset_us)`.
///
/// # Panics
///
/// Panics unless `n ≥ 3k + 1` with at most `k` Byzantine clocks — below
/// that the algorithm's precondition is violated (see
/// [`run_unprotected`] for observing what goes wrong).
pub fn run(
    config: &SyncConfig,
    rounds: usize,
    initial_offset_us: f64,
    rng: &mut RngStream,
) -> SyncReport {
    let n = config.clocks.len();
    let byzantine = config
        .clocks
        .iter()
        .filter(|c| matches!(c, ClockBehaviour::Byzantine))
        .count();
    assert!(
        n > 3 * config.tolerate,
        "fault-tolerant midpoint needs n >= 3k+1 (n={n}, k={})",
        config.tolerate
    );
    assert!(
        byzantine <= config.tolerate,
        "more Byzantine clocks than tolerated"
    );
    run_unchecked(config, rounds, initial_offset_us, rng)
}

/// Runs the algorithm *without* the `n ≥ 3k+1` precondition check — for
/// experiments demonstrating why the bound matters.
pub fn run_unprotected(
    config: &SyncConfig,
    rounds: usize,
    initial_offset_us: f64,
    rng: &mut RngStream,
) -> SyncReport {
    run_unchecked(config, rounds, initial_offset_us, rng)
}

/// Runs the algorithm while injecting [`ClockGlitch`]es, measuring for each
/// how long the glitched node stays outside the synchronisation bound. The
/// per-glitch answers land in [`SyncReport::recovery_rounds`]; network
/// fault-injection plans use them to calibrate how many TDMA cycles a
/// clock-faulted node effectively loses (see `nlft_net::inject`).
///
/// # Panics
///
/// Panics if a glitch names a node index out of range or a Byzantine node.
pub fn run_with_glitches(
    config: &SyncConfig,
    rounds: usize,
    initial_offset_us: f64,
    glitches: &[ClockGlitch],
    rng: &mut RngStream,
) -> SyncReport {
    for g in glitches {
        assert!(
            g.node < config.clocks.len(),
            "glitch node {} out of range",
            g.node
        );
        assert!(
            matches!(config.clocks[g.node], ClockBehaviour::Drifting { .. }),
            "glitching a Byzantine clock is meaningless"
        );
    }
    run_faulted(config, rounds, initial_offset_us, glitches, rng)
}

fn run_unchecked(
    config: &SyncConfig,
    rounds: usize,
    initial_offset_us: f64,
    rng: &mut RngStream,
) -> SyncReport {
    run_faulted(config, rounds, initial_offset_us, &[], rng)
}

fn run_faulted(
    config: &SyncConfig,
    rounds: usize,
    initial_offset_us: f64,
    glitches: &[ClockGlitch],
    rng: &mut RngStream,
) -> SyncReport {
    let n = config.clocks.len();
    let k = config.tolerate;
    // offsets[i]: node i's clock minus true time, µs.
    let mut offsets: Vec<f64> = (0..n)
        .map(|_| rng.uniform_f64() * initial_offset_us)
        .collect();
    let mut report = SyncReport {
        max_skew_per_round: Vec::with_capacity(rounds),
        skew_bound_us: 4.0 * config.reading_error_us
            + 2.0 * max_drift(config) * 1e-6 * config.resync_interval_us,
        recovery_rounds: vec![None; glitches.len()],
    };

    for round in 0..rounds {
        // 0. Inject any clock glitches due this round.
        for g in glitches {
            if g.at_round == round {
                offsets[g.node] += g.offset_us;
            }
        }

        // 1. Drift for one interval.
        for (i, c) in config.clocks.iter().enumerate() {
            if let ClockBehaviour::Drifting { ppm } = c {
                offsets[i] += ppm * 1e-6 * config.resync_interval_us;
            }
        }

        // 2. Every correct node gathers readings of every clock and steps
        //    to the fault-tolerant midpoint.
        let mut new_offsets = offsets.clone();
        for (i, me) in config.clocks.iter().enumerate() {
            if matches!(me, ClockBehaviour::Byzantine) {
                continue;
            }
            let mut readings: Vec<f64> = (0..n)
                .map(|j| match config.clocks[j] {
                    ClockBehaviour::Drifting { .. } => {
                        // Reading of clock j relative to true time, with
                        // bounded measurement error.
                        offsets[j] + (rng.uniform_f64() * 2.0 - 1.0) * config.reading_error_us
                    }
                    ClockBehaviour::Byzantine => {
                        // Split attack: echo the reader's own clock with a
                        // reader-dependent bias several ε wide.
                        let bias = 8.0 * config.reading_error_us;
                        offsets[i] + if i % 2 == 0 { bias } else { -bias }
                    }
                })
                .collect();
            readings.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let trimmed = &readings[k..n - k];
            let midpoint = (trimmed[0] + trimmed[trimmed.len() - 1]) / 2.0;
            new_offsets[i] = midpoint;
        }
        offsets = new_offsets;

        // 3. Record the worst skew among correct clocks.
        let correct: Vec<f64> = config
            .clocks
            .iter()
            .zip(&offsets)
            .filter(|(c, _)| matches!(c, ClockBehaviour::Drifting { .. }))
            .map(|(_, &o)| o)
            .collect();
        let max = correct.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = correct.iter().cloned().fold(f64::INFINITY, f64::min);
        report.max_skew_per_round.push(max - min);

        // 4. A glitched node has "recovered" once it is back within the
        //    bound of every other correct clock.
        for (gi, g) in glitches.iter().enumerate() {
            if round < g.at_round || report.recovery_rounds[gi].is_some() {
                continue;
            }
            let worst = config
                .clocks
                .iter()
                .enumerate()
                .filter(|(j, c)| *j != g.node && matches!(c, ClockBehaviour::Drifting { .. }))
                .map(|(j, _)| (offsets[j] - offsets[g.node]).abs())
                .fold(0.0, f64::max);
            if worst <= report.skew_bound_us * 1.5 {
                report.recovery_rounds[gi] = Some((round - g.at_round + 1) as u32);
            }
        }
    }
    report
}

fn max_drift(config: &SyncConfig) -> f64 {
    config
        .clocks
        .iter()
        .map(|c| match c {
            ClockBehaviour::Drifting { ppm } => ppm.abs(),
            ClockBehaviour::Byzantine => 0.0,
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::new(0x51AC)
    }

    #[test]
    fn correct_cluster_converges_and_stays_tight() {
        let mut rng = rng();
        let config = SyncConfig::cluster(6, 50.0, 1, &mut rng);
        let report = run(&config, 50, 500.0, &mut rng);
        // Initial offsets span up to 500 µs; after resync the skew stays
        // within the theoretical bound (with a small numerical cushion),
        // two orders of magnitude below the starting spread.
        let steady = report.steady_state_skew();
        assert!(
            steady <= report.skew_bound_us * 1.5,
            "steady skew {steady} vs bound {}",
            report.skew_bound_us
        );
        assert!(
            steady < 50.0,
            "far below the 500 µs initial spread: {steady}"
        );
    }

    #[test]
    fn one_byzantine_clock_is_tolerated_with_four_nodes() {
        let mut r = rng();
        let mut config = SyncConfig::cluster(4, 20.0, 1, &mut r);
        config.clocks[3] = ClockBehaviour::Byzantine;
        let report = run(&config, 60, 100.0, &mut r);
        let steady = report.steady_state_skew();
        assert!(
            steady <= report.skew_bound_us * 1.5,
            "Byzantine clock must not break precision: {steady} vs {}",
            report.skew_bound_us
        );
    }

    #[test]
    fn byzantine_clock_breaks_three_node_cluster() {
        // n = 3 < 3k+1 with k=1: the trimmed set still contains Byzantine
        // readings, so skew blows far past the bound.
        let mut r = rng();
        let mut config = SyncConfig::cluster(3, 20.0, 1, &mut r);
        config.clocks[2] = ClockBehaviour::Byzantine;
        let report = run_unprotected(&config, 60, 10.0, &mut r);
        let steady = report.steady_state_skew();
        // With only the median surviving the trim, the split attack's
        // plausible per-reader values steer each correct node apart:
        // precision degrades well past the bound that n = 4 respects.
        assert!(
            steady > report.skew_bound_us * 1.5,
            "with n < 3k+1 precision must degrade past the bound, got {steady} vs {}",
            report.skew_bound_us
        );
    }

    #[test]
    fn precondition_enforced() {
        let mut r = rng();
        let config = SyncConfig::cluster(3, 20.0, 1, &mut r);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(&config, 5, 10.0, &mut r)
        }));
        assert!(result.is_err(), "n=3, k=1 must be rejected");
    }

    #[test]
    fn without_resync_drift_accumulates() {
        // Sanity: drifting clocks with a huge interval diverge linearly —
        // the reason resync exists. Fixed drifts for a deterministic bound.
        let mut r = rng();
        let config = SyncConfig {
            clocks: vec![
                ClockBehaviour::Drifting { ppm: 100.0 },
                ClockBehaviour::Drifting { ppm: -100.0 },
                ClockBehaviour::Drifting { ppm: 50.0 },
                ClockBehaviour::Drifting { ppm: -50.0 },
            ],
            tolerate: 1,
            resync_interval_us: 1e7, // 10 s between resyncs
            reading_error_us: 1.0,
        };
        let report = run(&config, 5, 0.0, &mut r);
        // Bound scales with the interval: 2·100ppm·10s = 2000 µs (+4ε).
        assert!(report.skew_bound_us > 2_000.0);
        assert!(report.steady_state_skew() <= report.skew_bound_us * 1.5);
    }

    #[test]
    fn glitched_clock_recovers_within_a_few_rounds() {
        let mut r = rng();
        let config = SyncConfig::cluster(6, 50.0, 1, &mut r);
        let glitch = ClockGlitch {
            node: 2,
            at_round: 5,
            offset_us: 500.0,
        };
        let report = run_with_glitches(&config, 30, 0.0, &[glitch], &mut r);
        let recovery = report.recovery_rounds[0].expect("must recover");
        // The fault-tolerant midpoint trims the outlier reading, so the
        // glitched node snaps back almost immediately (skew is recorded
        // after the resync step, so the jump itself never shows).
        assert!(recovery >= 1);
        assert!(recovery <= 3, "recovery took {recovery} rounds");
    }

    #[test]
    fn unglitched_run_reports_no_recoveries() {
        let mut r = rng();
        let config = SyncConfig::cluster(4, 20.0, 1, &mut r);
        let report = run(&config, 10, 10.0, &mut r);
        assert!(report.recovery_rounds.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn glitch_node_bounds_checked() {
        let mut r = rng();
        let config = SyncConfig::cluster(4, 20.0, 1, &mut r);
        let glitch = ClockGlitch {
            node: 9,
            at_round: 0,
            offset_us: 1.0,
        };
        run_with_glitches(&config, 5, 0.0, &[glitch], &mut r);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut r1 = RngStream::new(9);
        let c1 = SyncConfig::cluster(5, 30.0, 1, &mut r1);
        let rep1 = run(&c1, 20, 50.0, &mut r1);
        let mut r2 = RngStream::new(9);
        let c2 = SyncConfig::cluster(5, 30.0, 1, &mut r2);
        let rep2 = run(&c2, 20, 50.0, &mut r2);
        assert_eq!(rep1, rep2);
    }

    #[test]
    fn builder_overrides_feed_the_skew_bound() {
        let mut rng = RngStream::new(11);
        let config = SyncConfig::cluster(4, 20.0, 1, &mut rng)
            .with_resync_interval(5_000.0)
            .with_reading_error(0.25);
        assert_eq!(config.resync_interval_us, 5_000.0);
        assert_eq!(config.reading_error_us, 0.25);
        let report = run(&config, 10, 10.0, &mut rng);
        // 4ε + 2·ρ_max·R with the overridden ε and R, where ρ_max is the
        // largest drift actually drawn for the cluster.
        let rho = config
            .clocks
            .iter()
            .map(|c| match c {
                ClockBehaviour::Drifting { ppm } => ppm.abs(),
                ClockBehaviour::Byzantine => 0.0,
            })
            .fold(0.0, f64::max);
        let expected = 4.0 * 0.25 + 2.0 * rho * 1e-6 * 5_000.0;
        assert!((report.skew_bound_us - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "reading error")]
    fn negative_reading_error_rejected() {
        let mut rng = RngStream::new(1);
        let _ = SyncConfig::cluster(4, 20.0, 1, &mut rng).with_reading_error(-1.0);
    }

    #[test]
    #[should_panic(expected = "resync interval")]
    fn zero_resync_interval_rejected() {
        let mut rng = RngStream::new(1);
        let _ = SyncConfig::cluster(4, 20.0, 1, &mut rng).with_resync_interval(0.0);
    }
}
