//! Deterministic network fault injection.
//!
//! The machine-level campaigns (`nlft-core`) perturb one node's internals;
//! this module perturbs the *communication substrate* itself, cycle after
//! cycle, with configurable per-node rates of every failure mode the
//! paper's system-level argument must survive:
//!
//! * **frame corruption** — random bit damage on the wire, caught by the
//!   frame CRC (end-to-end detection, §2.6);
//! * **slot omission** — a frame lost in transit, indistinguishable from a
//!   silent sender;
//! * **crash-and-restart** — a node goes silent for a restart window and
//!   then returns (the paper's `μ_R` path);
//! * **babbling idiot** — transmission attempts in foreign slots, blocked
//!   by the bus guardian;
//! * **masquerade** — well-formed frames carrying a forged sender id,
//!   rejected by the receiver-side identity check;
//! * **clock glitch** — a node's oscillator jumps, costing it a calibrated
//!   number of cycles of slot alignment (see [`crate::sync`]);
//! * **duplication / reorder** — dynamic-segment delivery anomalies that
//!   protocols over the mini-slots must tolerate.
//!
//! # Determinism
//!
//! Every decision for `(cycle, node)` is drawn from its own labelled
//! [`RngStream`] fork, so outcomes depend only on the master seed, never
//! on call order, the set of transmitting nodes, or thread scheduling.
//! Campaigns built on the injector are therefore bit-reproducible and
//! thread-count invariant.
//!
//! # Examples
//!
//! ```
//! use nlft_net::bus::{Bus, BusConfig};
//! use nlft_net::frame::NodeId;
//! use nlft_net::inject::{NetFaultInjector, NetFaultPlan, NetFaultRates};
//! use nlft_sim::rng::RngStream;
//!
//! let config = BusConfig::round_robin(3, 2);
//! let mut bus = Bus::new(config.clone());
//! let plan = NetFaultPlan::quiet()
//!     .with_node(NodeId(2), NetFaultRates { corruption: 1.0, ..NetFaultRates::QUIET });
//! let mut injector = NetFaultInjector::new(plan, RngStream::new(7));
//!
//! bus.start_cycle();
//! let silent = injector.perturb_cycle(&mut bus);
//! assert!(silent.is_empty(), "corruption does not silence the sender");
//! for n in 0..3 {
//!     bus.transmit_static(NodeId(n), vec![n.into()]).unwrap();
//! }
//! let d = bus.finish_cycle();
//! assert!(d.from_node(&config, NodeId(2)).is_none(), "corrupted frame rejected");
//! assert_eq!(injector.counts().corruptions, 1);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use nlft_sim::rng::RngStream;

use crate::bus::{Bus, WireFault};
use crate::frame::{NodeId, SlotId};

/// Why a fault-plan ingredient was rejected at construction. Every rate
/// and probability in a plan must be a real number in `[0, 1]`; NaN and
/// out-of-range values are rejected here instead of silently clamped or
/// left to misbehave deep inside an injector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanError {
    /// A rate or probability was NaN or outside `[0, 1]`.
    NotAProbability {
        /// Which field was rejected (e.g. `"corruption"`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A blackout listed no victim nodes.
    BlackoutWithoutVictims,
    /// A blackout with `down_cycles == 0` would be a no-op.
    BlackoutZeroDown,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NotAProbability { field, value } => {
                write!(f, "{field} rate {value} outside [0, 1]")
            }
            PlanError::BlackoutWithoutVictims => write!(f, "blackout without victims"),
            PlanError::BlackoutZeroDown => write!(f, "blackout must last at least 1 cycle"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Checks one probability field, rejecting NaN and out-of-range values.
fn probability(field: &'static str, value: f64) -> Result<(), PlanError> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(PlanError::NotAProbability { field, value })
    }
}

/// Per-cycle fault probabilities for one node. All rates are per
/// node-cycle and must lie in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetFaultRates {
    /// Probability the node's static frame is bit-corrupted on the wire.
    pub corruption: f64,
    /// Probability the node's static frame is dropped (slot omission).
    pub omission: f64,
    /// Probability the node crashes, staying silent for the plan's
    /// `restart_cycles` before returning.
    pub crash: f64,
    /// Probability the node attempts a transmission in a foreign slot
    /// (babbling idiot).
    pub babble: f64,
    /// Probability the node's frame carries a forged sender id.
    pub masquerade: f64,
    /// Probability the node's clock glitches, costing it the plan's
    /// `clock_outage_cycles` of slot alignment.
    pub clock_glitch: f64,
}

impl NetFaultRates {
    /// No faults at all.
    pub const QUIET: NetFaultRates = NetFaultRates {
        corruption: 0.0,
        omission: 0.0,
        crash: 0.0,
        babble: 0.0,
        masquerade: 0.0,
        clock_glitch: 0.0,
    };

    /// A mixed storm scaled by `intensity` in `[0, 1]`: at 1.0 the node
    /// corrupts or loses roughly half its frames and occasionally crashes,
    /// babbles, masquerades and glitches.
    pub fn storm(intensity: f64) -> Self {
        NetFaultRates {
            corruption: 0.30 * intensity,
            omission: 0.20 * intensity,
            crash: 0.02 * intensity,
            babble: 0.10 * intensity,
            masquerade: 0.05 * intensity,
            clock_glitch: 0.02 * intensity,
        }
    }

    /// Whether every rate is zero.
    pub fn is_quiet(&self) -> bool {
        *self == NetFaultRates::QUIET
    }

    /// Validates every rate: each must be a real number in `[0, 1]`.
    /// NaN is rejected like any out-of-range value.
    pub fn check(&self) -> Result<(), PlanError> {
        for (name, r) in [
            ("corruption", self.corruption),
            ("omission", self.omission),
            ("crash", self.crash),
            ("babble", self.babble),
            ("masquerade", self.masquerade),
            ("clock_glitch", self.clock_glitch),
        ] {
            probability(name, r)?;
        }
        Ok(())
    }

    fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// A correlated blackout / brown-out: in one slot of `at_cycle`, every
/// listed node is reset simultaneously — the EMI-burst / power-dip
/// failure mode that takes out several (optionally all, including both
/// CU replicas) nodes at once. Each victim stays down for `down_cycles`
/// plus an individual stagger drawn uniformly from `[0, stagger]`
/// (supply capacitors discharge at different rates), then re-enters the
/// cluster through the startup protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlackoutSpec {
    /// Cycle in which the burst hits.
    pub at_cycle: u32,
    /// The nodes reset by the burst.
    pub nodes: Vec<NodeId>,
    /// Minimum cycles every victim stays powered down (≥ 1).
    pub down_cycles: u32,
    /// Upper bound of the per-node additional power-up stagger.
    pub stagger: u32,
}

impl BlackoutSpec {
    /// Validates the spec: it must reset at least one node for at least
    /// one cycle.
    pub fn check(&self) -> Result<(), PlanError> {
        if self.nodes.is_empty() {
            return Err(PlanError::BlackoutWithoutVictims);
        }
        if self.down_cycles == 0 {
            return Err(PlanError::BlackoutZeroDown);
        }
        Ok(())
    }
}

/// A full injection plan: per-node rates, outage geometry, dynamic-segment
/// perturbation rates and an activity window.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultPlan {
    node_rates: BTreeMap<NodeId, NetFaultRates>,
    /// Scheduled correlated blackouts. Unlike the stochastic rates these
    /// fire at absolute cycles, ignoring the activity window.
    pub blackouts: Vec<BlackoutSpec>,
    /// Cycles a crashed node stays silent before returning.
    pub restart_cycles: u32,
    /// Cycles a clock-glitched node loses slot alignment for. Calibrate
    /// with [`clock_outage_cycles`] to couple this to the Welch–Lynch
    /// resynchronisation dynamics.
    pub clock_outage_cycles: u32,
    /// Probability per cycle that one dynamic frame is delivered twice.
    pub duplicate_dynamic: f64,
    /// Probability per cycle that the dynamic segment is delivered in
    /// reversed arbitration order.
    pub reorder_dynamic: f64,
    /// First cycle (inclusive) in which the plan's rates apply.
    pub from_cycle: u32,
    /// First cycle (exclusive) in which they no longer apply. Outage
    /// windows opened inside the window still run to completion.
    pub until_cycle: u32,
}

impl NetFaultPlan {
    /// A plan with no faults anywhere and paper-like outage geometry.
    pub fn quiet() -> Self {
        NetFaultPlan {
            node_rates: BTreeMap::new(),
            blackouts: Vec::new(),
            restart_cycles: 8,
            clock_outage_cycles: 2,
            duplicate_dynamic: 0.0,
            reorder_dynamic: 0.0,
            from_cycle: 0,
            until_cycle: u32::MAX,
        }
    }

    /// Sets the rates for one node.
    ///
    /// # Panics
    ///
    /// Panics on invalid rates; see [`NetFaultPlan::try_with_node`] for
    /// the non-panicking form.
    pub fn with_node(self, node: NodeId, rates: NetFaultRates) -> Self {
        match self.try_with_node(node, rates) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Sets the rates for one node, rejecting NaN or out-of-`[0, 1]`
    /// rates with a typed error.
    pub fn try_with_node(mut self, node: NodeId, rates: NetFaultRates) -> Result<Self, PlanError> {
        rates.check()?;
        self.node_rates.insert(node, rates);
        Ok(self)
    }

    /// Sets the same rates for several nodes.
    ///
    /// # Panics
    ///
    /// Panics on invalid rates; see [`NetFaultPlan::try_with_nodes`] for
    /// the non-panicking form.
    pub fn with_nodes(self, nodes: &[NodeId], rates: NetFaultRates) -> Self {
        match self.try_with_nodes(nodes, rates) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Sets the same rates for several nodes, rejecting NaN or
    /// out-of-`[0, 1]` rates with a typed error.
    pub fn try_with_nodes(
        mut self,
        nodes: &[NodeId],
        rates: NetFaultRates,
    ) -> Result<Self, PlanError> {
        rates.check()?;
        for &n in nodes {
            self.node_rates.insert(n, rates);
        }
        Ok(self)
    }

    /// Sets dynamic-segment duplication/reorder rates.
    ///
    /// # Panics
    ///
    /// Panics if either rate is NaN or outside `[0, 1]`; see
    /// [`NetFaultPlan::try_with_dynamic`] for the non-panicking form.
    pub fn with_dynamic(self, duplicate: f64, reorder: f64) -> Self {
        match self.try_with_dynamic(duplicate, reorder) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Sets dynamic-segment duplication/reorder rates, rejecting NaN or
    /// out-of-`[0, 1]` rates with a typed error.
    pub fn try_with_dynamic(mut self, duplicate: f64, reorder: f64) -> Result<Self, PlanError> {
        probability("duplicate", duplicate)?;
        probability("reorder", reorder)?;
        self.duplicate_dynamic = duplicate;
        self.reorder_dynamic = reorder;
        Ok(self)
    }

    /// Schedules a correlated blackout.
    ///
    /// # Panics
    ///
    /// Panics if the spec lists no nodes or has `down_cycles == 0`; see
    /// [`NetFaultPlan::try_with_blackout`] for the non-panicking form.
    pub fn with_blackout(self, spec: BlackoutSpec) -> Self {
        match self.try_with_blackout(spec) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Schedules a correlated blackout, rejecting an empty victim list or
    /// a zero-cycle outage with a typed error.
    pub fn try_with_blackout(mut self, spec: BlackoutSpec) -> Result<Self, PlanError> {
        spec.check()?;
        self.blackouts.push(spec);
        Ok(self)
    }

    /// Restricts the plan to cycles `[from, until)`.
    pub fn window(mut self, from: u32, until: u32) -> Self {
        self.from_cycle = from;
        self.until_cycle = until;
        self
    }

    /// The rates applying to `node` (quiet if never configured).
    pub fn rates_for(&self, node: NodeId) -> NetFaultRates {
        self.node_rates
            .get(&node)
            .copied()
            .unwrap_or(NetFaultRates::QUIET)
    }

    /// Whether the plan is active in `cycle`.
    pub fn active_in(&self, cycle: u32) -> bool {
        (self.from_cycle..self.until_cycle).contains(&cycle)
    }
}

/// Tally of injection *decisions* (attempts), by fault kind. Compare with
/// the [`Bus`] counters of *applied* faults and rejects to estimate
/// bus-level coverage parameters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionCounts {
    /// Frame corruptions decided.
    pub corruptions: u64,
    /// Slot omissions decided.
    pub omissions: u64,
    /// Crashes decided.
    pub crashes: u64,
    /// Babbling-idiot attempts decided (and immediately attempted).
    pub babbles: u64,
    /// Masquerades decided.
    pub masquerades: u64,
    /// Clock glitches decided.
    pub clock_glitches: u64,
    /// Dynamic-frame duplications decided.
    pub duplicates: u64,
    /// Dynamic-segment reorders decided.
    pub reorders: u64,
    /// Node resets caused by scheduled blackouts.
    pub blackout_resets: u64,
}

impl InjectionCounts {
    /// Sum of all decisions.
    pub fn total(&self) -> u64 {
        self.corruptions
            + self.omissions
            + self.crashes
            + self.babbles
            + self.masquerades
            + self.clock_glitches
            + self.duplicates
            + self.reorders
            + self.blackout_resets
    }

    /// Field-wise accumulation.
    pub fn merge(&mut self, other: &InjectionCounts) {
        self.corruptions += other.corruptions;
        self.omissions += other.omissions;
        self.crashes += other.crashes;
        self.babbles += other.babbles;
        self.masquerades += other.masquerades;
        self.clock_glitches += other.clock_glitches;
        self.duplicates += other.duplicates;
        self.reorders += other.reorders;
        self.blackout_resets += other.blackout_resets;
    }
}

/// The stateful injector driving a [`NetFaultPlan`] against a [`Bus`].
#[derive(Debug, Clone)]
pub struct NetFaultInjector {
    plan: NetFaultPlan,
    root: RngStream,
    /// Nodes currently held down: cycle (exclusive) until which each stays
    /// silent.
    down_until: BTreeMap<NodeId, u32>,
    /// Nodes reset by a blackout in the most recent perturbed cycle,
    /// with their total down windows (refreshed every `perturb_cycle`).
    last_resets: Vec<(NodeId, u32)>,
    counts: InjectionCounts,
}

impl NetFaultInjector {
    /// Creates an injector. `rng` should be a dedicated fork of the
    /// experiment's master stream (e.g. `root.fork("net-injector")`).
    pub fn new(plan: NetFaultPlan, rng: RngStream) -> Self {
        for rates in plan.node_rates.values() {
            rates.validate();
        }
        NetFaultInjector {
            plan,
            root: rng,
            down_until: BTreeMap::new(),
            last_resets: Vec::new(),
            counts: InjectionCounts::default(),
        }
    }

    /// Nodes reset by a scheduled blackout in the most recently
    /// perturbed cycle, with the total number of cycles each stays down
    /// (base `down_cycles` plus its individual stagger draw). The caller
    /// uses this to wipe node-local state — a reset node reboots, it
    /// does not merely miss a slot.
    pub fn resets_this_cycle(&self) -> &[(NodeId, u32)] {
        &self.last_resets
    }

    /// The active plan.
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Replaces the plan mid-experiment (e.g. to quiesce a storm).
    /// Outage windows already opened keep running.
    pub fn set_plan(&mut self, plan: NetFaultPlan) {
        self.plan = plan;
    }

    /// Decisions taken so far.
    pub fn counts(&self) -> InjectionCounts {
        self.counts
    }

    /// Whether `node` is being held silent in `cycle` by a crash or clock
    /// outage window.
    pub fn is_down(&self, node: NodeId, cycle: u32) -> bool {
        self.down_until
            .get(&node)
            .is_some_and(|&until| cycle < until)
    }

    /// Perturbs the cycle that `bus` currently has open. Call exactly once
    /// per cycle, after [`Bus::start_cycle`] and before any legitimate
    /// transmission. Decides per-node fates, performs babbling-idiot
    /// attempts, stages wire faults and dynamic-segment perturbations, and
    /// returns the nodes that must stay silent this cycle (crash or clock
    /// outage) in slot order.
    pub fn perturb_cycle(&mut self, bus: &mut Bus) -> Vec<NodeId> {
        let cycle = bus.cycle();
        self.last_resets.clear();
        // Scheduled blackouts fire first: a reset node is down from this
        // very cycle, before any stochastic per-node fate is drawn.
        let due: Vec<BlackoutSpec> = self
            .plan
            .blackouts
            .iter()
            .filter(|spec| spec.at_cycle == cycle)
            .cloned()
            .collect();
        for spec in due {
            for &node in &spec.nodes {
                let stagger = if spec.stagger == 0 {
                    0
                } else {
                    // One labelled fork per (cycle, node), like every
                    // other injection decision.
                    self.root
                        .fork_indexed("net-blackout", (u64::from(cycle) << 8) | u64::from(node.0))
                        .uniform_range(0, u64::from(spec.stagger) + 1) as u32
                };
                let down = spec.down_cycles + stagger;
                self.down_until.insert(node, cycle + down);
                self.counts.blackout_resets += 1;
                self.last_resets.push((node, down));
            }
        }
        let active = self.plan.active_in(cycle);
        let nodes: Vec<NodeId> = bus.config().static_slots.clone();
        let mut silenced = Vec::new();
        for node in nodes {
            let slot = bus.config().slot_of(node).expect("node owns a slot");
            if self.is_down(node, cycle) {
                silenced.push(node);
                continue;
            }
            if !active {
                continue;
            }
            let rates = self.plan.rates_for(node);
            if rates.is_quiet() {
                continue;
            }
            // One labelled fork per (cycle, node): decisions are a pure
            // function of (seed, cycle, node).
            let mut rng = self
                .root
                .fork_indexed("net-fault", (u64::from(cycle) << 8) | u64::from(node.0));
            if rng.bernoulli(rates.crash) {
                self.counts.crashes += 1;
                self.down_until
                    .insert(node, cycle + self.plan.restart_cycles.max(1));
                silenced.push(node);
                continue;
            }
            if rng.bernoulli(rates.clock_glitch) {
                self.counts.clock_glitches += 1;
                self.down_until
                    .insert(node, cycle + self.plan.clock_outage_cycles.max(1));
                silenced.push(node);
                continue;
            }
            // Omission and corruption are mutually exclusive per cycle so
            // the applied-corruption counter stays a clean denominator.
            if rng.bernoulli(rates.omission) {
                self.counts.omissions += 1;
                bus.stage_wire_fault(WireFault::DropStatic { slot });
            } else if rng.bernoulli(rates.corruption) {
                self.counts.corruptions += 1;
                let byte = rng.uniform_range(0, 64) as usize;
                // One or two flipped bits within one byte: the worst case
                // the frame CRC is *guaranteed* to catch.
                let bit1 = 1u8 << rng.uniform_range(0, 8);
                let bit2 = 1u8 << rng.uniform_range(0, 8);
                let mask = if rng.bernoulli(0.5) {
                    bit1
                } else {
                    bit1 | bit2
                };
                bus.stage_wire_fault(WireFault::CorruptStatic { slot, byte, mask });
            }
            if rng.bernoulli(rates.masquerade) {
                self.counts.masquerades += 1;
                let n = bus.config().static_slots.len() as u64;
                let shift = rng.uniform_range(1, n.max(2));
                let claim = bus.config().static_slots[((u64::from(slot.0) + shift) % n) as usize];
                bus.stage_wire_fault(WireFault::MasqueradeStatic { slot, claim });
            }
            if rng.bernoulli(rates.babble) {
                self.counts.babbles += 1;
                let n = bus.config().static_slots.len() as u64;
                let shift = rng.uniform_range(1, n.max(2));
                let foreign = SlotId(((u64::from(slot.0) + shift) % n) as u8);
                // The guardian must block this; a panic-free error return
                // is the contract under test.
                let _ = bus.transmit_in_slot(node, foreign, vec![0xBABB_1E00]);
            }
        }
        if active {
            let mut rng = self.root.fork_indexed("net-dynamic", u64::from(cycle));
            if rng.bernoulli(self.plan.duplicate_dynamic) {
                self.counts.duplicates += 1;
                let index = rng.uniform_range(0, 4) as usize;
                bus.stage_wire_fault(WireFault::DuplicateDynamic { index });
            }
            if rng.bernoulli(self.plan.reorder_dynamic) {
                self.counts.reorders += 1;
                bus.stage_wire_fault(WireFault::ReorderDynamic);
            }
        }
        silenced
    }
}

/// Calibrates a [`NetFaultPlan`]'s `clock_outage_cycles` from the
/// Welch–Lynch dynamics: simulates a cluster of `n` drifting clocks
/// (tolerating one Byzantine), hits one node with a `glitch_us` jump, and
/// returns how many resync rounds (≙ TDMA cycles) it takes that node to
/// re-enter the synchronisation bound. The result is at least 1: a
/// glitched node always misses at least the cycle of the glitch.
pub fn clock_outage_cycles(n: usize, max_ppm: f64, glitch_us: f64, rng: &mut RngStream) -> u32 {
    let config = crate::sync::SyncConfig::cluster(n, max_ppm, 1, rng);
    let glitch = crate::sync::ClockGlitch {
        node: 0,
        at_round: 4,
        offset_us: glitch_us,
    };
    let report = crate::sync::run_with_glitches(&config, 40, 0.0, &[glitch], rng);
    report.recovery_rounds[0].unwrap_or(u32::MAX).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusConfig;

    fn storm_bus() -> (Bus, NetFaultInjector) {
        let config = BusConfig::round_robin(4, 2);
        let plan = NetFaultPlan::quiet()
            .with_nodes(&config.static_slots.clone(), NetFaultRates::storm(1.0));
        (
            Bus::new(config),
            NetFaultInjector::new(plan, RngStream::new(0x57A3)),
        )
    }

    fn run_cycles(bus: &mut Bus, injector: &mut NetFaultInjector, cycles: u32) {
        for _ in 0..cycles {
            bus.start_cycle();
            let silent = injector.perturb_cycle(bus);
            for &n in &bus.config().static_slots.clone() {
                if !silent.contains(&n) {
                    let _ = bus.transmit_static(n, vec![1, 2, 3]);
                }
            }
            bus.finish_cycle();
        }
    }

    #[test]
    fn storm_exercises_every_fault_kind() {
        let (mut bus, mut injector) = storm_bus();
        run_cycles(&mut bus, &mut injector, 400);
        let c = injector.counts();
        assert!(c.corruptions > 0, "{c:?}");
        assert!(c.omissions > 0, "{c:?}");
        assert!(c.crashes > 0, "{c:?}");
        assert!(c.babbles > 0, "{c:?}");
        assert!(c.masquerades > 0, "{c:?}");
        assert!(c.clock_glitches > 0, "{c:?}");
    }

    #[test]
    fn injector_is_deterministic() {
        let (mut bus_a, mut inj_a) = storm_bus();
        let (mut bus_b, mut inj_b) = storm_bus();
        run_cycles(&mut bus_a, &mut inj_a, 200);
        run_cycles(&mut bus_b, &mut inj_b, 200);
        assert_eq!(inj_a.counts(), inj_b.counts());
        assert_eq!(bus_a.crc_rejects(), bus_b.crc_rejects());
        assert_eq!(bus_a.guardian_blocks(), bus_b.guardian_blocks());
        assert_eq!(bus_a.masquerade_rejects(), bus_b.masquerade_rejects());
    }

    #[test]
    fn every_applied_corruption_is_crc_rejected() {
        let config = BusConfig::round_robin(4, 0);
        let plan = NetFaultPlan::quiet().with_nodes(
            &config.static_slots.clone(),
            NetFaultRates {
                corruption: 0.5,
                ..NetFaultRates::QUIET
            },
        );
        let mut bus = Bus::new(config);
        let mut injector = NetFaultInjector::new(plan, RngStream::new(9));
        run_cycles(&mut bus, &mut injector, 300);
        assert!(bus.corruptions_applied() > 100);
        assert_eq!(
            bus.crc_rejects(),
            bus.corruptions_applied(),
            "the CRC must reject every 1-2 bit wire corruption"
        );
    }

    #[test]
    fn guardian_blocks_every_babble() {
        let config = BusConfig::round_robin(4, 0);
        let plan = NetFaultPlan::quiet().with_nodes(
            &config.static_slots.clone(),
            NetFaultRates {
                babble: 0.7,
                ..NetFaultRates::QUIET
            },
        );
        let mut bus = Bus::new(config);
        let mut injector = NetFaultInjector::new(plan, RngStream::new(10));
        run_cycles(&mut bus, &mut injector, 200);
        assert!(injector.counts().babbles > 50);
        assert_eq!(bus.guardian_blocks(), injector.counts().babbles);
    }

    #[test]
    fn crash_holds_node_down_for_restart_window() {
        let config = BusConfig::round_robin(2, 0);
        let mut plan = NetFaultPlan::quiet().with_node(
            NodeId(1),
            NetFaultRates {
                crash: 1.0,
                ..NetFaultRates::QUIET
            },
        );
        plan.restart_cycles = 5;
        // Only cycle 0 can crash the node; afterwards the plan is idle.
        let plan = plan.window(0, 1);
        let mut bus = Bus::new(config);
        let mut injector = NetFaultInjector::new(plan, RngStream::new(3));
        let mut down_cycles = 0;
        for cycle in 0..10 {
            bus.start_cycle();
            let silent = injector.perturb_cycle(&mut bus);
            if silent.contains(&NodeId(1)) {
                down_cycles += 1;
                assert!(injector.is_down(NodeId(1), cycle));
            }
            bus.finish_cycle();
        }
        assert_eq!(down_cycles, 5, "crash window is exactly restart_cycles");
        assert_eq!(injector.counts().crashes, 1);
    }

    #[test]
    fn plan_window_bounds_activity() {
        let config = BusConfig::round_robin(2, 0);
        let plan = NetFaultPlan::quiet()
            .with_node(
                NodeId(0),
                NetFaultRates {
                    omission: 1.0,
                    ..NetFaultRates::QUIET
                },
            )
            .window(3, 6);
        let mut bus = Bus::new(config);
        let mut injector = NetFaultInjector::new(plan, RngStream::new(4));
        run_cycles(&mut bus, &mut injector, 10);
        assert_eq!(injector.counts().omissions, 3, "cycles 3, 4, 5 only");
    }

    #[test]
    fn quiesced_plan_lets_outage_finish() {
        let config = BusConfig::round_robin(2, 0);
        let mut plan = NetFaultPlan::quiet().with_node(
            NodeId(0),
            NetFaultRates {
                crash: 1.0,
                ..NetFaultRates::QUIET
            },
        );
        plan.restart_cycles = 6;
        let mut bus = Bus::new(config);
        let mut injector = NetFaultInjector::new(plan, RngStream::new(5));
        bus.start_cycle();
        assert_eq!(injector.perturb_cycle(&mut bus), vec![NodeId(0)]);
        bus.finish_cycle();
        injector.set_plan(NetFaultPlan::quiet());
        let mut still_down = 0;
        for _ in 1..10 {
            bus.start_cycle();
            if !injector.perturb_cycle(&mut bus).is_empty() {
                still_down += 1;
            }
            bus.finish_cycle();
        }
        assert_eq!(
            still_down, 5,
            "outage opened before quiescing still completes"
        );
    }

    #[test]
    fn masquerade_storm_rejected_by_identity_check() {
        let config = BusConfig::round_robin(3, 0);
        let plan = NetFaultPlan::quiet().with_nodes(
            &config.static_slots.clone(),
            NetFaultRates {
                masquerade: 1.0,
                ..NetFaultRates::QUIET
            },
        );
        let mut bus = Bus::new(config);
        let mut injector = NetFaultInjector::new(plan, RngStream::new(6));
        run_cycles(&mut bus, &mut injector, 50);
        assert_eq!(bus.masquerades_applied(), 150);
        assert_eq!(bus.masquerade_rejects(), 150);
        assert_eq!(bus.crc_rejects(), 0, "masquerades are well-formed frames");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_rates_rejected() {
        NetFaultPlan::quiet().with_node(
            NodeId(0),
            NetFaultRates {
                corruption: 1.5,
                ..NetFaultRates::QUIET
            },
        );
    }

    #[test]
    fn clock_outage_calibration_is_positive_and_deterministic() {
        let mut r1 = RngStream::new(0xC10C);
        let mut r2 = RngStream::new(0xC10C);
        let a = clock_outage_cycles(6, 50.0, 400.0, &mut r1);
        let b = clock_outage_cycles(6, 50.0, 400.0, &mut r2);
        assert_eq!(a, b);
        assert!(a >= 1);
        assert!(a < 40, "Welch-Lynch must pull a glitched clock back: {a}");
    }

    #[test]
    fn blackout_resets_all_victims_in_one_cycle() {
        let config = BusConfig::round_robin(4, 0);
        let mut bus = Bus::new(config);
        let victims = vec![NodeId(0), NodeId(1), NodeId(3)];
        let plan = NetFaultPlan::quiet().with_blackout(BlackoutSpec {
            at_cycle: 2,
            nodes: victims.clone(),
            down_cycles: 3,
            stagger: 0,
        });
        let mut injector = NetFaultInjector::new(plan, RngStream::new(0xB1AC));
        for cycle in 0..2 {
            bus.start_cycle();
            assert!(injector.perturb_cycle(&mut bus).is_empty());
            assert!(injector.resets_this_cycle().is_empty(), "cycle {cycle}");
            bus.finish_cycle();
        }
        bus.start_cycle();
        let silenced = injector.perturb_cycle(&mut bus);
        assert_eq!(silenced, victims, "all victims drop in the same cycle");
        assert_eq!(
            injector.resets_this_cycle(),
            &[(NodeId(0), 3), (NodeId(1), 3), (NodeId(3), 3)],
            "zero stagger: every victim is down exactly down_cycles"
        );
        assert_eq!(injector.counts().blackout_resets, 3);
        assert_eq!(injector.counts().total(), 3);
        bus.finish_cycle();
        // Down for cycles 2, 3, 4; back in cycle 5.
        for cycle in 3..=5 {
            bus.start_cycle();
            let silenced = injector.perturb_cycle(&mut bus);
            if cycle < 5 {
                assert_eq!(silenced, victims, "cycle {cycle}");
            } else {
                assert!(silenced.is_empty(), "victims return in cycle 5");
            }
            assert!(injector.resets_this_cycle().is_empty());
            bus.finish_cycle();
        }
    }

    #[test]
    fn blackout_stagger_is_bounded_and_deterministic() {
        let config = BusConfig::round_robin(6, 0);
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let spec = BlackoutSpec {
            at_cycle: 0,
            nodes: nodes.clone(),
            down_cycles: 2,
            stagger: 3,
        };
        let run = || {
            let mut bus = Bus::new(config.clone());
            let plan = NetFaultPlan::quiet().with_blackout(spec.clone());
            let mut injector = NetFaultInjector::new(plan, RngStream::new(0x0FF));
            bus.start_cycle();
            injector.perturb_cycle(&mut bus);
            let resets = injector.resets_this_cycle().to_vec();
            bus.finish_cycle();
            resets
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "stagger draws are a pure function of the seed");
        assert_eq!(a.len(), 6);
        for &(_, down) in &a {
            assert!((2..=5).contains(&down), "down {down} outside [2, 2+3]");
        }
        assert!(
            a.iter().any(|&(_, down)| down != a[0].1),
            "a 3-cycle stagger over 6 nodes should not be uniform"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1 cycle")]
    fn zero_length_blackout_rejected() {
        NetFaultPlan::quiet().with_blackout(BlackoutSpec {
            at_cycle: 0,
            nodes: vec![NodeId(0)],
            down_cycles: 0,
            stagger: 0,
        });
    }

    /// Every rate field rejects NaN, negative and > 1 values with a typed
    /// error naming the offending field — no clamping, no silent misuse.
    #[test]
    fn typed_rejection_per_rate_field() {
        type RateCtor = fn(f64) -> NetFaultRates;
        let fields: [(&str, RateCtor); 6] = [
            ("corruption", |v| NetFaultRates {
                corruption: v,
                ..NetFaultRates::QUIET
            }),
            ("omission", |v| NetFaultRates {
                omission: v,
                ..NetFaultRates::QUIET
            }),
            ("crash", |v| NetFaultRates {
                crash: v,
                ..NetFaultRates::QUIET
            }),
            ("babble", |v| NetFaultRates {
                babble: v,
                ..NetFaultRates::QUIET
            }),
            ("masquerade", |v| NetFaultRates {
                masquerade: v,
                ..NetFaultRates::QUIET
            }),
            ("clock_glitch", |v| NetFaultRates {
                clock_glitch: v,
                ..NetFaultRates::QUIET
            }),
        ];
        for (name, make) in fields {
            for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
                let err = make(bad).check().unwrap_err();
                match err {
                    PlanError::NotAProbability { field, value } => {
                        assert_eq!(field, name);
                        assert!(value.is_nan() == bad.is_nan() && (bad.is_nan() || value == bad));
                    }
                    other => panic!("wrong error for {name}={bad}: {other:?}"),
                }
                let plan = NetFaultPlan::quiet().try_with_node(NodeId(0), make(bad));
                assert!(plan.is_err(), "{name}={bad} must be rejected by the plan");
            }
            assert!(make(0.0).check().is_ok());
            assert!(make(1.0).check().is_ok());
        }
    }

    #[test]
    fn typed_rejection_of_dynamic_rates() {
        for bad in [f64::NAN, -0.2, 1.01] {
            let err = NetFaultPlan::quiet()
                .try_with_dynamic(bad, 0.0)
                .unwrap_err();
            assert!(matches!(
                err,
                PlanError::NotAProbability {
                    field: "duplicate",
                    ..
                }
            ));
            let err = NetFaultPlan::quiet()
                .try_with_dynamic(0.0, bad)
                .unwrap_err();
            assert!(matches!(
                err,
                PlanError::NotAProbability {
                    field: "reorder",
                    ..
                }
            ));
        }
        assert!(NetFaultPlan::quiet().try_with_dynamic(1.0, 0.0).is_ok());
    }

    #[test]
    fn typed_rejection_of_bad_blackouts() {
        let empty = BlackoutSpec {
            at_cycle: 1,
            nodes: Vec::new(),
            down_cycles: 2,
            stagger: 0,
        };
        assert_eq!(empty.check(), Err(PlanError::BlackoutWithoutVictims));
        assert!(NetFaultPlan::quiet().try_with_blackout(empty).is_err());
        let zero = BlackoutSpec {
            at_cycle: 1,
            nodes: vec![NodeId(2)],
            down_cycles: 0,
            stagger: 0,
        };
        assert_eq!(zero.check(), Err(PlanError::BlackoutZeroDown));
        assert!(NetFaultPlan::quiet().try_with_blackout(zero).is_err());
    }
}
