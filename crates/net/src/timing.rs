//! Wall-clock timing of the communication cycle, and the derivation of the
//! paper's repair rates from it.
//!
//! §3.3 of the paper grounds its Markov repair rates in measured TTP/C
//! timings (ref. 16): a TDMA round of ~20 ms, a node needing ~1.6 s (80
//! rounds) to restart its OS and be reintegrated, plus ~1.4 s of hardware
//! reset and diagnostics — 3 s total for a fail-silent restart, hence
//! `μ_R = 1.2e3`/h and `μ_OM = 2.25e3`/h. This module reproduces that
//! derivation from first principles: bus geometry × membership thresholds
//! × node-local recovery times → repair rates.

use nlft_sim::time::SimDuration;

use crate::bus::BusConfig;
use crate::membership::Membership;

/// Wall-clock geometry of one communication cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTiming {
    /// Duration of one static slot.
    pub slot_duration: SimDuration,
    /// Duration of one dynamic mini-slot.
    pub minislot_duration: SimDuration,
}

impl BusTiming {
    /// The TTP/C-like geometry behind the paper's constants: with the
    /// membership thresholds of [`paper_membership`], reintegration takes
    /// 1.6 s and a full restart 3 s.
    pub fn paper_like() -> Self {
        BusTiming {
            // 20 ms TDMA round with 6 static slots.
            slot_duration: SimDuration::from_micros(20_000 / 6),
            minislot_duration: SimDuration::from_micros(200),
        }
    }

    /// Wall-clock duration of one full cycle under a configuration.
    pub fn cycle_duration(&self, config: &BusConfig) -> SimDuration {
        self.slot_duration * config.static_slots.len() as u64
            + self.minislot_duration * u64::from(config.dynamic_minislots)
    }
}

/// Membership thresholds matching the paper's measured latencies: at a
/// ~20 ms round, 80 rounds to readmission reproduces the 1.6 s
/// reintegration time of ref. 16.
pub fn paper_membership(config: &BusConfig) -> Membership {
    Membership::new(config, 2, 80)
}

/// Node-local recovery times that, combined with the bus, yield the
/// paper's repair rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRecoveryTimes {
    /// Hardware reset plus the off-line diagnostic distinguishing transient
    /// from permanent faults (paper: ~1.4 s).
    pub reset_and_diagnosis: SimDuration,
}

impl NodeRecoveryTimes {
    /// The paper's ~1.4 s figure.
    pub fn paper_like() -> Self {
        NodeRecoveryTimes {
            reset_and_diagnosis: SimDuration::from_millis(1_400),
        }
    }
}

/// Derived repair rates, in repairs per hour — the `μ` parameters of the
/// Markov models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedRepairRates {
    /// Time from an omission to being a full member again.
    pub omission_latency: SimDuration,
    /// Time from a fail-silent shutdown to full membership (reset +
    /// diagnosis + reintegration).
    pub restart_latency: SimDuration,
    /// `μ_OM` per hour.
    pub mu_om: f64,
    /// `μ_R` per hour.
    pub mu_r: f64,
}

/// Derives the repair rates from bus geometry, membership thresholds and
/// node recovery times (the §3.3 computation, made explicit).
pub fn derive_repair_rates(
    timing: &BusTiming,
    config: &BusConfig,
    membership: &Membership,
    recovery: &NodeRecoveryTimes,
) -> DerivedRepairRates {
    let cycle = timing.cycle_duration(config);
    let reintegration = cycle * u64::from(membership.reintegration_latency_cycles());
    let omission_latency = reintegration;
    let restart_latency = recovery.reset_and_diagnosis + reintegration;
    let to_rate = |d: SimDuration| 3_600.0 / d.as_secs_f64();
    DerivedRepairRates {
        omission_latency,
        restart_latency,
        mu_om: to_rate(omission_latency),
        mu_r: to_rate(restart_latency),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusConfig;

    #[test]
    fn paper_geometry_reproduces_paper_rates() {
        let config = BusConfig::round_robin(6, 0);
        let timing = BusTiming::paper_like();
        let membership = paper_membership(&config);
        let recovery = NodeRecoveryTimes::paper_like();
        let rates = derive_repair_rates(&timing, &config, &membership, &recovery);

        // Reintegration ≈ 1.6 s → μ_OM ≈ 2.25e3/h.
        let om_secs = rates.omission_latency.as_secs_f64();
        assert!(
            (om_secs - 1.6).abs() < 0.05,
            "omission latency {om_secs}s, paper says 1.6s"
        );
        assert!(
            (rates.mu_om - 2.25e3).abs() / 2.25e3 < 0.05,
            "mu_om {} vs paper 2.25e3",
            rates.mu_om
        );

        // Restart = 1.4 s + 1.6 s ≈ 3 s → μ_R ≈ 1.2e3/h.
        let r_secs = rates.restart_latency.as_secs_f64();
        assert!(
            (r_secs - 3.0).abs() < 0.05,
            "restart {r_secs}s, paper says 3s"
        );
        assert!(
            (rates.mu_r - 1.2e3).abs() / 1.2e3 < 0.05,
            "mu_r {} vs paper 1.2e3",
            rates.mu_r
        );
    }

    #[test]
    fn cycle_duration_accounts_for_both_segments() {
        let timing = BusTiming {
            slot_duration: SimDuration::from_millis(2),
            minislot_duration: SimDuration::from_micros(100),
        };
        let config = BusConfig::round_robin(4, 10);
        assert_eq!(
            timing.cycle_duration(&config),
            SimDuration::from_millis(8) + SimDuration::from_micros(1_000)
        );
    }

    #[test]
    fn slower_bus_means_slower_repairs() {
        let config = BusConfig::round_robin(6, 0);
        let membership = paper_membership(&config);
        let recovery = NodeRecoveryTimes::paper_like();
        let fast = derive_repair_rates(&BusTiming::paper_like(), &config, &membership, &recovery);
        let slow_timing = BusTiming {
            slot_duration: SimDuration::from_millis(10),
            minislot_duration: SimDuration::from_micros(200),
        };
        let slow = derive_repair_rates(&slow_timing, &config, &membership, &recovery);
        assert!(slow.mu_om < fast.mu_om);
        assert!(slow.mu_r < fast.mu_r);
        assert!(slow.omission_latency > fast.omission_latency);
    }
}
