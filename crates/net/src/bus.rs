//! The time-triggered broadcast bus (FlexRay-style).
//!
//! One communication cycle consists of a **static segment** — TDMA slots
//! statically owned by nodes, carrying all critical traffic — followed by a
//! **dynamic segment** of mini-slots arbitrated by priority, used for
//! sporadic traffic such as the state-resynchronisation requests the
//! paper's future-work section sketches (§4). A **bus guardian** refuses
//! transmissions outside the sender's slot, converting babbling-idiot
//! failures into omissions.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::frame::{Frame, NodeId, SlotId};

/// Static configuration of one communication cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusConfig {
    /// Slot ownership of the static segment: `slots[i]` owns slot `i`.
    pub static_slots: Vec<NodeId>,
    /// Number of dynamic mini-slots per cycle.
    pub dynamic_minislots: u8,
}

impl BusConfig {
    /// Config with one static slot per node, in id order, plus `minislots`
    /// dynamic mini-slots.
    pub fn round_robin(nodes: u8, minislots: u8) -> Self {
        BusConfig {
            static_slots: (0..nodes).map(NodeId).collect(),
            dynamic_minislots: minislots,
        }
    }

    /// The slot a node owns, if any.
    pub fn slot_of(&self, node: NodeId) -> Option<SlotId> {
        self.static_slots
            .iter()
            .position(|&n| n == node)
            .map(|i| SlotId(i as u8))
    }
}

/// Rejection reasons for a transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitError {
    /// The bus guardian blocked a transmission outside the sender's slot.
    GuardianBlocked {
        /// The offending node.
        node: NodeId,
        /// The slot it tried to use.
        slot: SlotId,
    },
    /// The slot was already used this cycle.
    SlotBusy(SlotId),
    /// All dynamic mini-slots are taken this cycle.
    DynamicSegmentFull,
    /// The payload exceeds the frame format's 16-bit length field
    /// ([`Frame::MAX_PAYLOAD_WORDS`] words).
    PayloadTooLarge {
        /// The rejected payload size in words.
        words: usize,
    },
}

impl fmt::Display for TransmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransmitError::GuardianBlocked { node, slot } => {
                write!(f, "bus guardian blocked {node} transmitting in {slot}")
            }
            TransmitError::SlotBusy(slot) => write!(f, "{slot} already used this cycle"),
            TransmitError::DynamicSegmentFull => write!(f, "dynamic segment full"),
            TransmitError::PayloadTooLarge { words } => {
                write!(f, "payload of {words} words exceeds the frame length field")
            }
        }
    }
}

impl std::error::Error for TransmitError {}

/// A fault staged against the *current* cycle's traffic on the wire.
///
/// Wire faults are the network half of the fault-injection story: they
/// model what a noisy channel, a faulty transceiver or a malicious node
/// does to frames *after* the sender handed them over. Faults are staged
/// any time between [`Bus::start_cycle`] and [`Bus::finish_cycle`] and
/// applied when the cycle closes, in a fixed order (drops, then
/// masquerades, then corruptions, then dynamic-segment perturbations) so
/// the outcome is independent of staging order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// XOR `mask` into byte `byte % len` of the static frame in `slot`
    /// (bit corruption in transit; the CRC must reject it).
    CorruptStatic {
        /// Victim slot.
        slot: SlotId,
        /// Byte index (taken modulo the frame length).
        byte: usize,
        /// XOR mask, non-zero for an effective fault.
        mask: u8,
    },
    /// Remove the static frame in `slot` entirely — a slot omission; the
    /// receivers see silence.
    DropStatic {
        /// Victim slot.
        slot: SlotId,
    },
    /// Rewrite the sender id of the static frame in `slot` to `claim`,
    /// recomputing the CRC. A masquerading transceiver emits a
    /// *well-formed* frame, so only the receiver-side identity check (slot
    /// ownership) can catch it.
    MasqueradeStatic {
        /// Victim slot.
        slot: SlotId,
        /// The forged sender identity.
        claim: NodeId,
    },
    /// XOR `mask` into byte `byte % len` of the dynamic frame at
    /// arbitration index `index` (after priority ordering). Out-of-range
    /// indices are ignored.
    CorruptDynamic {
        /// Arbitration index after priority sorting.
        index: usize,
        /// Byte index (taken modulo the frame length).
        byte: usize,
        /// XOR mask.
        mask: u8,
    },
    /// Deliver the dynamic frame at arbitration index `index` twice.
    /// Out-of-range indices are ignored.
    DuplicateDynamic {
        /// Arbitration index after priority sorting.
        index: usize,
    },
    /// Reverse the arbitration order of the dynamic segment — receivers
    /// must not depend on priority order for correctness.
    ReorderDynamic,
}

/// Everything delivered in one completed cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleDelivery {
    /// Cycle counter.
    pub cycle: u32,
    /// Valid static-segment frames, by slot.
    pub static_frames: BTreeMap<SlotId, Frame>,
    /// Valid dynamic-segment frames, in arbitration (priority) order.
    pub dynamic_frames: Vec<Frame>,
    /// Count of frames discarded for CRC/format errors this cycle.
    pub rejected: u32,
}

impl CycleDelivery {
    /// Frame sent by `node` in its static slot, if it arrived intact.
    pub fn from_node<'a>(&'a self, config: &BusConfig, node: NodeId) -> Option<&'a Frame> {
        config
            .slot_of(node)
            .and_then(|s| self.static_frames.get(&s))
    }
}

/// The broadcast bus for one cluster.
///
/// # Examples
///
/// ```
/// use nlft_net::bus::{Bus, BusConfig};
/// use nlft_net::frame::NodeId;
///
/// let mut bus = Bus::new(BusConfig::round_robin(3, 2));
/// bus.start_cycle();
/// bus.transmit_static(NodeId(0), vec![11])?;
/// bus.transmit_static(NodeId(2), vec![22])?;
/// let delivery = bus.finish_cycle();
/// assert_eq!(delivery.static_frames.len(), 2);
/// # Ok::<(), nlft_net::bus::TransmitError>(())
/// ```
#[derive(Debug)]
pub struct Bus {
    config: BusConfig,
    cycle: u32,
    in_cycle: bool,
    /// Pending static frames, kept *structural*: serialisation to wire
    /// bytes is deferred to `finish_cycle` and only performed for frames a
    /// staged fault actually touches. For valid frames `decode ∘ encode`
    /// is the identity, so skipping the round-trip for clean traffic is
    /// bit-invisible to receivers.
    static_pending: BTreeMap<SlotId, Frame>,
    dynamic_pending: Vec<(u8, Frame)>, // (priority, frame)
    /// Reusable wire-image buffer for the frames that do need encoding.
    scratch: Vec<u8>,
    wire_faults: Vec<WireFault>,
    guardian_blocks: u64,
    crc_rejects: u64,
    masquerade_rejects: u64,
    corruptions_applied: u64,
    drops_applied: u64,
    masquerades_applied: u64,
}

impl Bus {
    /// Creates a bus.
    pub fn new(config: BusConfig) -> Self {
        Bus {
            config,
            cycle: 0,
            in_cycle: false,
            static_pending: BTreeMap::new(),
            dynamic_pending: Vec::new(),
            scratch: Vec::new(),
            wire_faults: Vec::new(),
            guardian_blocks: 0,
            crc_rejects: 0,
            masquerade_rejects: 0,
            corruptions_applied: 0,
            drops_applied: 0,
            masquerades_applied: 0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Current cycle counter.
    pub fn cycle(&self) -> u32 {
        self.cycle
    }

    /// Total transmissions blocked by the guardian so far.
    pub fn guardian_blocks(&self) -> u64 {
        self.guardian_blocks
    }

    /// Total frames rejected for CRC/format damage so far.
    pub fn crc_rejects(&self) -> u64 {
        self.crc_rejects
    }

    /// Total well-formed frames rejected because their sender id did not
    /// match the slot owner (masquerade detection) so far.
    pub fn masquerade_rejects(&self) -> u64 {
        self.masquerade_rejects
    }

    /// Wire corruptions actually applied to a pending frame so far (staged
    /// corruptions on silent or dropped slots do not count).
    pub fn corruptions_applied(&self) -> u64 {
        self.corruptions_applied
    }

    /// Wire drops actually applied to a pending frame so far.
    pub fn drops_applied(&self) -> u64 {
        self.drops_applied
    }

    /// Wire masquerades actually applied to a pending frame so far.
    pub fn masquerades_applied(&self) -> u64 {
        self.masquerades_applied
    }

    /// Opens a new communication cycle.
    ///
    /// # Panics
    ///
    /// Panics if a cycle is already open.
    pub fn start_cycle(&mut self) {
        assert!(!self.in_cycle, "cycle already open");
        self.in_cycle = true;
        self.static_pending.clear();
        self.dynamic_pending.clear();
        self.wire_faults.clear();
    }

    /// Transmits in the sender's own static slot.
    ///
    /// # Errors
    ///
    /// [`TransmitError::GuardianBlocked`] if `node` owns no slot,
    /// [`TransmitError::SlotBusy`] if it already transmitted this cycle,
    /// [`TransmitError::PayloadTooLarge`] if the payload cannot be framed.
    ///
    /// # Panics
    ///
    /// Panics if no cycle is open.
    pub fn transmit_static(
        &mut self,
        node: NodeId,
        payload: Vec<u32>,
    ) -> Result<(), TransmitError> {
        assert!(self.in_cycle, "no open cycle");
        let slot = match self.config.slot_of(node) {
            Some(s) => s,
            None => {
                self.guardian_blocks += 1;
                return Err(TransmitError::GuardianBlocked {
                    node,
                    slot: SlotId(u8::MAX),
                });
            }
        };
        self.transmit_in_slot(node, slot, payload)
    }

    /// Transmits claiming an explicit slot — the bus guardian verifies
    /// ownership, so this is how babbling-idiot behaviour is modelled.
    ///
    /// # Errors
    ///
    /// As [`Bus::transmit_static`].
    ///
    /// # Panics
    ///
    /// Panics if no cycle is open.
    pub fn transmit_in_slot(
        &mut self,
        node: NodeId,
        slot: SlotId,
        payload: Vec<u32>,
    ) -> Result<(), TransmitError> {
        assert!(self.in_cycle, "no open cycle");
        if self.config.static_slots.get(slot.0 as usize) != Some(&node) {
            self.guardian_blocks += 1;
            return Err(TransmitError::GuardianBlocked { node, slot });
        }
        if self.static_pending.contains_key(&slot) {
            return Err(TransmitError::SlotBusy(slot));
        }
        if payload.len() > Frame::MAX_PAYLOAD_WORDS {
            return Err(TransmitError::PayloadTooLarge {
                words: payload.len(),
            });
        }
        self.static_pending
            .insert(slot, Frame::new(node, slot, self.cycle, payload));
        Ok(())
    }

    /// Queues a dynamic-segment transmission with a priority (lower wins).
    ///
    /// # Errors
    ///
    /// [`TransmitError::DynamicSegmentFull`] when all mini-slots are
    /// taken, [`TransmitError::PayloadTooLarge`] if the payload cannot be
    /// framed.
    ///
    /// # Panics
    ///
    /// Panics if no cycle is open.
    pub fn transmit_dynamic(
        &mut self,
        node: NodeId,
        priority: u8,
        payload: Vec<u32>,
    ) -> Result<(), TransmitError> {
        assert!(self.in_cycle, "no open cycle");
        if self.dynamic_pending.len() >= self.config.dynamic_minislots as usize {
            return Err(TransmitError::DynamicSegmentFull);
        }
        if payload.len() > Frame::MAX_PAYLOAD_WORDS {
            return Err(TransmitError::PayloadTooLarge {
                words: payload.len(),
            });
        }
        self.dynamic_pending.push((
            priority,
            Frame::new(node, SlotId(u8::MAX), self.cycle, payload),
        ));
        Ok(())
    }

    /// Stages a [`WireFault`] against the current cycle. Faults accumulate
    /// and are applied when the cycle closes; staging order is irrelevant
    /// (see [`WireFault`] for the canonical application order). Faults
    /// addressing slots that end up silent are no-ops.
    ///
    /// # Panics
    ///
    /// Panics if no cycle is open.
    pub fn stage_wire_fault(&mut self, fault: WireFault) {
        assert!(self.in_cycle, "no open cycle");
        self.wire_faults.push(fault);
    }

    /// Closes the cycle, delivering all valid frames to every receiver.
    ///
    /// # Panics
    ///
    /// Panics if no cycle is open.
    pub fn finish_cycle(&mut self) -> CycleDelivery {
        assert!(self.in_cycle, "no open cycle");
        self.in_cycle = false;
        let mut delivery = CycleDelivery {
            cycle: self.cycle,
            ..CycleDelivery::default()
        };
        let faults = std::mem::take(&mut self.wire_faults);

        // Static faults in canonical order: drops, then masquerades, then
        // corruptions. A corruption therefore only lands on frames that
        // survive to the wire, which keeps the `corruptions_applied`
        // counter a valid denominator for the measured CRC reject rate.
        //
        // Drops and masquerades act on the frame structure directly — a
        // drop removes the frame; a masquerade rewrites the sender field,
        // which produces exactly the bytes the old wire-image patch
        // (rewrite byte 0, recompute CRC) produced, should the frame later
        // need encoding.
        for f in &faults {
            if let WireFault::DropStatic { slot } = f {
                if self.static_pending.remove(slot).is_some() {
                    self.drops_applied += 1;
                }
            }
        }
        for f in &faults {
            if let WireFault::MasqueradeStatic { slot, claim } = f {
                if let Some(frame) = self.static_pending.get_mut(slot) {
                    frame.sender = *claim;
                    self.masquerades_applied += 1;
                }
            }
        }
        // Only corruption targets go through the wire image: encode into
        // the reusable scratch buffer, XOR the staged masks, then decode
        // like any receiver would.
        let corrupt_slots: BTreeSet<SlotId> = faults
            .iter()
            .filter_map(|f| match f {
                WireFault::CorruptStatic { slot, .. } if self.static_pending.contains_key(slot) => {
                    Some(*slot)
                }
                _ => None,
            })
            .collect();
        let mut scratch = std::mem::take(&mut self.scratch);
        for &slot in &corrupt_slots {
            let frame = self
                .static_pending
                .remove(&slot)
                .expect("collected from pending keys above");
            frame.encode_into(&mut scratch);
            for f in &faults {
                if let WireFault::CorruptStatic {
                    slot: target,
                    byte,
                    mask,
                } = f
                {
                    if *target == slot {
                        let i = byte % scratch.len();
                        scratch[i] ^= mask;
                        if *mask != 0 {
                            self.corruptions_applied += 1;
                        }
                    }
                }
            }
            match Frame::decode(&scratch) {
                Ok(f) => self.deliver_static(&mut delivery, slot, f),
                Err(_) => {
                    self.crc_rejects += 1;
                    delivery.rejected += 1;
                }
            }
        }
        self.scratch = scratch;
        // Untouched (and structurally masqueraded) frames skip the encode/
        // decode round-trip entirely; the receiver-side identity check
        // still applies to every delivered frame.
        for (slot, frame) in std::mem::take(&mut self.static_pending) {
            self.deliver_static(&mut delivery, slot, frame);
        }

        let mut dynamic = std::mem::take(&mut self.dynamic_pending);
        dynamic.sort_by_key(|&(prio, _)| prio);
        let dynamic_faulted = faults.iter().any(|f| {
            matches!(
                f,
                WireFault::CorruptDynamic { .. }
                    | WireFault::DuplicateDynamic { .. }
                    | WireFault::ReorderDynamic
            )
        });
        if dynamic_faulted {
            // Rare path: replay the full wire behaviour on the encoded
            // images, rejections and all.
            let mut images: Vec<Vec<u8>> = dynamic.into_iter().map(|(_, f)| f.encode()).collect();
            Self::apply_dynamic_faults(&faults, &mut images);
            for bytes in images {
                match Frame::decode(&bytes) {
                    Ok(f) => delivery.dynamic_frames.push(f),
                    Err(_) => {
                        self.crc_rejects += 1;
                        delivery.rejected += 1;
                    }
                }
            }
        } else {
            delivery
                .dynamic_frames
                .extend(dynamic.into_iter().map(|(_, f)| f));
        }
        self.cycle += 1;
        delivery
    }

    /// Receiver-side identity check: a well-formed frame whose sender is
    /// not the slot owner is a masquerade and must not enter any node's
    /// view.
    fn deliver_static(&mut self, delivery: &mut CycleDelivery, slot: SlotId, frame: Frame) {
        if self.config.static_slots.get(slot.0 as usize) == Some(&frame.sender) {
            delivery.static_frames.insert(slot, frame);
        } else {
            self.masquerade_rejects += 1;
            delivery.rejected += 1;
        }
    }

    /// Applies staged dynamic-segment faults to the arbitration-ordered
    /// frame list: corruptions, then duplications, then reordering.
    fn apply_dynamic_faults(faults: &[WireFault], dynamic: &mut Vec<Vec<u8>>) {
        for f in faults {
            if let WireFault::CorruptDynamic { index, byte, mask } = f {
                if let Some(bytes) = dynamic.get_mut(*index) {
                    let i = byte % bytes.len();
                    bytes[i] ^= mask;
                }
            }
        }
        for f in faults {
            if let WireFault::DuplicateDynamic { index } = f {
                if let Some(bytes) = dynamic.get(*index).cloned() {
                    dynamic.insert(index + 1, bytes);
                }
            }
        }
        if faults
            .iter()
            .any(|f| matches!(f, WireFault::ReorderDynamic))
        {
            dynamic.reverse();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus3() -> Bus {
        Bus::new(BusConfig::round_robin(3, 2))
    }

    #[test]
    fn static_slots_deliver_by_owner() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.transmit_static(NodeId(0), vec![1]).unwrap();
        bus.transmit_static(NodeId(1), vec![2]).unwrap();
        let d = bus.finish_cycle();
        assert_eq!(d.static_frames[&SlotId(0)].payload, vec![1]);
        assert_eq!(d.static_frames[&SlotId(1)].payload, vec![2]);
        assert!(!d.static_frames.contains_key(&SlotId(2)), "silent node 2");
        assert_eq!(
            d.from_node(bus.config(), NodeId(1)).unwrap().payload,
            vec![2]
        );
    }

    #[test]
    fn guardian_blocks_foreign_slot() {
        let mut bus = bus3();
        bus.start_cycle();
        let err = bus
            .transmit_in_slot(NodeId(0), SlotId(1), vec![9])
            .unwrap_err();
        assert_eq!(
            err,
            TransmitError::GuardianBlocked {
                node: NodeId(0),
                slot: SlotId(1)
            }
        );
        assert_eq!(bus.guardian_blocks(), 1);
        let d = bus.finish_cycle();
        assert!(
            d.static_frames.is_empty(),
            "babbling never reaches receivers"
        );
    }

    #[test]
    fn guardian_blocks_unknown_node() {
        let mut bus = bus3();
        bus.start_cycle();
        assert!(matches!(
            bus.transmit_static(NodeId(9), vec![]),
            Err(TransmitError::GuardianBlocked { .. })
        ));
    }

    #[test]
    fn double_transmission_in_slot_rejected() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.transmit_static(NodeId(0), vec![1]).unwrap();
        assert_eq!(
            bus.transmit_static(NodeId(0), vec![2]),
            Err(TransmitError::SlotBusy(SlotId(0)))
        );
    }

    #[test]
    fn corrupted_frame_discarded_and_counted() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.stage_wire_fault(WireFault::CorruptStatic {
            slot: SlotId(0),
            byte: 5,
            mask: 0x80,
        });
        bus.transmit_static(NodeId(0), vec![1, 2, 3]).unwrap();
        bus.transmit_static(NodeId(1), vec![4]).unwrap();
        let d = bus.finish_cycle();
        assert_eq!(d.rejected, 1);
        assert!(!d.static_frames.contains_key(&SlotId(0)));
        assert!(
            d.static_frames.contains_key(&SlotId(1)),
            "other frames unaffected"
        );
        assert_eq!(bus.crc_rejects(), 1);
        assert_eq!(bus.corruptions_applied(), 1);
    }

    #[test]
    fn staged_corruption_on_silent_slot_is_noop() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.stage_wire_fault(WireFault::CorruptStatic {
            slot: SlotId(2),
            byte: 0,
            mask: 0xFF,
        });
        bus.transmit_static(NodeId(0), vec![1]).unwrap();
        let d = bus.finish_cycle();
        assert_eq!(d.rejected, 0);
        assert_eq!(
            bus.corruptions_applied(),
            0,
            "nothing on the wire to corrupt"
        );
    }

    #[test]
    fn staged_faults_on_skip_encoded_silent_slot_are_noops() {
        // The silent slot's frame is never encoded (it doesn't exist);
        // every fault family staged against it must leave counters and
        // delivery untouched.
        let mut bus = bus3();
        bus.start_cycle();
        bus.stage_wire_fault(WireFault::CorruptStatic {
            slot: SlotId(2),
            byte: 3,
            mask: 0xFF,
        });
        bus.stage_wire_fault(WireFault::DropStatic { slot: SlotId(2) });
        bus.stage_wire_fault(WireFault::MasqueradeStatic {
            slot: SlotId(2),
            claim: NodeId(0),
        });
        bus.transmit_static(NodeId(1), vec![5]).unwrap();
        let d = bus.finish_cycle();
        assert_eq!(d.rejected, 0);
        assert_eq!(d.static_frames[&SlotId(1)].payload, vec![5]);
        assert_eq!(bus.corruptions_applied(), 0);
        assert_eq!(bus.drops_applied(), 0);
        assert_eq!(bus.masquerades_applied(), 0);
        assert_eq!(bus.crc_rejects(), 0);
        assert_eq!(bus.masquerade_rejects(), 0);
    }

    #[test]
    fn oversized_payload_rejected_with_typed_error() {
        let mut bus = bus3();
        bus.start_cycle();
        let big = vec![0u32; crate::frame::Frame::MAX_PAYLOAD_WORDS + 1];
        assert_eq!(
            bus.transmit_static(NodeId(0), big.clone()),
            Err(TransmitError::PayloadTooLarge { words: big.len() })
        );
        assert_eq!(
            bus.transmit_dynamic(NodeId(1), 0, big.clone()),
            Err(TransmitError::PayloadTooLarge { words: big.len() })
        );
        // The slot stays free for a well-sized retry.
        bus.transmit_static(NodeId(0), vec![1]).unwrap();
        let d = bus.finish_cycle();
        assert_eq!(d.static_frames[&SlotId(0)].payload, vec![1]);
        assert_eq!(d.rejected, 0);
    }

    #[test]
    fn masquerade_then_corruption_breaks_crc() {
        // A masqueraded (re-sealed) frame that is then corrupted on the
        // wire must fail CRC, not the identity check — pins the canonical
        // fault ordering across the lazy-encode path.
        let mut bus = bus3();
        bus.start_cycle();
        bus.transmit_static(NodeId(0), vec![7]).unwrap();
        bus.stage_wire_fault(WireFault::MasqueradeStatic {
            slot: SlotId(0),
            claim: NodeId(2),
        });
        bus.stage_wire_fault(WireFault::CorruptStatic {
            slot: SlotId(0),
            byte: 4,
            mask: 0x20,
        });
        let d = bus.finish_cycle();
        assert!(d.static_frames.is_empty());
        assert_eq!(d.rejected, 1);
        assert_eq!(bus.masquerades_applied(), 1);
        assert_eq!(bus.corruptions_applied(), 1);
        assert_eq!(bus.crc_rejects(), 1);
        assert_eq!(bus.masquerade_rejects(), 0);
    }

    #[test]
    fn two_corruptions_on_same_slot_can_cancel() {
        // Both XORs land on the same wire image; a cancelling pair leaves
        // the frame intact (and both still count as applied corruptions).
        let mut bus = bus3();
        bus.start_cycle();
        bus.transmit_static(NodeId(0), vec![9]).unwrap();
        bus.stage_wire_fault(WireFault::CorruptStatic {
            slot: SlotId(0),
            byte: 8,
            mask: 0x40,
        });
        bus.stage_wire_fault(WireFault::CorruptStatic {
            slot: SlotId(0),
            byte: 8,
            mask: 0x40,
        });
        let d = bus.finish_cycle();
        assert_eq!(d.static_frames[&SlotId(0)].payload, vec![9]);
        assert_eq!(d.rejected, 0);
        assert_eq!(bus.corruptions_applied(), 2);
        assert_eq!(bus.crc_rejects(), 0);
    }

    #[test]
    fn dropped_frame_is_a_silent_omission() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.transmit_static(NodeId(0), vec![1]).unwrap();
        bus.transmit_static(NodeId(1), vec![2]).unwrap();
        bus.stage_wire_fault(WireFault::DropStatic { slot: SlotId(1) });
        let d = bus.finish_cycle();
        assert!(!d.static_frames.contains_key(&SlotId(1)));
        assert_eq!(
            d.rejected, 0,
            "an omission is silence, not a rejected frame"
        );
        assert_eq!(bus.drops_applied(), 1);
        assert_eq!(bus.crc_rejects(), 0);
    }

    #[test]
    fn masqueraded_frame_rejected_by_identity_check() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.transmit_static(NodeId(0), vec![7]).unwrap();
        bus.stage_wire_fault(WireFault::MasqueradeStatic {
            slot: SlotId(0),
            claim: NodeId(2),
        });
        let d = bus.finish_cycle();
        // The frame is well-formed (CRC valid) but claims the wrong
        // sender, so the receiver-side identity check discards it.
        assert!(!d.static_frames.contains_key(&SlotId(0)));
        assert_eq!(d.rejected, 1);
        assert_eq!(bus.crc_rejects(), 0, "CRC cannot see a masquerade");
        assert_eq!(bus.masquerade_rejects(), 1);
        assert_eq!(bus.masquerades_applied(), 1);
    }

    #[test]
    fn drop_beats_corruption_on_same_slot() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.transmit_static(NodeId(0), vec![1]).unwrap();
        bus.stage_wire_fault(WireFault::CorruptStatic {
            slot: SlotId(0),
            byte: 3,
            mask: 0x01,
        });
        bus.stage_wire_fault(WireFault::DropStatic { slot: SlotId(0) });
        let d = bus.finish_cycle();
        assert!(d.static_frames.is_empty());
        assert_eq!(bus.drops_applied(), 1);
        assert_eq!(
            bus.corruptions_applied(),
            0,
            "a dropped frame cannot also be corrupted: the counters stay honest"
        );
        assert_eq!(d.rejected, 0);
    }

    #[test]
    fn dynamic_duplication_and_reorder() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.transmit_dynamic(NodeId(0), 0, vec![10]).unwrap();
        bus.transmit_dynamic(NodeId(1), 1, vec![20]).unwrap();
        bus.stage_wire_fault(WireFault::DuplicateDynamic { index: 0 });
        bus.stage_wire_fault(WireFault::ReorderDynamic);
        let d = bus.finish_cycle();
        let payloads: Vec<u32> = d.dynamic_frames.iter().map(|f| f.payload[0]).collect();
        assert_eq!(payloads, vec![20, 10, 10], "duplicated then reversed");
    }

    #[test]
    fn dynamic_corruption_rejected() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.transmit_dynamic(NodeId(0), 0, vec![10]).unwrap();
        bus.stage_wire_fault(WireFault::CorruptDynamic {
            index: 0,
            byte: 2,
            mask: 0x10,
        });
        let d = bus.finish_cycle();
        assert!(d.dynamic_frames.is_empty());
        assert_eq!(d.rejected, 1);
        assert_eq!(bus.crc_rejects(), 1);
    }

    #[test]
    fn out_of_range_dynamic_faults_ignored() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.transmit_dynamic(NodeId(0), 0, vec![10]).unwrap();
        bus.stage_wire_fault(WireFault::DuplicateDynamic { index: 9 });
        bus.stage_wire_fault(WireFault::CorruptDynamic {
            index: 9,
            byte: 0,
            mask: 1,
        });
        let d = bus.finish_cycle();
        assert_eq!(d.dynamic_frames.len(), 1);
        assert_eq!(d.rejected, 0);
    }

    #[test]
    fn dynamic_segment_orders_by_priority() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.transmit_dynamic(NodeId(2), 7, vec![70]).unwrap();
        bus.transmit_dynamic(NodeId(0), 1, vec![10]).unwrap();
        let d = bus.finish_cycle();
        assert_eq!(d.dynamic_frames.len(), 2);
        assert_eq!(d.dynamic_frames[0].payload, vec![10], "low number first");
        assert_eq!(d.dynamic_frames[1].payload, vec![70]);
    }

    #[test]
    fn dynamic_segment_capacity_enforced() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.transmit_dynamic(NodeId(0), 0, vec![]).unwrap();
        bus.transmit_dynamic(NodeId(1), 1, vec![]).unwrap();
        assert_eq!(
            bus.transmit_dynamic(NodeId(2), 2, vec![]),
            Err(TransmitError::DynamicSegmentFull)
        );
    }

    #[test]
    fn cycle_counter_increments() {
        let mut bus = bus3();
        for expected in 0..5 {
            bus.start_cycle();
            bus.transmit_static(NodeId(0), vec![expected]).unwrap();
            let d = bus.finish_cycle();
            assert_eq!(d.cycle, expected);
            assert_eq!(d.static_frames[&SlotId(0)].cycle, expected);
        }
        assert_eq!(bus.cycle(), 5);
    }

    #[test]
    #[should_panic(expected = "cycle already open")]
    fn double_start_panics() {
        let mut bus = bus3();
        bus.start_cycle();
        bus.start_cycle();
    }

    #[test]
    #[should_panic(expected = "no open cycle")]
    fn transmit_outside_cycle_panics() {
        let mut bus = bus3();
        let _ = bus.transmit_static(NodeId(0), vec![]);
    }
}
