//! TTP/C-style cluster startup, cold-start contention and reintegration.
//!
//! Every scenario before this module began from the golden synchronized
//! state: all six nodes already agree on time and membership. A correlated
//! transient — an EMI burst, a power brown-out — resets several or *all*
//! nodes at once, and then nothing the paper assumes ("the network
//! interface provides reliable transmission") exists any more. This
//! module re-establishes it from scratch, following the TTP/C startup
//! design:
//!
//! 1. **Listen** — a powered-up node stays silent and listens. If it
//!    hears a cold-start frame (or regular traffic from an already
//!    running cluster) it adopts that timing and moves to *Integrate*.
//! 2. **Cold-start contention** — if the bus stays silent for the node's
//!    *unique* listen timeout, the node transmits a cold-start frame
//!    itself, offering its own clock as the cluster time base.
//! 3. **Collision / big bang** — two nodes whose timeouts expire in the
//!    same cycle both transmit; neither frame can serve as an unambiguous
//!    time base, so both contenders back off into *Listen* again. Because
//!    every timeout is unique, the repeat contention cannot collide the
//!    same way twice, so the collision resolves in bounded time.
//! 4. **Integrate** — a node with adopted (or offered) timing transmits
//!    normally but is not yet *Active*; it becomes Active once it hears a
//!    majority (`n/2 + 1`) of slot owners in a single cycle.
//! 5. **Clique avoidance** — an Active node that suddenly hears only a
//!    minority of senders must assume *it* is in the minority clique
//!    (e.g. on the wrong side of a post-glitch partition) and reverts to
//!    integration — falling silent and re-listening — instead of babbling
//!    against the majority.
//!
//! The protocol itself is fully deterministic: all randomness in blackout
//! scenarios comes from the fault injector (power-up stagger), never from
//! the state machine. That is what makes the DTMC cross-check in
//! [`cold_start_chain`] exact rather than statistical.

use std::collections::BTreeMap;

use crate::bus::{BusConfig, CycleDelivery};
use crate::frame::NodeId;
use crate::membership::clique_majority_threshold;

/// First payload word of a cold-start frame on the wire. Regular traffic
/// in the BBW cluster never starts a static payload with this value (CU
/// set-point frames start with the bus cycle, wheel frames with a brake
/// force), so receivers can classify frames by inspection.
pub const COLD_START_MARKER: u32 = 0xC01D_57A2;

/// Listen timeout (cycles) of the node owning slot 0. Each later slot
/// adds one cycle, which keeps every timeout unique — the TTP/C condition
/// for big-bang collisions to resolve on the next contention round.
pub const BASE_LISTEN_TIMEOUT: u32 = 4;

/// Startup state of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartupState {
    /// Still resetting after a power loss; deaf and mute.
    PoweredDown {
        /// Cycles until the node enters [`StartupState::Listen`].
        until_listen: u32,
    },
    /// Silent, listening for a time base to adopt.
    Listen {
        /// Remaining silent-bus cycles before this node contends.
        remaining: u32,
    },
    /// Transmitting a cold-start frame this cycle, offering its own
    /// clock as the cluster time base.
    ColdStart,
    /// Timing adopted (or successfully offered); transmitting, but not
    /// yet counted on until a majority of senders is heard.
    Integrate,
    /// Fully synchronized, agreed member of the majority clique.
    Active,
}

/// What a node is allowed to put on the bus this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitIntent {
    /// Nothing — powered down, listening, or reverted by clique
    /// avoidance.
    Silent,
    /// A cold-start frame (`[COLD_START_MARKER, cycle]`).
    ColdStartFrame,
    /// Regular application traffic.
    Normal,
}

/// Startup milestones, reported by [`StartupProtocol::observe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartupEvent {
    /// A node finished its power-up delay and entered Listen.
    PoweredUp(NodeId),
    /// A node's listen timeout expired; it contends next cycle.
    Contending(NodeId),
    /// A cold-start frame was transmitted alone and won: its sender is
    /// now the cluster time base.
    ColdStartWon(NodeId),
    /// Two or more cold-start frames collided in the same cycle (the
    /// big-bang scenario); every contender backs off into Listen.
    BigBang(Vec<NodeId>),
    /// A listening node adopted timing from an observed frame.
    TimingAdopted(NodeId),
    /// An integrating node heard a majority of senders and went Active.
    Activated(NodeId),
    /// An Active node heard only a minority clique and reverted to
    /// integration (fell silent) instead of babbling.
    CliqueReverted(NodeId),
}

/// Static parameters of the startup protocol.
#[derive(Debug, Clone)]
pub struct StartupConfig {
    nodes: Vec<NodeId>,
    /// Unique per-node listen timeouts, indexed like `nodes`.
    pub listen_timeouts: Vec<u32>,
    /// Senders that must be heard in one cycle to count as a majority
    /// clique (`n/2 + 1`).
    pub integration_threshold: usize,
}

impl StartupConfig {
    /// Derives the standard configuration from a bus schedule: one
    /// startup participant per static slot, listen timeout
    /// [`BASE_LISTEN_TIMEOUT`]` + slot index`, majority threshold
    /// `n/2 + 1`.
    pub fn for_bus(bus: &BusConfig) -> Self {
        let nodes = bus.static_slots.clone();
        let listen_timeouts = (0..nodes.len())
            .map(|i| BASE_LISTEN_TIMEOUT + i as u32)
            .collect();
        StartupConfig {
            integration_threshold: clique_majority_threshold(nodes.len()),
            nodes,
            listen_timeouts,
        }
    }

    /// The participating nodes, in slot order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn timeout_of(&self, node: NodeId) -> u32 {
        let i = self
            .nodes
            .iter()
            .position(|&n| n == node)
            .expect("node not in startup config");
        self.listen_timeouts[i]
    }

    fn validate(&self) {
        assert!(!self.nodes.is_empty(), "startup config without nodes");
        assert_eq!(
            self.nodes.len(),
            self.listen_timeouts.len(),
            "one listen timeout per node"
        );
        assert!(
            self.listen_timeouts.iter().all(|&t| t > 0),
            "listen timeouts must be positive"
        );
        let mut sorted = self.listen_timeouts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            self.listen_timeouts.len(),
            "listen timeouts must be unique or big-bang collisions repeat forever"
        );
        assert!(
            (1..=self.nodes.len()).contains(&self.integration_threshold),
            "integration threshold must be in 1..=n"
        );
    }
}

/// Counters and latencies accumulated by a [`StartupProtocol`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StartupMetrics {
    /// Cycle of the first *winning* (uncollided) cold-start frame.
    pub first_cold_start_cycle: Option<u32>,
    /// Cold-start frames put on the bus (collided ones included).
    pub cold_starts_sent: u32,
    /// Big-bang collision rounds observed.
    pub big_bangs: u32,
    /// Active nodes that reverted to integration on a minority clique.
    pub clique_reverts: u32,
    /// Per-node reset→Active latencies in activation order: the number
    /// of observed cycles from the cycle the node was reset (inclusive)
    /// to the cycle it went Active (inclusive).
    pub integration_latencies: Vec<(NodeId, u32)>,
}

#[derive(Debug, Clone)]
struct NodeStartup {
    state: StartupState,
    /// Clique avoidance only arms once the node has seen a majority
    /// while Active — otherwise the golden all-active bootstrap (where
    /// wheels are idle until set-points arrive) would trip it.
    armed: bool,
    /// Cycle this node last began a (re)start episode.
    reset_at: u32,
}

/// The cluster-wide startup state machine.
///
/// The protocol is driven in lock-step with the bus: query
/// [`StartupProtocol::intent`] for each node before transmitting in a
/// cycle, then feed the completed cycle's delivery to
/// [`StartupProtocol::observe`], which performs all state transitions.
///
/// # Examples
///
/// ```
/// use nlft_net::bus::{Bus, BusConfig};
/// use nlft_net::startup::{StartupConfig, StartupProtocol, TransmitIntent, COLD_START_MARKER};
///
/// let config = BusConfig::round_robin(4, 2);
/// let mut bus = Bus::new(config.clone());
/// let mut startup = StartupProtocol::cold_boot(StartupConfig::for_bus(&config));
/// for cycle in 0.. {
///     bus.start_cycle();
///     for &node in config.static_slots.clone().iter() {
///         match startup.intent(node) {
///             TransmitIntent::Silent => {}
///             TransmitIntent::ColdStartFrame => {
///                 let _ = bus.transmit_static(node, vec![COLD_START_MARKER, cycle]);
///             }
///             TransmitIntent::Normal => {
///                 let _ = bus.transmit_static(node, vec![7]);
///             }
///         }
///     }
///     let delivery = bus.finish_cycle();
///     startup.observe(cycle, &delivery);
///     if startup.all_ready() {
///         break;
///     }
/// }
/// assert!(startup.metrics().first_cold_start_cycle.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct StartupProtocol {
    config: StartupConfig,
    nodes: BTreeMap<NodeId, NodeStartup>,
    metrics: StartupMetrics,
}

impl StartupProtocol {
    fn with_state(config: StartupConfig, state: StartupState, armed: bool) -> Self {
        config.validate();
        let nodes = config
            .nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let state = match state {
                    StartupState::Listen { .. } => StartupState::Listen {
                        remaining: config.listen_timeouts[i],
                    },
                    s => s,
                };
                (
                    n,
                    NodeStartup {
                        state,
                        armed,
                        reset_at: 0,
                    },
                )
            })
            .collect();
        StartupProtocol {
            config,
            nodes,
            metrics: StartupMetrics::default(),
        }
    }

    /// All nodes already Active: the golden synchronized state every
    /// pre-blackout scenario starts from. Clique avoidance arms on the
    /// first majority cycle each node observes.
    pub fn all_active(config: StartupConfig) -> Self {
        Self::with_state(config, StartupState::Active, false)
    }

    /// All nodes powered up simultaneously into Listen with their own
    /// timeouts: a cluster-wide cold boot.
    pub fn cold_boot(config: StartupConfig) -> Self {
        Self::with_state(config, StartupState::Listen { remaining: 0 }, false)
    }

    /// The static configuration.
    pub fn config(&self) -> &StartupConfig {
        &self.config
    }

    /// The node's current startup state.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a startup participant.
    pub fn state(&self, node: NodeId) -> StartupState {
        self.nodes.get(&node).expect("unknown startup node").state
    }

    /// Whether `node` is a fully synchronized member.
    pub fn is_active(&self, node: NodeId) -> bool {
        matches!(self.state(node), StartupState::Active)
    }

    /// Whether every participant is Active.
    pub fn all_ready(&self) -> bool {
        self.nodes
            .values()
            .all(|n| matches!(n.state, StartupState::Active))
    }

    /// Accumulated milestones and latencies.
    pub fn metrics(&self) -> &StartupMetrics {
        &self.metrics
    }

    /// Resets `node` as of cycle `cycle`: it spends `down_cycles`
    /// observed cycles in [`StartupState::PoweredDown`] (0 → it starts
    /// listening immediately) and then re-enters the bus through the
    /// full Listen / Cold-Start / Integrate path.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a startup participant.
    pub fn reset_node(&mut self, node: NodeId, down_cycles: u32, cycle: u32) {
        let timeout = self.config.timeout_of(node);
        let entry = self.nodes.get_mut(&node).expect("unknown startup node");
        entry.state = if down_cycles == 0 {
            StartupState::Listen { remaining: timeout }
        } else {
            StartupState::PoweredDown {
                until_listen: down_cycles,
            }
        };
        entry.armed = true;
        entry.reset_at = cycle;
    }

    /// What `node` may transmit this cycle. The mapping is stable for a
    /// whole cycle because transitions only happen in
    /// [`StartupProtocol::observe`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a startup participant.
    pub fn intent(&self, node: NodeId) -> TransmitIntent {
        match self.state(node) {
            StartupState::PoweredDown { .. } | StartupState::Listen { .. } => {
                TransmitIntent::Silent
            }
            StartupState::ColdStart => TransmitIntent::ColdStartFrame,
            StartupState::Integrate | StartupState::Active => TransmitIntent::Normal,
        }
    }

    /// Feeds one completed bus cycle and performs every state
    /// transition, returning the milestones it caused.
    pub fn observe(&mut self, cycle: u32, delivery: &CycleDelivery) -> Vec<StartupEvent> {
        let cold_start_senders: Vec<NodeId> = delivery
            .static_frames
            .values()
            .filter(|f| f.payload.first() == Some(&COLD_START_MARKER))
            .map(|f| f.sender)
            .collect();
        let senders_heard = delivery.static_frames.len();
        let normal_senders = senders_heard - cold_start_senders.len();
        let threshold = self.config.integration_threshold;

        let mut events = Vec::new();
        let mut big_bang: Option<Vec<NodeId>> = None;
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        for node in ids {
            let timeout = self.config.timeout_of(node);
            let entry = self.nodes.get_mut(&node).expect("unknown startup node");
            match entry.state {
                StartupState::PoweredDown { until_listen } => {
                    // Deaf while resetting: only the power-up countdown
                    // advances.
                    if until_listen <= 1 {
                        entry.state = StartupState::Listen { remaining: timeout };
                        events.push(StartupEvent::PoweredUp(node));
                    } else {
                        entry.state = StartupState::PoweredDown {
                            until_listen: until_listen - 1,
                        };
                    }
                }
                StartupState::Listen { remaining } => {
                    let lone_cold_start =
                        cold_start_senders.len() == 1 && cold_start_senders[0] != node;
                    if lone_cold_start || normal_senders > 0 {
                        // An unambiguous time base: a winning cold-start
                        // frame, or a cluster already running.
                        entry.state = StartupState::Integrate;
                        events.push(StartupEvent::TimingAdopted(node));
                    } else if cold_start_senders.len() >= 2 {
                        // Colliding cold-start frames carry no usable
                        // timing; the bus was not silent either, so the
                        // listen timeout does not advance.
                    } else if remaining <= 1 {
                        entry.state = StartupState::ColdStart;
                        events.push(StartupEvent::Contending(node));
                    } else {
                        entry.state = StartupState::Listen {
                            remaining: remaining - 1,
                        };
                    }
                }
                StartupState::ColdStart => {
                    self.metrics.cold_starts_sent += 1;
                    let mine_arrived = cold_start_senders.contains(&node);
                    if cold_start_senders.len() >= 2 {
                        // Big bang: back off into Listen. Unique timeouts
                        // guarantee the rematch is not simultaneous.
                        entry.state = StartupState::Listen { remaining: timeout };
                        if mine_arrived {
                            big_bang
                                .get_or_insert_with(|| cold_start_senders.clone())
                                .sort_unstable_by_key(|n| n.0);
                        }
                    } else if mine_arrived {
                        self.metrics.first_cold_start_cycle =
                            Some(self.metrics.first_cold_start_cycle.unwrap_or(cycle));
                        entry.state = StartupState::Integrate;
                        events.push(StartupEvent::ColdStartWon(node));
                    } else if cold_start_senders.len() == 1 {
                        // My frame was lost on the wire but a rival's got
                        // through: adopt the rival's timing.
                        entry.state = StartupState::Integrate;
                        events.push(StartupEvent::TimingAdopted(node));
                    } else {
                        // My frame was lost and nothing else was heard:
                        // re-listen and contend again.
                        entry.state = StartupState::Listen { remaining: timeout };
                    }
                }
                StartupState::Integrate => {
                    if senders_heard >= threshold {
                        entry.state = StartupState::Active;
                        entry.armed = true;
                        let latency = cycle - entry.reset_at + 1;
                        self.metrics.integration_latencies.push((node, latency));
                        events.push(StartupEvent::Activated(node));
                    }
                }
                StartupState::Active => {
                    if senders_heard >= threshold {
                        entry.armed = true;
                    } else if entry.armed {
                        // Clique avoidance: a minority of senders means
                        // *this* node may be the one partitioned off.
                        // Fall silent and reintegrate; never babble.
                        entry.state = StartupState::Listen { remaining: timeout };
                        entry.reset_at = cycle;
                        self.metrics.clique_reverts += 1;
                        events.push(StartupEvent::CliqueReverted(node));
                    }
                }
            }
        }
        if let Some(contenders) = big_bang {
            self.metrics.big_bangs += 1;
            events.push(StartupEvent::BigBang(contenders));
        }
        events
    }
}

/// Unfolds the deterministic full-blackout cold-start of the contention
/// winner into an absorbing DTMC, one state per cycle: `down_cycles`
/// powered-down states, `listen_timeout` listening states, one cold-start
/// contention state, `integrate_cycles` integrating states, and the
/// absorbing Active state. Returns `(matrix, start, absorbing)` for
/// `reliability`'s fundamental-matrix machinery; the expected steps to
/// absorption from `start` equal the winner's reset→Active integration
/// latency as measured by [`StartupMetrics::integration_latencies`].
///
/// Every transition has probability 1 because the protocol is
/// deterministic — the point of the cross-check is that the simulated
/// campaign and the chain are *derived independently* (cycle-driven state
/// machine vs. phase arithmetic) and must still agree exactly.
pub fn cold_start_chain(
    down_cycles: u32,
    listen_timeout: u32,
    integrate_cycles: u32,
) -> (Vec<Vec<f64>>, usize, Vec<usize>) {
    let transient = (down_cycles + listen_timeout + 1 + integrate_cycles) as usize;
    let states = transient + 1;
    let mut matrix = vec![vec![0.0; states]; states];
    for (i, row) in matrix.iter_mut().enumerate().take(transient) {
        row[i + 1] = 1.0;
    }
    matrix[transient][transient] = 1.0;
    (matrix, 0, vec![transient])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Bus;

    /// Drives a bus + protocol for `cycles` cycles; `allowed` gates which
    /// nodes may actually reach the bus (None = all).
    fn drive(
        bus: &mut Bus,
        startup: &mut StartupProtocol,
        from_cycle: u32,
        cycles: u32,
        allowed: Option<&[NodeId]>,
    ) -> Vec<(u32, StartupEvent)> {
        let config = bus.config().clone();
        let mut events = Vec::new();
        for cycle in from_cycle..from_cycle + cycles {
            bus.start_cycle();
            for &node in &config.static_slots {
                if allowed.is_some_and(|a| !a.contains(&node)) {
                    continue;
                }
                match startup.intent(node) {
                    TransmitIntent::Silent => {}
                    TransmitIntent::ColdStartFrame => {
                        bus.transmit_static(node, vec![COLD_START_MARKER, cycle])
                            .expect("cold-start frame");
                    }
                    TransmitIntent::Normal => {
                        bus.transmit_static(node, vec![cycle]).expect("i-frame");
                    }
                }
            }
            let delivery = bus.finish_cycle();
            for ev in startup.observe(cycle, &delivery) {
                events.push((cycle, ev));
            }
        }
        events
    }

    fn six_node() -> (Bus, StartupConfig) {
        let config = BusConfig::round_robin(6, 4);
        (Bus::new(config.clone()), StartupConfig::for_bus(&config))
    }

    #[test]
    fn cold_boot_reaches_all_active_in_bounded_cycles() {
        let (mut bus, config) = six_node();
        let mut startup = StartupProtocol::cold_boot(config);
        // Node 0 has the smallest timeout (BASE), so it wins the first
        // contention: BASE silent listen cycles, cold-start frame in
        // cycle BASE, everyone integrates and activates right after.
        let bound = BASE_LISTEN_TIMEOUT + 3;
        drive(&mut bus, &mut startup, 0, bound, None);
        assert!(startup.all_ready(), "cold boot must finish within bound");
        let m = startup.metrics();
        assert_eq!(m.first_cold_start_cycle, Some(BASE_LISTEN_TIMEOUT));
        assert_eq!(m.big_bangs, 0);
        assert_eq!(m.cold_starts_sent, 1);
        // The winner offered its own timing; everyone else adopted it.
        assert_eq!(bus.guardian_blocks(), 0, "startup never babbles");
    }

    #[test]
    fn big_bang_collision_backs_off_and_resolves() {
        let (mut bus, config) = six_node();
        let mut startup = StartupProtocol::cold_boot(config);
        // Stagger power-up so nodes 0 and 1 contend in the same cycle:
        // node 0 listens from cycle 2 (timeout 4), node 1 from cycle 1
        // (timeout 5) — both expire observing cycle 5 and collide in
        // cycle 6. Wheels stay down long enough to listen quietly.
        startup.reset_node(NodeId(0), 2, 0);
        startup.reset_node(NodeId(1), 1, 0);
        for wheel in 2..6 {
            startup.reset_node(NodeId(wheel), 12, 0);
        }
        let events = drive(&mut bus, &mut startup, 0, 16, None);
        let bang = events
            .iter()
            .find(|(_, e)| matches!(e, StartupEvent::BigBang(_)))
            .expect("collision must be observed");
        assert_eq!(
            bang,
            &(6, StartupEvent::BigBang(vec![NodeId(0), NodeId(1)])),
            "both contenders collide in cycle 6"
        );
        assert_eq!(startup.metrics().big_bangs, 1);
        // Node 0's shorter timeout wins the rematch: re-listen cycles
        // 7..=10, lone cold-start frame in cycle 11.
        assert_eq!(startup.metrics().first_cold_start_cycle, Some(11));
        assert!(startup.all_ready(), "big bang must still converge");
        assert_eq!(bus.guardian_blocks(), 0);
    }

    #[test]
    fn single_reset_node_reintegrates_by_listening() {
        let (mut bus, config) = six_node();
        let mut startup = StartupProtocol::all_active(config);
        drive(&mut bus, &mut startup, 0, 2, None);
        startup.reset_node(NodeId(3), 2, 2);
        let events = drive(&mut bus, &mut startup, 2, 6, None);
        assert!(startup.all_ready());
        // Running traffic is adopted directly — no contention needed.
        assert_eq!(startup.metrics().cold_starts_sent, 0);
        assert_eq!(startup.metrics().first_cold_start_cycle, None);
        assert!(events
            .iter()
            .any(|(_, e)| *e == StartupEvent::TimingAdopted(NodeId(3))));
        assert!(events
            .iter()
            .any(|(_, e)| *e == StartupEvent::Activated(NodeId(3))));
    }

    #[test]
    fn minority_clique_reverts_to_listen_and_never_babbles() {
        let (mut bus, config) = six_node();
        let mut startup = StartupProtocol::all_active(config);
        // One full cycle arms clique avoidance on every node.
        drive(&mut bus, &mut startup, 0, 1, None);
        // Partition: only nodes 4 and 5 still reach the bus — a minority
        // clique of 2 < 4.
        let minority = [NodeId(4), NodeId(5)];
        let events = drive(&mut bus, &mut startup, 1, 1, Some(&minority));
        assert_eq!(
            events
                .iter()
                .filter(|(_, e)| matches!(e, StartupEvent::CliqueReverted(_)))
                .count(),
            6,
            "every node heard a minority and reverted"
        );
        for node in 0..6 {
            assert_eq!(
                startup.intent(NodeId(node)),
                TransmitIntent::Silent,
                "a reverted node falls silent instead of babbling"
            );
        }
        assert_eq!(startup.metrics().clique_reverts, 6);
        // The partitioned cluster then cold-starts from scratch and
        // recovers without a single guardian block.
        drive(&mut bus, &mut startup, 2, 12, None);
        assert!(startup.all_ready());
        assert_eq!(bus.guardian_blocks(), 0);
    }

    #[test]
    fn clique_check_is_disarmed_until_first_majority() {
        let (mut bus, config) = six_node();
        let mut startup = StartupProtocol::all_active(config);
        // Cycle 0 of the golden bootstrap: only 2 of 6 transmit (the BBW
        // wheels idle until set-points arrive). Must not trip.
        let events = drive(&mut bus, &mut startup, 0, 1, Some(&[NodeId(0), NodeId(1)]));
        assert!(events.is_empty(), "bootstrap minority must not revert");
        assert!(startup.all_ready());
    }

    #[test]
    fn lost_cold_start_frame_retries_contention() {
        let (mut bus, config) = six_node();
        let mut startup = StartupProtocol::cold_boot(config);
        // Let node 0 reach contention, then drop its frame on the wire.
        drive(&mut bus, &mut startup, 0, BASE_LISTEN_TIMEOUT, None);
        assert_eq!(startup.state(NodeId(0)), StartupState::ColdStart);
        // Its frame never reaches the bus (transceiver dead this cycle).
        drive(
            &mut bus,
            &mut startup,
            BASE_LISTEN_TIMEOUT,
            1,
            Some(&[NodeId(1)]),
        );
        assert!(
            matches!(startup.state(NodeId(0)), StartupState::Listen { .. }),
            "a lost cold-start frame sends the contender back to Listen"
        );
        drive(&mut bus, &mut startup, BASE_LISTEN_TIMEOUT + 1, 12, None);
        assert!(startup.all_ready());
    }

    #[test]
    fn intents_map_states() {
        let config = BusConfig::round_robin(4, 2);
        let mut startup = StartupProtocol::cold_boot(StartupConfig::for_bus(&config));
        assert_eq!(startup.intent(NodeId(0)), TransmitIntent::Silent);
        startup.reset_node(NodeId(0), 3, 0);
        assert_eq!(startup.intent(NodeId(0)), TransmitIntent::Silent);
        assert!(!startup.is_active(NodeId(0)));
        let active = StartupProtocol::all_active(StartupConfig::for_bus(&config));
        assert_eq!(active.intent(NodeId(2)), TransmitIntent::Normal);
        assert!(active.all_ready());
    }

    #[test]
    fn cold_start_chain_is_linear_and_exact() {
        let (matrix, start, absorbing) = cold_start_chain(2, 4, 2);
        assert_eq!(start, 0);
        assert_eq!(absorbing, vec![9]);
        assert_eq!(matrix.len(), 10);
        for (i, row) in matrix.iter().enumerate() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            let next = row.iter().position(|&p| p == 1.0).unwrap();
            assert_eq!(next, if i == 9 { 9 } else { i + 1 });
        }
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_timeouts_are_rejected() {
        let bus = BusConfig::round_robin(3, 2);
        let mut config = StartupConfig::for_bus(&bus);
        config.listen_timeouts[1] = config.listen_timeouts[0];
        StartupProtocol::cold_boot(config);
    }
}
