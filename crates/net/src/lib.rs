//! # nlft-net — time-triggered communication for NLFT clusters
//!
//! The paper assumes a time-triggered network (TTP/C or FlexRay) whose
//! interface delivers messages that are either correct or detectably
//! corrupt, with time-triggered slots for critical traffic and an optional
//! event-triggered segment for sporadic activity. This crate provides that
//! substrate:
//!
//! * [`frame`] — CRC-protected frames (end-to-end detectable corruption);
//! * [`bus`] — a FlexRay-style cycle: static TDMA slots guarded against
//!   babbling idiots + a priority-arbitrated dynamic mini-slot segment;
//! * [`membership`] — silent-node exclusion and reintegration, the
//!   mechanism behind the paper's repair rates `μ_R` and `μ_OM`;
//! * [`replication`] — duplex active replication (the central-unit
//!   configuration) and the §4 state-resynchronisation protocol over the
//!   dynamic segment;
//! * [`inject`] — deterministic network fault injection: per-node rates of
//!   corruption, omission, crash, babbling, masquerade and clock faults,
//!   driven against the bus to measure how well the above defences hold.
//!
//! # Examples
//!
//! A two-node duplex cluster surviving one replica's omission:
//!
//! ```
//! use nlft_net::bus::{Bus, BusConfig};
//! use nlft_net::frame::NodeId;
//! use nlft_net::replication::{select_duplex, DuplexPair, DuplexValue};
//!
//! let config = BusConfig::round_robin(2, 0);
//! let mut bus = Bus::new(config.clone());
//! let pair = DuplexPair::new(NodeId(0), NodeId(1));
//!
//! bus.start_cycle();
//! bus.transmit_static(NodeId(0), vec![1234]).unwrap(); // replica 1 omits
//! let delivery = bus.finish_cycle();
//! let value = select_duplex(&config, &delivery, pair);
//! assert_eq!(value.payload(), Some(&[1234u32][..]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod frame;
pub mod inject;
pub mod membership;
pub mod replication;
pub mod startup;
pub mod sync;
pub mod timing;

pub use bus::{Bus, BusConfig, CycleDelivery, TransmitError, WireFault};
pub use frame::{Frame, FrameError, NodeId, SlotId};
pub use inject::{BlackoutSpec, InjectionCounts, NetFaultInjector, NetFaultPlan, NetFaultRates};
pub use membership::{clique_majority_threshold, CliqueVerdict, Membership, MembershipEvent};
pub use replication::{
    select_duplex, select_duplex_among, DuplexPair, DuplexValue, ResyncPolicy, StateResync,
};
pub use startup::{
    StartupConfig, StartupEvent, StartupMetrics, StartupProtocol, StartupState, TransmitIntent,
};
pub use sync::{ClockBehaviour, ClockGlitch, SyncConfig, SyncReport};
pub use timing::{derive_repair_rates, BusTiming, DerivedRepairRates};
