//! Duplex active replication and state resynchronisation.
//!
//! The paper's central unit is a duplex configuration in *active
//! replication*: both replicas compute and transmit every cycle, and
//! consumers accept the value from either replica — an omission or
//! fail-silence of one replica is invisible as long as the partner
//! delivers. Replica determinism is assumed (both replicas see the same
//! inputs and compute the same outputs), so a *disagreement* between two
//! valid replica frames indicates an undetected error and is surfaced
//! rather than hidden.
//!
//! [`StateResync`] implements the future-work idea of §4: a replica
//! returning from an omission asks its partner for fresh state through the
//! event-triggered (dynamic) segment, while critical traffic continues in
//! the static slots.

use std::fmt;

use crate::bus::{Bus, BusConfig, CycleDelivery, TransmitError};
use crate::frame::{Frame, NodeId};

/// A duplex pair of replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplexPair {
    /// First replica.
    pub a: NodeId,
    /// Second replica.
    pub b: NodeId,
}

impl DuplexPair {
    /// Creates a pair.
    ///
    /// # Panics
    ///
    /// Panics if both ids are the same node.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "a duplex pair needs two distinct nodes");
        DuplexPair { a, b }
    }

    /// The partner of `node`, if `node` is in the pair.
    pub fn partner_of(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Result of selecting a value from a duplex pair in one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DuplexValue {
    /// Both replicas delivered and agreed.
    Agreed(Vec<u32>),
    /// Only one replica delivered (the other omitted / is down).
    Single {
        /// The replica that delivered.
        from: NodeId,
        /// Its payload.
        payload: Vec<u32>,
    },
    /// Both delivered but the payloads differ — replica determinism is
    /// broken or an error escaped a node's EDMs. Consumers must treat the
    /// pair as failed.
    Disagreement {
        /// Payload from replica `a`.
        a: Vec<u32>,
        /// Payload from replica `b`.
        b: Vec<u32>,
    },
    /// Neither replica delivered.
    Silent,
}

impl DuplexValue {
    /// The usable payload, if any.
    pub fn payload(&self) -> Option<&[u32]> {
        match self {
            DuplexValue::Agreed(p) => Some(p),
            DuplexValue::Single { payload, .. } => Some(payload),
            DuplexValue::Disagreement { .. } | DuplexValue::Silent => None,
        }
    }
}

impl fmt::Display for DuplexValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DuplexValue::Agreed(_) => write!(f, "agreed"),
            DuplexValue::Single { from, .. } => write!(f, "single ({from})"),
            DuplexValue::Disagreement { .. } => write!(f, "disagreement"),
            DuplexValue::Silent => write!(f, "silent"),
        }
    }
}

/// Selects the duplex pair's value from one cycle's delivery.
pub fn select_duplex(
    config: &BusConfig,
    delivery: &CycleDelivery,
    pair: DuplexPair,
) -> DuplexValue {
    let fa = delivery.from_node(config, pair.a);
    let fb = delivery.from_node(config, pair.b);
    match (fa, fb) {
        (Some(x), Some(y)) => {
            if x.payload == y.payload {
                DuplexValue::Agreed(x.payload.clone())
            } else {
                DuplexValue::Disagreement {
                    a: x.payload.clone(),
                    b: y.payload.clone(),
                }
            }
        }
        (Some(x), None) => DuplexValue::Single {
            from: pair.a,
            payload: x.payload.clone(),
        },
        (None, Some(y)) => DuplexValue::Single {
            from: pair.b,
            payload: y.payload.clone(),
        },
        (None, None) => DuplexValue::Silent,
    }
}

/// Selects the duplex pair's value considering only replicas that
/// `is_member` accepts. A replica outside the membership view — excluded,
/// or freshly restarted and not yet reintegrated — may transmit with stale
/// state; consumers must not let it poison the pair, so its frames are
/// treated as silence.
pub fn select_duplex_among(
    config: &BusConfig,
    delivery: &CycleDelivery,
    pair: DuplexPair,
    is_member: impl Fn(NodeId) -> bool,
) -> DuplexValue {
    let fa = delivery
        .from_node(config, pair.a)
        .filter(|_| is_member(pair.a));
    let fb = delivery
        .from_node(config, pair.b)
        .filter(|_| is_member(pair.b));
    match (fa, fb) {
        (Some(x), Some(y)) => {
            if x.payload == y.payload {
                DuplexValue::Agreed(x.payload.clone())
            } else {
                DuplexValue::Disagreement {
                    a: x.payload.clone(),
                    b: y.payload.clone(),
                }
            }
        }
        (Some(x), None) => DuplexValue::Single {
            from: pair.a,
            payload: x.payload.clone(),
        },
        (None, Some(y)) => DuplexValue::Single {
            from: pair.b,
            payload: y.payload.clone(),
        },
        (None, None) => DuplexValue::Silent,
    }
}

/// Message kinds of the state-resynchronisation protocol, encoded as the
/// first payload word of dynamic-segment frames.
const RESYNC_REQUEST: u32 = 0x5259_0001; // "RY" 1
const RESYNC_RESPONSE: u32 = 0x5259_0002;

/// Retry schedule for [`StateResync::tick`]: bounded attempts with capped
/// exponential backoff. Under a network fault storm a resync request or its
/// answer can be lost like any other frame, so a single-shot request is not
/// enough — but unbounded aggressive retries would squat the dynamic
/// segment the rest of the cluster also needs. The compromise is classic:
/// retry, back off exponentially, cap the backoff, bound the attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResyncPolicy {
    /// Cycles to wait for an answer to the first request.
    pub initial_wait_cycles: u32,
    /// Cap on the exponentially growing wait.
    pub max_wait_cycles: u32,
    /// Requests sent before giving up.
    pub max_attempts: u32,
}

impl Default for ResyncPolicy {
    fn default() -> Self {
        ResyncPolicy {
            initial_wait_cycles: 2,
            max_wait_cycles: 16,
            max_attempts: 5,
        }
    }
}

impl ResyncPolicy {
    /// The wait after the `attempt`-th request (1-based): capped
    /// exponential.
    fn wait_after(&self, attempt: u32) -> u32 {
        self.initial_wait_cycles
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_wait_cycles)
            .max(1)
    }
}

/// The state-resync endpoint a replica runs.
///
/// Protocol (all in the dynamic segment, priority 0 = most urgent):
///
/// 1. the recovering replica broadcasts `Request { requester }`;
/// 2. the partner answers `Response { requester, state… }` next cycle;
/// 3. the requester installs the state and resumes active replication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateResync {
    node: NodeId,
    pair: DuplexPair,
    outstanding: bool,
    policy: ResyncPolicy,
    resyncing: bool,
    gave_up: bool,
    attempts: u32,
    wait: u32,
}

/// An event produced by the resync endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResyncEvent {
    /// The partner asked for our state; we responded with `state`.
    ServedPartner(Vec<u32>),
    /// Our own request was answered; install this state.
    StateReceived(Vec<u32>),
}

impl StateResync {
    /// Creates the endpoint for `node`, which must belong to `pair`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the pair.
    pub fn new(node: NodeId, pair: DuplexPair) -> Self {
        Self::with_policy(node, pair, ResyncPolicy::default())
    }

    /// Creates the endpoint with an explicit retry policy.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the pair or `max_attempts` is zero.
    pub fn with_policy(node: NodeId, pair: DuplexPair, policy: ResyncPolicy) -> Self {
        assert!(
            pair.partner_of(node).is_some(),
            "{node} is not part of the duplex pair"
        );
        assert!(policy.max_attempts > 0, "max_attempts must be positive");
        StateResync {
            node,
            pair,
            outstanding: false,
            policy,
            resyncing: false,
            gave_up: false,
            attempts: 0,
            wait: 0,
        }
    }

    /// Whether a request is waiting for an answer.
    pub fn awaiting_state(&self) -> bool {
        self.outstanding
    }

    /// Whether a [`StateResync::begin_resync`] episode is still running.
    pub fn is_resyncing(&self) -> bool {
        self.resyncing
    }

    /// Whether the last episode exhausted its retry budget without an
    /// answer. The replica then resumes from its own (possibly stale)
    /// state rather than blocking forever — availability over freshness.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    /// Requests sent in the current/last episode.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Starts (or restarts) a resynchronisation episode: [`StateResync::tick`]
    /// will send the first request on its next call and retry per the
    /// [`ResyncPolicy`] until an answer arrives or the budget runs out.
    pub fn begin_resync(&mut self) {
        self.resyncing = true;
        self.gave_up = false;
        self.outstanding = false;
        self.attempts = 0;
        self.wait = 0;
    }

    /// Drives one cycle of the retry schedule. Call once per cycle between
    /// [`Bus::start_cycle`] and [`Bus::finish_cycle`] while an episode is
    /// running; a no-op otherwise. Infallible by design: a full dynamic
    /// segment simply consumes the attempt — under a storm that *is* a
    /// failed request.
    pub fn tick(&mut self, bus: &mut Bus) {
        if !self.resyncing {
            return;
        }
        if self.wait > 0 {
            self.wait -= 1;
            return;
        }
        if self.attempts >= self.policy.max_attempts {
            self.gave_up = true;
            self.resyncing = false;
            self.outstanding = false;
            return;
        }
        self.attempts += 1;
        self.wait = self.policy.wait_after(self.attempts);
        let _ = self.request_state(bus);
    }

    /// Broadcasts a state request in the dynamic segment (on return from an
    /// omission).
    ///
    /// # Errors
    ///
    /// Propagates [`TransmitError::DynamicSegmentFull`] — the request is
    /// retried next cycle by calling this again.
    pub fn request_state(&mut self, bus: &mut Bus) -> Result<(), TransmitError> {
        bus.transmit_dynamic(self.node, 0, vec![RESYNC_REQUEST, u32::from(self.node.0)])?;
        self.outstanding = true;
        Ok(())
    }

    /// Processes one cycle's dynamic frames: answers partner requests with
    /// `our_state` and receives answers to our own request.
    ///
    /// # Errors
    ///
    /// Propagates transmit errors when answering a partner request.
    pub fn process_cycle(
        &mut self,
        bus: &mut Bus,
        delivery: &CycleDelivery,
        our_state: &[u32],
    ) -> Result<Vec<ResyncEvent>, TransmitError> {
        let mut events = Vec::new();
        let partner = self.pair.partner_of(self.node).expect("validated in new");
        for frame in &delivery.dynamic_frames {
            match frame.payload.split_first() {
                Some((&RESYNC_REQUEST, rest)) => {
                    let requester = rest.first().map(|&r| NodeId(r as u8));
                    if frame.sender == partner && requester == Some(partner) {
                        let mut payload = vec![RESYNC_RESPONSE, u32::from(partner.0)];
                        payload.extend_from_slice(our_state);
                        bus.transmit_dynamic(self.node, 1, payload)?;
                        events.push(ResyncEvent::ServedPartner(our_state.to_vec()));
                    }
                }
                Some((&RESYNC_RESPONSE, rest))
                    if self.outstanding
                        && frame.sender == partner
                        && rest.first() == Some(&u32::from(self.node.0)) =>
                {
                    self.outstanding = false;
                    self.resyncing = false;
                    self.wait = 0;
                    events.push(ResyncEvent::StateReceived(rest[1..].to_vec()));
                }
                _ => {}
            }
        }
        Ok(events)
    }
}

/// Convenience: does a dynamic frame belong to the resync protocol?
/// (Filtering keeps application traffic separate.)
pub fn is_resync_frame(frame: &Frame) -> bool {
    matches!(
        frame.payload.first(),
        Some(&RESYNC_REQUEST) | Some(&RESYNC_RESPONSE)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Bus, BusConfig, DuplexPair) {
        let config = BusConfig::round_robin(2, 4);
        (
            Bus::new(config.clone()),
            config,
            DuplexPair::new(NodeId(0), NodeId(1)),
        )
    }

    #[test]
    fn agreed_when_replicas_match() {
        let (mut bus, config, pair) = setup();
        bus.start_cycle();
        bus.transmit_static(NodeId(0), vec![42]).unwrap();
        bus.transmit_static(NodeId(1), vec![42]).unwrap();
        let d = bus.finish_cycle();
        assert_eq!(
            select_duplex(&config, &d, pair),
            DuplexValue::Agreed(vec![42])
        );
    }

    #[test]
    fn single_when_one_replica_silent() {
        let (mut bus, config, pair) = setup();
        bus.start_cycle();
        bus.transmit_static(NodeId(1), vec![7]).unwrap();
        let d = bus.finish_cycle();
        let v = select_duplex(&config, &d, pair);
        assert_eq!(
            v,
            DuplexValue::Single {
                from: NodeId(1),
                payload: vec![7]
            }
        );
        assert_eq!(v.payload(), Some(&[7u32][..]));
    }

    #[test]
    fn disagreement_surfaces_divergence() {
        let (mut bus, config, pair) = setup();
        bus.start_cycle();
        bus.transmit_static(NodeId(0), vec![1]).unwrap();
        bus.transmit_static(NodeId(1), vec![2]).unwrap();
        let d = bus.finish_cycle();
        let v = select_duplex(&config, &d, pair);
        assert!(matches!(v, DuplexValue::Disagreement { .. }));
        assert_eq!(v.payload(), None, "divergent pair yields no usable value");
    }

    #[test]
    fn silent_when_both_down() {
        let (mut bus, config, pair) = setup();
        bus.start_cycle();
        let d = bus.finish_cycle();
        assert_eq!(select_duplex(&config, &d, pair), DuplexValue::Silent);
    }

    #[test]
    fn partner_lookup() {
        let pair = DuplexPair::new(NodeId(3), NodeId(5));
        assert_eq!(pair.partner_of(NodeId(3)), Some(NodeId(5)));
        assert_eq!(pair.partner_of(NodeId(5)), Some(NodeId(3)));
        assert_eq!(pair.partner_of(NodeId(9)), None);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn degenerate_pair_rejected() {
        DuplexPair::new(NodeId(1), NodeId(1));
    }

    #[test]
    fn full_resync_handshake() {
        let (mut bus, _, pair) = setup();
        let mut recovering = StateResync::new(NodeId(1), pair);
        let mut healthy = StateResync::new(NodeId(0), pair);
        let healthy_state = vec![101, 202, 303];

        // Cycle 1: the recovering node requests state.
        bus.start_cycle();
        recovering.request_state(&mut bus).unwrap();
        let d1 = bus.finish_cycle();
        assert!(recovering.awaiting_state());

        // Cycle 2: the healthy partner sees the request and answers.
        bus.start_cycle();
        let ev_h = healthy
            .process_cycle(&mut bus, &d1, &healthy_state)
            .unwrap();
        assert_eq!(
            ev_h,
            vec![ResyncEvent::ServedPartner(healthy_state.clone())]
        );
        let d2 = bus.finish_cycle();

        // Cycle 3: the recovering node installs the state.
        bus.start_cycle();
        let ev_r = recovering.process_cycle(&mut bus, &d2, &[]).unwrap();
        assert_eq!(ev_r, vec![ResyncEvent::StateReceived(healthy_state)]);
        assert!(!recovering.awaiting_state());
        bus.finish_cycle();
    }

    #[test]
    fn resync_ignores_foreign_and_application_frames() {
        let (mut bus, _, pair) = setup();
        let mut node = StateResync::new(NodeId(0), pair);
        bus.start_cycle();
        bus.transmit_dynamic(NodeId(1), 2, vec![0x1234, 5]).unwrap(); // app frame
        let d = bus.finish_cycle();
        bus.start_cycle();
        let ev = node.process_cycle(&mut bus, &d, &[9]).unwrap();
        assert!(ev.is_empty());
        bus.finish_cycle();
    }

    #[test]
    fn response_only_accepted_when_outstanding() {
        let (mut bus, _, pair) = setup();
        let mut node = StateResync::new(NodeId(1), pair);
        // A spurious response arrives without a request.
        bus.start_cycle();
        bus.transmit_dynamic(NodeId(0), 1, vec![RESYNC_RESPONSE, 1, 99])
            .unwrap();
        let d = bus.finish_cycle();
        bus.start_cycle();
        let ev = node.process_cycle(&mut bus, &d, &[]).unwrap();
        assert!(ev.is_empty(), "unsolicited state must not be installed");
        bus.finish_cycle();
    }

    #[test]
    fn membership_aware_selection_ignores_non_members() {
        let (mut bus, config, pair) = setup();
        bus.start_cycle();
        bus.transmit_static(NodeId(0), vec![1]).unwrap();
        bus.transmit_static(NodeId(1), vec![2]).unwrap();
        let d = bus.finish_cycle();
        // Node 0 is outside the membership: its (divergent, stale) frame
        // must not produce a Disagreement — the healthy replica rules.
        let v = select_duplex_among(&config, &d, pair, |n| n != NodeId(0));
        assert_eq!(
            v,
            DuplexValue::Single {
                from: NodeId(1),
                payload: vec![2]
            }
        );
        // With both members it is the usual disagreement.
        assert!(matches!(
            select_duplex_among(&config, &d, pair, |_| true),
            DuplexValue::Disagreement { .. }
        ));
        // With neither, silence.
        assert_eq!(
            select_duplex_among(&config, &d, pair, |_| false),
            DuplexValue::Silent
        );
    }

    #[test]
    fn tick_retries_with_capped_exponential_backoff() {
        let (mut bus, _, pair) = setup();
        let policy = ResyncPolicy {
            initial_wait_cycles: 2,
            max_wait_cycles: 4,
            max_attempts: 4,
        };
        let mut node = StateResync::with_policy(NodeId(1), pair, policy);
        node.begin_resync();
        // The partner never answers; record which cycles carry a request.
        let mut request_cycles = Vec::new();
        for cycle in 0..30u32 {
            bus.start_cycle();
            node.tick(&mut bus);
            let d = bus.finish_cycle();
            if d.dynamic_frames.iter().any(is_resync_frame) {
                request_cycles.push(cycle);
            }
        }
        // Waits: 2, 4, 4 (capped) → requests at cycles 0, 3, 8, 13.
        assert_eq!(request_cycles, vec![0, 3, 8, 13]);
        assert_eq!(node.attempts(), 4);
        assert!(node.gave_up(), "budget exhausted without an answer");
        assert!(!node.is_resyncing());
    }

    #[test]
    fn tick_stops_once_state_received() {
        let (mut bus, _, pair) = setup();
        let mut recovering = StateResync::new(NodeId(1), pair);
        let mut healthy = StateResync::new(NodeId(0), pair);
        recovering.begin_resync();

        // Cycle 1: first request goes out.
        bus.start_cycle();
        recovering.tick(&mut bus);
        let d1 = bus.finish_cycle();
        assert!(recovering.awaiting_state());

        // Cycle 2: partner answers.
        bus.start_cycle();
        recovering.tick(&mut bus);
        healthy.process_cycle(&mut bus, &d1, &[55]).unwrap();
        let d2 = bus.finish_cycle();

        // Cycle 3: state installed; the episode ends.
        bus.start_cycle();
        recovering.tick(&mut bus);
        let ev = recovering.process_cycle(&mut bus, &d2, &[]).unwrap();
        assert_eq!(ev, vec![ResyncEvent::StateReceived(vec![55])]);
        assert!(!recovering.is_resyncing());
        assert!(!recovering.gave_up());
        bus.finish_cycle();

        // Further ticks are no-ops: no more requests on the wire.
        for _ in 0..10 {
            bus.start_cycle();
            recovering.tick(&mut bus);
            let d = bus.finish_cycle();
            assert!(!d.dynamic_frames.iter().any(is_resync_frame));
        }
        assert_eq!(recovering.attempts(), 1);
    }

    #[test]
    fn begin_resync_resets_a_given_up_episode() {
        let (mut bus, _, pair) = setup();
        let policy = ResyncPolicy {
            initial_wait_cycles: 1,
            max_wait_cycles: 1,
            max_attempts: 1,
        };
        let mut node = StateResync::with_policy(NodeId(0), pair, policy);
        node.begin_resync();
        for _ in 0..3 {
            bus.start_cycle();
            node.tick(&mut bus);
            bus.finish_cycle();
        }
        assert!(node.gave_up());
        node.begin_resync();
        assert!(!node.gave_up());
        assert!(node.is_resyncing());
        assert_eq!(node.attempts(), 0);
    }

    #[test]
    fn resync_frames_identified() {
        let f = Frame::new(
            NodeId(0),
            crate::frame::SlotId(255),
            0,
            vec![RESYNC_REQUEST, 0],
        );
        assert!(is_resync_frame(&f));
        let g = Frame::new(NodeId(0), crate::frame::SlotId(255), 0, vec![7]);
        assert!(!is_resync_frame(&g));
    }
}
