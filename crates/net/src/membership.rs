//! Membership and reintegration.
//!
//! The distributed redundancy management the paper leans on: every node
//! observes every static slot, so a silent node is noticed within one
//! cycle. A node missing its slot for `exclude_after` consecutive cycles is
//! excluded from the membership view; an excluded node that transmits
//! correctly again for `reintegrate_after` consecutive cycles is
//! readmitted. The exclusion/readmission latencies are what the paper's
//! repair rates `μ_R` (restart, ~3 s) and `μ_OM` (omission reintegration,
//! ~1.6 s) abstract.

use std::collections::BTreeMap;

use nlft_sim::weakly_hard::WeaklyHard;

use crate::bus::{BusConfig, CycleDelivery};
use crate::frame::NodeId;

/// Membership status of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// In the membership; `missed` consecutive slots currently unanswered.
    Active {
        /// Consecutive missed cycles (0 = healthy).
        missed: u32,
    },
    /// Out of the membership; `seen` consecutive correct cycles so far.
    Excluded {
        /// Consecutive correct cycles while excluded.
        seen: u32,
    },
}

/// A membership change produced by one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent {
    /// Node missed too many slots and was excluded.
    Excluded(NodeId),
    /// Node transmitted correctly long enough and was readmitted.
    Reintegrated(NodeId),
}

/// The membership monitor every node runs.
///
/// # Examples
///
/// ```
/// use nlft_net::bus::{Bus, BusConfig};
/// use nlft_net::frame::NodeId;
/// use nlft_net::membership::{Membership, MembershipEvent};
///
/// let config = BusConfig::round_robin(2, 0);
/// let mut bus = Bus::new(config.clone());
/// let mut membership = Membership::new(&config, 2, 2);
///
/// // Node 1 stays silent for two cycles → excluded.
/// for _ in 0..2 {
///     bus.start_cycle();
///     bus.transmit_static(NodeId(0), vec![1]).unwrap();
///     let d = bus.finish_cycle();
///     let _ = membership.observe(&d);
/// }
/// assert!(!membership.is_member(NodeId(1)));
/// assert!(membership.is_member(NodeId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct Membership {
    states: BTreeMap<NodeId, MemberState>,
    /// Per-node weakly-hard m-in-k window over slot hits/misses while
    /// Active. Empty when the window rule is off (`Membership::new`).
    windows: BTreeMap<NodeId, WeaklyHard>,
    config: BusConfig,
    exclude_after: u32,
    reintegrate_after: u32,
}

impl Membership {
    /// Creates a monitor for all slot-owning nodes, all initially members.
    /// Exclusion is purely consecutive: `exclude_after` missed cycles in a
    /// row. Intermittent senders that always recover in time are never
    /// excluded — see [`Membership::with_hysteresis`] for the windowed rule
    /// that catches them.
    ///
    /// # Panics
    ///
    /// Panics if either threshold is zero.
    pub fn new(config: &BusConfig, exclude_after: u32, reintegrate_after: u32) -> Self {
        Self::build(config, exclude_after, reintegrate_after, 0, 0)
    }

    /// Creates a monitor that additionally enforces a weakly-hard **m-in-k
    /// window** (a per-node [`WeaklyHard`] monitor): a node accumulating
    /// `window_misses` missed slots within its last `window_cycles` cycles
    /// is excluded even if no single run of misses reaches
    /// `exclude_after`. Combined with the `reintegrate_after`
    /// consecutive-clean readmission requirement this gives hysteresis: an
    /// intermittently faulty node is taken out once and must prove itself
    /// stable before coming back, instead of flapping in and out of the
    /// membership.
    ///
    /// # Panics
    ///
    /// Panics if any threshold is zero, `window_cycles > 64` (the
    /// membership keeps the historical one-word bound so per-node views
    /// stay cheap to clone), or `window_misses > window_cycles`.
    pub fn with_hysteresis(
        config: &BusConfig,
        exclude_after: u32,
        reintegrate_after: u32,
        window_misses: u32,
        window_cycles: u32,
    ) -> Self {
        assert!(window_misses > 0, "window_misses must be positive");
        assert!(window_cycles <= 64, "window_cycles must be at most 64");
        assert!(
            window_misses <= window_cycles,
            "window_misses must be at most window_cycles"
        );
        Self::build(
            config,
            exclude_after,
            reintegrate_after,
            window_misses,
            window_cycles,
        )
    }

    fn build(
        config: &BusConfig,
        exclude_after: u32,
        reintegrate_after: u32,
        window_misses: u32,
        window_cycles: u32,
    ) -> Self {
        assert!(exclude_after > 0, "exclude_after must be positive");
        assert!(reintegrate_after > 0, "reintegrate_after must be positive");
        let windows = if window_misses > 0 {
            config
                .static_slots
                .iter()
                .map(|&n| (n, WeaklyHard::new(window_misses, window_cycles)))
                .collect()
        } else {
            BTreeMap::new()
        };
        Membership {
            states: config
                .static_slots
                .iter()
                .map(|&n| (n, MemberState::Active { missed: 0 }))
                .collect(),
            windows,
            config: config.clone(),
            exclude_after,
            reintegrate_after,
        }
    }

    /// Whether a node is currently in the membership.
    pub fn is_member(&self, node: NodeId) -> bool {
        matches!(self.states.get(&node), Some(MemberState::Active { .. }))
    }

    /// All current members.
    pub fn members(&self) -> Vec<NodeId> {
        self.states
            .iter()
            .filter(|(_, s)| matches!(s, MemberState::Active { .. }))
            .map(|(&n, _)| n)
            .collect()
    }

    /// State of one node, if it owns a slot.
    pub fn state(&self, node: NodeId) -> Option<MemberState> {
        self.states.get(&node).copied()
    }

    /// Feeds one cycle's delivery into the monitor, returning any
    /// membership changes.
    pub fn observe(&mut self, delivery: &CycleDelivery) -> Vec<MembershipEvent> {
        let mut events = Vec::new();
        for (&node, state) in &mut self.states {
            let transmitted = self
                .config
                .slot_of(node)
                .is_some_and(|s| delivery.static_frames.contains_key(&s));
            match state {
                MemberState::Active { missed } => {
                    let window_violated = self
                        .windows
                        .get_mut(&node)
                        .is_some_and(|w| w.record(!transmitted).violated);
                    if transmitted {
                        *missed = 0;
                    } else {
                        *missed += 1;
                    }
                    if *missed >= self.exclude_after || window_violated {
                        *state = MemberState::Excluded { seen: 0 };
                        if let Some(w) = self.windows.get_mut(&node) {
                            w.reset();
                        }
                        events.push(MembershipEvent::Excluded(node));
                    }
                }
                MemberState::Excluded { seen } => {
                    if transmitted {
                        *seen += 1;
                        if *seen >= self.reintegrate_after {
                            // Readmitted with a clean slate: old misses must
                            // not count against the fresh membership.
                            *state = MemberState::Active { missed: 0 };
                            if let Some(w) = self.windows.get_mut(&node) {
                                w.reset();
                            }
                            events.push(MembershipEvent::Reintegrated(node));
                        }
                    } else {
                        *seen = 0;
                    }
                }
            }
        }
        events
    }

    /// Cycles from first missed slot to exclusion.
    pub fn exclusion_latency_cycles(&self) -> u32 {
        self.exclude_after
    }

    /// Cycles from first correct slot to readmission.
    pub fn reintegration_latency_cycles(&self) -> u32 {
        self.reintegrate_after
    }

    /// TTP/C clique-avoidance check for one completed cycle: compares
    /// the number of senders actually heard against the majority
    /// threshold over *all* slot owners. The count deliberately ignores
    /// the node's own membership view — after a glitch, that view is
    /// exactly what cannot be trusted, and TTP/C resolves the ambiguity
    /// by raw sender counting.
    ///
    /// A node that receives a [`CliqueVerdict::Minority`] must assume it
    /// is the one partitioned off and revert to integration (fall
    /// silent) instead of babbling against the majority clique; the
    /// startup protocol (`crate::startup`) enforces exactly that rule.
    pub fn clique_check(&self, delivery: &CycleDelivery) -> CliqueVerdict {
        let threshold = clique_majority_threshold(self.config.static_slots.len());
        let heard = delivery.static_frames.len();
        if heard >= threshold {
            CliqueVerdict::Majority { heard, threshold }
        } else {
            CliqueVerdict::Minority { heard, threshold }
        }
    }
}

/// Verdict of [`Membership::clique_check`] for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliqueVerdict {
    /// The observing node hears a majority of slot owners: it is in the
    /// agreeing clique and may keep transmitting.
    Majority {
        /// Distinct senders heard this cycle.
        heard: usize,
        /// Senders required for a majority (`n/2 + 1`).
        threshold: usize,
    },
    /// The observing node hears only a minority: it must fall silent and
    /// reintegrate rather than babble.
    Minority {
        /// Distinct senders heard this cycle.
        heard: usize,
        /// Senders required for a majority (`n/2 + 1`).
        threshold: usize,
    },
}

/// Senders that must be heard in one cycle for the observer to count
/// itself in the majority clique: `n/2 + 1` of `n` slot owners.
pub fn clique_majority_threshold(n: usize) -> usize {
    n / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Bus;

    fn setup(exclude: u32, reint: u32) -> (Bus, Membership) {
        let config = BusConfig::round_robin(3, 0);
        let bus = Bus::new(config.clone());
        let membership = Membership::new(&config, exclude, reint);
        (bus, membership)
    }

    /// Runs one cycle where exactly the `senders` transmit.
    fn cycle(bus: &mut Bus, membership: &mut Membership, senders: &[u8]) -> Vec<MembershipEvent> {
        bus.start_cycle();
        for &s in senders {
            bus.transmit_static(NodeId(s), vec![s as u32]).unwrap();
        }
        let d = bus.finish_cycle();
        membership.observe(&d)
    }

    #[test]
    fn all_members_initially() {
        let (_, m) = setup(2, 2);
        assert_eq!(m.members().len(), 3);
    }

    #[test]
    fn silent_node_excluded_after_threshold() {
        let (mut bus, mut m) = setup(2, 2);
        assert!(
            cycle(&mut bus, &mut m, &[0, 1]).is_empty(),
            "one miss tolerated"
        );
        let ev = cycle(&mut bus, &mut m, &[0, 1]);
        assert_eq!(ev, vec![MembershipEvent::Excluded(NodeId(2))]);
        assert!(!m.is_member(NodeId(2)));
        assert_eq!(m.members(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn single_miss_recovers_without_exclusion() {
        let (mut bus, mut m) = setup(2, 2);
        cycle(&mut bus, &mut m, &[0, 1]);
        // Node 2 returns before the threshold.
        assert!(cycle(&mut bus, &mut m, &[0, 1, 2]).is_empty());
        assert!(m.is_member(NodeId(2)));
        assert_eq!(m.state(NodeId(2)), Some(MemberState::Active { missed: 0 }));
    }

    #[test]
    fn reintegration_after_consecutive_good_cycles() {
        let (mut bus, mut m) = setup(1, 3);
        cycle(&mut bus, &mut m, &[0, 1]); // node 2 excluded immediately
        assert!(!m.is_member(NodeId(2)));
        cycle(&mut bus, &mut m, &[0, 1, 2]);
        cycle(&mut bus, &mut m, &[0, 1, 2]);
        assert!(!m.is_member(NodeId(2)), "needs 3 good cycles");
        let ev = cycle(&mut bus, &mut m, &[0, 1, 2]);
        assert_eq!(ev, vec![MembershipEvent::Reintegrated(NodeId(2))]);
        assert!(m.is_member(NodeId(2)));
    }

    #[test]
    fn reintegration_counter_resets_on_silence() {
        let (mut bus, mut m) = setup(1, 2);
        cycle(&mut bus, &mut m, &[0, 1]); // exclude node 2
        cycle(&mut bus, &mut m, &[0, 1, 2]); // 1 good
        cycle(&mut bus, &mut m, &[0, 1]); // silent again → reset
        cycle(&mut bus, &mut m, &[0, 1, 2]); // 1 good
        assert!(!m.is_member(NodeId(2)));
        cycle(&mut bus, &mut m, &[0, 1, 2]); // 2 good → in
        assert!(m.is_member(NodeId(2)));
    }

    #[test]
    fn corrupted_frame_counts_as_silence() {
        let config = BusConfig::round_robin(2, 0);
        let mut bus = Bus::new(config.clone());
        let mut m = Membership::new(&config, 1, 1);
        bus.start_cycle();
        bus.stage_wire_fault(crate::bus::WireFault::CorruptStatic {
            slot: crate::frame::SlotId(0),
            byte: 3,
            mask: 0x01,
        });
        bus.transmit_static(NodeId(0), vec![5]).unwrap();
        bus.transmit_static(NodeId(1), vec![6]).unwrap();
        let d = bus.finish_cycle();
        let ev = m.observe(&d);
        assert_eq!(ev, vec![MembershipEvent::Excluded(NodeId(0))]);
    }

    #[test]
    fn multiple_simultaneous_exclusions() {
        let (mut bus, mut m) = setup(1, 1);
        let ev = cycle(&mut bus, &mut m, &[1]);
        assert!(ev.contains(&MembershipEvent::Excluded(NodeId(0))));
        assert!(ev.contains(&MembershipEvent::Excluded(NodeId(2))));
        assert_eq!(m.members(), vec![NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "exclude_after")]
    fn zero_threshold_rejected() {
        let config = BusConfig::round_robin(2, 0);
        Membership::new(&config, 0, 1);
    }

    #[test]
    fn exclude_after_one_is_immediate() {
        let (mut bus, mut m) = setup(1, 1);
        let ev = cycle(&mut bus, &mut m, &[0, 1]);
        assert_eq!(ev, vec![MembershipEvent::Excluded(NodeId(2))]);
        // And a single good cycle readmits (reintegrate_after = 1).
        let ev = cycle(&mut bus, &mut m, &[0, 1, 2]);
        assert_eq!(ev, vec![MembershipEvent::Reintegrated(NodeId(2))]);
    }

    #[test]
    fn readmission_exactly_at_reintegrate_after() {
        let reint = 4;
        let (mut bus, mut m) = setup(1, reint);
        cycle(&mut bus, &mut m, &[0, 1]); // exclude node 2
        for good in 1..reint {
            let ev = cycle(&mut bus, &mut m, &[0, 1, 2]);
            assert!(ev.is_empty(), "good cycle {good}: still excluded");
            assert_eq!(
                m.state(NodeId(2)),
                Some(MemberState::Excluded { seen: good })
            );
        }
        let ev = cycle(&mut bus, &mut m, &[0, 1, 2]);
        assert_eq!(
            ev,
            vec![MembershipEvent::Reintegrated(NodeId(2))],
            "readmitted exactly at cycle {reint}, not one later"
        );
    }

    #[test]
    fn alternating_misses_evade_consecutive_rule() {
        // Without the m-in-k window an every-other-cycle node is never
        // excluded: the consecutive counter resets on each hit.
        let (mut bus, mut m) = setup(2, 2);
        for i in 0..40 {
            let senders: &[u8] = if i % 2 == 0 { &[0, 1] } else { &[0, 1, 2] };
            assert!(cycle(&mut bus, &mut m, senders).is_empty());
        }
        assert!(m.is_member(NodeId(2)), "50% loss yet still a member");
    }

    #[test]
    fn window_rule_catches_alternating_misses() {
        let config = BusConfig::round_robin(3, 0);
        let mut bus = Bus::new(config.clone());
        // Consecutive rule needs 3 in a row; window rule: 4 misses in 8.
        let mut m = Membership::with_hysteresis(&config, 3, 2, 4, 8);
        let mut excluded_at = None;
        for i in 0..40 {
            let senders: &[u8] = if i % 2 == 0 { &[0, 1] } else { &[0, 1, 2] };
            bus.start_cycle();
            for &s in senders {
                bus.transmit_static(NodeId(s), vec![s as u32]).unwrap();
            }
            let d = bus.finish_cycle();
            for ev in m.observe(&d) {
                if ev == MembershipEvent::Excluded(NodeId(2)) && excluded_at.is_none() {
                    excluded_at = Some(i);
                }
            }
        }
        // The 4th miss lands on cycle 6 (misses at 0, 2, 4, 6).
        assert_eq!(excluded_at, Some(6));
    }

    #[test]
    fn hysteresis_suppresses_flapping() {
        let config = BusConfig::round_robin(2, 0);
        let mut bus = Bus::new(config.clone());
        // Window 3-in-8, readmission after 2 *consecutive* clean cycles.
        let mut m = Membership::with_hysteresis(&config, 3, 2, 3, 8);
        let mut transitions = 0;
        for i in 0..120 {
            bus.start_cycle();
            bus.transmit_static(NodeId(0), vec![0]).unwrap();
            // Node 1 alternates hit/miss forever — a classic flapper.
            if i % 2 != 0 {
                bus.transmit_static(NodeId(1), vec![1]).unwrap();
            }
            let d = bus.finish_cycle();
            transitions += m.observe(&d).len();
        }
        // The window rule excludes it once (3rd miss in window, cycle 4);
        // after that the consecutive-clean readmission requirement is never
        // met by an alternating sender, so the membership changes exactly
        // once in 120 cycles instead of oscillating.
        assert_eq!(transitions, 1, "membership must not flap");
        assert!(!m.is_member(NodeId(1)));
    }

    #[test]
    fn readmission_starts_with_clean_window() {
        let config = BusConfig::round_robin(2, 0);
        let mut bus = Bus::new(config.clone());
        let mut m = Membership::with_hysteresis(&config, 10, 1, 2, 64);
        let run = |m: &mut Membership, bus: &mut Bus, node1_sends: bool| {
            bus.start_cycle();
            bus.transmit_static(NodeId(0), vec![0]).unwrap();
            if node1_sends {
                bus.transmit_static(NodeId(1), vec![1]).unwrap();
            }
            let d = bus.finish_cycle();
            m.observe(&d)
        };
        run(&mut m, &mut bus, false); // miss 1
        let ev = run(&mut m, &mut bus, false); // miss 2 → window fires
        assert_eq!(ev, vec![MembershipEvent::Excluded(NodeId(1))]);
        let ev = run(&mut m, &mut bus, true); // readmitted (reint = 1)
        assert_eq!(ev, vec![MembershipEvent::Reintegrated(NodeId(1))]);
        // One further miss must NOT re-exclude: the pre-exclusion history
        // was wiped on readmission, so the 64-cycle window holds one miss.
        let ev = run(&mut m, &mut bus, false);
        assert!(ev.is_empty(), "stale window re-excluded the node: {ev:?}");
        assert!(m.is_member(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "window_misses must be at most")]
    fn window_wider_than_k_rejected() {
        let config = BusConfig::round_robin(2, 0);
        Membership::with_hysteresis(&config, 1, 1, 9, 8);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn window_longer_than_history_rejected() {
        let config = BusConfig::round_robin(2, 0);
        Membership::with_hysteresis(&config, 1, 1, 2, 65);
    }

    #[test]
    fn clique_threshold_is_strict_majority() {
        assert_eq!(clique_majority_threshold(3), 2);
        assert_eq!(clique_majority_threshold(4), 3);
        assert_eq!(clique_majority_threshold(6), 4);
        assert_eq!(clique_majority_threshold(7), 4);
    }

    #[test]
    fn clique_check_counts_senders_against_all_slot_owners() {
        let (mut bus, membership) = setup(2, 2);
        // 3 slot owners → threshold 2. One sender is a minority clique.
        bus.start_cycle();
        bus.transmit_static(NodeId(0), vec![1]).unwrap();
        let delivery = bus.finish_cycle();
        assert_eq!(
            membership.clique_check(&delivery),
            CliqueVerdict::Minority {
                heard: 1,
                threshold: 2
            }
        );
        // Two senders reach the majority threshold.
        bus.start_cycle();
        bus.transmit_static(NodeId(0), vec![1]).unwrap();
        bus.transmit_static(NodeId(2), vec![1]).unwrap();
        let delivery = bus.finish_cycle();
        assert_eq!(
            membership.clique_check(&delivery),
            CliqueVerdict::Majority {
                heard: 2,
                threshold: 2
            }
        );
    }

    #[test]
    fn clique_check_ignores_own_membership_view() {
        let (mut bus, mut membership) = setup(1, 1);
        // Exclude node 2 from the local view…
        cycle(&mut bus, &mut membership, &[0, 1]);
        assert!(!membership.is_member(NodeId(2)));
        // …but the clique count still spans all 3 slot owners: hearing
        // the two *other* nodes while silent ourselves is a majority.
        bus.start_cycle();
        bus.transmit_static(NodeId(1), vec![1]).unwrap();
        bus.transmit_static(NodeId(2), vec![1]).unwrap();
        let delivery = bus.finish_cycle();
        assert_eq!(
            membership.clique_check(&delivery),
            CliqueVerdict::Majority {
                heard: 2,
                threshold: 2
            }
        );
    }
}
