//! Membership and reintegration.
//!
//! The distributed redundancy management the paper leans on: every node
//! observes every static slot, so a silent node is noticed within one
//! cycle. A node missing its slot for `exclude_after` consecutive cycles is
//! excluded from the membership view; an excluded node that transmits
//! correctly again for `reintegrate_after` consecutive cycles is
//! readmitted. The exclusion/readmission latencies are what the paper's
//! repair rates `μ_R` (restart, ~3 s) and `μ_OM` (omission reintegration,
//! ~1.6 s) abstract.

use std::collections::BTreeMap;

use crate::bus::{BusConfig, CycleDelivery};
use crate::frame::NodeId;

/// Membership status of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// In the membership; `missed` consecutive slots currently unanswered.
    Active {
        /// Consecutive missed cycles (0 = healthy).
        missed: u32,
    },
    /// Out of the membership; `seen` consecutive correct cycles so far.
    Excluded {
        /// Consecutive correct cycles while excluded.
        seen: u32,
    },
}

/// A membership change produced by one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent {
    /// Node missed too many slots and was excluded.
    Excluded(NodeId),
    /// Node transmitted correctly long enough and was readmitted.
    Reintegrated(NodeId),
}

/// The membership monitor every node runs.
///
/// # Examples
///
/// ```
/// use nlft_net::bus::{Bus, BusConfig};
/// use nlft_net::frame::NodeId;
/// use nlft_net::membership::{Membership, MembershipEvent};
///
/// let config = BusConfig::round_robin(2, 0);
/// let mut bus = Bus::new(config.clone());
/// let mut membership = Membership::new(&config, 2, 2);
///
/// // Node 1 stays silent for two cycles → excluded.
/// for _ in 0..2 {
///     bus.start_cycle();
///     bus.transmit_static(NodeId(0), vec![1]).unwrap();
///     let d = bus.finish_cycle();
///     let _ = membership.observe(&d);
/// }
/// assert!(!membership.is_member(NodeId(1)));
/// assert!(membership.is_member(NodeId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct Membership {
    states: BTreeMap<NodeId, MemberState>,
    config: BusConfig,
    exclude_after: u32,
    reintegrate_after: u32,
}

impl Membership {
    /// Creates a monitor for all slot-owning nodes, all initially members.
    ///
    /// # Panics
    ///
    /// Panics if either threshold is zero.
    pub fn new(config: &BusConfig, exclude_after: u32, reintegrate_after: u32) -> Self {
        assert!(exclude_after > 0, "exclude_after must be positive");
        assert!(reintegrate_after > 0, "reintegrate_after must be positive");
        Membership {
            states: config
                .static_slots
                .iter()
                .map(|&n| (n, MemberState::Active { missed: 0 }))
                .collect(),
            config: config.clone(),
            exclude_after,
            reintegrate_after,
        }
    }

    /// Whether a node is currently in the membership.
    pub fn is_member(&self, node: NodeId) -> bool {
        matches!(self.states.get(&node), Some(MemberState::Active { .. }))
    }

    /// All current members.
    pub fn members(&self) -> Vec<NodeId> {
        self.states
            .iter()
            .filter(|(_, s)| matches!(s, MemberState::Active { .. }))
            .map(|(&n, _)| n)
            .collect()
    }

    /// State of one node, if it owns a slot.
    pub fn state(&self, node: NodeId) -> Option<MemberState> {
        self.states.get(&node).copied()
    }

    /// Feeds one cycle's delivery into the monitor, returning any
    /// membership changes.
    pub fn observe(&mut self, delivery: &CycleDelivery) -> Vec<MembershipEvent> {
        let mut events = Vec::new();
        for (&node, state) in &mut self.states {
            let transmitted = self
                .config
                .slot_of(node)
                .is_some_and(|s| delivery.static_frames.contains_key(&s));
            match state {
                MemberState::Active { missed } => {
                    if transmitted {
                        *missed = 0;
                    } else {
                        *missed += 1;
                        if *missed >= self.exclude_after {
                            *state = MemberState::Excluded { seen: 0 };
                            events.push(MembershipEvent::Excluded(node));
                        }
                    }
                }
                MemberState::Excluded { seen } => {
                    if transmitted {
                        *seen += 1;
                        if *seen >= self.reintegrate_after {
                            *state = MemberState::Active { missed: 0 };
                            events.push(MembershipEvent::Reintegrated(node));
                        }
                    } else {
                        *seen = 0;
                    }
                }
            }
        }
        events
    }

    /// Cycles from first missed slot to exclusion.
    pub fn exclusion_latency_cycles(&self) -> u32 {
        self.exclude_after
    }

    /// Cycles from first correct slot to readmission.
    pub fn reintegration_latency_cycles(&self) -> u32 {
        self.reintegrate_after
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Bus;

    fn setup(exclude: u32, reint: u32) -> (Bus, Membership) {
        let config = BusConfig::round_robin(3, 0);
        let bus = Bus::new(config.clone());
        let membership = Membership::new(&config, exclude, reint);
        (bus, membership)
    }

    /// Runs one cycle where exactly the `senders` transmit.
    fn cycle(bus: &mut Bus, membership: &mut Membership, senders: &[u8]) -> Vec<MembershipEvent> {
        bus.start_cycle();
        for &s in senders {
            bus.transmit_static(NodeId(s), vec![s as u32]).unwrap();
        }
        let d = bus.finish_cycle();
        membership.observe(&d)
    }

    #[test]
    fn all_members_initially() {
        let (_, m) = setup(2, 2);
        assert_eq!(m.members().len(), 3);
    }

    #[test]
    fn silent_node_excluded_after_threshold() {
        let (mut bus, mut m) = setup(2, 2);
        assert!(cycle(&mut bus, &mut m, &[0, 1]).is_empty(), "one miss tolerated");
        let ev = cycle(&mut bus, &mut m, &[0, 1]);
        assert_eq!(ev, vec![MembershipEvent::Excluded(NodeId(2))]);
        assert!(!m.is_member(NodeId(2)));
        assert_eq!(m.members(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn single_miss_recovers_without_exclusion() {
        let (mut bus, mut m) = setup(2, 2);
        cycle(&mut bus, &mut m, &[0, 1]);
        // Node 2 returns before the threshold.
        assert!(cycle(&mut bus, &mut m, &[0, 1, 2]).is_empty());
        assert!(m.is_member(NodeId(2)));
        assert_eq!(m.state(NodeId(2)), Some(MemberState::Active { missed: 0 }));
    }

    #[test]
    fn reintegration_after_consecutive_good_cycles() {
        let (mut bus, mut m) = setup(1, 3);
        cycle(&mut bus, &mut m, &[0, 1]); // node 2 excluded immediately
        assert!(!m.is_member(NodeId(2)));
        cycle(&mut bus, &mut m, &[0, 1, 2]);
        cycle(&mut bus, &mut m, &[0, 1, 2]);
        assert!(!m.is_member(NodeId(2)), "needs 3 good cycles");
        let ev = cycle(&mut bus, &mut m, &[0, 1, 2]);
        assert_eq!(ev, vec![MembershipEvent::Reintegrated(NodeId(2))]);
        assert!(m.is_member(NodeId(2)));
    }

    #[test]
    fn reintegration_counter_resets_on_silence() {
        let (mut bus, mut m) = setup(1, 2);
        cycle(&mut bus, &mut m, &[0, 1]); // exclude node 2
        cycle(&mut bus, &mut m, &[0, 1, 2]); // 1 good
        cycle(&mut bus, &mut m, &[0, 1]); // silent again → reset
        cycle(&mut bus, &mut m, &[0, 1, 2]); // 1 good
        assert!(!m.is_member(NodeId(2)));
        cycle(&mut bus, &mut m, &[0, 1, 2]); // 2 good → in
        assert!(m.is_member(NodeId(2)));
    }

    #[test]
    fn corrupted_frame_counts_as_silence() {
        let config = BusConfig::round_robin(2, 0);
        let mut bus = Bus::new(config.clone());
        let mut m = Membership::new(&config, 1, 1);
        bus.start_cycle();
        bus.corrupt_next_frame(3, 0x01);
        bus.transmit_static(NodeId(0), vec![5]).unwrap();
        bus.transmit_static(NodeId(1), vec![6]).unwrap();
        let d = bus.finish_cycle();
        let ev = m.observe(&d);
        assert_eq!(ev, vec![MembershipEvent::Excluded(NodeId(0))]);
    }

    #[test]
    fn multiple_simultaneous_exclusions() {
        let (mut bus, mut m) = setup(1, 1);
        let ev = cycle(&mut bus, &mut m, &[1]);
        assert!(ev.contains(&MembershipEvent::Excluded(NodeId(0))));
        assert!(ev.contains(&MembershipEvent::Excluded(NodeId(2))));
        assert_eq!(m.members(), vec![NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "exclude_after")]
    fn zero_threshold_rejected() {
        let config = BusConfig::round_robin(2, 0);
        Membership::new(&config, 0, 1);
    }
}
