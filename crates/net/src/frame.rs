//! CRC-protected communication frames.
//!
//! The paper assumes the network interface "provides reliable transmission
//! of messages"; what reaches the hosts is a frame either correct or
//! detectably corrupt. Frames carry sender, slot, cycle counter and a
//! 32-bit CRC so receivers can discard damage — the transport half of the
//! end-to-end argument in §2.6.

use std::fmt;

/// Identity of a node on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u8);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A TDMA slot index within one communication cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u8);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Transmitting node.
    pub sender: NodeId,
    /// Slot the frame was sent in.
    pub slot: SlotId,
    /// Communication-cycle counter at transmission.
    pub cycle: u32,
    /// Application payload (32-bit words).
    pub payload: Vec<u32>,
}

/// Why a received byte sequence was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed header + CRC.
    Truncated,
    /// Payload length field disagrees with the byte count.
    LengthMismatch,
    /// CRC check failed — the frame was corrupted in transit.
    CrcMismatch,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::LengthMismatch => write!(f, "frame length field mismatch"),
            FrameError::CrcMismatch => write!(f, "frame crc mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

const HEADER_BYTES: usize = 1 + 1 + 4 + 2; // sender, slot, cycle, payload len
const CRC_BYTES: usize = 4;

pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

impl Frame {
    /// Creates a frame.
    pub fn new(sender: NodeId, slot: SlotId, cycle: u32, payload: Vec<u32>) -> Self {
        Frame {
            sender,
            slot,
            cycle,
            payload,
        }
    }

    /// Serialises to wire bytes: header, payload words (LE), CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_BYTES + self.payload.len() * 4 + CRC_BYTES);
        buf.push(self.sender.0);
        buf.push(self.slot.0);
        buf.extend_from_slice(&self.cycle.to_le_bytes());
        buf.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        for &w in &self.payload {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parses and verifies wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] for truncation, length inconsistency or CRC
    /// failure — every corruption a receiver can see.
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < HEADER_BYTES + CRC_BYTES {
            return Err(FrameError::Truncated);
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - CRC_BYTES);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("CRC_BYTES wide"));
        if crc32(body) != stored_crc {
            return Err(FrameError::CrcMismatch);
        }
        let sender = NodeId(body[0]);
        let slot = SlotId(body[1]);
        let cycle = u32::from_le_bytes(body[2..6].try_into().expect("header slice"));
        let len = u16::from_le_bytes(body[6..8].try_into().expect("header slice")) as usize;
        let words = &body[HEADER_BYTES..];
        if words.len() != len * 4 {
            return Err(FrameError::LengthMismatch);
        }
        let payload = words
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        Ok(Frame {
            sender,
            slot,
            cycle,
            payload,
        })
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frame[{} {} cycle={} {} words]",
            self.sender,
            self.slot,
            self.cycle,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(NodeId(3), SlotId(1), 42, vec![0xDEAD_BEEF, 7, 0])
    }

    #[test]
    fn encode_decode_round_trip() {
        let f = sample();
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn empty_payload_round_trip() {
        let f = Frame::new(NodeId(0), SlotId(0), 0, vec![]);
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn single_bit_corruption_detected_everywhere() {
        let f = sample();
        let bytes = f.encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Frame::decode(&corrupt).is_err(),
                    "flip of byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().encode();
        for keep in 0..HEADER_BYTES + CRC_BYTES {
            assert_eq!(Frame::decode(&bytes[..keep]), Err(FrameError::Truncated));
        }
        // Dropping trailing bytes beyond the minimum is a CRC/length error.
        assert!(Frame::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn crc_error_reported_specifically() {
        let mut bytes = sample().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::CrcMismatch));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(2).to_string(), "node2");
        assert_eq!(SlotId(5).to_string(), "slot5");
        assert!(sample().to_string().contains("cycle=42"));
    }
}
