//! CRC-protected communication frames.
//!
//! The paper assumes the network interface "provides reliable transmission
//! of messages"; what reaches the hosts is a frame either correct or
//! detectably corrupt. Frames carry sender, slot, cycle counter and a
//! 32-bit CRC so receivers can discard damage — the transport half of the
//! end-to-end argument in §2.6.

use std::fmt;

/// Identity of a node on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u8);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A TDMA slot index within one communication cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u8);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Transmitting node.
    pub sender: NodeId,
    /// Slot the frame was sent in.
    pub slot: SlotId,
    /// Communication-cycle counter at transmission.
    pub cycle: u32,
    /// Application payload (32-bit words).
    pub payload: Vec<u32>,
}

/// Why a received byte sequence was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed header + CRC.
    Truncated,
    /// Payload length field disagrees with the byte count.
    LengthMismatch,
    /// CRC check failed — the frame was corrupted in transit.
    CrcMismatch,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::LengthMismatch => write!(f, "frame length field mismatch"),
            FrameError::CrcMismatch => write!(f, "frame crc mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

const HEADER_BYTES: usize = 1 + 1 + 4 + 2; // sender, slot, cycle, payload len
const CRC_BYTES: usize = 4;

/// The workspace-wide table-driven CRC-32 (see `nlft_sim::crc`).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    nlft_sim::crc::crc32(bytes)
}

impl Frame {
    /// Largest encodable payload: the length field on the wire is 16 bits
    /// wide. Longer payloads must be rejected up front — truncating the
    /// field would emit a CRC-*valid* frame whose length lies.
    pub const MAX_PAYLOAD_WORDS: usize = u16::MAX as usize;

    /// Creates a frame.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`Frame::MAX_PAYLOAD_WORDS`]. The bus
    /// transmit paths check first and return a typed error; constructing
    /// an unencodable frame directly is a programming error.
    pub fn new(sender: NodeId, slot: SlotId, cycle: u32, payload: Vec<u32>) -> Self {
        assert!(
            payload.len() <= Frame::MAX_PAYLOAD_WORDS,
            "payload of {} words exceeds the 16-bit length field",
            payload.len()
        );
        Frame {
            sender,
            slot,
            cycle,
            payload,
        }
    }

    /// Serialises to wire bytes: header, payload words (LE), CRC.
    ///
    /// # Panics
    ///
    /// As [`Frame::new`] — the fields are public, so an oversized payload
    /// patched in after construction is caught here.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_BYTES + self.payload.len() * 4 + CRC_BYTES);
        self.encode_into(&mut buf);
        buf
    }

    /// Serialises into a caller-provided buffer (cleared first), so a hot
    /// loop can reuse one scratch allocation across frames.
    ///
    /// # Panics
    ///
    /// As [`Frame::encode`].
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        assert!(
            self.payload.len() <= Frame::MAX_PAYLOAD_WORDS,
            "payload of {} words exceeds the 16-bit length field",
            self.payload.len()
        );
        buf.clear();
        buf.reserve(HEADER_BYTES + self.payload.len() * 4 + CRC_BYTES);
        buf.push(self.sender.0);
        buf.push(self.slot.0);
        buf.extend_from_slice(&self.cycle.to_le_bytes());
        buf.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        for &w in &self.payload {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        let crc = crc32(buf);
        buf.extend_from_slice(&crc.to_le_bytes());
    }

    /// Parses and verifies wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] for truncation, length inconsistency or CRC
    /// failure — every corruption a receiver can see.
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < HEADER_BYTES + CRC_BYTES {
            return Err(FrameError::Truncated);
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - CRC_BYTES);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("CRC_BYTES wide"));
        if crc32(body) != stored_crc {
            return Err(FrameError::CrcMismatch);
        }
        let sender = NodeId(body[0]);
        let slot = SlotId(body[1]);
        let cycle = u32::from_le_bytes(body[2..6].try_into().expect("header slice"));
        let len = u16::from_le_bytes(body[6..8].try_into().expect("header slice")) as usize;
        let words = &body[HEADER_BYTES..];
        if words.len() != len * 4 {
            return Err(FrameError::LengthMismatch);
        }
        let payload = words
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        Ok(Frame {
            sender,
            slot,
            cycle,
            payload,
        })
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frame[{} {} cycle={} {} words]",
            self.sender,
            self.slot,
            self.cycle,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(NodeId(3), SlotId(1), 42, vec![0xDEAD_BEEF, 7, 0])
    }

    #[test]
    fn encode_decode_round_trip() {
        let f = sample();
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn empty_payload_round_trip() {
        let f = Frame::new(NodeId(0), SlotId(0), 0, vec![]);
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn single_bit_corruption_detected_everywhere() {
        let f = sample();
        let bytes = f.encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Frame::decode(&corrupt).is_err(),
                    "flip of byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().encode();
        for keep in 0..HEADER_BYTES + CRC_BYTES {
            assert_eq!(Frame::decode(&bytes[..keep]), Err(FrameError::Truncated));
        }
        // Dropping trailing bytes beyond the minimum is a CRC/length error.
        assert!(Frame::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn crc_error_reported_specifically() {
        let mut bytes = sample().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::CrcMismatch));
    }

    #[test]
    fn crc32_ieee_known_answer() {
        // Pins the shared CRC convention at the network call site: IEEE
        // 802.3 reflected, init/final-xor 0xFFFFFFFF.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn encode_into_matches_encode() {
        let f = sample();
        let mut buf = vec![0xAA; 3]; // stale contents must be discarded
        f.encode_into(&mut buf);
        assert_eq!(buf, f.encode());
    }

    #[test]
    fn max_payload_round_trips() {
        let f = Frame::new(
            NodeId(1),
            SlotId(0),
            9,
            vec![0x42; Frame::MAX_PAYLOAD_WORDS],
        );
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    #[should_panic(expected = "exceeds the 16-bit length field")]
    fn oversized_payload_rejected_at_construction() {
        // Regression: this used to silently truncate the length field,
        // emitting a CRC-valid frame whose length lied.
        let _ = Frame::new(
            NodeId(0),
            SlotId(0),
            0,
            vec![0; Frame::MAX_PAYLOAD_WORDS + 1],
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the 16-bit length field")]
    fn oversized_payload_rejected_at_encode() {
        // The fields are public, so encode must re-check.
        let mut f = sample();
        f.payload = vec![0; Frame::MAX_PAYLOAD_WORDS + 1];
        let _ = f.encode();
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(2).to_string(), "node2");
        assert_eq!(SlotId(5).to_string(), "slot5");
        assert!(sample().to_string().contains("cycle=42"));
    }
}
