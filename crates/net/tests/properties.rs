//! Property-based tests for the time-triggered network.

use nlft_net::bus::{Bus, BusConfig};
use nlft_net::frame::{Frame, NodeId, SlotId};
use nlft_net::membership::Membership;
use proptest::prelude::*;

proptest! {
    /// Frames round-trip any payload.
    #[test]
    fn frame_round_trip(
        sender in 0u8..32,
        slot in 0u8..32,
        cycle in any::<u32>(),
        payload in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let f = Frame::new(NodeId(sender), SlotId(slot), cycle, payload);
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    /// Any 1- or 2-bit corruption is detected (CRC-32 guarantees all
    /// double-bit errors within these frame lengths).
    #[test]
    fn frame_detects_small_corruption(
        payload in prop::collection::vec(any::<u32>(), 0..32),
        b1 in any::<prop::sample::Index>(),
        bit1 in 0u8..8,
        b2 in any::<prop::sample::Index>(),
        bit2 in 0u8..8,
    ) {
        let f = Frame::new(NodeId(1), SlotId(2), 3, payload);
        let clean = f.encode().to_vec();
        let mut corrupt = clean.clone();
        corrupt[b1.index(clean.len())] ^= 1 << bit1;
        corrupt[b2.index(clean.len())] ^= 1 << bit2;
        if corrupt != clean {
            prop_assert!(Frame::decode(&corrupt).is_err());
        }
    }

    /// Truncated frames never decode.
    #[test]
    fn frame_rejects_truncation(
        payload in prop::collection::vec(any::<u32>(), 0..16),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = Frame::new(NodeId(0), SlotId(0), 0, payload).encode();
        let keep = cut.index(bytes.len()); // strictly shorter than full
        prop_assert!(Frame::decode(&bytes[..keep]).is_err());
    }

    /// Bus delivery: exactly the transmitting owners' frames arrive, in
    /// slot order, whatever the subset of speakers.
    #[test]
    fn bus_delivers_exactly_the_speakers(speakers in prop::collection::btree_set(0u8..8, 0..8)) {
        let mut bus = Bus::new(BusConfig::round_robin(8, 0));
        bus.start_cycle();
        for &s in &speakers {
            bus.transmit_static(NodeId(s), vec![u32::from(s)]).unwrap();
        }
        let d = bus.finish_cycle();
        prop_assert_eq!(d.static_frames.len(), speakers.len());
        for &s in &speakers {
            let f = d.from_node(bus.config(), NodeId(s)).expect("delivered");
            prop_assert_eq!(f.payload.clone(), vec![u32::from(s)]);
        }
    }

    /// Membership never contains a node that has been silent for at least
    /// the exclusion threshold, and member count is bounded by node count.
    #[test]
    fn membership_invariants(
        pattern in prop::collection::vec(prop::collection::btree_set(0u8..4, 0..4), 1..20),
        exclude_after in 1u32..4,
    ) {
        let config = BusConfig::round_robin(4, 0);
        let mut bus = Bus::new(config.clone());
        let mut membership = Membership::new(&config, exclude_after, 2);
        let mut silent_streak = [0u32; 4];
        for speakers in &pattern {
            bus.start_cycle();
            for &s in speakers {
                bus.transmit_static(NodeId(s), vec![1]).unwrap();
            }
            let d = bus.finish_cycle();
            membership.observe(&d);
            for n in 0u8..4 {
                if speakers.contains(&n) {
                    silent_streak[n as usize] = 0;
                } else {
                    silent_streak[n as usize] += 1;
                }
            }
            prop_assert!(membership.members().len() <= 4);
            for n in 0u8..4 {
                if silent_streak[n as usize] >= exclude_after {
                    prop_assert!(
                        !membership.is_member(NodeId(n)),
                        "node {n} silent {} cycles but still member",
                        silent_streak[n as usize]
                    );
                }
            }
        }
    }

    /// A continuously transmitting node is always a member, whatever the
    /// other nodes do.
    #[test]
    fn reliable_node_never_excluded(
        pattern in prop::collection::vec(prop::collection::btree_set(1u8..4, 0..3), 1..20),
    ) {
        let config = BusConfig::round_robin(4, 0);
        let mut bus = Bus::new(config.clone());
        let mut membership = Membership::new(&config, 2, 2);
        for speakers in &pattern {
            bus.start_cycle();
            bus.transmit_static(NodeId(0), vec![0]).unwrap();
            for &s in speakers {
                bus.transmit_static(NodeId(s), vec![1]).unwrap();
            }
            let d = bus.finish_cycle();
            membership.observe(&d);
            prop_assert!(membership.is_member(NodeId(0)));
        }
    }
}
