//! Property-based tests for the time-triggered network.

use nlft_net::bus::{Bus, BusConfig, WireFault};
use nlft_net::frame::{Frame, NodeId, SlotId};
use nlft_net::membership::Membership;
use nlft_net::sync::{run, SyncConfig};
use nlft_sim::rng::RngStream;
use nlft_testkit::prop::{gens, Suite};
use nlft_testkit::rng::TkRng;
use nlft_testkit::{prop_assert, prop_assert_eq};

const SUITE: Suite = Suite::new(0x5EED_0030);

/// Frames round-trip any payload.
#[test]
fn frame_round_trip() {
    SUITE.check(
        "frame_round_trip",
        {
            let mut payload = gens::vec(|r| r.next_u32(), 0..64);
            move |r: &mut TkRng| {
                (
                    r.range(0, 32) as u8,
                    r.range(0, 32) as u8,
                    r.next_u32(),
                    payload(r),
                )
            }
        },
        |(sender, slot, cycle, payload)| {
            let f = Frame::new(NodeId(*sender), SlotId(*slot), *cycle, payload.clone());
            prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
            Ok(())
        },
    );
}

/// Any 1- or 2-bit corruption is detected (CRC-32 guarantees all
/// double-bit errors within these frame lengths).
#[test]
fn frame_detects_small_corruption() {
    SUITE.check(
        "frame_detects_small_corruption",
        {
            let mut payload = gens::vec(|r| r.next_u32(), 0..32);
            let mut b1 = gens::index();
            let mut b2 = gens::index();
            move |r: &mut TkRng| {
                (
                    payload(r),
                    b1(r),
                    r.range(0, 8) as u8,
                    b2(r),
                    r.range(0, 8) as u8,
                )
            }
        },
        |(payload, b1, bit1, b2, bit2)| {
            let f = Frame::new(NodeId(1), SlotId(2), 3, payload.clone());
            let clean = f.encode();
            let mut corrupt = clean.clone();
            corrupt[b1.index(clean.len())] ^= 1 << bit1;
            corrupt[b2.index(clean.len())] ^= 1 << bit2;
            if corrupt != clean {
                prop_assert!(Frame::decode(&corrupt).is_err());
            }
            Ok(())
        },
    );
}

/// Truncated frames never decode.
#[test]
fn frame_rejects_truncation() {
    SUITE.check(
        "frame_rejects_truncation",
        {
            let mut payload = gens::vec(|r| r.next_u32(), 0..16);
            let mut cut = gens::index();
            move |r: &mut TkRng| (payload(r), cut(r))
        },
        |(payload, cut)| {
            let bytes = Frame::new(NodeId(0), SlotId(0), 0, payload.clone()).encode();
            let keep = cut.index(bytes.len()); // strictly shorter than full
            prop_assert!(Frame::decode(&bytes[..keep]).is_err());
            Ok(())
        },
    );
}

/// Bus delivery: exactly the transmitting owners' frames arrive, in
/// slot order, whatever the subset of speakers.
#[test]
fn bus_delivers_exactly_the_speakers() {
    SUITE.check(
        "bus_delivers_exactly_the_speakers",
        gens::btree_set(|r| r.range(0, 8) as u8, 0..8),
        |speakers| {
            let mut bus = Bus::new(BusConfig::round_robin(8, 0));
            bus.start_cycle();
            for &s in speakers {
                bus.transmit_static(NodeId(s), vec![u32::from(s)]).unwrap();
            }
            let d = bus.finish_cycle();
            prop_assert_eq!(d.static_frames.len(), speakers.len());
            for &s in speakers {
                let f = d.from_node(bus.config(), NodeId(s)).expect("delivered");
                prop_assert_eq!(f.payload.clone(), vec![u32::from(s)]);
            }
            Ok(())
        },
    );
}

/// A staged wire corruption flipping one or two bits of one byte is
/// *always* rejected by the CRC — whatever the payload, the victim byte or
/// the bit pattern — and never disturbs the other slots. This is the
/// bus-level counterpart of `frame_detects_small_corruption`: the measured
/// CRC reject rate the storm campaign reports must be exactly 1.
#[test]
fn staged_corruption_always_rejected() {
    SUITE.check(
        "staged_corruption_always_rejected",
        {
            let mut payload = gens::vec(|r| r.next_u32(), 0..16);
            let mut byte = gens::index();
            move |r: &mut TkRng| {
                (
                    payload(r),
                    r.range(0, 4) as u8, // victim slot
                    byte(r),             // victim byte
                    r.range(0, 8) as u8, // first flipped bit
                    r.range(0, 8) as u8, // second flipped bit
                )
            }
        },
        |(payload, victim, byte, bit1, bit2)| {
            let mask = (1u8 << bit1) | (1 << bit2); // one or two bits
            let mut bus = Bus::new(BusConfig::round_robin(4, 0));
            bus.start_cycle();
            bus.stage_wire_fault(WireFault::CorruptStatic {
                slot: SlotId(*victim),
                byte: byte.index(usize::MAX),
                mask,
            });
            for n in 0u8..4 {
                bus.transmit_static(NodeId(n), payload.clone()).unwrap();
            }
            let d = bus.finish_cycle();
            prop_assert!(
                !d.static_frames.contains_key(&SlotId(*victim)),
                "corrupted frame (byte {byte:?}, mask {mask:#04x}) survived"
            );
            prop_assert_eq!(d.rejected, 1);
            prop_assert_eq!(bus.crc_rejects(), 1);
            prop_assert_eq!(bus.corruptions_applied(), 1);
            prop_assert_eq!(d.static_frames.len(), 3, "other slots unaffected");
            Ok(())
        },
    );
}

/// Every babbling-idiot attempt — any node, any foreign slot, any number
/// of attempts per cycle — is blocked by the guardian and counted exactly
/// once; no foreign frame ever reaches a receiver. The guardian block rate
/// the storm campaign measures must therefore be exactly 1.
#[test]
fn guardian_counts_each_babble_exactly_once() {
    SUITE.check(
        "guardian_counts_each_babble_exactly_once",
        gens::vec(|r| (r.range(0, 4) as u8, r.range(1, 4) as u8), 0..12),
        |attempts| {
            let mut bus = Bus::new(BusConfig::round_robin(4, 0));
            bus.start_cycle();
            for &(node, shift) in attempts {
                // A foreign slot: the babbler's own slot index plus a
                // non-zero shift, mod the slot count.
                let foreign = SlotId((node + shift) % 4);
                prop_assert!(bus
                    .transmit_in_slot(NodeId(node), foreign, vec![0xBAD])
                    .is_err());
            }
            prop_assert_eq!(bus.guardian_blocks(), attempts.len() as u64);
            let d = bus.finish_cycle();
            prop_assert_eq!(d.static_frames.len(), 0, "nothing leaked to the wire");
            prop_assert_eq!(d.rejected, 0);
            Ok(())
        },
    );
}

/// Membership never contains a node that has been silent for at least
/// the exclusion threshold, and member count is bounded by node count.
#[test]
fn membership_invariants() {
    SUITE.check(
        "membership_invariants",
        {
            let mut pattern = gens::vec(gens::btree_set(|r| r.range(0, 4) as u8, 0..4), 1..20);
            move |r: &mut TkRng| (pattern(r), r.range(1, 4) as u32)
        },
        |(pattern, exclude_after)| {
            let exclude_after = *exclude_after;
            let config = BusConfig::round_robin(4, 0);
            let mut bus = Bus::new(config.clone());
            let mut membership = Membership::new(&config, exclude_after, 2);
            let mut silent_streak = [0u32; 4];
            for speakers in pattern {
                bus.start_cycle();
                for &s in speakers {
                    bus.transmit_static(NodeId(s), vec![1]).unwrap();
                }
                let d = bus.finish_cycle();
                membership.observe(&d);
                for n in 0u8..4 {
                    if speakers.contains(&n) {
                        silent_streak[n as usize] = 0;
                    } else {
                        silent_streak[n as usize] += 1;
                    }
                }
                prop_assert!(membership.members().len() <= 4);
                for n in 0u8..4 {
                    if silent_streak[n as usize] >= exclude_after {
                        prop_assert!(
                            !membership.is_member(NodeId(n)),
                            "node {n} silent {} cycles but still member",
                            silent_streak[n as usize]
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

/// A continuously transmitting node is always a member, whatever the
/// other nodes do.
#[test]
fn reliable_node_never_excluded() {
    SUITE.check(
        "reliable_node_never_excluded",
        gens::vec(gens::btree_set(|r| r.range(1, 4) as u8, 0..3), 1..20),
        |pattern| {
            let config = BusConfig::round_robin(4, 0);
            let mut bus = Bus::new(config.clone());
            let mut membership = Membership::new(&config, 2, 2);
            for speakers in pattern {
                bus.start_cycle();
                bus.transmit_static(NodeId(0), vec![0]).unwrap();
                for &s in speakers {
                    bus.transmit_static(NodeId(s), vec![1]).unwrap();
                }
                let d = bus.finish_cycle();
                membership.observe(&d);
                prop_assert!(membership.is_member(NodeId(0)));
            }
            Ok(())
        },
    );
}

/// Welch–Lynch on a correct cluster (no Byzantine clocks) keeps the
/// steady-state skew within the analytic `4ε + 2ρR` bound (with the
/// house ×1.5 convergence cushion) for any reading error ε, drift rate
/// and resync interval.
#[test]
fn sync_steady_state_skew_within_analytic_bound() {
    SUITE.check(
        "sync_steady_state_skew_within_analytic_bound",
        |r: &mut TkRng| {
            (
                4 + r.range(0, 5) as usize,     // n in 4..=8
                r.f64_range(5.0, 100.0),        // max drift, ppm
                r.f64_range(0.05, 4.0),         // reading error ε, µs
                r.f64_range(1_000.0, 20_000.0), // resync interval R, µs
                r.next_u64(),                   // cluster + run seed
            )
        },
        |(n, ppm, eps, interval, seed)| {
            let mut rng = RngStream::new(*seed);
            let config = SyncConfig::cluster(*n, *ppm, 1, &mut rng)
                .with_reading_error(*eps)
                .with_resync_interval(*interval);
            let report = run(&config, 30, report_offset(&config), &mut rng);
            let steady = report.steady_state_skew();
            prop_assert!(
                steady <= report.skew_bound_us * 1.5,
                "steady skew {steady} exceeds bound {} (n={n}, ppm={ppm}, eps={eps}, R={interval})",
                report.skew_bound_us
            );
            Ok(())
        },
    );
}

/// A benign initial offset: twice the cluster's own skew bound, so the
/// algorithm is past its convergence transient within the two rounds
/// `steady_state_skew` skips.
fn report_offset(config: &SyncConfig) -> f64 {
    2.0 * (4.0 * config.reading_error_us + 1.0)
}

/// Degradation is monotone in the reading error: scaling ε up by ≥ 4×
/// with identical clock drifts and identical unit random draws never
/// *reduces* the steady-state skew by more than the drift term — the
/// only contribution that does not scale with ε.
#[test]
fn sync_steady_state_skew_monotone_in_reading_error() {
    SUITE.check(
        "sync_steady_state_skew_monotone_in_reading_error",
        |r: &mut TkRng| {
            (
                4 + r.range(0, 4) as usize, // n in 4..=7
                r.f64_range(5.0, 100.0),    // max drift, ppm
                r.f64_range(0.2, 1.0),      // ε_lo, µs
                r.f64_range(4.0, 10.0),     // ε_hi / ε_lo
                r.next_u64(),
            )
        },
        |(n, ppm, eps_lo, factor, seed)| {
            let interval = 1_000.0;
            let base = SyncConfig::cluster(*n, *ppm, 1, &mut RngStream::new(*seed));
            let run_with = |eps: f64| {
                let config = base
                    .clone()
                    .with_reading_error(eps)
                    .with_resync_interval(interval);
                // A fresh stream with the same seed for both runs: the
                // unit draws are identical, so every reading error
                // scales exactly with ε.
                run(
                    &config,
                    30,
                    report_offset(&config),
                    &mut RngStream::new(seed ^ 0xA5),
                )
                .steady_state_skew()
            };
            let lo = run_with(*eps_lo);
            let hi = run_with(*eps_lo * *factor);
            let drift_term = 2.0 * *ppm * 1e-6 * interval;
            prop_assert!(
                lo <= hi + drift_term,
                "skew shrank as ε grew: ε_lo={eps_lo} -> {lo}, ε_hi={} -> {hi} \
                 (drift term {drift_term}, n={n}, ppm={ppm})",
                *eps_lo * *factor
            );
            Ok(())
        },
    );
}
