#!/usr/bin/env bash
# Tier-1 verification: hermetic (offline) release build plus the full test
# suite. Must pass on a machine with no network access and no crates.io
# mirror — the workspace depends on nothing outside this repository.
set -euo pipefail
cd "$(dirname "$0")/.."

# Formatting is part of tier 1: the tree must be rustfmt-clean.
cargo fmt --all --check

# Warnings are errors: the workspace must build clean.
RUSTFLAGS="-D warnings" cargo build --workspace --release --offline
cargo test --workspace -q --offline

# Lints are part of tier 1: clippy must be warning-clean across the
# workspace (library, tests, examples and benches alike).
cargo clippy -q --workspace --all-targets --offline -- -D warnings

# Documentation is part of tier 1: every public item is documented
# (missing_docs) and rustdoc itself must be warning-clean (broken intra-doc
# links, bad code fences).
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

# Smoke-run every example. Each must exit zero on a small workload: the
# campaign-style examples read a trial count from their first argument,
# the rest ignore it.
for ex in examples/*.rs; do
    name="$(basename "$ex" .rs)"
    echo "== example: $name =="
    cargo run --release --offline --example "$name" -- 50 >/dev/null
done

# Scenario zoo: every declarative campaign under scenarios/ must run
# bit-identically at 1, 2 and 5 threads, match its golden pin, and
# satisfy its acceptance clause. Any drift fails hard.
echo "== scenario zoo: golden pins at 1/2/5 threads =="
cargo run --release --offline -p nlft-bench --bin scenario_run -- verify

# Engine differential gate: one zoo scenario re-run through the
# work-stealing executor (forced even at one worker) must reproduce the
# same golden pin as the sequential reference above — `run` re-checks
# the pin via the acceptance clause. Also exercises watchdog arming and
# a checkpoint/resume round trip through the CLI flags.
echo "== scenario zoo: engine path vs legacy pin =="
ckpt="$(mktemp)"
trap 'rm -f "$ckpt"' EXIT
cargo run --release --offline -p nlft-bench --bin scenario_run -- \
    run babbling-wheel --engine --threads 4 --trial-budget-ms 10000 \
    --checkpoint "$ckpt" --checkpoint-every 4
cargo run --release --offline -p nlft-bench --bin scenario_run -- \
    run babbling-wheel --engine --resume "$ckpt"

# Bench trajectory: re-measure the groups in the committed baseline and
# compare. Timing deltas are advisory only (hardware varies between
# machines), so slowdowns print warnings; golden-digest drift — a
# bit-level change to the deterministic Figure 12 results — fails hard.
echo "== bench: substrates + fig12 + campaigns vs BENCH_BASELINE.json =="
cargo bench --offline -p nlft-bench --bench substrates -- --samples 10 >/dev/null
cargo bench --offline -p nlft-bench --bench fig12_system_reliability -- --samples 10 >/dev/null
for group in net_storm startup diagnosis value_domain weakly_hard multicore scenario engine; do
    cargo bench --offline -p nlft-bench --bench "$group" -- --samples 10 >/dev/null
done
cargo run --release --offline -p nlft-bench --bin bench_compare -- compare

echo "verify: OK"
