#!/usr/bin/env bash
# Tier-1 verification: hermetic (offline) release build plus the full test
# suite. Must pass on a machine with no network access and no crates.io
# mirror — the workspace depends on nothing outside this repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test --workspace -q --offline
