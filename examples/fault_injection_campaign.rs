//! Fault-injection campaign: estimating the paper's parameters.
//!
//! Loads the two Table-1 reference scenarios from the zoo
//! (`scenarios/node-failsilent-reference.scn` and
//! `scenarios/node-nlft-reference.scn`), compiles each through the
//! scenario DSL onto the node-level campaign runner, and reports the
//! Table-1 detection matrix and the parameter estimates (`C_D`, `P_T`,
//! `P_OM`, `P_FS`) with Wilson confidence intervals. The trial count on
//! the command line overrides the scenario's declared count, so the same
//! declarative files drive both the quick smoke run and the full
//! estimation campaign.
//!
//! ```text
//! cargo run --release --example fault_injection_campaign [trials]
//! ```

use nlft::bbw::{compile, CompiledScenario};
use nlft::reliability::scenario::parse_scenario;
use nlft::sim::stats::Confidence;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    for file in ["node-failsilent-reference", "node-nlft-reference"] {
        let path = format!("{}/scenarios/{file}.scn", env!("CARGO_MANIFEST_DIR"));
        let source =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("could not read {path}: {e}"));
        let spec = parse_scenario(&source).unwrap_or_else(|e| panic!("{file}.scn: {e}"));
        let mut config = match compile(&spec, threads) {
            Ok(CompiledScenario::Node(config)) => config,
            Ok(_) => panic!("{file}.scn: expected a `family node` scenario"),
            Err(e) => panic!("{e}"),
        };
        // The zoo pins the scenario at its declared trial count; here we
        // scale the same experiment up (or down) for estimation quality.
        config.trials = trials;
        let result = nlft::core::campaign::run_campaign(&config);

        println!(
            "\n================ scenario: {} (policy {}) ================",
            spec.name, config.policy
        );
        println!("{result}\n");
        println!("detection matrix (fault class x mechanism):");
        print!("{}", result.matrix.render_table());

        let ci = |p: nlft::sim::stats::Proportion| {
            let (lo, hi) = p.wilson_interval(Confidence::C95);
            format!("{:.4} [{:.4}, {:.4}]", p.estimate(), lo, hi)
        };
        println!("\nestimates with 95% Wilson intervals:");
        println!("  C_D  = {}", ci(result.counts.coverage()));
        println!("  P_T  = {}", ci(result.counts.p_t()));
        println!("  P_OM = {}", ci(result.counts.p_om()));
        println!("  P_FS = {}", ci(result.counts.p_fs()));
        println!(
            "\nnode-boundary failure modes: masked {} / omission {} / fail-silent {} / undetected {}",
            result.modes.masked,
            result.modes.omission,
            result.modes.fail_silent,
            result.modes.undetected
        );
    }

    println!("\npaper §3.3 assumed: C_D = 0.99, P_T = 0.90, P_OM = 0.05, P_FS = 0.05");
    println!("(our structural model detects more than the paper's hardware did —");
    println!(" the analytic models take these parameters as inputs either way)");
}
