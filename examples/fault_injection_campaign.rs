//! Fault-injection campaign: estimating the paper's parameters.
//!
//! Injects thousands of single-bit transients into the CPU of a node
//! running the brake workloads — once under a fail-silent policy, once
//! under light-weight NLFT — and reports the Table-1 detection matrix and
//! the parameter estimates (`C_D`, `P_T`, `P_OM`, `P_FS`) with Wilson
//! confidence intervals.
//!
//! ```text
//! cargo run --release --example fault_injection_campaign [trials]
//! ```

use nlft::core::campaign::{run_campaign, CampaignConfig};
use nlft::core::policy::NodePolicy;
use nlft::sim::stats::Confidence;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    for policy in [NodePolicy::FailSilent, NodePolicy::LightweightNlft] {
        let mut config = CampaignConfig::new(trials, 0xD5A_2005, policy);
        config.threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let result = run_campaign(&config);

        println!("\n================ policy: {policy} ================");
        println!("{result}\n");
        println!("detection matrix (fault class x mechanism):");
        print!("{}", result.matrix.render_table());

        let ci = |p: nlft::sim::stats::Proportion| {
            let (lo, hi) = p.wilson_interval(Confidence::C95);
            format!("{:.4} [{:.4}, {:.4}]", p.estimate(), lo, hi)
        };
        println!("\nestimates with 95% Wilson intervals:");
        println!("  C_D  = {}", ci(result.counts.coverage()));
        println!("  P_T  = {}", ci(result.counts.p_t()));
        println!("  P_OM = {}", ci(result.counts.p_om()));
        println!("  P_FS = {}", ci(result.counts.p_fs()));
        println!(
            "\nnode-boundary failure modes: masked {} / omission {} / fail-silent {} / undetected {}",
            result.modes.masked,
            result.modes.omission,
            result.modes.fail_silent,
            result.modes.undetected
        );
    }

    println!("\npaper §3.3 assumed: C_D = 0.99, P_T = 0.90, P_OM = 0.05, P_FS = 0.05");
    println!("(our structural model detects more than the paper's hardware did —");
    println!(" the analytic models take these parameters as inputs either way)");
}
