//! Quickstart: temporal error masking in five minutes.
//!
//! Builds a TEM-protected brake controller, runs it fault-free, then
//! replays the four scenarios of the paper's Figure 3 by injecting faults
//! into specific copies — printing the execution trace each time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nlft::kernel::tem::{CopyResult, InjectionPlan, JobReport, TemConfig, TemExecutor};
use nlft::machine::fault::{FaultTarget, TransientFault};
use nlft::machine::isa::Reg;
use nlft::machine::workloads;

fn print_trace(title: &str, report: &JobReport) {
    println!("\n--- {title} ---");
    for copy in &report.copies {
        match copy.result {
            CopyResult::Completed => {
                println!(
                    "  copy T{}: completed in {} cycles",
                    copy.index + 1,
                    copy.cycles
                )
            }
            CopyResult::Detected(edm) => println!(
                "  copy T{}: terminated after {} cycles — detected by {edm}",
                copy.index + 1,
                copy.cycles
            ),
        }
    }
    println!("  outcome: {}", report.outcome);
    if let Some(outputs) = report.outputs {
        println!("  delivered brake command: {:?}", outputs[0]);
    }
    println!("  total cost: {} cycles", report.cycles_used);
}

fn main() {
    // A PID brake-force controller, written in TM32 assembly, with its
    // integral state in protected memory.
    let pid = workloads::pid_controller();
    let inputs = [1500u32, 1100]; // set-point, measured force
    let (golden, wcet) = pid.golden_run(&inputs);
    println!("golden run: command {:?} in {wcet} cycles", golden[0]);

    // Reserve a generous per-copy budget and slack for one recovery.
    let tem = TemExecutor::new(TemConfig::with_budget(wcet * 2));

    // Scenario (i): fault-free. Two copies, one comparison, no vote.
    let mut machine = pid.instantiate();
    let report = tem.run_job(&mut machine, &pid, &inputs, None);
    print_trace("scenario (i): fault-free", &report);

    // Scenario (ii): silent data corruption. A flipped accumulator bit
    // produces a wrong-but-plausible result; only the comparison sees it,
    // and the majority vote picks the two clean copies.
    let mut machine = pid.instantiate();
    let plan = InjectionPlan {
        copy: 0,
        at_cycle: 12,
        fault: TransientFault {
            target: FaultTarget::Register(Reg::R2),
            mask: 1 << 6,
        },
    };
    let report = tem.run_job(&mut machine, &pid, &inputs, Some(plan));
    print_trace("scenario (ii): comparison detects, vote masks", &report);

    // Scenario (iii): a hardware EDM fires in copy 2. A corrupted PC lands
    // outside mapped memory → bus error → the copy is terminated, the
    // context restored, and a replacement copy reclaims its time.
    let mut machine = pid.instantiate();
    let plan = InjectionPlan {
        copy: 1,
        at_cycle: 6,
        fault: TransientFault {
            target: FaultTarget::Pc,
            mask: 1 << 20,
        },
    };
    let report = tem.run_job(&mut machine, &pid, &inputs, Some(plan));
    print_trace("scenario (iii): hardware EDM in copy 2", &report);

    // Scenario (iv): same, but the fault hits copy 1 — here a corrupted
    // stack pointer in a workload with real stack traffic, so the next
    // PUSH lands outside the task's MMU region.
    let stacked = workloads::stacked_average();
    let stacked_inputs = [100u32, 200, 300];
    let (_, stacked_wcet) = stacked.golden_run(&stacked_inputs);
    let stacked_tem = TemExecutor::new(TemConfig::with_budget(stacked_wcet * 2));
    let mut machine = stacked.instantiate();
    let plan = InjectionPlan {
        copy: 0,
        at_cycle: 4,
        fault: TransientFault {
            target: FaultTarget::Sp,
            mask: 1 << 15,
        },
    };
    let report = stacked_tem.run_job(&mut machine, &stacked, &stacked_inputs, Some(plan));
    print_trace("scenario (iv): hardware EDM in copy 1 (SP fault)", &report);

    println!("\nEvery injected transient was masked; the actuator saw identical commands.");
}
