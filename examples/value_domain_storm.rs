//! Value-domain fault storm against the executable BBW cluster.
//!
//! Three acts:
//!
//! 1. a guided tour — one cluster takes a stuck pedal channel, a runaway
//!    brake actuator and a corrupted wheel-local command in a single run;
//!    the median vote masks the sensor, the divergence monitor fails the
//!    actuator to safe release, and the sealed-command check rejects the
//!    corruption while the wheel brakes on its held set-point.
//! 2. a single-fault coverage campaign — every trial injects exactly one
//!    value-domain fault; the campaign *measures* the detection coverage
//!    (it must be 1.0: zero silent value failures).
//! 3. a combined storm — sensor + actuator + command + network + node
//!    faults per trial, scored on braking-safety metrics against a
//!    fault-free twin, and fed back into the extended fault tree to show
//!    what the measured coverage buys analytically.
//!
//! ```text
//! cargo run --release --example value_domain_storm [trials]
//! ```

use nlft::bbw::analytic::{Functionality, Policy, ValueDomainSystem, HOURS_PER_YEAR};
use nlft::bbw::cluster::{BbwCluster, WHEELS};
use nlft::bbw::params::BbwParams;
use nlft::bbw::value_campaign::campaign_pedal;
use nlft::bbw::{
    run_value_domain_campaign, ActuatorFault, SensorFault, ValueDomainCampaignConfig,
    ValueDomainCampaignResult, ValueDomainParams,
};
use nlft::reliability::model::ReliabilityModel;

fn act_one() {
    println!("=== act 1: stuck sensor + runaway actuator + corrupt command ===");
    let mut cluster = BbwCluster::new();
    cluster.attach_sensor_fault(1, SensorFault::StuckAt(4095), 3);
    cluster.attach_actuator_fault(2, ActuatorFault::Runaway { step: 400 }, 5);
    cluster.corrupt_command_at_wheel(8, 0, 2, 0x0000_4000);

    let report = cluster.run(24, campaign_pedal);
    for r in &report.records {
        let forces: Vec<String> = r
            .wheel_force
            .iter()
            .map(|f| {
                f.map(|v| format!("{v:>4}"))
                    .unwrap_or_else(|| "   -".into())
            })
            .collect();
        println!(
            "cycle {:>2}  pedal {:>4}  forces [{}]{}",
            r.cycle,
            campaign_pedal(r.cycle),
            forces.join(" "),
            if r.degraded { "  DEGRADED" } else { "" },
        );
    }
    let v = &report.value;
    println!(
        "sensor layer: {} implausibility flags, {} demotions, voted error bounded: {}",
        v.sensor_implausible_flags,
        v.sensor_demotions,
        v.undetected_sensor_cycles == 0,
    );
    println!(
        "command layer: {} seal rejects, {} stale rejects, {} held-set-point cycles",
        v.seal_rejects, v.stale_rejects, v.held_setpoint_cycles,
    );
    for (cycle, node) in &v.actuator_trips {
        let wheel = WHEELS.iter().position(|w| w == node).unwrap_or(usize::MAX);
        println!("actuator layer: wheel {wheel} failed to safe release at cycle {cycle}");
    }
    assert_eq!(v.undetected_value_failures(), 0);
    assert!(!report.service_lost);
    println!("silent value failures: 0; braking service never lost");
}

fn print_campaign(result: &ValueDomainCampaignResult) {
    let o = &result.outcomes;
    let pct = |n: u64| 100.0 * n as f64 / o.trials as f64;
    println!(
        "  masked            {:>6} ({:>5.1}%)",
        o.masked,
        pct(o.masked)
    );
    println!(
        "  detected          {:>6} ({:>5.1}%)",
        o.detected,
        pct(o.detected)
    );
    println!(
        "  service lost      {:>6} ({:>5.1}%)",
        o.service_lost,
        pct(o.service_lost)
    );
    println!(
        "  undetected        {:>6} ({:>5.1}%)",
        o.undetected,
        pct(o.undetected)
    );
    println!(
        "  worst total-force deficit {:>5}, worst left/right imbalance {:>5}",
        result.worst_total_force_deficit, result.worst_left_right_imbalance
    );
    println!(
        "  command path: {} seal rejects, {} stale rejects, {} held cycles",
        result.seal_rejects, result.stale_rejects, result.held_setpoint_cycles
    );
    println!(
        "  {} sensor demotions, {} actuator trips, measured coverage {:.4}",
        result.sensor_demotions,
        result.actuator_trips,
        result.detection_coverage()
    );
}

fn act_two(trials: u64) -> f64 {
    println!("\n=== act 2: single-fault coverage campaign ({trials} trials) ===");
    let mut config = ValueDomainCampaignConfig::single_fault(trials, 0x5EA1_2005);
    config.threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let result = run_value_domain_campaign(&config);
    print_campaign(&result);
    assert_eq!(
        result.outcomes.undetected, 0,
        "single value faults must never be silent"
    );
    result.detection_coverage()
}

fn act_three(trials: u64, measured_coverage: f64) {
    println!("\n=== act 3: combined storm campaign ({trials} trials) ===");
    let mut config = ValueDomainCampaignConfig::combined_storm(trials, 0x5EA1_2006);
    config.threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let result = run_value_domain_campaign(&config);
    print_campaign(&result);

    println!("\nextended fault tree, one-year mission, degraded mode:");
    let params = BbwParams::paper();
    for coverage in [measured_coverage, 0.99, 0.9, 0.5] {
        let vd = ValueDomainParams::nominal().with_coverage(coverage);
        let fs = ValueDomainSystem::new(&params, Policy::FailSilent, Functionality::Degraded, &vd);
        let nlft = ValueDomainSystem::new(&params, Policy::Nlft, Functionality::Degraded, &vd);
        println!(
            "  coverage {:>6.4}: U_fs {:.6e}  U_nlft {:.6e}  improvement {:.3}x",
            coverage,
            fs.unreliability(HOURS_PER_YEAR),
            nlft.unreliability(HOURS_PER_YEAR),
            fs.unreliability(HOURS_PER_YEAR) / nlft.unreliability(HOURS_PER_YEAR),
        );
    }
    println!("imperfect value coverage erodes the NLFT gain toward 1 — the");
    println!("campaign's measured coverage is what keeps the architecture honest.");
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    act_one();
    let coverage = act_two(trials);
    act_three(trials.div_ceil(2), coverage);
}
