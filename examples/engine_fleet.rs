//! Fleet-scale Monte-Carlo on the campaign engine: flat memory and
//! checkpoint/resume at millions of trials.
//!
//! Runs the brake-by-wire reliability campaign through the
//! work-stealing executor with streaming aggregation: every trial folds
//! into an O(grid)-sized accumulator, so resident memory stays flat no
//! matter how many trials run. Along the way the engine emits resumable
//! checkpoints; the example then restarts from the last one and shows
//! the resumed run reproducing the uninterrupted result bit-for-bit.
//!
//! ```text
//! cargo run --release --example engine_fleet [replications]
//! ```
//!
//! The EXPERIMENTS.md fleet recipe uses `10000000` (10M trials).

use nlft::bbw::analytic::{Functionality, Policy};
use nlft::bbw::montecarlo::{run_monte_carlo_with, MonteCarloConfig, MonteCarloResult};
use nlft::engine::checkpoint;
use nlft::engine::{CampaignOptions, EngineConfig, ResumePoint};
use std::cell::RefCell;

/// Reads a `VmRSS`/`VmHWM`-style line from `/proc/self/status`, in KiB.
/// Returns `None` off Linux — the example then skips the memory column.
fn proc_status_kib(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with(key))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn main() {
    let replications: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut cfg =
        MonteCarloConfig::one_year(Policy::Nlft, Functionality::Degraded, replications, 0xF1EE7);
    cfg.threads = workers;

    let engine = EngineConfig {
        workers,
        // Eight checkpoints over the run, at least one even when the
        // smoke harness passes a tiny count.
        checkpoint_every: (replications / 8).max(1),
        ..EngineConfig::default()
    };

    // At every checkpoint: encode a resumable snapshot and sample
    // resident memory. The snapshots are O(grid) — a survival curve,
    // two counters — never O(trials).
    let trail: RefCell<Vec<(u64, String, Option<u64>)>> = RefCell::new(Vec::new());
    let on_checkpoint = |done: u64, acc: &MonteCarloResult| {
        let point = ResumePoint {
            trials_done: done,
            acc: acc.clone(),
        };
        trail
            .borrow_mut()
            .push((done, checkpoint::encode(&point), proc_status_kib("VmRSS:")));
    };

    println!("=== fleet run: {replications} trials on {workers} workers ===");
    let run = run_monte_carlo_with(
        &cfg,
        &engine,
        CampaignOptions {
            resume: None,
            on_checkpoint: Some(&on_checkpoint),
        },
    );
    let full = run.acc;
    println!(
        "failures {} / {}  (empirical one-year reliability {:.6})",
        full.failures,
        replications,
        1.0 - full.failures as f64 / replications as f64
    );
    println!(
        "engine: {} blocks, {} steals, pending-block high-water {} (O(workers))",
        run.report.blocks, run.report.steals, run.report.max_pending_blocks
    );

    let trail = trail.into_inner();
    println!("\ncheckpoints ({}):", trail.len());
    for (done, encoded, rss) in &trail {
        match rss {
            Some(kib) => println!(
                "  trial {done:>10}  snapshot {:>4} bytes  VmRSS {kib} KiB",
                encoded.len()
            ),
            None => println!("  trial {done:>10}  snapshot {:>4} bytes", encoded.len()),
        }
    }
    if let Some(hwm) = proc_status_kib("VmHWM:") {
        println!("peak resident memory (VmHWM): {hwm} KiB");
    }

    // Restart from the last mid-run checkpoint: the engine re-runs only
    // the remaining suffix, and the labelled-RNG-per-trial rule makes
    // the merged result identical to the uninterrupted run.
    let Some((done, encoded, _)) = trail.iter().rev().find(|(d, _, _)| *d < replications) else {
        println!("\nno mid-run checkpoint to resume from (trial count too small)");
        return;
    };
    let resume: ResumePoint<MonteCarloResult> =
        checkpoint::decode(encoded).expect("engine checkpoint round-trips");
    let resumed = run_monte_carlo_with(
        &cfg,
        &engine,
        CampaignOptions {
            resume: Some(resume),
            on_checkpoint: None,
        },
    )
    .acc;
    assert_eq!(
        resumed.failures, full.failures,
        "resumed run must reproduce the uninterrupted failure count"
    );
    assert_eq!(
        checkpoint::encode(&resumed),
        checkpoint::encode(&full),
        "resumed run must be bit-identical to the uninterrupted run"
    );
    println!(
        "\nresumed from trial {done}: re-ran {} trials, result bit-identical to the full run",
        replications - done
    );
}
