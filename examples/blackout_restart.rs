//! Cluster blackout and TTP/C-style cold-start restart of the BBW
//! cluster.
//!
//! Two acts:
//!
//! 1. a deterministic total blackout — every node (both central units
//!    included) resets in the same slot and loses its volatile state.
//!    The cluster falls completely silent, the fastest listener wins the
//!    cold-start contention, everyone integrates on its time base, and
//!    the membership view is whole again within a provable bound. The
//!    per-cycle trace shows the collapse and the recovery.
//! 2. a blackout-survival campaign — each trial resets a random subset
//!    of 2–6 nodes with per-node power-up stagger. The campaign reports
//!    recovery fraction, cold-start/big-bang/clique-revert counts and
//!    the braking-unavailability and membership-recovery distributions.
//!
//! ```text
//! cargo run --release --example blackout_restart [trials]
//! ```

use nlft::bbw::blackout::{run_blackout_campaign, BlackoutCampaignConfig};
use nlft::bbw::cluster::{BbwCluster, CU_A, CU_B, WHEELS};
use nlft::net::inject::{BlackoutSpec, NetFaultPlan};
use nlft::sim::rng::RngStream;

fn act_one() {
    println!("=== act 1: total blackout at cycle 6, cold-start recovery ===");
    let mut cluster = BbwCluster::new();
    cluster.enable_startup();
    let plan = NetFaultPlan::quiet().with_blackout(BlackoutSpec {
        at_cycle: 6,
        nodes: vec![CU_A, CU_B, WHEELS[0], WHEELS[1], WHEELS[2], WHEELS[3]],
        down_cycles: 2,
        stagger: 0,
    });
    cluster.attach_net_faults(plan, RngStream::new(0xB1AC_0A11).fork("net-injector"));

    let report = cluster.run(20, |_| 1200);
    for r in &report.records {
        let forces: Vec<String> = r
            .wheel_force
            .iter()
            .map(|f| {
                f.map(|v| format!("{v:>4}"))
                    .unwrap_or_else(|| "   -".into())
            })
            .collect();
        let milestones: Vec<String> = report
            .startup_events
            .iter()
            .filter(|(c, _)| *c == r.cycle)
            .map(|(_, ev)| format!("{ev:?}"))
            .collect();
        println!(
            "cycle {:>2}  forces [{}]  members {}  {}",
            r.cycle,
            forces.join(" "),
            r.members,
            milestones.join(" "),
        );
    }
    let metrics = cluster.startup_metrics().expect("startup enabled");
    println!(
        "first winning cold-start frame: cycle {:?}; integration latencies {:?}",
        metrics.first_cold_start_cycle,
        metrics
            .integration_latencies
            .iter()
            .map(|&(_, l)| l)
            .collect::<Vec<_>>()
    );
    assert_eq!(metrics.big_bangs, 0, "unique timeouts cannot collide");
    assert_eq!(
        report.guardian_blocks, 0,
        "startup silence is protocol-enforced, never guardian-enforced"
    );
    assert_eq!(
        report.records.last().expect("ran").members,
        6,
        "the cluster must be whole again"
    );
}

fn act_two(trials: u64) {
    println!("\n=== act 2: blackout-survival campaign ({trials} trials) ===");
    let mut config = BlackoutCampaignConfig::new(trials, 0xB1AC_2005);
    config.threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let result = run_blackout_campaign(&config);

    println!(
        "recovered to full membership: {} of {} trials ({:.1}%)",
        result.full_recoveries,
        result.trials,
        100.0 * result.recovery_fraction()
    );
    println!(
        "cold-start contentions: {} trials, {} marker frames, {} big-bang rounds",
        result.cold_start_trials, result.cold_starts_sent, result.big_bangs
    );
    println!(
        "clique reverts: {} (guardian blocks: {} — reverted nodes never babble)",
        result.clique_reverts, result.guardian_blocks
    );
    println!(
        "membership recovery: p50 {:?} p95 {:?} cycles after the blackout",
        result.membership_percentile(50),
        result.membership_percentile(95)
    );
    println!(
        "braking unavailability per trial (cycles with < 3 wheels braking): {:?}",
        result.unavailability_cycles
    );
    println!(
        "hold-last-safe bridged {} command-dark cycles; mean reset->Active \
         latency {:.2} cycles",
        result.held_setpoint_cycles,
        result.integration_latency_mean()
    );

    assert_eq!(
        result.guardian_blocks, 0,
        "clique avoidance must never degenerate into babbling"
    );
    assert_eq!(
        result.full_recoveries, result.trials,
        "every blackout in this regime must be survivable"
    );
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    act_one();
    act_two(trials);
}
