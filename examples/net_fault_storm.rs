//! Adversarial network fault storm against the executable BBW cluster.
//!
//! Two acts:
//!
//! 1. a targeted storm — wheel 3's network interface drops and corrupts
//!    frames for twenty cycles; membership excludes the wheel, the central
//!    unit redistributes brake force, and once the storm quiesces the
//!    wheel is readmitted. Braking never stops.
//! 2. a cluster-wide campaign — every node takes a configurable storm of
//!    corruption, omission, crash/restart, babbling-idiot, masquerade and
//!    clock-glitch faults, optionally with a CPU transient riding along.
//!    The campaign reports the outcome distribution and the *measured*
//!    bus-level coverage parameters (CRC reject rate, guardian block
//!    rate, masquerade reject rate) plus reintegration latency
//!    percentiles.
//!
//! ```text
//! cargo run --release --example net_fault_storm [trials]
//! ```

use nlft::bbw::cluster::{BbwCluster, WHEELS};
use nlft::bbw::{run_net_storm_campaign, NetStormCampaignConfig};
use nlft::net::inject::{NetFaultPlan, NetFaultRates};
use nlft::sim::rng::RngStream;

fn act_one() {
    println!("=== act 1: targeted storm on wheel 3, then quiescence ===");
    let mut cluster = BbwCluster::new();
    let storm = NetFaultPlan::quiet()
        .with_node(
            WHEELS[2],
            NetFaultRates {
                omission: 0.9,
                corruption: 0.5,
                ..NetFaultRates::QUIET
            },
        )
        .with_dynamic(0.1, 0.1);
    cluster.attach_net_faults(storm, RngStream::new(0x5702_0a11).fork("net-injector"));

    let report = cluster.run(20, |_| 1200);
    for r in &report.records {
        let forces: Vec<String> = r
            .wheel_force
            .iter()
            .map(|f| {
                f.map(|v| format!("{v:>4}"))
                    .unwrap_or_else(|| "   -".into())
            })
            .collect();
        println!(
            "cycle {:>2}  forces [{}]  members {}{}",
            r.cycle,
            forces.join(" "),
            r.members,
            if r.degraded { "  DEGRADED" } else { "" },
        );
    }
    println!(
        "storm phase: degraded cycles {}, min members {}, service lost: {}",
        report.degraded_cycles, report.min_members, report.service_lost
    );
    println!(
        "bus saw: {} corruptions (all {} CRC-rejected), {} omission events",
        report.corruptions_applied, report.crc_rejects, report.omissions
    );
    assert!(!report.service_lost && !report.split_membership);

    // The storm passes; the wheel resumes transmitting and is readmitted.
    cluster.set_net_fault_plan(NetFaultPlan::quiet());
    let calm = cluster.run(10, |_| 1200);
    println!(
        "calm phase: reintegration latencies {:?} cycles, degraded cycles {}",
        calm.reintegration_latencies, calm.degraded_cycles
    );
    assert!(!calm.service_lost);
}

fn act_two(trials: u64) {
    println!("\n=== act 2: cluster-wide storm campaign ({trials} trials) ===");
    let mut config = NetStormCampaignConfig::new(trials, 0x5702_2005);
    config.threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let result = run_net_storm_campaign(&config);

    let o = &result.outcomes;
    let pct = |n: u64| 100.0 * n as f64 / o.trials as f64;
    println!("outcomes:");
    println!(
        "  unaffected        {:>6} ({:>5.1}%)",
        o.unaffected,
        pct(o.unaffected)
    );
    println!(
        "  omission only     {:>6} ({:>5.1}%)",
        o.omission_only,
        pct(o.omission_only)
    );
    println!(
        "  degraded episode  {:>6} ({:>5.1}%)",
        o.degraded_episode,
        pct(o.degraded_episode)
    );
    println!(
        "  service lost      {:>6} ({:>5.1}%)",
        o.service_lost,
        pct(o.service_lost)
    );
    println!(
        "  split membership  {:>6} ({:>5.1}%)",
        o.split_membership,
        pct(o.split_membership)
    );

    println!(
        "injected: {} corruptions, {} omissions, {} crashes, {} babbles, \
         {} masquerades, {} clock glitches, {} dups, {} reorders",
        result.injected.corruptions,
        result.injected.omissions,
        result.injected.crashes,
        result.injected.babbles,
        result.injected.masquerades,
        result.injected.duplicates,
        result.injected.clock_glitches,
        result.injected.reorders,
    );
    println!("measured coverage parameters:");
    println!("  CRC reject rate        {:.4}", result.crc_reject_rate());
    println!(
        "  guardian block rate    {:.4}",
        result.guardian_block_rate()
    );
    println!(
        "  masquerade reject rate {:.4}",
        result.masquerade_reject_rate()
    );
    println!(
        "reintegration latency: p50 {:?} p95 {:?} cycles ({} reintegrations)",
        result.reintegration_percentile(50),
        result.reintegration_percentile(95),
        result.reintegration_latencies.len()
    );

    assert!((result.crc_reject_rate() - 1.0).abs() < f64::EPSILON);
    assert!((result.guardian_block_rate() - 1.0).abs() < f64::EPSILON);
    println!(
        "\nstorms that split the cluster (<= 3 of 6 members): {} of {} trials",
        o.split_membership, o.trials
    );
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    act_one();
    act_two(trials);
}
