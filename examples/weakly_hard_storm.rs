//! Weakly-hard (m,k) contracts end to end: analyse, enforce, storm.
//!
//! Three acts:
//!
//! 1. offline analysis — sweep the fault inter-arrival time and ask the
//!    fault-recovery RTA which (m,k) contracts the brake controller can
//!    be *certified* for, printing the worst tolerated miss pattern per
//!    interval;
//! 2. online enforcement — register a contract with the preemptive
//!    executive and watch the degradation actions fire: skip-to-safe
//!    substitution healing the window, and escalation reporting;
//! 3. a miss-pattern storm campaign — random, bursty, periodic and
//!    adversarial fault placements against the analyzer's bound, each
//!    pattern scored as braking-distance degradation. The campaign
//!    must never beat a certified bound — and must reach it.
//!
//! ```text
//! cargo run --release --example weakly_hard_storm [trials]
//! ```

use nlft::bbw::braking::MissPolicy;
use nlft::bbw::{run_miss_pattern_campaign, MissPatternCampaignConfig};
use nlft::kernel::analysis::{analyse_weakly_hard, TemCosts};
use nlft::kernel::contract::{DegradationAction, MkContract};
use nlft::kernel::preemptive::{PreemptiveExecutive, ResidentTask};
use nlft::kernel::task::{Criticality, Priority, TaskId, TaskSet, TaskSpecBuilder};
use nlft::sim::time::SimDuration;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

fn pattern_string(pattern: &[bool]) -> String {
    pattern.iter().map(|&m| if m { '#' } else { '.' }).collect()
}

fn bits_string(bits: u64, len: u32) -> String {
    (0..len)
        .map(|j| if bits >> j & 1 == 1 { '#' } else { '.' })
        .collect()
}

fn act_one() {
    println!("=== act 1: certify (m,k) contracts under fault-recovery RTA ===");
    let set: TaskSet = [TaskSpecBuilder::new(TaskId(1), "brake-ctl")
        .period(us(100))
        .deadline(us(80))
        .wcet(us(30))
        .priority(Priority(0))
        .criticality(Criticality::Critical)
        .build()
        .unwrap()]
    .into_iter()
    .collect();
    let contract = MkContract::new(2, 8);
    println!(
        "task brake-ctl: T=100us D=80us C=30us, contract ({},{})",
        2, 8
    );
    for tf in [45u64, 55, 65, 80, 120] {
        let b =
            &analyse_weakly_hard(&set, &[(TaskId(1), contract)], us(tf), &TemCosts::nominal())[0];
        println!(
            "  T_F {tf:>3}us  tolerates {} fault/job  worst window {} ({})  {}",
            b.tolerated_faults.unwrap(),
            b.worst_misses,
            pattern_string(&b.worst_pattern),
            if b.satisfied { "CERTIFIED" } else { "refused" },
        );
    }
    println!();
}

fn counting_task(iters: u32) -> String {
    format!(
        "    ldi r0, 0
             ldi r1, {iters}
             ldi r2, 1
         loop:
             add r0, r0, r2
             sub r1, r1, r2
             jnz loop
             out r0, port0
             halt"
    )
}

fn act_two() {
    println!("=== act 2: online enforcement in the preemptive executive ===");
    // A task whose budget is far below its demand: every executed job
    // overruns its execution-time monitor and misses.
    let mut exec = PreemptiveExecutive::new(1);
    exec.add_task(
        ResidentTask {
            id: TaskId(1),
            name: "lame".into(),
            period_cycles: 1_000,
            deadline_cycles: 1_000,
            budget_cycles: 30,
            priority: Priority(0),
            inputs: vec![],
            output_port: 0,
            critical: false,
        },
        &counting_task(100),
    )
    .unwrap();
    exec.register_contract(
        TaskId(1),
        MkContract::new(1, 4),
        DegradationAction::SkipToSafe,
    );
    let report = exec.run(16_000);
    let s = &report.tasks[&TaskId(1)];
    let c = &report.contracts[&TaskId(1)];
    println!(
        "  contract (1,4) + SkipToSafe: {} jobs, {} overruns, {} safe substitutions",
        c.jobs, s.overruns, s.safe_substituted
    );
    println!(
        "  {} violations, worst window {} misses, min margin {}",
        c.violations, c.worst_misses_in_window, c.min_margin
    );
    println!("  -> degraded releases never occupied the CPU; the window healed each time\n");
}

fn act_three(trials: u64) {
    println!("=== act 3: miss-pattern storm campaign ({trials} trials) ===");
    let cfg = MissPatternCampaignConfig::nominal(trials, 0x3A5E);
    let r = run_miss_pattern_campaign(&cfg);
    println!(
        "  certified trials: {}/{} (violations of certified bounds: {})",
        r.certified_trials, r.trials, r.certified_violations
    );
    println!(
        "  bound breaches: {}   bound reached exactly: {} trials",
        r.bound_breaches, r.bound_reached_trials
    );
    println!(
        "  total misses {}   worst window {} misses   uncertified violations {}",
        r.total_misses, r.worst_window_misses, r.violating_trials
    );
    if let Some(w) = r.worst {
        println!(
            "  worst pattern (trial {}, T_F {}us, {:?}):",
            w.trial, w.fault_interval_us, w.strategy
        );
        println!("    {}", bits_string(w.pattern_bits, cfg.horizon_jobs));
        if w.score.stopped {
            println!(
                "    braking: {} -> {} distance units (+{} ppm), {} -> {} cycles",
                w.score.clean_distance,
                w.score.distance,
                w.score.excess_ppm(),
                w.score.clean_stop_cycles,
                w.score.stop_cycles,
            );
        } else {
            println!(
                "    braking: NEVER STOPPED within {} cycles (clean twin: {} cycles)",
                w.score.stop_cycles, w.score.clean_stop_cycles
            );
        }
    }
    assert_eq!(r.certified_violations, 0, "analyzer must stay sound");
    assert_eq!(r.bound_breaches, 0, "no placement may beat the bound");
    // Comparing policies: the hold-last-safe window is worth distance.
    let mut zero_cfg = cfg.clone();
    zero_cfg.policy = MissPolicy::ZeroForce;
    let zero = run_miss_pattern_campaign(&zero_cfg);
    println!(
        "  hold-last-safe vs release-to-zero: {} vs {} total excess distance",
        r.total_excess_distance, zero.total_excess_distance
    );
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    act_one();
    act_two();
    act_three(trials);
    println!("\nweakly-hard storm complete: analysis certified, enforcement degraded, campaign cross-checked.");
}
