//! The preemptive kernel in action: three tasks, one CPU, MMU confinement.
//!
//! A high-rate brake-pressure monitor preempts a long diagnostic sweep;
//! a third, buggy task writes through a wild pointer and is confined to a
//! trap by the MMU — exactly the §2.4/§2.8 architecture of the paper.
//!
//! ```text
//! cargo run --release --example preemptive_kernel
//! ```

use nlft::kernel::preemptive::{PreemptiveExecutive, ResidentTask};
use nlft::kernel::task::{Priority, TaskId};
use nlft::machine::fault::{FaultTarget, TransientFault};
use nlft::machine::isa::Reg;

fn resident(id: u32, name: &str, prio: u32, period: u64, budget: u64) -> ResidentTask {
    ResidentTask {
        id: TaskId(id),
        name: name.to_string(),
        period_cycles: period,
        deadline_cycles: period,
        budget_cycles: budget,
        priority: Priority(prio),
        inputs: vec![(0, 1800), (1, 1500)],
        output_port: 0,
        critical: false,
    }
}

fn main() {
    let mut exec = PreemptiveExecutive::new(4);

    // Window 0: the critical brake-pressure monitor — short, every 400 cycles.
    exec.add_task(
        resident(1, "brake-monitor", 0, 400, 150),
        "    in   r0, port0       ; commanded
             in   r1, port1       ; measured
             sub  r2, r0, r1      ; pressure error
             out  r2, port0
             halt",
    )
    .expect("monitor loads");

    // Window 1: a long diagnostic memory sweep — low priority, preemptible.
    exec.add_task(
        resident(2, "diagnostic-sweep", 2, 6_000, 5_000),
        "    ldi  r0, 0           ; checksum
             ldi  r1, 0x1400      ; own data window
             ldi  r2, 200         ; words to scan
             ldi  r3, 1
         sweep:
             ld   r4, [r1+0]
             add  r0, r0, r4
             addi r1, r1, 4
             sub  r2, r2, r3
             jnz  sweep
             out  r0, port0
             halt",
    )
    .expect("diagnostic loads");

    // Window 2: a buggy logger that scribbles into window 0's data.
    exec.add_task(
        resident(3, "buggy-logger", 3, 5_000, 1_000),
        "    ldi  r1, 0x400       ; WILD: window 0's data area
             ldi  r0, 0x666
             st   r0, [r1+0]
             halt",
    )
    .expect("logger loads");

    // Window 3: a TEM-protected wheel-force integrator — critical, so every
    // job runs two (preemptible!) copies with a comparison; we flip a bit in
    // its accumulator mid-copy and watch the vote mask it.
    let mut wheel = resident(4, "wheel-integrator", 1, 3_000, 1_200);
    wheel.critical = true;
    exec.add_task(
        wheel,
        "    ldi r0, 0
             ldi r1, 40
             ldi r2, 1
             ldi r3, 9
         acc:
             add r0, r0, r3
             sub r1, r1, r2
             jnz acc
             out r0, port0
             halt",
    )
    .expect("integrator loads");
    // Cycle 60 lands mid-way through the integrator's first copy.
    exec.inject(
        60,
        TaskId(4),
        TransientFault {
            target: FaultTarget::Register(Reg::R0),
            mask: 1 << 5,
        },
    );

    let report = exec.run(60_000);

    println!("simulated {} cycles on one CPU\n", report.cycles);
    for (id, name) in [
        (1u32, "brake-monitor"),
        (2, "diagnostic-sweep"),
        (3, "buggy-logger"),
        (4, "wheel-integrator"),
    ] {
        let s = &report.tasks[&TaskId(id)];
        println!(
            "{name:<18} jobs {:>3}   worst response {:>5} cycles   misses {}   overruns {}   exceptions {}   copies {}   masked {}",
            s.completed, s.max_response_cycles, s.deadline_misses, s.overruns, s.exceptions, s.copies, s.masked
        );
    }
    println!(
        "\ncontext switches: {}   preemptions of the diagnostic sweep: {}",
        report.context_switches, report.preemptions
    );

    let monitor = &report.tasks[&TaskId(1)];
    let sweep = &report.tasks[&TaskId(2)];
    let logger = &report.tasks[&TaskId(3)];
    let integrator = &report.tasks[&TaskId(4)];
    assert_eq!(monitor.deadline_misses, 0, "the monitor never misses");
    assert!(
        report.preemptions > 0,
        "lower-priority work yields to the monitor"
    );
    assert!(sweep.completed > 0, "and still completes");
    assert_eq!(logger.exceptions, 1, "the wild store traps at the MMU");
    assert_eq!(logger.completed, 0);
    assert_eq!(
        integrator.masked, 1,
        "TEM's vote masked the accumulator flip"
    );
    assert_eq!(
        integrator.last_output,
        Some(360),
        "every delivered value is golden"
    );
    assert_eq!(integrator.omissions, 0);

    println!("\nthe monitor met every deadline, the sweep finished between releases,");
    println!("the buggy logger was confined to an MMU trap, and the TEM-protected");
    println!("integrator masked a silent accumulator flip by 2-of-3 vote — all on one CPU.");
}
