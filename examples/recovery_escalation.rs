//! Fault diagnosis and recovery escalation on the BBW cluster.
//!
//! Three acts plus two campaigns:
//!
//! 1. a transient storm — every node takes one-shot CPU transients; TEM
//!    masks all of them and the escalation ladder never moves;
//! 2. an intermittent wheel — a recurring-transient burst drives a wheel
//!    node down the ladder (suspect → fail-silent → restart), the burst
//!    expires while the node is silent, and the wheel reintegrates into
//!    bus membership;
//! 3. a permanent central unit — a stuck-at CU replica burns its restart
//!    budget and is retired; the duplex pair degrades to simplex while
//!    braking continues.
//!
//! Then the node-level recovery campaign (α-count discrimination metrics,
//! false-retirement Wilson interval) and the cluster-level campaign
//! (outcome distribution across the three fault classes), closing with
//! the analytic cross-check: the escalation ladder unfolded into an
//! absorbing DTMC must predict the campaign's measured retirement latency.
//!
//! ```text
//! cargo run --release --example recovery_escalation [trials]
//! ```

use nlft::bbw::recovery::{
    intermittent_wheel_scenario, permanent_cu_scenario, run_recovery_cluster_campaign,
    transient_storm_scenario, RecoveryClusterCampaignConfig,
};
use nlft::core::campaign::{run_recovery_campaign, RecoveryCampaignConfig};
use nlft::core::diagnosis::escalation_chain;
use nlft::kernel::escalation::EscalationPolicy;
use nlft::reliability::dtmc::AbsorbingDtmc;

fn act_one() {
    println!("=== act 1: transient storm — masked, ladder never moves ===");
    let report = transient_storm_scenario(0xAC71);
    println!(
        "escalation events: {}, restarts: {}, retired: {:?}",
        report.escalations.len(),
        report.restarts,
        report.retired_nodes
    );
    println!(
        "degraded cycles {}, min members {}, service lost: {}",
        report.degraded_cycles, report.min_members, report.service_lost
    );
    assert!(report.escalations.is_empty() && report.restarts == 0);
    assert!(!report.service_lost);
}

fn act_two() {
    println!("\n=== act 2: intermittent wheel — restart and reintegration ===");
    let (report, victim) = intermittent_wheel_scenario(0xAC72);
    for (cycle, node, event) in &report.escalations {
        println!("  cycle {cycle:>2}  node {node}  {event:?}");
    }
    println!(
        "victim {victim}: restarts {}, retired {:?}, min members {}, members at end {}",
        report.restarts,
        report.retired_nodes,
        report.min_members,
        report.records.last().map(|r| r.members).unwrap_or(0)
    );
    assert!(report.restarts >= 1 && report.retired_nodes.is_empty());
    assert!(!report.service_lost);
}

fn act_three() {
    println!("\n=== act 3: permanent CU replica — retired, duplex degrades ===");
    let report = permanent_cu_scenario(0xAC73);
    for (cycle, node, event) in &report.escalations {
        println!("  cycle {cycle:>2}  node {node}  {event:?}");
    }
    println!(
        "retired: {:?} after {} restarts; members at end {}; service lost: {}",
        report.retired_nodes,
        report.restarts,
        report.records.last().map(|r| r.members).unwrap_or(0),
        report.service_lost
    );
    assert_eq!(report.retired_nodes.len(), 1);
    assert!(!report.service_lost, "simplex CU keeps braking");
}

fn node_campaign(trials: u64) {
    println!("\n=== node-level recovery campaign ({trials} trials) ===");
    let mut config = RecoveryCampaignConfig::new(trials, 0x2005_AC01);
    config.threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let result = run_recovery_campaign(&config);
    println!("{result}");
    println!(
        "  retirement latency = {:.2} jobs (n={}), undetected-wrong jobs = {}",
        result.retirement_latency_jobs.mean(),
        result.retirement_latency_jobs.count(),
        result.undetected_wrong_jobs
    );
}

fn cluster_campaign(trials: u64) {
    println!("\n=== cluster-level recovery campaign ({trials} trials) ===");
    let mut config = RecoveryClusterCampaignConfig::new(trials, 0x2005_AC02);
    config.threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let o = run_recovery_cluster_campaign(&config);
    let pct = |n: u64| 100.0 * n as f64 / o.trials as f64;
    println!(
        "  masked transient  {:>6} ({:>5.1}%)",
        o.masked_transient,
        pct(o.masked_transient)
    );
    println!(
        "  recovered         {:>6} ({:>5.1}%)",
        o.recovered,
        pct(o.recovered)
    );
    println!(
        "  retired           {:>6} ({:>5.1}%)",
        o.retired,
        pct(o.retired)
    );
    println!(
        "  false retirement  {:>6} ({:>5.1}%)",
        o.false_retirement,
        pct(o.false_retirement)
    );
    println!(
        "  missed permanent  {:>6} ({:>5.1}%)",
        o.missed_permanent,
        pct(o.missed_permanent)
    );
    println!(
        "  service lost      {:>6} ({:>5.1}%)",
        o.service_lost,
        pct(o.service_lost)
    );
    println!(
        "  unresolved        {:>6} ({:>5.1}%)",
        o.unresolved,
        pct(o.unresolved)
    );
    assert_eq!(o.service_lost, 0, "recovery must never cost the service");
}

fn analytic_crosscheck() {
    println!("\n=== analytic cross-check: ladder as an absorbing DTMC ===");
    let policy = EscalationPolicy::default();
    for p_err in [1.0, 0.5, 0.05] {
        let chain = escalation_chain(policy, p_err);
        let dtmc = AbsorbingDtmc::new(chain.matrix.clone(), &chain.retired)
            .expect("ladder chain is a valid absorbing DTMC");
        let steps = dtmc
            .expected_steps_to_absorption(chain.start)
            .expect("retirement reachable");
        println!(
            "  p_err = {p_err:<4}  {} states, E[slots to retirement] = {steps:.1}",
            chain.matrix.len()
        );
    }
    println!("  (p_err = 1 is the detected-stuck-at path: campaign latency + 1 onset slot)");
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    act_one();
    act_two();
    act_three();
    node_campaign(trials.max(8));
    cluster_campaign(trials.max(8));
    analytic_crosscheck();
    println!("\nall recovery scenarios held.");
}
