//! The paper built its models in SHARPE's input language; this example
//! does the same with our SHARPE-style DSL: it loads the BBW system from
//! `models/bbw_nlft_degraded.sharpe`, evaluates it, and verifies that the
//! text model agrees with the natively built analytic model to machine
//! precision.
//!
//! ```text
//! cargo run --release --example sharpe_dsl
//! ```

use nlft::bbw::analytic::{BbwSystem, Functionality, Policy, HOURS_PER_YEAR};
use nlft::bbw::params::BbwParams;
use nlft::reliability::lang;
use nlft::reliability::model::ReliabilityModel;

const MODEL: &str = include_str!("../models/bbw_nlft_degraded.sharpe");

fn main() {
    let set = lang::parse(MODEL).expect("model file parses");
    println!("models loaded: {:?}", set.model_names());
    println!(
        "bindings: lambda_p = {:.3e}, unmasked = {:.3e}",
        set.binding("lambda_p").expect("bound"),
        set.binding("unmasked").expect("bound"),
    );

    let native = BbwSystem::new(&BbwParams::paper(), Policy::Nlft, Functionality::Degraded);

    println!(
        "\n{:>8}{:>16}{:>16}{:>14}",
        "month", "DSL model", "native model", "difference"
    );
    let mut max_diff = 0.0f64;
    for month in 0..=12 {
        let t = month as f64 * HOURS_PER_YEAR / 12.0;
        let dsl = set.reliability("system", t).expect("system model exists");
        let nat = native.reliability(t);
        max_diff = max_diff.max((dsl - nat).abs());
        println!("{month:>8}{dsl:>16.6}{nat:>16.6}{:>14.2e}", dsl - nat);
    }
    println!("\nmaximum divergence: {max_diff:.2e}");
    assert!(
        max_diff < 1e-9,
        "the text model and the native model must agree to machine precision"
    );

    let mttf_cu = set
        .markov_mttf("cu")
        .expect("cu is a markov model")
        .expect("finite");
    let mttf_wn = set
        .markov_mttf("wn")
        .expect("wn is a markov model")
        .expect("finite");
    println!(
        "subsystem MTTFs from the DSL: CU {:.2} years, WN {:.2} years (bottleneck: wheels)",
        mttf_cu / HOURS_PER_YEAR,
        mttf_wn / HOURS_PER_YEAR
    );
    println!("\ntext model == code model: the analysis pipeline is specification-driven, as with SHARPE.");
}
