//! Core death inside a critical section: lock-based vs LEFT-RS.
//!
//! Three acts on the reference 2-core brake node:
//!
//! 1. *Certification* — SRP ceilings give the lock-based substrate its
//!    blocking bound, the bounded-retry analysis gives LEFT-RS its retry
//!    re-execution term, and both feed the fault-aware response-time
//!    analysis.
//! 2. *One placement* — a core crashes while holding the shared wheel
//!    state. The leaked spin lock wedges every lock-based peer; the same
//!    placement is invisible to LEFT-RS, and an escalated (orderly)
//!    silence spares even the lock-based node.
//! 3. *Campaign* — randomized core-death placements, all forced
//!    mid-critical-section, proving the contrast holds everywhere and
//!    that the measured retry cost stays within the certified term.
//!
//! ```text
//! cargo run --release --example core_death_cs [trials]
//! ```

use nlft::core::multicore_campaign::{run_multicore_campaign, MulticoreCampaignConfig};
use nlft::kernel::escalation::EscalationPolicy;
use nlft::kernel::multicore::MulticoreExecutive;
use nlft::kernel::resources::{certify, ProtocolKind};
use nlft::machine::fault::CoreDeathFault;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);

    // Act 1: certify the reference 2-core workload under both protocols.
    let (set, map) = MulticoreExecutive::reference_workload(2);
    println!("=== Certification (reference 2-core brake node) ===");
    for kind in [ProtocolKind::LockBased, ProtocolKind::LeftRs] {
        println!("--- {} ---", kind.name());
        println!(
            "{:>12}{:>12}{:>12}{:>12}{:>12}",
            "task", "blocking", "recovery", "response", "deadline"
        );
        for cert in certify(&set, &map, kind, 2, 1) {
            let task = set.get(cert.id).expect("certified task exists");
            println!(
                "{:>12}{:>12}{:>12}{:>12}{:>12}",
                cert.name,
                format!("{}", cert.blocking),
                format!("{}", cert.recovery),
                cert.response
                    .map(|r| format!("{r}"))
                    .unwrap_or_else(|| "MISS".into()),
                format!("{}", task.deadline),
            );
        }
    }

    // Act 2: one adversarial placement, three outcomes.
    println!("\n=== One mid-section core death (core 0, tick 100) ===");
    let death = CoreDeathFault {
        core: 0,
        at_tick: 100,
        in_section: true,
        escalated: false,
    };
    for (label, kind, escalated) in [
        ("lock-based, crash", ProtocolKind::LockBased, false),
        ("LEFT-RS, crash", ProtocolKind::LeftRs, false),
        ("lock-based, escalated", ProtocolKind::LockBased, true),
    ] {
        let mut exec = MulticoreExecutive::reference(2, kind);
        if escalated {
            exec.supervise(0, EscalationPolicy::default());
        }
        exec.inject(CoreDeathFault { escalated, ..death });
        let report = exec.run(2_000);
        println!(
            "{label:>22}: missed {}, deadlocks {}, max retry cost {} -> {}",
            report.missed,
            report.deadlocks,
            report.max_retry_cost,
            if report.clean() {
                "node survives"
            } else {
                "node lost"
            },
        );
    }

    // Act 3: the campaign over randomized placements.
    println!("\n=== Core-death campaign ({trials} trials) ===");
    let mut config = MulticoreCampaignConfig::new(trials, 0x2005_0a08);
    config.threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let result = run_multicore_campaign(&config);
    println!(
        "crash trials          : {:>6} (lock-based broken in {}, LEFT-RS in 0)",
        result.crash_trials, result.lock_failed_crash_trials
    );
    println!(
        "escalated trials      : {:>6} (lock-based clean in {})",
        result.escalated_trials, result.lock_clean_escalated_trials
    );
    println!(
        "lock-based damage     : {:>6} deadlocks, {} misses",
        result.lock_deadlocks, result.lock_misses
    );
    println!(
        "LEFT-RS damage        : {:>6} deadlocks, {} misses ({} clean trials)",
        result.leftrs_deadlocks, result.leftrs_misses, result.leftrs_clean_trials
    );
    println!(
        "LEFT-RS retry cost    : {:>6}us measured worst case vs {}us certified",
        result.leftrs_max_retry_cost_us, result.certified_retry_term_us
    );
    println!(
        "certified tasks       : {:>6} of {}",
        result.certified_tasks,
        result.certified_tasks + result.uncertified_tasks
    );
    assert!(
        result.claims_hold(),
        "every crash placement must break lock-based while LEFT-RS stays clean"
    );
    assert!(
        result.leftrs_max_retry_cost_us <= result.certified_retry_term_us,
        "measured retry cost must stay within the certified term"
    );
    println!("\nall claims hold: lock-free sharing survives every core-death placement");
}
