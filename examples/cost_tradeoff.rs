//! The paper's cost argument (§1): can one NLFT node replace two
//! fail-silent nodes?
//!
//! Optimising a fault-tolerant distributed system trades node complexity
//! against node count. This example compares a *duplex* of fail-silent
//! nodes against a *simplex* NLFT node for the central-unit role, under
//! both service assumptions:
//!
//! * omission-tolerant consumers (the §2.2 case: a previous value can be
//!   reused for a cycle or two) — one NLFT node rivals two FS nodes;
//! * strict consumers (every period must deliver) — the duplex wins, and
//!   the analysis quantifies by how much.
//!
//! ```text
//! cargo run --release --example cost_tradeoff
//! ```

use nlft::bbw::analytic::{central_unit, simplex_station, Policy, HOURS_PER_YEAR};
use nlft::bbw::params::BbwParams;
use nlft::reliability::model::{mttf_numeric, ReliabilityModel};

fn main() {
    let params = BbwParams::paper();
    let grid: Vec<f64> = (0..=12).map(|m| m as f64 * HOURS_PER_YEAR / 12.0).collect();

    let duplex_fs = central_unit(&params, Policy::FailSilent);
    let duplex_nlft = central_unit(&params, Policy::Nlft);
    let simplex_nlft_tol = simplex_station(&params, Policy::Nlft, true);
    let simplex_nlft_strict = simplex_station(&params, Policy::Nlft, false);
    let simplex_fs_tol = simplex_station(&params, Policy::FailSilent, true);

    println!("station reliability R(t), central-unit role:");
    println!(
        "{:>8}{:>16}{:>16}{:>20}{:>20}{:>18}",
        "month",
        "duplex FS",
        "duplex NLFT",
        "simplex NLFT tol",
        "simplex NLFT strict",
        "simplex FS tol"
    );
    for (i, &t) in grid.iter().enumerate() {
        println!(
            "{:>8}{:>16.4}{:>16.4}{:>20.4}{:>20.4}{:>18.4}",
            i,
            duplex_fs.reliability(t),
            duplex_nlft.reliability(t),
            simplex_nlft_tol.reliability(t),
            simplex_nlft_strict.reliability(t),
            simplex_fs_tol.reliability(t)
        );
    }

    println!("\nMTTF (years):");
    let mttf = |m: &dyn Fn(f64) -> f64| {
        struct F<'a>(&'a dyn Fn(f64) -> f64);
        impl ReliabilityModel for F<'_> {
            fn reliability(&self, t: f64) -> f64 {
                (self.0)(t)
            }
        }
        mttf_numeric(&F(m), 1e-7) / HOURS_PER_YEAR
    };
    println!(
        "  duplex FS            {:.2}",
        mttf(&|t| duplex_fs.reliability(t))
    );
    println!(
        "  duplex NLFT          {:.2}",
        mttf(&|t| duplex_nlft.reliability(t))
    );
    println!(
        "  simplex NLFT (tol)   {:.2}",
        mttf(&|t| simplex_nlft_tol.reliability(t))
    );
    println!(
        "  simplex NLFT (strict){:.2}",
        mttf(&|t| simplex_nlft_strict.reliability(t))
    );
    println!(
        "  simplex FS (tol)     {:.2}",
        mttf(&|t| simplex_fs_tol.reliability(t))
    );

    let t = HOURS_PER_YEAR;
    let r_duplex = duplex_fs.reliability(t);
    let r_simplex = simplex_nlft_tol.reliability(t);
    println!(
        "\nat one year: one omission-tolerant NLFT node achieves R = {:.4} vs {:.4} for TWO fail-silent nodes",
        r_simplex, r_duplex
    );
    if r_simplex >= r_duplex {
        println!("→ the paper's §1 claim holds: NLFT can halve the node count for this role.");
    } else {
        println!(
            "→ the duplex retains an edge of {:.4}; NLFT narrows the gap at half the hardware.",
            r_duplex - r_simplex
        );
    }
    println!(
        "strict-service caveat: without omission tolerance the simplex NLFT node reaches only R = {:.4},",
        simplex_nlft_strict.reliability(t)
    );
    let strict_fs = simplex_station(&params, Policy::FailSilent, false);
    println!(
        "while a strict simplex FS node collapses to R = {:.4} — TEM is what makes the simplex viable.",
        strict_fs.reliability(t)
    );

    // With omission tolerance, FS and NLFT simplex stations have the same
    // *reliability* (both survive transient windows); the NLFT gain there
    // is service continuity — far fewer and shorter outage windows:
    let outages_fs = params.lambda_t * params.coverage * HOURS_PER_YEAR;
    let outages_nlft =
        params.lambda_t * params.coverage * (params.p_om + params.p_fs) * HOURS_PER_YEAR;
    println!(
        "\nexpected outage windows per year: FS simplex {:.2} (3 s each) vs NLFT simplex {:.2}",
        outages_fs, outages_nlft
    );
    println!(
        "TEM masks {:.0}% of would-be outages entirely.",
        params.p_t * 100.0
    );
}
