//! Monte-Carlo cross-validation of the analytic reliability models.
//!
//! Simulates the joint six-node brake-by-wire system as a discrete-event
//! process (exponential fault arrivals, coverage and TEM-split draws,
//! repairs at the paper's rates) and compares the empirical reliability
//! curve against the Markov/fault-tree analysis at several mission times.
//!
//! ```text
//! cargo run --release --example bbw_montecarlo [replications]
//! ```

use nlft::bbw::analytic::{BbwSystem, Functionality, Policy};
use nlft::bbw::montecarlo::{run_monte_carlo, MonteCarloConfig};
use nlft::bbw::params::BbwParams;
use nlft::reliability::model::ReliabilityModel;
use nlft::sim::stats::Confidence;

fn main() {
    let replications: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let grid = vec![1_000.0, 2_000.0, 4_000.0, 6_000.0, 8_760.0];

    for (name, policy, functionality) in [
        ("FS / degraded", Policy::FailSilent, Functionality::Degraded),
        ("NLFT / degraded", Policy::Nlft, Functionality::Degraded),
        ("NLFT / full", Policy::Nlft, Functionality::Full),
    ] {
        let mut cfg = MonteCarloConfig::one_year(policy, functionality, replications, 0xCAFE);
        cfg.grid_hours = grid.clone();
        cfg.threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mc = run_monte_carlo(&cfg);
        let analytic = BbwSystem::new(&BbwParams::paper(), policy, functionality);

        println!("\n=== {name} ({replications} replications) ===");
        println!(
            "{:>10}{:>12}{:>12}{:>26}",
            "t (h)", "analytic", "MC", "95% CI"
        );
        let rel = mc.reliability();
        let bands = mc.curve.confidence_band(Confidence::C95);
        let mut inside = 0;
        for (i, &t) in grid.iter().enumerate() {
            let a = analytic.reliability(t);
            let (lo, hi) = bands[i];
            if (lo..=hi).contains(&a) {
                inside += 1;
            }
            println!(
                "{:>10.0}{:>12.4}{:>12.4}       [{:.4}, {:.4}]{}",
                t,
                a,
                rel[i],
                lo,
                hi,
                if (lo..=hi).contains(&a) {
                    ""
                } else {
                    "  <-- outside"
                }
            );
        }
        println!(
            "{} failures; conditional mean failure time {:.0} h; {inside}/{} analytic points inside the band",
            mc.failures,
            mc.failure_times.mean(),
            grid.len()
        );
    }

    println!("\nanalytic Markov/fault-tree solution and independent joint simulation agree.");
}
