//! Degraded-mode operation of the executable brake-by-wire cluster.
//!
//! Runs the six-node cluster (duplex central unit + four wheel nodes, all
//! real TM32 programs under the TEM kernel on a TDMA bus), then walks
//! through three incidents:
//!
//! 1. a transient fault in a wheel node that TEM masks — invisible on the
//!    bus;
//! 2. a wheel node going silent — membership excludes it, the central unit
//!    redistributes brake force to the remaining three wheels, and the
//!    node is reintegrated when it returns;
//! 3. a central-unit replica outage — masked entirely by the duplex pair.
//!
//! ```text
//! cargo run --release --example degraded_mode
//! ```

use nlft::bbw::cluster::{BbwCluster, ClusterInjection, CU_A, WHEELS};
use nlft::machine::fault::{FaultTarget, TransientFault};

fn show(cluster_name: &str, report: &nlft::bbw::cluster::ClusterReport) {
    println!("\n=== {cluster_name} ===");
    for r in &report.records {
        let forces: Vec<String> = r
            .wheel_force
            .iter()
            .map(|f| {
                f.map(|v| format!("{v:>4}"))
                    .unwrap_or_else(|| "   -".into())
            })
            .collect();
        let mut line = format!(
            "cycle {:>2}  pedal {:>4}  forces [{}]  members {}{}{}",
            r.cycle,
            r.pedal,
            forces.join(" "),
            r.members,
            if r.degraded { "  DEGRADED" } else { "" },
            if r.cu_single { "  CU-single" } else { "" },
        );
        for e in &r.events {
            line.push_str(&format!("  <{e:?}>"));
        }
        println!("{line}");
    }
    println!(
        "summary: degraded cycles {}, omissions {}, service lost: {}",
        report.degraded_cycles, report.omissions, report.service_lost
    );
}

fn main() {
    // Incident 1: a masked transient — a PC fault in wheel 2's controller.
    let mut cluster = BbwCluster::new();
    cluster.inject(ClusterInjection {
        cycle: 4,
        node: WHEELS[1],
        copy: 0,
        at_cycle: 6,
        fault: TransientFault {
            target: FaultTarget::Pc,
            mask: 1 << 20,
        },
    });
    let report = cluster.run(8, |_| 1200);
    show(
        "incident 1: transient in wheel node, masked by TEM",
        &report,
    );
    assert!(!report.service_lost && report.degraded_cycles == 0);

    // Incident 2: wheel 4 silent for six cycles → exclusion,
    // redistribution, reintegration.
    let mut cluster = BbwCluster::new();
    cluster.silence_node(WHEELS[3], 6);
    let report = cluster.run(14, |_| 1200);
    show("incident 2: wheel node outage -> degraded mode", &report);
    assert!(!report.service_lost);

    // Incident 3: central-unit replica A restarts; the pair hides it.
    let mut cluster = BbwCluster::new();
    cluster.silence_node(CU_A, 5);
    let report = cluster.run(12, |c| 800 + c * 50);
    show("incident 3: CU replica outage, duplex masks it", &report);
    assert!(!report.service_lost);

    println!("\nall three incidents survived; braking was continuous throughout.");
}
