//! The paper's dependability analysis (§3), end to end.
//!
//! Builds the four system configurations (fail-silent vs light-weight
//! NLFT nodes × full vs degraded functionality), prints Figure 12's
//! reliability curves and the MTTF comparison, the Figure 13 subsystem
//! breakdown, and a slice of the Figure 14 coverage sweep.
//!
//! ```text
//! cargo run --release --example bbw_reliability
//! ```

use nlft::bbw::analytic::{BbwSystem, Functionality, Policy, HOURS_PER_YEAR};
use nlft::bbw::params::BbwParams;
use nlft::reliability::model::ReliabilityModel;

fn main() {
    let params = BbwParams::paper();
    println!("parameters (paper §3.3):");
    println!(
        "  lambda_P = {:.2e}/h   lambda_T = {:.2e}/h",
        params.lambda_p, params.lambda_t
    );
    println!(
        "  C_D = {}   P_T = {}   P_OM = {}   P_FS = {}",
        params.coverage, params.p_t, params.p_om, params.p_fs
    );
    println!(
        "  mu_R = {:.0}/h (3 s)   mu_OM = {:.0}/h (1.6 s)",
        params.mu_r, params.mu_om
    );

    let configs = [
        ("FS / full", Policy::FailSilent, Functionality::Full),
        ("NLFT / full", Policy::Nlft, Functionality::Full),
        ("FS / degraded", Policy::FailSilent, Functionality::Degraded),
        ("NLFT / degraded", Policy::Nlft, Functionality::Degraded),
    ];

    println!("\nFigure 12 — system reliability R(t) over one year:");
    print!("{:>10}", "month");
    for (name, _, _) in &configs {
        print!("{name:>18}");
    }
    println!();
    let systems: Vec<(&str, BbwSystem)> = configs
        .iter()
        .map(|&(name, p, f)| (name, BbwSystem::new(&params, p, f)))
        .collect();
    for month in 0..=12 {
        let t = month as f64 * HOURS_PER_YEAR / 12.0;
        print!("{month:>10}");
        for (_, sys) in &systems {
            print!("{:>18.4}", sys.reliability(t));
        }
        println!();
    }

    println!("\nmean time to failure:");
    for (name, sys) in &systems {
        println!(
            "  {:<16} {:.3} years",
            name,
            sys.mttf_hours() / HOURS_PER_YEAR
        );
    }

    let fs = &systems[2].1;
    let nlft = &systems[3].1;
    let r_fs = fs.reliability(HOURS_PER_YEAR);
    let r_nlft = nlft.reliability(HOURS_PER_YEAR);
    println!(
        "\nheadline (degraded mode): R(1y) {:.3} -> {:.3} (+{:.0}%)   [paper: 0.45 -> 0.70, +55%]",
        r_fs,
        r_nlft,
        (r_nlft / r_fs - 1.0) * 100.0
    );
    println!(
        "headline (degraded mode): MTTF {:.2}y -> {:.2}y (+{:.0}%)   [paper: 1.2 -> 1.9, +~60%]",
        fs.mttf_hours() / HOURS_PER_YEAR,
        nlft.mttf_hours() / HOURS_PER_YEAR,
        (nlft.mttf_hours() / fs.mttf_hours() - 1.0) * 100.0
    );

    println!("\nFigure 13 — subsystem reliabilities at one year:");
    for (name, sys) in &systems[2..] {
        println!(
            "  {:<16} CU duplex {:.4}   wheel subsystem {:.4}  (bottleneck: wheels)",
            name,
            sys.central_unit().reliability(HOURS_PER_YEAR),
            sys.wheel_subsystem().reliability(HOURS_PER_YEAR)
        );
    }

    println!("\nFigure 14 — R(5 h), degraded mode, transient rate x100:");
    for coverage in [0.9, 0.99, 0.999] {
        let p = BbwParams::paper()
            .with_coverage(coverage)
            .with_transient_multiplier(100.0);
        let fs = BbwSystem::new(&p, Policy::FailSilent, Functionality::Degraded);
        let nlft = BbwSystem::new(&p, Policy::Nlft, Functionality::Degraded);
        println!(
            "  C_D = {:<7} FS {:.6}   NLFT {:.6}",
            coverage,
            fs.reliability(5.0),
            nlft.reliability(5.0)
        );
    }
    println!(
        "\ncoverage dominates; the NLFT advantage grows with the fault rate — as in the paper."
    );
}
