//! Integration: the full brake-by-wire stack — executable cluster,
//! analytic models and Monte-Carlo simulation telling one consistent story.

use nlft::bbw::analytic::{BbwSystem, Functionality, Policy, HOURS_PER_YEAR};
use nlft::bbw::cluster::{BbwCluster, ClusterInjection, CU_A, CU_B, WHEELS};
use nlft::bbw::montecarlo::{run_monte_carlo, MonteCarloConfig};
use nlft::bbw::params::BbwParams;
use nlft::machine::fault::{FaultTarget, TransientFault};
use nlft::net::bus::BusConfig;
use nlft::net::timing::{derive_repair_rates, paper_membership, BusTiming, NodeRecoveryTimes};
use nlft::reliability::model::ReliabilityModel;
use nlft::sim::stats::Confidence;

#[test]
fn cluster_brakes_proportionally_to_pedal() {
    let mut cluster = BbwCluster::new();
    let report = cluster.run(16, |c| (c * 250).min(4000));
    assert!(!report.service_lost);
    // Total wheel force grows as the pedal is pressed.
    let total = |idx: usize| -> u32 {
        report.records[idx]
            .wheel_force
            .iter()
            .map(|f| f.unwrap_or(0))
            .sum()
    };
    assert!(total(15) > total(5));
}

#[test]
fn single_wheel_outage_keeps_three_quarters_of_braking() {
    let mut cluster = BbwCluster::new();
    cluster.silence_node(WHEELS[0], 6);
    let report = cluster.run(14, |_| 2000);
    assert!(!report.service_lost, "degraded mode is survivable");
    // Degraded-mode cycles exist and redistribute force.
    let degraded: Vec<_> = report.records.iter().filter(|r| r.degraded).collect();
    assert!(!degraded.is_empty());
    // Eventually back to full membership.
    assert_eq!(report.records.last().unwrap().members, 6);
}

#[test]
fn duplex_cu_masks_one_replica_fault_but_not_two() {
    // One replica: fine.
    let mut cluster = BbwCluster::new();
    cluster.silence_node(CU_B, 4);
    assert!(!cluster.run(10, |_| 1500).service_lost);
    // Both replicas: braking gone — exactly the 0→F transition of Fig. 7.
    let mut cluster = BbwCluster::new();
    cluster.silence_node(CU_A, 6);
    cluster.silence_node(CU_B, 6);
    assert!(cluster.run(10, |_| 1500).service_lost);
}

#[test]
fn masked_transients_never_reach_the_bus() {
    let mut cluster = BbwCluster::new();
    for (i, &wheel) in WHEELS.iter().enumerate() {
        cluster.inject(ClusterInjection {
            cycle: 3 + i as u32,
            node: wheel,
            copy: (i % 2) as u32,
            at_cycle: 5,
            fault: TransientFault {
                target: FaultTarget::Pc,
                mask: 1 << 20,
            },
        });
    }
    let report = cluster.run(12, |_| 1000);
    assert_eq!(report.omissions, 0, "all four transients masked locally");
    assert_eq!(report.degraded_cycles, 0);
    assert!(!report.service_lost);
}

#[test]
fn analytic_cluster_and_montecarlo_agree_on_the_ordering() {
    // The three views must agree on the paper's core claim: NLFT strictly
    // beats FS, and degraded strictly beats full functionality.
    let params = BbwParams::paper();
    let t = HOURS_PER_YEAR;
    let r = |p, f| BbwSystem::new(&params, p, f).reliability(t);
    assert!(
        r(Policy::Nlft, Functionality::Degraded) > r(Policy::FailSilent, Functionality::Degraded)
    );
    assert!(r(Policy::Nlft, Functionality::Full) > r(Policy::FailSilent, Functionality::Full));
    assert!(r(Policy::Nlft, Functionality::Degraded) > r(Policy::Nlft, Functionality::Full));

    let mc = |p, f| {
        let mut cfg = MonteCarloConfig::one_year(p, f, 1_500, 0xABCD);
        cfg.grid_hours = vec![t];
        run_monte_carlo(&cfg).reliability()[0]
    };
    assert!(
        mc(Policy::Nlft, Functionality::Degraded) > mc(Policy::FailSilent, Functionality::Degraded)
    );
}

#[test]
fn montecarlo_brackets_analytic_at_one_year() {
    for (policy, functionality) in [
        (Policy::FailSilent, Functionality::Degraded),
        (Policy::Nlft, Functionality::Degraded),
    ] {
        let mut cfg = MonteCarloConfig::one_year(policy, functionality, 2_500, 0x1111);
        cfg.grid_hours = vec![HOURS_PER_YEAR];
        let mc = run_monte_carlo(&cfg);
        let analytic =
            BbwSystem::new(&BbwParams::paper(), policy, functionality).reliability(HOURS_PER_YEAR);
        let (lo, hi) = mc.curve.confidence_band(Confidence::C99)[0];
        assert!(
            (lo..=hi).contains(&analytic),
            "{policy:?}/{functionality:?}: analytic {analytic} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn uncovered_errors_dominate_short_missions() {
    // At 5 hours the repairable states contribute almost nothing; the
    // system unreliability is essentially the uncovered-error rate × t —
    // the structure behind Fig. 14's coverage sensitivity.
    let params = BbwParams::paper();
    let sys = BbwSystem::new(&params, Policy::Nlft, Functionality::Degraded);
    let t = 5.0;
    let unrel = 1.0 - sys.reliability(t);
    let uncovered_only = 6.0 * params.uncovered_rate() * t; // 6 nodes
    assert!(
        (unrel - uncovered_only).abs() / uncovered_only < 0.15,
        "short-mission unreliability {unrel:.3e} should track uncovered rate {uncovered_only:.3e}"
    );
}

#[test]
fn repair_rates_derived_from_the_network_reproduce_the_headline() {
    // Full pipeline: bus geometry + membership thresholds + node recovery
    // times → μ_R/μ_OM → Markov models → the paper's conclusion. No
    // hand-entered repair constants anywhere.
    let config = BusConfig::round_robin(6, 0);
    let rates = derive_repair_rates(
        &BusTiming::paper_like(),
        &config,
        &paper_membership(&config),
        &NodeRecoveryTimes::paper_like(),
    );
    let mut params = BbwParams::paper();
    params.mu_r = rates.mu_r;
    params.mu_om = rates.mu_om;
    params.validate().expect("derived rates are valid");

    let fs = BbwSystem::new(&params, Policy::FailSilent, Functionality::Degraded);
    let nlft = BbwSystem::new(&params, Policy::Nlft, Functionality::Degraded);
    let (r_fs, r_nlft) = (
        fs.reliability(HOURS_PER_YEAR),
        nlft.reliability(HOURS_PER_YEAR),
    );
    assert!((r_fs - 0.4643).abs() < 0.01, "FS {r_fs}");
    assert!((r_nlft - 0.7117).abs() < 0.01, "NLFT {r_nlft}");
}
