//! Guard against dependency creep: the workspace must resolve from path
//! dependencies alone, with nothing drawn from a registry or a git source.
//! This is what keeps the build reproducible on an air-gapped machine.

use std::process::Command;

/// Extracts every `"id":"..."` value from the metadata JSON. Package ids
/// carry their source as a prefix (`path+file://...`, `registry+https://...`),
/// so this is enough to audit the resolved graph without a JSON parser.
fn package_ids(metadata: &str) -> Vec<&str> {
    let mut ids = Vec::new();
    let mut rest = metadata;
    while let Some(at) = rest.find("\"id\":\"") {
        let tail = &rest[at + 6..];
        let end = tail.find('"').expect("terminated string");
        ids.push(&tail[..end]);
        rest = &tail[end..];
    }
    ids
}

#[test]
fn workspace_has_no_external_dependencies() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let out = Command::new(cargo)
        .args(["metadata", "--format-version", "1", "--offline"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("cargo metadata runs");
    assert!(
        out.status.success(),
        "cargo metadata failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metadata = String::from_utf8(out.stdout).expect("utf-8 metadata");

    assert!(
        !metadata.contains("registry+"),
        "a registry dependency crept into the workspace"
    );
    assert!(
        !metadata.contains("git+"),
        "a git dependency crept into the workspace"
    );

    let ids = package_ids(&metadata);
    assert!(ids.len() >= 10, "metadata parse looks vacuous: {ids:?}");
    for id in ids {
        assert!(
            id.starts_with("path+file://"),
            "package resolved from outside the workspace: {id}"
        );
        let name = id.rsplit('#').next().unwrap_or(id);
        assert!(
            name.starts_with("nlft"),
            "unexpected package in the graph: {id}"
        );
    }
}
