//! Integration: public-API ergonomics of the facade crate — everything a
//! downstream user needs is reachable, thread-safe where it should be, and
//! deterministic across threads.

use nlft::bbw::analytic::{BbwSystem, Functionality, Policy};
use nlft::bbw::params::BbwParams;
use nlft::kernel::analysis::{analyse, TemCosts};
use nlft::kernel::task::{Criticality, Priority, TaskId, TaskSet, TaskSpecBuilder};
use nlft::machine::workloads;
use nlft::net::bus::{Bus, BusConfig};
use nlft::net::frame::NodeId;
use nlft::reliability::model::{Exponential, ReliabilityModel};
use nlft::reliability::rbd::Block;
use nlft::sim::rng::RngStream;
use nlft::sim::time::SimDuration;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn key_types_are_send_and_sync() {
    assert_send_sync::<BbwParams>();
    assert_send_sync::<BbwSystem>();
    assert_send_sync::<Block>();
    assert_send_sync::<TaskSet>();
    assert_send_sync::<workloads::Workload>();
    assert_send_sync::<RngStream>();
    assert_send_sync::<Bus>();
}

#[test]
fn analysis_is_usable_from_multiple_threads() {
    let sys = std::sync::Arc::new(BbwSystem::new(
        &BbwParams::paper(),
        Policy::Nlft,
        Functionality::Degraded,
    ));
    let handles: Vec<_> = (1..=4)
        .map(|i| {
            let sys = sys.clone();
            std::thread::spawn(move || sys.reliability(i as f64 * 1000.0))
        })
        .collect();
    let mut values: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Decreasing in t.
    let sorted = {
        let mut v = values.clone();
        v.sort_by(|a, b| b.partial_cmp(a).unwrap());
        v
    };
    assert_eq!(values, sorted);
    values.dedup();
    assert_eq!(values.len(), 4);
}

#[test]
fn building_blocks_compose_across_crates() {
    // An RBD over exponential components mirrors the facade's Fig. 8 model.
    let node = Block::component(Exponential::new(2.002e-4));
    let wheel_subsystem = Block::k_of_n(3, vec![node.clone(), node.clone(), node.clone(), node]);
    let r = wheel_subsystem.reliability(8_760.0);
    assert!(r > 0.0 && r < 1.0);

    // A kernel task set validated by RTA.
    let set: TaskSet = [TaskSpecBuilder::new(TaskId(1), "brake")
        .period(SimDuration::from_millis(5))
        .wcet(SimDuration::from_micros(600))
        .priority(Priority::HIGHEST)
        .criticality(Criticality::Critical)
        .build()
        .unwrap()]
    .into_iter()
    .collect();
    assert!(analyse(&set).is_schedulable());
    let _ = TemCosts::nominal();

    // A bus cycle via the facade path.
    let mut bus = Bus::new(BusConfig::round_robin(2, 0));
    bus.start_cycle();
    bus.transmit_static(NodeId(0), vec![1]).unwrap();
    assert_eq!(bus.finish_cycle().static_frames.len(), 1);
}

#[test]
fn workload_machines_are_independent() {
    // Two instantiations of a workload never share state.
    let w = workloads::pid_controller();
    let mut a = w.instantiate();
    let mut b = w.instantiate();
    a.set_input(0, 100);
    a.set_input(1, 0);
    b.set_input(0, 4000);
    b.set_input(1, 0);
    a.run(50_000);
    b.run(50_000);
    assert_ne!(a.output(0), b.output(0));
}

#[test]
fn errors_implement_std_error() {
    fn assert_error<E: std::error::Error>() {}
    assert_error::<nlft::sim::event::ScheduleError>();
    assert_error::<nlft::machine::machine::Exception>();
    assert_error::<nlft::machine::asm::AsmError>();
    assert_error::<nlft::kernel::task::TaskSpecError>();
    assert_error::<nlft::kernel::integrity::IntegrityError>();
    assert_error::<nlft::net::frame::FrameError>();
    assert_error::<nlft::net::bus::TransmitError>();
    assert_error::<nlft::reliability::ctmc::CtmcError>();
    assert_error::<nlft::reliability::linalg::LinalgError>();
    assert_error::<nlft::bbw::params::ParamError>();
}
