//! Integration: a fault-injection campaign over the *preemptive* TEM
//! kernel — the architecture closest to the paper's real system. A critical
//! task shares the CPU with a high-rate monitor; seeded transients strike
//! at random instants; every delivered result must be golden and the large
//! majority of injections must be masked or benign.

use nlft::kernel::preemptive::{PreemptiveExecutive, ResidentTask};
use nlft::kernel::task::{Priority, TaskId};
use nlft::machine::fault::FaultSpace;
use nlft::sim::rng::RngStream;

const CRITICAL_SRC: &str = "
        ldi r0, 0
        ldi r1, 60
        ldi r2, 1
        ldi r3, 5
    acc:
        add r0, r0, r3
        sub r1, r1, r2
        jnz acc
        out r0, port0
        halt";
const GOLDEN: u32 = 300;

const MONITOR_SRC: &str = "
        in  r0, port1
        addi r0, r0, 3
        out r0, port2
        halt";

fn build() -> PreemptiveExecutive {
    let mut exec = PreemptiveExecutive::new(2);
    exec.add_task(
        ResidentTask {
            id: TaskId(1),
            name: "monitor".into(),
            period_cycles: 300,
            deadline_cycles: 300,
            budget_cycles: 100,
            priority: Priority(0),
            inputs: vec![(1, 40)],
            output_port: 2,
            critical: false,
        },
        MONITOR_SRC,
    )
    .expect("monitor loads");
    exec.add_task(
        ResidentTask {
            id: TaskId(2),
            name: "critical".into(),
            period_cycles: 2_000,
            deadline_cycles: 2_000,
            budget_cycles: 800,
            priority: Priority(1),
            inputs: vec![],
            output_port: 0,
            critical: true,
        },
        CRITICAL_SRC,
    )
    .expect("critical loads");
    exec
}

#[test]
fn preemptive_tem_campaign_delivers_only_golden_values() {
    let root = RngStream::new(0x93EE);
    let space = FaultSpace::cpu_only();
    let trials = 150u64;
    let mut masked = 0u64;
    let mut omissions = 0u64;
    let mut clean = 0u64;

    for trial in 0..trials {
        let mut rng = root.fork_indexed("preemptive-trial", trial);
        let mut exec = build();
        let at_cycle = rng.uniform_range(1, 6_000);
        exec.inject(at_cycle, TaskId(2), space.sample(&mut rng));
        let report = exec.run(8_000);
        let s = &report.tasks[&TaskId(2)];

        // The core guarantee: whatever was delivered is golden.
        if let Some(v) = s.last_output {
            assert_eq!(v, GOLDEN, "trial {trial}: wrong value delivered");
        }
        // Aggregate classification.
        if s.masked > 0 {
            masked += 1;
        } else if s.omissions > 0 {
            omissions += 1;
        } else {
            clean += 1;
        }
        // The monitor is never disturbed by the victim's recoveries.
        assert_eq!(report.tasks[&TaskId(1)].deadline_misses, 0, "trial {trial}");
    }

    // The large majority of injections are benign or masked; omissions are
    // rare; nothing is ever wrong.
    assert_eq!(masked + omissions + clean, trials);
    assert!(
        omissions * 10 < trials,
        "omissions should be rare: {omissions}/{trials}"
    );
    assert!(masked > 0, "some injections must require active masking");
}

#[test]
fn preemptive_campaign_is_deterministic() {
    let run_once = || {
        let root = RngStream::new(0xD00D);
        let space = FaultSpace::cpu_only();
        let mut results = Vec::new();
        for trial in 0..30u64 {
            let mut rng = root.fork_indexed("t", trial);
            let mut exec = build();
            exec.inject(
                rng.uniform_range(1, 6_000),
                TaskId(2),
                space.sample(&mut rng),
            );
            let report = exec.run(8_000);
            let s = &report.tasks[&TaskId(2)];
            results.push((s.completed, s.copies, s.masked, s.omissions, s.last_output));
        }
        results
    };
    assert_eq!(run_once(), run_once());
}
