//! Integration: the full methodology pipeline of the paper —
//! fault-injection campaign → parameter estimates → analytic reliability
//! model. The measured parameters, whatever their exact values, must
//! reproduce the paper's qualitative conclusions when fed into the
//! system-level models.

use nlft::bbw::analytic::{BbwSystem, Functionality, Policy, HOURS_PER_YEAR};
use nlft::bbw::params::BbwParams;
use nlft::core::campaign::{run_campaign, CampaignConfig};
use nlft::core::policy::NodePolicy;
use nlft::reliability::model::ReliabilityModel;

/// Runs a campaign and converts its estimates into model parameters.
fn measured_params(trials: u64) -> BbwParams {
    let mut config = CampaignConfig::new(trials, 0x0200_5D5A, NodePolicy::LightweightNlft);
    config.threads = 4;
    let result = run_campaign(&config);

    let c_d = result.counts.coverage().estimate();
    let p_t = result.counts.p_t().estimate();
    let p_om = result.counts.p_om().estimate();
    let p_fs = result.counts.p_fs().estimate();
    // Normalise the split exactly (counting gives it within rounding).
    let sum = p_t + p_om + p_fs;
    assert!(sum > 0.0);

    let mut params = BbwParams::paper();
    params.coverage = c_d.clamp(0.5, 1.0);
    params.p_t = p_t / sum;
    params.p_om = p_om / sum;
    params.p_fs = p_fs / sum;
    params
        .validate()
        .expect("measured parameters are consistent");
    params
}

#[test]
fn measured_parameters_are_in_paper_ballpark() {
    let p = measured_params(4_000);
    // The paper assumed P_T = 0.90; our structural campaign should also
    // find that TEM masks the large majority of detected transients.
    assert!(p.p_t > 0.7, "P_T = {}", p.p_t);
    // Kernel share drives P_FS; configured at 5%, estimate should be near.
    assert!(p.p_fs < 0.3, "P_FS = {}", p.p_fs);
    // Coverage is high (TEM + hardware EDMs catch almost everything).
    assert!(p.coverage > 0.9, "C_D = {}", p.coverage);
}

#[test]
fn measured_parameters_reproduce_the_headline_conclusion() {
    let measured = measured_params(3_000);
    let fs = BbwSystem::new(&measured, Policy::FailSilent, Functionality::Degraded);
    let nlft = BbwSystem::new(&measured, Policy::Nlft, Functionality::Degraded);
    let r_fs = fs.reliability(HOURS_PER_YEAR);
    let r_nlft = nlft.reliability(HOURS_PER_YEAR);
    assert!(
        r_nlft > r_fs,
        "NLFT must beat FS with measured parameters too: {r_nlft} vs {r_fs}"
    );
    let mttf_gain = nlft.mttf_hours() / fs.mttf_hours();
    assert!(mttf_gain > 1.2, "MTTF gain {mttf_gain}");
}

#[test]
fn fs_campaign_justifies_fail_silent_modelling() {
    // The FS campaign measures the coverage a *fail-silent* node achieves
    // without TEM; it must be clearly below the NLFT campaign's coverage —
    // that delta is the entire premise of the paper.
    let mut fs_cfg = CampaignConfig::new(3_000, 0xFEED, NodePolicy::FailSilent);
    fs_cfg.threads = 4;
    let mut nlft_cfg = CampaignConfig::new(3_000, 0xFEED, NodePolicy::LightweightNlft);
    nlft_cfg.threads = 4;
    let fs = run_campaign(&fs_cfg);
    let nlft = run_campaign(&nlft_cfg);
    let (c_fs, c_nlft) = (
        fs.counts.coverage().estimate(),
        nlft.counts.coverage().estimate(),
    );
    assert!(c_nlft > c_fs, "TEM adds coverage: {c_nlft} vs {c_fs}");
    // And the FS node never produces omissions (it is silent instead).
    assert_eq!(fs.modes.omission, 0);
    assert!(nlft.modes.masked > nlft.modes.fail_silent);
}
