//! Integration: the SHARPE-style model files in `models/` stay in lockstep
//! with the native analytic implementation.

use nlft::bbw::analytic::{BbwSystem, Functionality, Policy, HOURS_PER_YEAR};
use nlft::bbw::params::BbwParams;
use nlft::reliability::lang;
use nlft::reliability::model::ReliabilityModel;

const BBW_MODEL: &str = include_str!("../models/bbw_nlft_degraded.sharpe");
const BBW_FS_MODEL: &str = include_str!("../models/bbw_fs_degraded.sharpe");

#[test]
fn shipped_model_file_parses() {
    let set = lang::parse(BBW_MODEL).expect("model file must stay valid");
    assert_eq!(set.model_names(), vec!["cu", "system", "wn"]);
    assert_eq!(set.binding("lambda_p"), Some(1.82e-5));
}

#[test]
fn shipped_model_matches_native_analytic_everywhere() {
    let set = lang::parse(BBW_MODEL).unwrap();
    let native = BbwSystem::new(&BbwParams::paper(), Policy::Nlft, Functionality::Degraded);
    for i in 0..=24 {
        let t = i as f64 * HOURS_PER_YEAR / 24.0;
        let dsl = set.reliability("system", t).unwrap();
        let nat = native.reliability(t);
        assert!(
            (dsl - nat).abs() < 1e-9,
            "divergence at t={t}: dsl {dsl} vs native {nat}"
        );
    }
}

#[test]
fn shipped_model_subsystem_mttfs_match() {
    let set = lang::parse(BBW_MODEL).unwrap();
    let native = BbwSystem::new(&BbwParams::paper(), Policy::Nlft, Functionality::Degraded);
    let (cu_native, wn_native) = native.subsystem_mttf_hours().unwrap();
    let cu_dsl = set.markov_mttf("cu").unwrap().unwrap();
    let wn_dsl = set.markov_mttf("wn").unwrap().unwrap();
    assert!((cu_dsl - cu_native).abs() / cu_native < 1e-9);
    assert!((wn_dsl - wn_native).abs() / wn_native < 1e-9);
}

#[test]
fn dsl_supports_whole_experiment_sweeps() {
    // A coverage sweep driven entirely by regenerating the text model —
    // what a SHARPE user would script.
    let mut last = 0.0;
    for cov in [0.9, 0.99, 0.999] {
        let src = BBW_MODEL.replace("bind cov      0.99", &format!("bind cov      {cov}"));
        let set = lang::parse(&src).unwrap();
        let r = set.reliability("system", 5.0).unwrap();
        assert!(r > last, "higher coverage must increase R(5h)");
        last = r;
    }
}

#[test]
fn fs_model_file_matches_native_and_loses_to_nlft() {
    let fs_set = lang::parse(BBW_FS_MODEL).expect("FS model parses");
    let native_fs = BbwSystem::new(
        &BbwParams::paper(),
        Policy::FailSilent,
        Functionality::Degraded,
    );
    for i in 0..=12 {
        let t = i as f64 * HOURS_PER_YEAR / 12.0;
        let dsl = fs_set.reliability("system", t).unwrap();
        assert!(
            (dsl - native_fs.reliability(t)).abs() < 1e-9,
            "FS divergence at t={t}"
        );
    }
    // The two model files reproduce the headline comparison between them.
    let nlft_set = lang::parse(BBW_MODEL).unwrap();
    let r_fs = fs_set.reliability("system", HOURS_PER_YEAR).unwrap();
    let r_nlft = nlft_set.reliability("system", HOURS_PER_YEAR).unwrap();
    assert!((r_fs - 0.4643).abs() < 0.001);
    assert!((r_nlft - 0.7117).abs() < 0.001);
    assert!(r_nlft / r_fs > 1.5);
}
