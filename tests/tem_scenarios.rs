//! Integration: the four TEM scenarios of the paper's Figure 3, exercised
//! through the public facade on every standard workload.

use nlft::kernel::tem::{CopyResult, InjectionPlan, JobOutcome, TemConfig, TemExecutor};
use nlft::machine::edm::Edm;
use nlft::machine::fault::{FaultTarget, TransientFault};
use nlft::machine::isa::Reg;
use nlft::machine::workloads;

fn executor_for(w: &workloads::Workload, inputs: &[u32]) -> TemExecutor {
    let (_, wcet) = w.golden_run(inputs);
    TemExecutor::new(TemConfig::with_budget(wcet * 2))
}

fn default_inputs(w: &workloads::Workload) -> Vec<u32> {
    w.input_ports.iter().map(|_| 777).collect()
}

#[test]
fn scenario_i_every_workload_delivers_with_two_copies() {
    for w in workloads::standard_workloads() {
        let inputs = default_inputs(&w);
        let tem = executor_for(&w, &inputs);
        let mut m = w.instantiate();
        let report = tem.run_job(&mut m, &w, &inputs, None);
        assert_eq!(
            report.outcome,
            JobOutcome::DeliveredClean,
            "workload {}",
            w.name
        );
        assert_eq!(report.executions(), 2, "workload {}", w.name);
    }
}

#[test]
fn scenario_ii_comparison_then_vote_recovers_golden_output() {
    let w = workloads::checksum_block();
    let (golden, _) = w.golden_run(&[]);
    let tem = executor_for(&w, &[]);
    let mut m = w.instantiate();
    // Corrupt the running checksum silently in copy 1.
    let plan = InjectionPlan {
        copy: 1,
        at_cycle: 90,
        fault: TransientFault {
            target: FaultTarget::Register(Reg::R0),
            mask: 1 << 9,
        },
    };
    let report = tem.run_job(&mut m, &w, &[], Some(plan));
    match report.outcome {
        JobOutcome::DeliveredMasked { detected_by } => {
            assert_eq!(detected_by, Edm::TemComparison)
        }
        other => panic!("expected comparison-masked, got {other:?}"),
    }
    assert_eq!(report.executions(), 3);
    assert_eq!(
        report.outputs.unwrap()[0],
        golden[0],
        "vote restored golden"
    );
}

#[test]
fn scenarios_iii_iv_hardware_detection_and_replacement() {
    // PC faults on the PID controller; SP fault on the stack-using
    // workload (an idle stack pointer would make the fault latent).
    let pid = workloads::pid_controller();
    let stacked = workloads::stacked_average();
    let cases: [(&workloads::Workload, Vec<u32>, u32, FaultTarget, u32); 3] = [
        (&pid, vec![2000, 1500], 1, FaultTarget::Pc, 1 << 20), // scenario iii
        (&pid, vec![2000, 1500], 0, FaultTarget::Pc, 1 << 20), // scenario iv
        (&stacked, vec![100, 200, 300], 0, FaultTarget::Sp, 1 << 15),
    ];
    for (w, inputs, copy, target, mask) in cases {
        let tem = executor_for(w, &inputs);
        let (golden, _) = w.golden_run(&inputs);
        let mut m = w.instantiate();
        let plan = InjectionPlan {
            copy,
            at_cycle: 6,
            fault: TransientFault { target, mask },
        };
        let report = tem.run_job(&mut m, w, &inputs, Some(plan));
        assert!(
            matches!(report.outcome, JobOutcome::DeliveredMasked { .. }),
            "copy {copy} {target:?}: {:?}",
            report.outcome
        );
        // The EDM-killed copy appears in the trace…
        assert!(report
            .copies
            .iter()
            .any(|c| matches!(c.result, CopyResult::Detected(_))));
        // …and the replacement reproduces the golden output.
        assert_eq!(report.outputs.unwrap()[0], golden[0]);
    }
}

#[test]
fn deadline_check_produces_omission_not_wrong_output() {
    // Budget-overrun fault with a deadline sized for exactly two copies:
    // TEM must deliver nothing rather than something wrong or late.
    let w = workloads::sum_series();
    let (_, wcet) = w.golden_run(&[200]);
    let mut cfg = TemConfig::with_budget(wcet + 30);
    cfg.deadline_cycles = (wcet + 30) * 2 + cfg.compare_cycles;
    let tem = TemExecutor::new(cfg);
    let mut m = w.instantiate();
    let plan = InjectionPlan {
        copy: 0,
        at_cycle: 40,
        fault: TransientFault {
            target: FaultTarget::Register(Reg::R0),
            mask: 1 << 29,
        },
    };
    let report = tem.run_job(&mut m, &w, &[200], Some(plan));
    assert!(matches!(report.outcome, JobOutcome::Omission { .. }));
    assert!(report.outputs.is_none());
    assert!(report.cycles_used <= tem.config().deadline_cycles + tem.config().copy_budget);
}

#[test]
fn status_register_fault_is_masked() {
    // A flipped condition flag changes branch decisions in one copy only;
    // TEM's comparison + vote must still deliver golden output.
    let w = workloads::sum_series();
    let (golden, _) = w.golden_run(&[50]);
    let tem = executor_for(&w, &[50]);
    let mut m = w.instantiate();
    let plan = InjectionPlan {
        copy: 0,
        at_cycle: 20,
        fault: TransientFault {
            target: FaultTarget::Status,
            mask: 0b01,
        },
    };
    let report = tem.run_job(&mut m, &w, &[50], Some(plan));
    assert!(report.outcome.delivered());
    assert_eq!(report.outputs.unwrap()[0], golden[0]);
}

#[test]
fn repeated_jobs_on_same_machine_accumulate_pid_state() {
    let w = workloads::pid_controller();
    let inputs = [1000u32, 600];
    let tem = executor_for(&w, &inputs);
    let mut m = w.instantiate();
    let first = tem.run_job(&mut m, &w, &inputs, None);
    let second = tem.run_job(&mut m, &w, &inputs, None);
    let (u1, u2) = (
        first.outputs.unwrap()[0].unwrap(),
        second.outputs.unwrap()[0].unwrap(),
    );
    assert!(
        u2 > u1,
        "integral term must persist across delivered jobs: {u1} -> {u2}"
    );
}
