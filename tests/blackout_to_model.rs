//! Integration: cluster cold-start after a total blackout, analytically
//! and by simulation. The startup protocol's deterministic worst case —
//! every node reset in the same slot, zero stagger — is unfolded into a
//! linear absorbing DTMC (`cold_start_chain`) and solved with the
//! reliability crate's fundamental-matrix machinery; the blackout
//! campaign then measures the same quantity — cycles from reset to
//! Active — on the executed six-node cluster. The two routes are derived
//! independently (phase arithmetic vs. a cycle-driven state machine fed
//! by real bus deliveries) and must agree exactly.

use nlft::bbw::blackout::{run_blackout_campaign, BlackoutCampaignConfig};
use nlft::net::startup::{cold_start_chain, BASE_LISTEN_TIMEOUT};
use nlft::reliability::dtmc::AbsorbingDtmc;

#[test]
fn analytic_cold_start_latency_matches_the_simulated_blackout() {
    // Simulated side: the deterministic full blackout. All six nodes
    // reset together, the slot-0 node has the shortest listen timeout
    // and always wins the contention, and — because the whole cluster
    // marches through the same phases — every node integrates with the
    // winner's latency.
    let config = BlackoutCampaignConfig::full_blackout(4, 0xB1AC_2005);
    let result = run_blackout_campaign(&config);
    assert_eq!(result.full_recoveries, result.trials);
    assert!(!result.integration_latencies.is_empty());

    // Analytic side: `down_cycles` powered-down states, the winner's
    // listen window, one contention cycle, and two integration cycles —
    // the marker cycle brings only the winner back on the bus, its first
    // set-point cycle has two senders, and the cycle after that all six,
    // which is the first majority anyone can hear.
    let (matrix, start, absorbing) = cold_start_chain(config.down_cycles, BASE_LISTEN_TIMEOUT, 2);
    let dtmc = AbsorbingDtmc::new(matrix, &absorbing).expect("cold-start chain is absorbing");
    let analytic = dtmc
        .expected_steps_to_absorption(start)
        .expect("Active is reachable");

    let simulated = result.integration_latency_mean();
    assert!(
        (analytic - simulated).abs() < 1e-9,
        "analytic {analytic} cycles vs simulated {simulated} cycles"
    );
    // The scenario is fully deterministic, so not just the mean but every
    // single latency must sit on the analytic value.
    assert!(
        result
            .integration_latencies
            .iter()
            .all(|&l| f64::from(l) == analytic),
        "latency spread in a deterministic blackout: {:?}",
        result.integration_latencies
    );
}

#[test]
fn cold_start_absorbs_exactly_on_schedule() {
    // Deterministic chain: zero probability of being Active one cycle
    // early, certainty at the expected step.
    let (matrix, start, absorbing) = cold_start_chain(2, BASE_LISTEN_TIMEOUT, 2);
    let dtmc = AbsorbingDtmc::new(matrix, &absorbing).unwrap();
    let steps = dtmc.expected_steps_to_absorption(start).unwrap().round() as u32;
    let before = dtmc
        .absorption_probability(start, steps - 1, &absorbing)
        .unwrap();
    let at = dtmc
        .absorption_probability(start, steps, &absorbing)
        .unwrap();
    assert!(before < 1e-12, "active early: {before}");
    assert!((at - 1.0).abs() < 1e-12, "not active on schedule: {at}");
}

#[test]
fn cold_start_latency_stretches_with_outage_depth() {
    let steps = |down: u32, timeout: u32| {
        let (matrix, start, absorbing) = cold_start_chain(down, timeout, 2);
        AbsorbingDtmc::new(matrix, &absorbing)
            .unwrap()
            .expected_steps_to_absorption(start)
            .unwrap()
    };
    // One extra powered-down cycle or one extra listen cycle each cost
    // exactly one cycle of integration latency — the chain is linear.
    assert_eq!(
        steps(3, BASE_LISTEN_TIMEOUT) - steps(2, BASE_LISTEN_TIMEOUT),
        1.0
    );
    assert_eq!(
        steps(2, BASE_LISTEN_TIMEOUT + 3) - steps(2, BASE_LISTEN_TIMEOUT),
        3.0
    );
}
