//! Integration: the recovery-escalation ladder, analytically and by
//! simulation. The kernel's escalation machine is unfolded into an exact
//! absorbing DTMC (`escalation_chain`) and solved with the reliability
//! crate's fundamental-matrix machinery; the fault-injection recovery
//! campaign then measures the same quantity — jobs from fault onset to
//! retirement — on the executed machine + kernel stack. The two routes
//! must agree, which validates both the chain construction and the
//! campaign's event bookkeeping.

use nlft::core::campaign::{run_recovery_campaign, RecoveryCampaignConfig};
use nlft::core::diagnosis::escalation_chain;
use nlft::kernel::escalation::EscalationPolicy;
use nlft::machine::fault::FaultSpace;
use nlft::reliability::dtmc::AbsorbingDtmc;

#[test]
fn analytic_retirement_latency_matches_the_simulated_campaign() {
    // Analytic side: under a solid error stream (p_err = 1, what a
    // detected stuck-at produces) the ladder is deterministic, so the
    // expected steps to absorption are exact.
    let chain = escalation_chain(EscalationPolicy::default(), 1.0);
    let dtmc = AbsorbingDtmc::new(chain.matrix.clone(), &chain.retired)
        .expect("escalation chain is a valid absorbing DTMC");
    let analytic_steps = dtmc
        .expected_steps_to_absorption(chain.start)
        .expect("retirement is reachable under solid errors");

    // Simulated side: a stuck-at-heavy campaign. Every *detected*
    // stuck-at errors on every job, so each retired trial walks the
    // p_err = 1 path of the chain exactly.
    let mut config = RecoveryCampaignConfig::new(400, 0xD73C_2005);
    config.space = FaultSpace::cpu_only().with_stuck_at(0.9);
    config.threads = 4;
    let result = run_recovery_campaign(&config);
    assert!(
        result.counts.retired >= 20,
        "need a healthy sample of retirements, got {}",
        result.counts.retired
    );

    // The chain counts slots from (and including) the first errored job;
    // the campaign records jobs elapsed *since* that job. The two differ
    // by exactly the one slot in which the fault first manifests.
    let simulated = result.retirement_latency_jobs.mean();
    assert!(
        (analytic_steps - 1.0 - simulated).abs() < 1e-9,
        "analytic {analytic_steps} steps vs simulated {simulated} jobs"
    );
}

#[test]
fn finite_horizon_absorption_brackets_the_deterministic_latency() {
    let chain = escalation_chain(EscalationPolicy::default(), 1.0);
    let dtmc = AbsorbingDtmc::new(chain.matrix.clone(), &chain.retired).unwrap();
    let steps = dtmc
        .expected_steps_to_absorption(chain.start)
        .unwrap()
        .round() as u32;
    // Deterministic chain: not retired one slot earlier, certainly
    // retired at the expected step.
    let before = dtmc
        .absorption_probability(chain.start, steps - 1, &chain.retired)
        .unwrap();
    let at = dtmc
        .absorption_probability(chain.start, steps, &chain.retired)
        .unwrap();
    assert!(before < 1e-12, "retired early: {before}");
    assert!((at - 1.0).abs() < 1e-12, "not retired on schedule: {at}");
}

#[test]
fn retirement_slows_as_errors_get_rarer() {
    // Sanity on the stochastic regime: lower per-job error probability
    // must stretch the expected time to retirement, and a rate at the
    // transient bound must make retirement much slower than a solid
    // stream — the separation the alpha-count tuning relies on.
    let policy = EscalationPolicy::default();
    let steps = |p: f64| {
        let chain = escalation_chain(policy, p);
        AbsorbingDtmc::new(chain.matrix.clone(), &chain.retired)
            .unwrap()
            .expected_steps_to_absorption(chain.start)
            .unwrap()
    };
    let solid = steps(1.0);
    let flaky = steps(0.5);
    let rare = steps(0.05);
    assert!(solid < flaky && flaky < rare, "{solid} / {flaky} / {rare}");
    assert!(
        rare > 20.0 * solid,
        "transient-rate errors must retire far slower: {rare} vs {solid}"
    );
}
